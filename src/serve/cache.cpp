#include "serve/cache.h"

#include "obs/obs.h"

namespace raxh::serve {

namespace {

std::string make_key(const std::string& raw, const std::string& model) {
  // The fingerprint stands in for the alignment bytes; the model string is
  // appended verbatim behind a separator no hex digest contains.
  char hex[17];
  std::uint64_t h = AlignmentCache::fingerprint(raw);
  for (int i = 15; i >= 0; --i) {
    hex[i] = "0123456789abcdef"[h & 0xf];
    h >>= 4;
  }
  hex[16] = '\0';
  std::string key(hex, 16);
  key.push_back('\0');
  key += model;
  return key;
}

}  // namespace

AlignmentCache::AlignmentCache(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

std::uint64_t AlignmentCache::fingerprint(const std::string& raw) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : raw) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::size_t AlignmentCache::approx_bytes(const PatternAlignment& p) {
  std::size_t n = p.num_taxa() * p.num_patterns() * sizeof(DnaState);
  n += p.num_patterns() * sizeof(int);
  n += p.num_sites() * sizeof(std::size_t);
  for (const auto& name : p.names()) n += name.size() + sizeof(std::string);
  return n;
}

std::shared_ptr<const PatternAlignment> AlignmentCache::find(
    const std::string& raw, const std::string& model) {
  const std::string key = make_key(raw, model);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    obs::count(obs::Counter::kAlignCacheMisses);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  obs::count(obs::Counter::kAlignCacheHits);
  return it->second->patterns;
}

void AlignmentCache::insert(const std::string& raw, const std::string& model,
                            std::shared_ptr<const PatternAlignment> patterns) {
  const std::string key = make_key(raw, model);
  const std::size_t entry_bytes = approx_bytes(*patterns);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(patterns), entry_bytes});
  index_[key] = lru_.begin();
  bytes_ += entry_bytes;
  while (bytes_ > capacity_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    obs::count(obs::Counter::kAlignCacheEvictions);
  }
}

CacheStats AlignmentCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace raxh::serve
