// The metrics plane of raxhd: assembles one Prometheus text-exposition
// scrape from every observable surface the daemon has — ServiceCore queue
// and slot gauges, alignment-cache stats, per-opcode frame counters, the
// process-global obs counters, per-tenant attribution sums (from the
// JobObs blocks bound to each job's threads), and the serving-stack latency
// histograms (admission, queue-wait, execution).
//
// Two transports share the same renderer: the kMetrics protocol op (any
// raxhd client can scrape over the job socket) and an optional loopback-only
// HTTP listener speaking just enough HTTP/1.0 for `GET /metrics` — enough
// for a real Prometheus server or `curl`, with no web framework.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "serve/proto.h"

namespace raxh::serve {

class ServiceCore;

// Per-request-opcode frame counters, bumped by the Server once per decoded
// frame. Plain relaxed atomics: handlers on many connection threads write,
// the scrape path reads.
struct FrameCounters {
  static constexpr int kOps = 16;  // headroom over the 8 request opcodes
  std::atomic<std::uint64_t> frames[kOps] = {};

  void bump(Op op) {
    const auto i = static_cast<unsigned>(op);
    frames[i < kOps ? i : 0].fetch_add(1, std::memory_order_relaxed);
  }
};

// Lower-case scrape label of a request opcode ("submit", "status", ...);
// "unknown" for anything that is not a request.
[[nodiscard]] const char* op_name(Op op);

// Renders one scrape. `frames` may be null (ServiceCore driven without a
// Server, e.g. in tests); the per-op family is omitted then.
[[nodiscard]] std::string render_metrics(ServiceCore& service,
                                         const FrameCounters* frames);

// Loopback-only HTTP listener for GET /metrics. Binds 127.0.0.1:`port`
// (0 = ephemeral; port() reports the bound one) and serves each request on
// the accept thread — scrapes are small and serializing them is a feature
// (one consistent snapshot at a time). Throws std::runtime_error if the
// port cannot be bound.
class MetricsHttpListener {
 public:
  MetricsHttpListener(ServiceCore* service, const FrameCounters* frames,
                      int port);
  ~MetricsHttpListener();
  MetricsHttpListener(const MetricsHttpListener&) = delete;
  MetricsHttpListener& operator=(const MetricsHttpListener&) = delete;

  [[nodiscard]] int port() const { return port_; }

  // Close the listener and join the accept thread. Idempotent.
  void stop();

 private:
  void loop();
  void serve_one(int fd);

  ServiceCore* service_;
  const FrameCounters* frames_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace raxh::serve
