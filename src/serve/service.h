// The socket-free heart of raxhd: a multi-tenant job service running N
// concurrent comprehensive analyses inside one process tree. Each job gets a
// JobContext (job-namespaced artifacts, its own LiveModel per logical rank,
// a cancel token, the seed chain) and executes on thread-backed minimpi
// ranks via the same run_hybrid_comprehensive the one-shot CLI uses — which
// is what makes a served job bit-identical to a `raxh` run with the same
// seeds and rank count.
//
// Pipeline: SUBMIT -> [admission thread: parse/compress or cache hit] ->
// ready queue -> [scheduler thread: priority+FIFO over job slots] ->
// executor thread per running job -> terminal state + result.
//
// The Server (serve/server.h) puts a socket in front of this; tests and
// bench_serve drive it directly.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/hybrid.h"
#include "obs/live.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/cache.h"
#include "serve/proto.h"

namespace raxh::serve {

// Point-in-time service gauges for the metrics plane (serve/introspect.h).
struct ServiceStats {
  int queued = 0;   // submitted, not yet admitted
  int ready = 0;    // admitted, awaiting a slot
  int running = 0;
  int done = 0;
  int failed = 0;
  int cancelled = 0;
  std::uint64_t submitted_total = 0;
  int slots = 0;  // max_concurrent_jobs
};

struct ServiceOptions {
  int max_concurrent_jobs = 4;   // executor slots (each nranks x threads wide)
  std::size_t cache_bytes = 64u << 20;  // alignment cache budget (--cache-mb)
  int admission_lookahead = 2;   // double-buffer depth of admitted jobs
  // When non-empty, per-job artifacts (bootstrap checkpoints for jobs
  // submitted with checkpoint=true) land here, namespaced by job id.
  std::string artifact_dir;
  // Caps a single request's resource ask; a daemon shared by several clients
  // should not let one SUBMIT claim every core.
  int max_ranks_per_job = 16;
  int max_threads_per_rank = 16;
};

class ServiceCore {
 public:
  explicit ServiceCore(ServiceOptions options);
  ~ServiceCore();
  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  // Validates and enqueues; returns the assigned job id. Throws
  // std::invalid_argument on a malformed request (bad rank/thread/bootstrap
  // counts, empty alignment) and std::runtime_error after shutdown began.
  std::string submit(JobRequest request);

  // Point-in-time status; throws std::invalid_argument for an unknown id.
  [[nodiscard]] JobStatus status(const std::string& id);

  // All jobs, submission order.
  [[nodiscard]] std::vector<JobStatus> list();

  // Result of a kDone job; nullopt while non-terminal or not successful.
  [[nodiscard]] std::optional<JobResult> result(const std::string& id);

  // Request cancellation. Queued/ready jobs cancel immediately; a running
  // job unwinds cooperatively at its next work-unit boundary. Returns false
  // for an already-terminal job.
  bool cancel(const std::string& id);

  // Block until `id` is terminal (or `timeout_ms` elapses; <0 = forever).
  // Returns true iff terminal on return.
  bool wait(const std::string& id, long timeout_ms = -1);

  // Stop admission and scheduling, cancel queued and running jobs, join all
  // threads. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

  // Queue/state gauges for one scrape (consistent: taken under one lock).
  [[nodiscard]] ServiceStats stats() const;

  // The job's attribution block (counters/hists/spans charged to it); null
  // for an unknown id. Alive for as long as the job record is.
  [[nodiscard]] std::shared_ptr<obs::JobObs> job_obs(
      const std::string& id) const;

  // One merged Chrome trace over every job the daemon has seen: per job, a
  // lifecycle lane (SUBMIT->admission->queued->run spans) plus the rank/crew
  // spans its bound threads recorded, all under pid = the job's sequence
  // number. Loadable in chrome://tracing / Perfetto as-is.
  [[nodiscard]] std::string export_job_trace() const;

 private:
  struct Job {
    std::string id;
    JobRequest request;
    std::uint64_t seq = 0;
    JobState state = JobState::kQueued;
    std::string error;
    bool cache_hit = false;
    std::atomic<bool> cancel{false};
    std::shared_ptr<const PatternAlignment> patterns;
    std::vector<std::unique_ptr<obs::LiveModel>> live;  // one per logical rank
    std::shared_ptr<obs::JobObs> jobobs;  // attribution block, never null
    bool has_result = false;
    HybridResult result;
    std::chrono::steady_clock::time_point submitted_at, admitted_at,
        started_at, finished_at;
    std::thread worker;  // joined by the scheduler after terminal
  };

  void on_admitted(AdmissionOutcome outcome);
  void scheduler_loop();
  void execute(Job* job);
  void finish(Job* job, JobState terminal, std::string error);
  [[nodiscard]] JobStatus status_locked(const Job& job) const;

  ServiceOptions options_;
  AlignmentCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // scheduler + waiters
  std::map<std::string, std::unique_ptr<Job>> jobs_;
  std::vector<Job*> order_;           // submission order (for list())
  std::uint64_t next_seq_ = 0;
  int running_ = 0;
  bool shutdown_ = false;

  std::unique_ptr<AdmissionPipeline> admission_;  // owns the reader thread
  std::thread scheduler_;
};

}  // namespace raxh::serve
