// Client side of the raxhd protocol, shared by tools/raxhd_client and
// `raxh --connect`. One Client wraps one connected socket; requests are
// synchronous (frame out, reply frame(s) in). A kErr reply surfaces as a
// ServeError exception carrying the server's message.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/proto.h"

namespace raxh::serve {

class ServeError : public std::runtime_error {
 public:
  explicit ServeError(const std::string& message)
      : std::runtime_error(message) {}
};

class Client {
 public:
  static Client connect_unix(const std::string& socket_path);
  static Client connect_tcp(const std::string& host, int port);
  // "host:port" connects TCP, anything else is a unix socket path.
  static Client connect(const std::string& target);

  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  std::string submit(const JobRequest& request);
  JobStatus status(const std::string& id);
  JobResult result(const std::string& id);
  void cancel(const std::string& id);
  std::vector<JobStatus> list();
  void shutdown_server();
  // One Prometheus text-exposition scrape (Op::kMetrics).
  std::string metrics();

  // Follow a job's progress: `on_event` fires per EVENT frame; returns the
  // terminal status from the closing OK frame.
  JobStatus stream(const std::string& id,
                   const std::function<void(const JobStatus&)>& on_event = {});

 private:
  explicit Client(int fd) : fd_(fd) {}
  Frame roundtrip(Op op, const mpi::Bytes& body);

  int fd_ = -1;
};

}  // namespace raxh::serve
