#include "serve/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace raxh::serve {

namespace {

[[noreturn]] void sys_error(const std::string& what) {
  throw ServeError(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_error("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw ServeError("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    sys_error("connect(" + socket_path + ")");
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_error("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Resolve a hostname (e.g. "localhost").
    hostent* he = ::gethostbyname(host.c_str());
    if (!he || he->h_addrtype != AF_INET) {
      ::close(fd);
      throw ServeError("cannot resolve host: " + host);
    }
    std::memcpy(&addr.sin_addr, he->h_addr_list[0], sizeof(addr.sin_addr));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    sys_error("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return Client(fd);
}

Client Client::connect(const std::string& target) {
  // "host:port" (with a numeric port) means TCP; otherwise a socket path.
  const std::size_t colon = target.rfind(':');
  if (colon != std::string::npos && colon + 1 < target.size() &&
      target.find('/') == std::string::npos) {
    const std::string port_str = target.substr(colon + 1);
    if (port_str.find_first_not_of("0123456789") == std::string::npos)
      return connect_tcp(target.substr(0, colon), std::stoi(port_str));
  }
  return connect_unix(target);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::roundtrip(Op op, const mpi::Bytes& body) {
  write_frame(fd_, op, body);
  Frame reply;
  if (!read_frame(fd_, reply))
    throw ServeError("connection closed by server");
  if (reply.op == Op::kErr) {
    mpi::Unpacker u(reply.body);
    throw ServeError(u.get_string());
  }
  return reply;
}

std::string Client::submit(const JobRequest& request) {
  mpi::Packer p;
  pack_request(p, request);
  const Frame reply = roundtrip(Op::kSubmit, p.take());
  mpi::Unpacker u(reply.body);
  return u.get_string();
}

JobStatus Client::status(const std::string& id) {
  mpi::Packer p;
  p.put_string(id);
  const Frame reply = roundtrip(Op::kStatus, p.take());
  mpi::Unpacker u(reply.body);
  return unpack_status(u);
}

JobResult Client::result(const std::string& id) {
  mpi::Packer p;
  p.put_string(id);
  const Frame reply = roundtrip(Op::kResult, p.take());
  mpi::Unpacker u(reply.body);
  return unpack_result(u);
}

void Client::cancel(const std::string& id) {
  mpi::Packer p;
  p.put_string(id);
  roundtrip(Op::kCancel, p.take());
}

std::vector<JobStatus> Client::list() {
  const Frame reply = roundtrip(Op::kList, {});
  mpi::Unpacker u(reply.body);
  const auto n = u.get<std::uint32_t>();
  std::vector<JobStatus> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(unpack_status(u));
  return out;
}

void Client::shutdown_server() { roundtrip(Op::kShutdown, {}); }

std::string Client::metrics() {
  const Frame reply = roundtrip(Op::kMetrics, {});
  mpi::Unpacker u(reply.body);
  return u.get_string();
}

JobStatus Client::stream(
    const std::string& id,
    const std::function<void(const JobStatus&)>& on_event) {
  mpi::Packer p;
  p.put_string(id);
  write_frame(fd_, Op::kStream, p.take());
  for (;;) {
    Frame frame;
    if (!read_frame(fd_, frame))
      throw ServeError("connection closed mid-stream");
    mpi::Unpacker u(frame.body);
    if (frame.op == Op::kErr) throw ServeError(u.get_string());
    const JobStatus s = unpack_status(u);
    if (frame.op == Op::kOk) return s;
    if (on_event) on_event(s);
  }
}

}  // namespace raxh::serve
