// The socket front of raxhd: listeners (a unix-domain socket, optionally a
// loopback TCP port) accept connections, a handler thread per connection
// reads frames and drives the ServiceCore. Thread-per-connection is the
// right weight here — clients are a handful of submit/status/stream tools,
// not an internet-facing fleet — and it lets STREAM block its own connection
// while EVENT frames tick without an async state machine.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/introspect.h"
#include "serve/service.h"

namespace raxh::serve {

struct ServerOptions {
  std::string socket_path;  // unix-domain listener (required)
  int tcp_port = 0;  // loopback TCP listener; 0 = none, -1 = ephemeral
  int stream_interval_ms = 100;  // EVENT cadence of STREAM
  // Loopback HTTP /metrics listener; 0 = none, -1 = ephemeral. The same
  // exposition is always available over the job socket via Op::kMetrics.
  int metrics_http_port = 0;
  ServiceOptions service;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind + listen + spawn accept threads. Throws on bind failure (stale
  // socket files are unlinked first).
  void start();

  // Block until a SHUTDOWN request or request_shutdown() (e.g. from a
  // SIGTERM handler), then drain: cancel jobs, close connections, join.
  void run_until_shutdown();

  // Async shutdown trigger; safe to call from a signal handler's flag path
  // (it only stores an atomic — run_until_shutdown polls it).
  void request_shutdown() { shutdown_requested_.store(true); }

  [[nodiscard]] ServiceCore& service() { return *service_; }
  // The TCP port actually bound (for tcp_port = -1 ephemeral tests).
  [[nodiscard]] int bound_tcp_port() const { return bound_tcp_port_; }
  // The /metrics HTTP port actually bound; 0 when the listener is off.
  [[nodiscard]] int bound_metrics_port() const {
    return metrics_http_ ? metrics_http_->port() : 0;
  }
  // One scrape rendered in-process (raxhd --metrics-out at shutdown).
  [[nodiscard]] std::string render_metrics_now() {
    return render_metrics(*service_, &frames_);
  }

 private:
  void accept_loop(int listen_fd);
  void handle_connection(int fd);
  void handle_frame(int fd, const Frame& frame);
  void stream_job(int fd, const std::string& id);

  ServerOptions options_;
  std::unique_ptr<ServiceCore> service_;
  FrameCounters frames_;
  std::unique_ptr<MetricsHttpListener> metrics_http_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopping_{false};

  std::vector<int> listen_fds_;
  int bound_tcp_port_ = 0;
  std::vector<std::thread> accept_threads_;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  bool started_ = false;
};

}  // namespace raxh::serve
