#include "serve/introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/comm_obs.h"
#include "obs/hist.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/service.h"
#include "util/log.h"

namespace raxh::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kSubmit:
      return "submit";
    case Op::kStatus:
      return "status";
    case Op::kStream:
      return "stream";
    case Op::kResult:
      return "result";
    case Op::kCancel:
      return "cancel";
    case Op::kList:
      return "list";
    case Op::kShutdown:
      return "shutdown";
    case Op::kMetrics:
      return "metrics";
    default:
      return "unknown";
  }
}

std::string render_metrics(ServiceCore& service, const FrameCounters* frames) {
  obs::PromWriter w;
  const ServiceStats stats = service.stats();
  const CacheStats cache = service.cache_stats();

  w.gauge("raxhd_up", "1 while the daemon is serving.", 1.0);

  // Queue and slot state.
  w.counter("raxhd_jobs_submitted_total", "Jobs ever accepted by SUBMIT.",
            stats.submitted_total);
  w.gauge("raxhd_jobs_queued", "Jobs submitted, not yet admitted.",
          stats.queued);
  w.gauge("raxhd_jobs_ready", "Jobs admitted, awaiting an executor slot.",
          stats.ready);
  w.gauge("raxhd_jobs_running", "Jobs currently executing.", stats.running);
  w.gauge("raxhd_queue_depth", "Jobs waiting (queued + ready).",
          stats.queued + stats.ready);
  w.counter_labeled(
      "raxhd_jobs_finished_total", "Jobs in a terminal state, by outcome.",
      "state",
      {{"done", static_cast<std::uint64_t>(stats.done)},
       {"failed", static_cast<std::uint64_t>(stats.failed)},
       {"cancelled", static_cast<std::uint64_t>(stats.cancelled)}});
  w.gauge("raxhd_slots", "Configured executor slots (--jobs).", stats.slots);
  w.gauge("raxhd_slot_utilization", "Running jobs / executor slots.",
          stats.slots > 0 ? static_cast<double>(stats.running) /
                                static_cast<double>(stats.slots)
                          : 0.0);

  // Alignment cache.
  w.counter("raxhd_cache_hits_total", "Admissions served from the cache.",
            cache.hits);
  w.counter("raxhd_cache_misses_total", "Admissions that had to parse.",
            cache.misses);
  w.counter("raxhd_cache_evictions_total", "Entries evicted to make room.",
            cache.evictions);
  w.gauge("raxhd_cache_bytes", "Resident compressed-alignment bytes.",
          static_cast<double>(cache.bytes));
  w.gauge("raxhd_cache_capacity_bytes", "Configured cache budget.",
          static_cast<double>(cache.capacity));
  w.gauge("raxhd_cache_entries", "Resident cache entries.",
          static_cast<double>(cache.entries));

  // Protocol traffic, one series per request opcode (stable set: every op
  // is emitted on every scrape so counters never disappear between scrapes).
  if (frames != nullptr) {
    static constexpr Op kRequestOps[] = {
        Op::kSubmit, Op::kStatus, Op::kStream,    Op::kResult,
        Op::kCancel, Op::kList,   Op::kShutdown,  Op::kMetrics};
    std::vector<std::pair<std::string, std::uint64_t>> series;
    series.reserve(std::size(kRequestOps));
    for (const Op op : kRequestOps)
      series.emplace_back(op_name(op),
                          frames->frames[static_cast<unsigned>(op)].load(
                              std::memory_order_relaxed));
    w.counter_labeled("raxhd_frames_total",
                      "Request frames decoded, by opcode.", "op", series);
  }

  // Process-global obs counters: the kernel/runtime event families the
  // one-shot CLI exports to METRICS_*.json, now scrapeable live.
  {
    const obs::CounterSnapshot snap = obs::counters_snapshot();
    std::vector<std::pair<std::string, std::uint64_t>> series;
    series.reserve(obs::kNumCounters);
    for (int i = 0; i < obs::kNumCounters; ++i)
      series.emplace_back(obs::counter_name(static_cast<obs::Counter>(i)),
                          snap.values[i]);
    w.counter_labeled("raxhd_events_total",
                      "Process-global observability events, by counter.",
                      "counter", series);
  }

  // Per-tenant attribution: sums over the JobObs blocks of each tenant's
  // jobs. Tenant "" (unset) aggregates under the empty label value.
  {
    std::map<std::string, std::uint64_t> tenant_jobs;
    std::map<std::string, std::uint64_t> tenant_events;
    std::uint64_t dropped = 0;
    for (const JobStatus& s : service.list()) {
      tenant_jobs[s.tenant] += 1;
      if (const auto job = service.job_obs(s.id)) {
        const obs::CounterSnapshot snap = job->counters();
        std::uint64_t total = 0;
        for (int i = 0; i < obs::kNumCounters; ++i) total += snap.values[i];
        tenant_events[s.tenant] += total;
        dropped += job->dropped_spans();
      }
    }
    std::vector<std::pair<std::string, std::uint64_t>> jobs_series(
        tenant_jobs.begin(), tenant_jobs.end());
    std::vector<std::pair<std::string, std::uint64_t>> events_series(
        tenant_events.begin(), tenant_events.end());
    w.counter_labeled("raxhd_tenant_jobs_total", "Jobs submitted, by tenant.",
                      "tenant", jobs_series);
    w.counter_labeled("raxhd_tenant_events_total",
                      "Attributed observability events, by tenant.", "tenant",
                      events_series);
    w.counter("raxhd_trace_spans_dropped_total",
              "Per-job trace spans lost to ring overflow.", dropped);
  }

  // Comm plane: per-edge traffic matrices, shm-ring backpressure, and
  // nonblocking-request overlap. Families are announced on every scrape
  // (even with no series yet) so scrapers and the daemon-smoke validation
  // see a stable family set.
  {
    const obs::comm::Snapshot comm = obs::comm::snapshot();
    const auto edge_labels = [](int rank, int peer, int op, const char* dir) {
      return "rank=\"" + std::to_string(rank) + "\",peer=\"" +
             std::to_string(peer) + "\",op=\"" + obs::comm::op_name(op) +
             "\",dir=\"" + dir + "\"";
    };
    std::vector<std::pair<std::string, std::uint64_t>> msgs;
    std::vector<std::pair<std::string, std::uint64_t>> bytes;
    std::vector<std::pair<std::string, double>> times;
    for (const obs::comm::EdgeSample& e : comm.edges) {
      if (e.t.msgs_sent > 0 || e.t.bytes_sent > 0) {
        const std::string l = edge_labels(e.rank, e.peer, e.op, "send");
        msgs.emplace_back(l, e.t.msgs_sent);
        bytes.emplace_back(l, e.t.bytes_sent);
        times.emplace_back(l, static_cast<double>(e.t.send_ns) / 1e9);
      }
      if (e.t.msgs_recv > 0 || e.t.bytes_recv > 0) {
        const std::string l = edge_labels(e.rank, e.peer, e.op, "recv");
        msgs.emplace_back(l, e.t.msgs_recv);
        bytes.emplace_back(l, e.t.bytes_recv);
        times.emplace_back(l, static_cast<double>(e.t.recv_ns) / 1e9);
      }
    }
    w.counter_multilabeled("raxh_comm_edge_messages_total",
                           "Messages per (rank, peer, op, dir) edge.", msgs);
    w.counter_multilabeled("raxh_comm_edge_bytes_total",
                           "Bytes per (rank, peer, op, dir) edge.", bytes);
    w.gauge_multilabeled(
        "raxh_comm_edge_time_seconds_total",
        "Seconds inside send/recv per edge (recv includes peer wait).", times);

    std::vector<std::pair<std::string, std::uint64_t>> stalls;
    std::vector<std::pair<std::string, double>> stalled_s;
    std::vector<std::pair<std::string, double>> hwm;
    for (const obs::comm::RingSample& r : comm.rings) {
      const std::string l = "rank=\"" + std::to_string(r.rank) + "\",peer=\"" +
                            std::to_string(r.peer) + "\"";
      stalls.emplace_back(l, r.t.stalls);
      stalled_s.emplace_back(l, static_cast<double>(r.t.stalled_ns) / 1e9);
      hwm.emplace_back(l, static_cast<double>(r.t.hwm_bytes));
    }
    w.counter_multilabeled("raxh_comm_ring_stalls_total",
                           "Full-ring stall episodes per shm ring.", stalls);
    w.gauge_multilabeled("raxh_comm_ring_stalled_seconds_total",
                         "Seconds senders spent stalled per shm ring.",
                         stalled_s);
    w.gauge_multilabeled("raxh_comm_ring_hwm_bytes",
                         "Occupancy high-water mark per shm ring.", hwm);
    w.gauge("raxh_comm_stalled",
            "Senders currently stalled on a full shm ring.",
            static_cast<double>(comm.stalled_now));

    std::vector<std::pair<std::string, std::uint64_t>> reqs;
    std::vector<std::pair<std::string, double>> ratios;
    for (const obs::comm::OverlapSample& o : comm.overlap) {
      const std::string rank_l = "rank=\"" + std::to_string(o.rank) + "\"";
      reqs.emplace_back(rank_l + ",completion=\"test\"",
                        o.t.test_completions);
      reqs.emplace_back(rank_l + ",completion=\"wait\"",
                        o.t.wait_completions);
      ratios.emplace_back(rank_l, o.t.overlap_ratio());
    }
    w.counter_multilabeled("raxh_comm_overlap_requests_total",
                           "Completed nonblocking requests, by completion.",
                           reqs);
    w.gauge_multilabeled("raxh_comm_overlap_ratio",
                         "Fraction of in-flight time not blocked in wait.",
                         ratios);
  }

  // Per-job comm attribution: bytes moved on behalf of each job (mirrored
  // obs counters) and whether any of its senders is stalled right now —
  // raxh_top's COMM column reads these.
  {
    std::vector<std::pair<std::string, std::uint64_t>> job_bytes;
    std::vector<std::pair<std::string, double>> job_stalled;
    for (const JobStatus& s : service.list()) {
      if (const auto job = service.job_obs(s.id)) {
        const obs::CounterSnapshot snap = job->counters();
        const std::uint64_t moved =
            snap.values[static_cast<int>(obs::Counter::kCommBytesSent)] +
            snap.values[static_cast<int>(obs::Counter::kCommBytesRecv)];
        const std::string l = "job=\"" + obs::prom_escape_label(s.id) + "\"";
        job_bytes.emplace_back(l, moved);
        job_stalled.emplace_back(
            l, job->comm_stalled() > 0 ? 1.0 : 0.0);
      }
    }
    w.counter_multilabeled("raxhd_job_comm_bytes_total",
                           "Bytes sent + received on behalf of each job.",
                           job_bytes);
    w.gauge_multilabeled("raxhd_job_comm_stalled",
                         "1 while any of the job's senders is ring-stalled.",
                         job_stalled);
  }

  // Serving-stack latencies (process-global; per-job copies live in the
  // JobObs blocks). Seconds, log2-bucketed.
  w.histogram_ns("raxhd_admission_seconds",
                 "SUBMIT accepted to alignment admitted.",
                 obs::hist_snapshot(obs::Hist::kAdmissionNs));
  w.histogram_ns("raxhd_queue_wait_seconds",
                 "Admitted to executor slot granted.",
                 obs::hist_snapshot(obs::Hist::kQueueWaitNs));
  w.histogram_ns("raxhd_exec_seconds",
                 "Executor slot granted to terminal state.",
                 obs::hist_snapshot(obs::Hist::kExecNs));
  return w.take();
}

// ---------------------------------------------------------------------------
// MetricsHttpListener
// ---------------------------------------------------------------------------

MetricsHttpListener::MetricsHttpListener(ServiceCore* service,
                                         const FrameCounters* frames,
                                         int port)
    : service_(service), frames_(frames) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("metrics socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never routable
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("metrics bind(127.0.0.1:" + std::to_string(port) +
                             "): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { loop(); });
}

MetricsHttpListener::~MetricsHttpListener() { stop(); }

void MetricsHttpListener::stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpListener::loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stopping_.load()) continue;
      return;  // listener closed: shutdown
    }
    serve_one(fd);
    ::close(fd);
  }
}

void MetricsHttpListener::serve_one(int fd) {
  // Read the request head (just the first line matters). A scraper sends a
  // small GET; 4 KiB is plenty and bounds a misbehaving peer.
  char buf[4096];
  std::size_t got = 0;
  while (got < sizeof(buf) - 1) {
    const ssize_t r = ::read(fd, buf + got, sizeof(buf) - 1 - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
    buf[got] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr)
      break;  // end of headers
  }
  buf[got] = '\0';

  const auto respond = [fd](const char* status, const std::string& body,
                            const char* content_type) {
    std::string head = std::string("HTTP/1.0 ") + status +
                       "\r\nContent-Type: " + content_type +
                       "\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    head += body;
    std::size_t put = 0;
    while (put < head.size()) {
      const ssize_t w = ::write(fd, head.data() + put, head.size() - put);
      if (w < 0) {
        if (errno == EINTR) continue;
        return;
      }
      put += static_cast<std::size_t>(w);
    }
  };

  // "GET <path> ..." — anything else is a 404/405 with a pointer.
  if (std::strncmp(buf, "GET ", 4) != 0) {
    respond("405 Method Not Allowed", "only GET is supported\n", "text/plain");
    return;
  }
  const char* path = buf + 4;
  const char* path_end = std::strchr(path, ' ');
  const std::string target(path, path_end != nullptr
                                     ? static_cast<std::size_t>(path_end - path)
                                     : std::strlen(path));
  if (target != "/metrics" && target != "/metrics/") {
    respond("404 Not Found", "see /metrics\n", "text/plain");
    return;
  }
  respond("200 OK", render_metrics(*service_, frames_),
          "text/plain; version=0.0.4; charset=utf-8");
}

}  // namespace raxh::serve
