#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "util/check.h"
#include "util/log.h"

namespace raxh::serve {

namespace {

[[noreturn]] void sys_error(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void send_err(int fd, const std::string& message) {
  mpi::Packer p;
  p.put_string(message);
  write_frame(fd, Op::kErr, p.take());
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  RAXH_EXPECTS(!options_.socket_path.empty());
  service_ = std::make_unique<ServiceCore>(options_.service);
}

Server::~Server() {
  request_shutdown();
  run_until_shutdown();
}

void Server::start() {
  RAXH_EXPECTS(!started_);
  started_ = true;

  // Unix-domain listener. A stale socket file from a dead daemon would make
  // bind fail; unlink first (a live daemon on the path loses its listener
  // only if the operator points two daemons at one path — their mistake).
  {
    std::error_code ec;
    if (std::filesystem::symlink_status(options_.socket_path, ec).type() !=
            std::filesystem::file_type::not_found &&
        !ec)
      log_warn("removing stale socket %s", options_.socket_path.c_str());
    ::unlink(options_.socket_path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) sys_error("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path))
      throw std::runtime_error("socket path too long: " + options_.socket_path);
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
      sys_error("bind(" + options_.socket_path + ")");
    if (::listen(fd, 64) < 0) sys_error("listen");
    listen_fds_.push_back(fd);
  }

  if (options_.tcp_port != 0) {
    const int port = options_.tcp_port < 0 ? 0 : options_.tcp_port;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_error("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
      sys_error("bind(tcp " + std::to_string(options_.tcp_port) + ")");
    if (::listen(fd, 64) < 0) sys_error("listen(tcp)");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_tcp_port_ = ntohs(bound.sin_port);
    listen_fds_.push_back(fd);
  }

  if (options_.metrics_http_port != 0) {
    const int port =
        options_.metrics_http_port < 0 ? 0 : options_.metrics_http_port;
    metrics_http_ =
        std::make_unique<MetricsHttpListener>(service_.get(), &frames_, port);
    log_info("metrics on http://127.0.0.1:%d/metrics", metrics_http_->port());
  }

  for (const int fd : listen_fds_)
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  log_info("raxhd listening on %s%s", options_.socket_path.c_str(),
           bound_tcp_port_ != 0
               ? (" and tcp:" + std::to_string(bound_tcp_port_)).c_str()
               : "");
}

void Server::run_until_shutdown() {
  if (!started_) return;
  // The SHUTDOWN op and signal handlers both land on this atomic; 100 ms
  // polling is plenty for an operator-facing daemon.
  while (!shutdown_requested_.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  if (stopping_.exchange(true)) return;  // a second caller: already drained
  log_info("raxhd shutting down");
  if (metrics_http_) metrics_http_->stop();
  // Wake the accept loops and connection handlers by closing their fds,
  // then join everything. shutdown(2) before close so blocked reads return.
  for (const int fd : listen_fds_) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : accept_threads_) t.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) t.join();
  service_->shutdown();
  ::unlink(options_.socket_path.c_str());
  started_ = false;
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed: shutdown
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  try {
    Frame frame;
    while (read_frame(fd, frame)) handle_frame(fd, frame);
  } catch (const std::exception& e) {
    // Protocol corruption or a vanished peer: answer if the pipe still
    // works, then drop the connection either way.
    try {
      send_err(fd, e.what());
    } catch (...) {
    }
  }
  ::close(fd);
}

// GCC 12 misfires -Wstringop-overflow on std::vector's range insert when
// Packer::put<std::uint32_t> is inlined into the kList branch (upstream
// PR 105329-family false positive: the 4-byte stack source is live and the
// destination grows first). Scoped off for this function only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
void Server::handle_frame(int fd, const Frame& frame) {
  frames_.bump(frame.op);
  try {
    mpi::Unpacker u(frame.body);
    switch (frame.op) {
      case Op::kSubmit: {
        const JobRequest request = unpack_request(u);
        const std::string id = service_->submit(request);
        mpi::Packer p;
        p.put_string(id);
        write_frame(fd, Op::kOk, p.take());
        return;
      }
      case Op::kStatus: {
        const JobStatus s = service_->status(u.get_string());
        mpi::Packer p;
        pack_status(p, s);
        write_frame(fd, Op::kOk, p.take());
        return;
      }
      case Op::kStream:
        stream_job(fd, u.get_string());
        return;
      case Op::kResult: {
        const std::string id = u.get_string();
        const JobStatus s = service_->status(id);
        const auto r = service_->result(id);
        if (!r) {
          send_err(fd, "job " + id + " has no result (state: " +
                           job_state_name(s.state) + ")");
          return;
        }
        mpi::Packer p;
        pack_result(p, *r);
        write_frame(fd, Op::kOk, p.take());
        return;
      }
      case Op::kCancel: {
        service_->cancel(u.get_string());
        write_frame(fd, Op::kOk, {});
        return;
      }
      case Op::kList: {
        const auto statuses = service_->list();
        mpi::Packer p;
        p.put<std::uint32_t>(static_cast<std::uint32_t>(statuses.size()));
        for (const auto& s : statuses) pack_status(p, s);
        write_frame(fd, Op::kOk, p.take());
        return;
      }
      case Op::kShutdown:
        write_frame(fd, Op::kOk, {});
        request_shutdown();
        return;
      case Op::kMetrics: {
        mpi::Packer p;
        p.put_string(render_metrics(*service_, &frames_));
        write_frame(fd, Op::kOk, p.take());
        return;
      }
      default:
        send_err(fd, "unknown opcode " +
                         std::to_string(static_cast<int>(frame.op)));
        return;
    }
  } catch (const std::exception& e) {
    send_err(fd, e.what());
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void Server::stream_job(int fd, const std::string& id) {
  // EVENT frames at the configured cadence until the job is terminal, then
  // one final OK with the terminal status. The poll interval doubles as the
  // terminal-wait timeout so a finished job streams its final frame at once.
  for (;;) {
    const JobStatus s = service_->status(id);  // throws on unknown id
    if (is_terminal(s.state)) {
      mpi::Packer p;
      pack_status(p, s);
      write_frame(fd, Op::kOk, p.take());
      return;
    }
    mpi::Packer p;
    pack_status(p, s);
    write_frame(fd, Op::kEvent, p.take());
    if (stopping_.load() || shutdown_requested_.load()) {
      send_err(fd, "server shutting down");
      return;
    }
    service_->wait(id, options_.stream_interval_ms);
  }
}

}  // namespace raxh::serve
