#include "serve/service.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "obs/obs.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/log.h"

namespace raxh::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

// steady_clock epoch ns — the same clock obs::now_ns reads, so lifecycle
// spans and the spans bound threads record land on one timeline.
std::uint64_t ns_of(std::chrono::steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace

ServiceCore::ServiceCore(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache_bytes) {
  RAXH_EXPECTS(options_.max_concurrent_jobs >= 1);
  if (!options_.artifact_dir.empty())
    std::filesystem::create_directories(options_.artifact_dir);
  admission_ = std::make_unique<AdmissionPipeline>(
      &cache_, options_.admission_lookahead,
      [this](AdmissionOutcome outcome) { on_admitted(std::move(outcome)); });
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

ServiceCore::~ServiceCore() { shutdown(); }

std::string ServiceCore::submit(JobRequest request) {
  if (request.alignment.empty())
    throw std::invalid_argument("submit: empty alignment");
  if (request.nranks < 1 || request.nranks > options_.max_ranks_per_job)
    throw std::invalid_argument("submit: nranks out of range");
  if (request.num_threads < 1 ||
      request.num_threads > options_.max_threads_per_rank)
    throw std::invalid_argument("submit: num_threads out of range");
  if (request.bootstraps < 1)
    throw std::invalid_argument("submit: bootstraps must be >= 1");

  auto job = std::make_unique<Job>();
  Job* raw = job.get();
  AdmissionTicket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) throw std::runtime_error("service is shutting down");
    job->seq = next_seq_++;
    job->id = "j" + std::to_string(job->seq);
    job->request = std::move(request);
    job->submitted_at = std::chrono::steady_clock::now();
    job->jobobs = std::make_shared<obs::JobObs>();
    ticket.job_id = job->id;
    ticket.jobobs = job->jobobs;
    ticket.raw = std::make_shared<const std::string>(job->request.alignment);
    ticket.model = job->request.model;
    ticket.priority = job->request.priority;
    ticket.seq = job->seq;
    order_.push_back(raw);
    jobs_[job->id] = std::move(job);
  }
  obs::count(obs::Counter::kServeJobsSubmitted);
  admission_->enqueue(std::move(ticket));
  return raw->id;
}

void ServiceCore::on_admitted(AdmissionOutcome outcome) {
  bool free_slot = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(outcome.job_id);
    Job* job = it == jobs_.end() ? nullptr : it->second.get();
    if (!job || job->state != JobState::kQueued) {
      // Cancelled while the pipeline was parsing it: the ticket charged a
      // lookahead slot that no scheduler pickup will ever release.
      free_slot = outcome.error.empty();
    } else if (!outcome.error.empty()) {
      job->state = JobState::kFailed;
      job->error = std::move(outcome.error);
      job->finished_at = std::chrono::steady_clock::now();
      obs::count(obs::Counter::kServeJobsCompleted);
    } else {
      job->patterns = std::move(outcome.patterns);
      job->cache_hit = outcome.cache_hit;
      job->state = JobState::kReady;
      job->admitted_at = std::chrono::steady_clock::now();
      obs::JobScope attribution(job->jobobs);
      obs::hist_record(obs::Hist::kAdmissionNs,
                       ns_between(job->submitted_at, job->admitted_at));
    }
  }
  // Failed admissions release their slot inside the pipeline itself.
  if (free_slot) admission_->job_started();
  cv_.notify_all();
}

void ServiceCore::scheduler_loop() {
  for (;;) {
    Job* picked = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        if (shutdown_) return true;
        if (running_ >= options_.max_concurrent_jobs) return false;
        return std::any_of(order_.begin(), order_.end(), [](const Job* j) {
          return j->state == JobState::kReady;
        });
      });
      if (shutdown_) break;
      // Priority first, submission order within a priority — the same
      // ordering admission uses, applied to the ready set.
      for (Job* j : order_) {
        if (j->state != JobState::kReady) continue;
        if (!picked || j->request.priority > picked->request.priority)
          picked = j;
      }
      if (!picked) continue;
      picked->state = JobState::kRunning;
      picked->started_at = std::chrono::steady_clock::now();
      ++running_;
      {
        obs::JobScope attribution(picked->jobobs);
        obs::hist_record(obs::Hist::kQueueWaitNs,
                         ns_between(picked->admitted_at, picked->started_at));
      }
      // One executor thread per running job; it blocks in run_thread_ranks
      // until every rank of the job joined. Assigned under mu_ so
      // status/list never observe the thread object mid-construction.
      picked->worker = std::thread([this, picked] { execute(picked); });
    }
    admission_->job_started();
  }

  // Shutdown: join every worker that ever started. finish() already
  // notified; workers unwind via the cancel flags set in shutdown().
  std::vector<Job*> started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Job* j : order_)
      if (j->worker.joinable()) started.push_back(j);
  }
  for (Job* j : started) j->worker.join();
}

void ServiceCore::execute(Job* job) {
  // The job's isolation bundle: namespaced artifacts, its own live models,
  // the cancel token, the seed chain, and hands-off process globals (the
  // daemon hosts many jobs; none of them owns the process rank stamp).
  JobContext ctx;
  ctx.job_id = job->id;
  ctx.tenant = job->request.tenant;
  ctx.trace_id = job->id;
  ctx.obs_job = job->jobobs;
  ctx.parsimony_seed = job->request.parsimony_seed;
  ctx.bootstrap_seed = job->request.bootstrap_seed;
  ctx.use_seed_chain = true;
  ctx.cancel = &job->cancel;
  ctx.owns_process_globals = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->live.clear();
    for (int r = 0; r < job->request.nranks; ++r)
      job->live.push_back(std::make_unique<obs::LiveModel>());
  }
  for (const auto& m : job->live) ctx.live_models.push_back(m.get());

  HybridOptions hopts;
  hopts.analysis.specified_bootstraps = job->request.bootstraps;
  hopts.analysis.parsimony_seed = job->request.parsimony_seed;
  hopts.analysis.bootstrap_seed = job->request.bootstrap_seed;
  hopts.analysis.num_threads = job->request.num_threads;
  if (job->request.fast_rounds > 0)
    hopts.analysis.fast.max_rounds = job->request.fast_rounds;
  if (job->request.slow_rounds > 0)
    hopts.analysis.slow.max_rounds = job->request.slow_rounds;
  if (job->request.thorough_rounds > 0)
    hopts.analysis.thorough.max_rounds = job->request.thorough_rounds;
  if (job->request.checkpoint && !options_.artifact_dir.empty()) {
    hopts.analysis.checkpoint_dir = options_.artifact_dir + "/ckpt";
    std::filesystem::create_directories(hopts.analysis.checkpoint_dir);
  }
  hopts.compute_support = true;
  hopts.run_bootstopping = false;

  std::mutex result_mu;
  bool cancelled = false;
  std::string error;
  try {
    mpi::run_thread_ranks(job->request.nranks, [&](mpi::Comm& comm) {
      // Nothing may escape this lambda: a non-rank-0 exception aborts the
      // process (the minimpi contract). A cancelled rank returns early; its
      // closed channels surface as RankFailed on the peers still inside a
      // collective, which is the expected unwind echo, not a failure.
      try {
        HybridResult r =
            run_hybrid_comprehensive(ctx, comm, *job->patterns, hopts);
        if (comm.rank() == 0) {
          std::lock_guard<std::mutex> lock(result_mu);
          job->result = std::move(r);
          job->has_result = true;
        }
      } catch (const JobCancelled&) {
        std::lock_guard<std::mutex> lock(result_mu);
        cancelled = true;
      } catch (const mpi::RankFailed&) {
        std::lock_guard<std::mutex> lock(result_mu);
        if (!job->cancel.load()) error = "rank failure inside job";
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(result_mu);
        if (error.empty()) error = e.what();
      }
    });
  } catch (const std::exception& e) {
    // RankFailed propagated out of rank 0's join path.
    if (!job->cancel.load() && error.empty()) error = e.what();
  }

  if (job->cancel.load() || cancelled)
    finish(job, JobState::kCancelled, "");
  else if (!error.empty() || !job->has_result)
    finish(job, JobState::kFailed,
           error.empty() ? "job produced no result" : error);
  else
    finish(job, JobState::kDone, "");
}

void ServiceCore::finish(Job* job, JobState terminal, std::string error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->state = terminal;
    job->error = std::move(error);
    job->finished_at = std::chrono::steady_clock::now();
    --running_;
    obs::JobScope attribution(job->jobobs);
    obs::hist_record(obs::Hist::kExecNs,
                     ns_between(job->started_at, job->finished_at));
  }
  obs::count(obs::Counter::kServeJobsCompleted);
  log_debug("job %s finished: %s", job->id.c_str(), job_state_name(terminal));
  cv_.notify_all();
}

JobStatus ServiceCore::status_locked(const Job& job) const {
  JobStatus s;
  s.id = job.id;
  s.name = job.request.name;
  s.tenant = job.request.tenant;
  s.state = job.state;
  s.error = job.error;
  s.cache_hit = job.cache_hit;
  const auto now = std::chrono::steady_clock::now();
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kReady:
      s.queue_s = seconds_between(job.submitted_at, now);
      break;
    case JobState::kRunning:
      s.queue_s = seconds_between(job.submitted_at, job.started_at);
      s.run_s = seconds_between(job.started_at, now);
      break;
    default: {
      // Terminal. A job cancelled before it ever ran has no started_at.
      const bool ran = job.started_at.time_since_epoch().count() != 0;
      s.queue_s = seconds_between(job.submitted_at,
                                  ran ? job.started_at : job.finished_at);
      if (ran) s.run_s = seconds_between(job.started_at, job.finished_at);
      break;
    }
  }
  if (job.state == JobState::kRunning || is_terminal(job.state)) {
    double sum = 0.0;
    int n = 0;
    for (const auto& m : job.live) {
      obs::ProgressSnapshot snap = m->snapshot();
      sum += snap.fraction;
      ++n;
      if (snap.rank == 0) s.phase = snap.phase;
      if (snap.has_lnl && (!s.has_lnl || snap.best_lnl > s.best_lnl)) {
        s.best_lnl = snap.best_lnl;
        s.has_lnl = true;
      }
    }
    if (n > 0) s.fraction = sum / n;
    if (job.state == JobState::kDone) s.fraction = 1.0;
  }
  return s;
}

JobStatus ServiceCore::status(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::invalid_argument("unknown job id: " + id);
  return status_locked(*it->second);
}

std::vector<JobStatus> ServiceCore::list() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(order_.size());
  for (const Job* j : order_) out.push_back(status_locked(*j));
  return out;
}

std::optional<JobResult> ServiceCore::result(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::invalid_argument("unknown job id: " + id);
  const Job& job = *it->second;
  if (job.state != JobState::kDone || !job.has_result) return std::nullopt;
  JobResult r;
  r.best_tree_newick = job.result.best_tree_newick;
  r.best_lnl = job.result.best_lnl;
  r.winner_rank = job.result.winner_rank;
  r.support_tree_newick = job.result.support_tree_newick;
  r.total_bootstrap_trees = job.result.total_bootstrap_trees;
  return r;
}

bool ServiceCore::cancel(const std::string& id) {
  Job* job = nullptr;
  bool was_waiting = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
      throw std::invalid_argument("unknown job id: " + id);
    job = it->second.get();
    if (is_terminal(job->state)) return false;
    job->cancel.store(true);
    if (job->state == JobState::kQueued || job->state == JobState::kReady) {
      was_waiting = job->state == JobState::kReady;
      job->state = JobState::kCancelled;
      job->finished_at = std::chrono::steady_clock::now();
      obs::count(obs::Counter::kServeJobsCompleted);
    }
    // A kRunning job unwinds cooperatively; execute() records the terminal
    // state when its ranks have joined.
  }
  admission_->discard(id);
  if (was_waiting) admission_->job_started();  // its lookahead slot frees
  cv_.notify_all();
  return true;
}

bool ServiceCore::wait(const std::string& id, long timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::invalid_argument("unknown job id: " + id);
  Job* job = it->second.get();
  const auto pred = [&] { return is_terminal(job->state); };
  if (timeout_ms < 0) {
    cv_.wait(lock, pred);
    return true;
  }
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), pred);
}

void ServiceCore::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (Job* j : order_) {
      if (is_terminal(j->state)) continue;
      j->cancel.store(true);
      if (j->state == JobState::kQueued || j->state == JobState::kReady) {
        j->state = JobState::kCancelled;
        j->finished_at = std::chrono::steady_clock::now();
        obs::count(obs::Counter::kServeJobsCompleted);
      }
    }
  }
  cv_.notify_all();
  admission_->stop();
  if (scheduler_.joinable()) scheduler_.join();
}

ServiceStats ServiceCore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.slots = options_.max_concurrent_jobs;
  s.submitted_total = next_seq_;
  for (const Job* j : order_) {
    switch (j->state) {
      case JobState::kQueued:
        ++s.queued;
        break;
      case JobState::kReady:
        ++s.ready;
        break;
      case JobState::kRunning:
        ++s.running;
        break;
      case JobState::kDone:
        ++s.done;
        break;
      case JobState::kFailed:
        ++s.failed;
        break;
      case JobState::kCancelled:
        ++s.cancelled;
        break;
    }
  }
  return s;
}

std::shared_ptr<obs::JobObs> ServiceCore::job_obs(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second->jobobs;
}

std::string ServiceCore::export_job_trace() const {
  std::vector<std::string> fragments;
  std::lock_guard<std::mutex> lock(mu_);
  fragments.reserve(order_.size());
  for (const Job* j : order_) {
    // Lifecycle lane: SUBMIT -> admitted -> slot granted -> terminal, each
    // leg a span. Open legs (job still in flight) extend to "now" so a
    // mid-run export stays well-formed.
    const std::uint64_t now = obs::now_ns();
    const bool admitted = j->admitted_at.time_since_epoch().count() != 0;
    const bool started = j->started_at.time_since_epoch().count() != 0;
    const bool finished = j->finished_at.time_since_epoch().count() != 0;
    const std::uint64_t end = finished ? ns_of(j->finished_at) : now;
    std::vector<obs::JobObs::ExtraSpan> extra;
    {
      const std::uint64_t t0 = ns_of(j->submitted_at);
      const std::uint64_t t1 = admitted ? ns_of(j->admitted_at) : end;
      extra.push_back({"admission", t0, t1 > t0 ? t1 - t0 : 0,
                       obs::kJobLifecycleLane});
    }
    if (admitted) {
      const std::uint64_t t0 = ns_of(j->admitted_at);
      const std::uint64_t t1 = started ? ns_of(j->started_at) : end;
      extra.push_back({"queued", t0, t1 > t0 ? t1 - t0 : 0,
                       obs::kJobLifecycleLane});
    }
    if (started) {
      const std::uint64_t t0 = ns_of(j->started_at);
      extra.push_back({"run", t0, end > t0 ? end - t0 : 0,
                       obs::kJobLifecycleLane});
    }
    j->jobobs->set_lane_name(obs::kJobLifecycleLane, "lifecycle");
    std::string pname = "job " + j->id;
    if (!j->request.name.empty()) pname += " " + j->request.name;
    if (!j->request.tenant.empty()) pname += " tenant=" + j->request.tenant;
    fragments.push_back(j->jobobs->export_trace_fragment(
        static_cast<int>(j->seq), pname, extra));
  }
  return obs::merge_trace_fragments(fragments);
}

}  // namespace raxh::serve
