// The admission pipeline: a dedicated reader thread that turns raw SUBMIT
// payloads into run-ready, pattern-compressed alignments off the worker
// path. Parsing and compression are the dominant non-search cost of a small
// job; doing them on a single pipeline thread (a) keeps worker ranks busy
// with likelihood work only, and (b) serializes cache fills so one alignment
// submitted N times concurrently is compressed once.
//
// Admission is double-buffered: at most `lookahead` admitted-but-unstarted
// jobs exist at a time (default 2 — one running set being fed, one prepared
// behind it). The pipeline stalls, not the submitters: SUBMIT always queues
// instantly, and the reader thread picks the highest-priority (FIFO within
// priority) pending ticket whenever a lookahead slot is free.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.h"

namespace raxh::obs {
class JobObs;
}  // namespace raxh::obs

namespace raxh::serve {

struct AdmissionTicket {
  std::string job_id;
  std::shared_ptr<const std::string> raw;  // alignment bytes (shared, large)
  std::string model;
  int priority = 0;
  std::uint64_t seq = 0;  // submission order; FIFO tiebreak within priority
  // The job's attribution block: the pipeline thread binds it while the
  // ticket is processed, charging parse/cache work to the owning job.
  std::shared_ptr<obs::JobObs> jobobs;
};

struct AdmissionOutcome {
  std::string job_id;
  std::shared_ptr<const PatternAlignment> patterns;  // null on error
  bool cache_hit = false;
  std::string error;  // non-empty: parse/validation failure
};

class AdmissionPipeline {
 public:
  // `on_admitted` fires on the pipeline thread for every processed ticket
  // (success or failure); it must be fast and must not call back into the
  // pipeline other than job_started()/discard().
  AdmissionPipeline(AlignmentCache* cache, int lookahead,
                    std::function<void(AdmissionOutcome)> on_admitted);
  ~AdmissionPipeline();
  AdmissionPipeline(const AdmissionPipeline&) = delete;
  AdmissionPipeline& operator=(const AdmissionPipeline&) = delete;

  void enqueue(AdmissionTicket ticket);

  // Remove a still-pending ticket (job cancelled while queued). Returns
  // false if the ticket already entered processing.
  bool discard(const std::string& job_id);

  // The scheduler started (or abandoned) an admitted job: frees one
  // lookahead slot, letting the reader thread prepare the next ticket.
  void job_started();

  // Drain-stop: finish the in-flight ticket, drop pending ones, join.
  void stop();

 private:
  void run();
  [[nodiscard]] AdmissionOutcome process(const AdmissionTicket& ticket);

  AlignmentCache* cache_;
  const int lookahead_;
  std::function<void(AdmissionOutcome)> on_admitted_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<AdmissionTicket> pending_;
  int admitted_unstarted_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace raxh::serve
