#include "serve/proto.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace raxh::serve {

namespace {

// Full-buffer read/write with EINTR retry; a stream socket may deliver any
// prefix per syscall.
std::size_t read_all(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("frame read: ") +
                               std::strerror(errno));
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::write(fd, p + put, n - put);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("frame write: ") +
                               std::strerror(errno));
    }
    put += static_cast<std::size_t>(w);
  }
}

}  // namespace

bool read_frame(int fd, Frame& out) {
  std::uint8_t len_le[4];
  const std::size_t got = read_all(fd, len_le, sizeof(len_le));
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof(len_le))
    throw std::runtime_error("frame read: EOF inside length prefix");
  const std::uint32_t len = static_cast<std::uint32_t>(len_le[0]) |
                            static_cast<std::uint32_t>(len_le[1]) << 8 |
                            static_cast<std::uint32_t>(len_le[2]) << 16 |
                            static_cast<std::uint32_t>(len_le[3]) << 24;
  if (len == 0) throw std::runtime_error("frame read: empty frame");
  if (len > kMaxFrameBytes)
    throw std::runtime_error("frame read: oversized frame (" +
                             std::to_string(len) + " bytes)");
  std::uint8_t op = 0;
  if (read_all(fd, &op, 1) != 1)
    throw std::runtime_error("frame read: EOF before opcode");
  out.op = static_cast<Op>(op);
  out.body.resize(len - 1);
  if (read_all(fd, out.body.data(), out.body.size()) != out.body.size())
    throw std::runtime_error("frame read: EOF inside body");
  return true;
}

void write_frame(int fd, Op op, const mpi::Bytes& body) {
  if (body.size() + 1 > kMaxFrameBytes)
    throw std::runtime_error("frame write: oversized frame");
  const auto len = static_cast<std::uint32_t>(body.size() + 1);
  std::uint8_t header[5] = {
      static_cast<std::uint8_t>(len & 0xff),
      static_cast<std::uint8_t>((len >> 8) & 0xff),
      static_cast<std::uint8_t>((len >> 16) & 0xff),
      static_cast<std::uint8_t>((len >> 24) & 0xff),
      static_cast<std::uint8_t>(op),
  };
  write_all(fd, header, sizeof(header));
  if (!body.empty()) write_all(fd, body.data(), body.size());
}

void pack_request(mpi::Packer& p, const JobRequest& r) {
  p.put_string(r.name);
  p.put_string(r.tenant);
  p.put_string(r.model);
  p.put<std::int32_t>(r.priority);
  p.put<std::int32_t>(r.nranks);
  p.put<std::int32_t>(r.num_threads);
  p.put<std::int32_t>(r.bootstraps);
  p.put<std::int64_t>(r.parsimony_seed);
  p.put<std::int64_t>(r.bootstrap_seed);
  p.put<std::uint8_t>(r.checkpoint ? 1 : 0);
  p.put<std::int32_t>(r.fast_rounds);
  p.put<std::int32_t>(r.slow_rounds);
  p.put<std::int32_t>(r.thorough_rounds);
  p.put_string(r.alignment);
}

JobRequest unpack_request(mpi::Unpacker& u) {
  JobRequest r;
  r.name = u.get_string();
  r.tenant = u.get_string();
  r.model = u.get_string();
  r.priority = u.get<std::int32_t>();
  r.nranks = u.get<std::int32_t>();
  r.num_threads = u.get<std::int32_t>();
  r.bootstraps = u.get<std::int32_t>();
  r.parsimony_seed = u.get<std::int64_t>();
  r.bootstrap_seed = u.get<std::int64_t>();
  r.checkpoint = u.get<std::uint8_t>() != 0;
  r.fast_rounds = u.get<std::int32_t>();
  r.slow_rounds = u.get<std::int32_t>();
  r.thorough_rounds = u.get<std::int32_t>();
  r.alignment = u.get_string();
  return r;
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kReady:
      return "ready";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

void pack_status(mpi::Packer& p, const JobStatus& s) {
  p.put_string(s.id);
  p.put_string(s.name);
  p.put_string(s.tenant);
  p.put<std::uint8_t>(static_cast<std::uint8_t>(s.state));
  p.put_string(s.error);
  p.put<std::uint8_t>(s.cache_hit ? 1 : 0);
  p.put(s.fraction);
  p.put_string(s.phase);
  p.put(s.best_lnl);
  p.put<std::uint8_t>(s.has_lnl ? 1 : 0);
  p.put(s.queue_s);
  p.put(s.run_s);
}

JobStatus unpack_status(mpi::Unpacker& u) {
  JobStatus s;
  s.id = u.get_string();
  s.name = u.get_string();
  s.tenant = u.get_string();
  s.state = static_cast<JobState>(u.get<std::uint8_t>());
  s.error = u.get_string();
  s.cache_hit = u.get<std::uint8_t>() != 0;
  s.fraction = u.get<double>();
  s.phase = u.get_string();
  s.best_lnl = u.get<double>();
  s.has_lnl = u.get<std::uint8_t>() != 0;
  s.queue_s = u.get<double>();
  s.run_s = u.get<double>();
  return s;
}

void pack_result(mpi::Packer& p, const JobResult& r) {
  p.put_string(r.best_tree_newick);
  p.put(r.best_lnl);
  p.put<std::int32_t>(r.winner_rank);
  p.put_string(r.support_tree_newick);
  p.put<std::int32_t>(r.total_bootstrap_trees);
}

JobResult unpack_result(mpi::Unpacker& u) {
  JobResult r;
  r.best_tree_newick = u.get_string();
  r.best_lnl = u.get<double>();
  r.winner_rank = u.get<std::int32_t>();
  r.support_tree_newick = u.get_string();
  r.total_bootstrap_trees = u.get<std::int32_t>();
  return r;
}

}  // namespace raxh::serve
