// Wire protocol of the raxhd analysis service: length-prefixed binary frames
// over a unix-domain (or TCP) stream socket.
//
//   frame  := u32 length (little-endian, of what follows) | u8 opcode | body
//   body   := opcode-specific, serialized with minimpi's Packer/Unpacker —
//             the same pair the rank mesh uses, so the daemon adds no second
//             serialization idiom.
//
// Requests are SUBMIT/STATUS/STREAM/RESULT/CANCEL/LIST/SHUTDOWN; every
// request is answered by exactly one OK or ERR frame, except STREAM, which
// interposes any number of EVENT frames (progress snapshots) before its
// final OK. The structs here are shared verbatim by the server
// (serve/service.h) and the client library (serve/client.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/comm.h"

namespace raxh::serve {

enum class Op : std::uint8_t {
  // Requests.
  kSubmit = 1,    // JobRequest            -> OK: job id string
  kStatus = 2,    // job id string         -> OK: JobStatus
  kStream = 3,    // job id string         -> EVENT: JobStatus ... OK: JobStatus
  kResult = 4,    // job id string         -> OK: JobResult (ERR if not done)
  kCancel = 5,    // job id string         -> OK: empty
  kList = 6,      // empty                 -> OK: u32 n, n * JobStatus
  kShutdown = 7,  // empty                 -> OK: empty, then server exits
  kMetrics = 8,   // empty                 -> OK: Prometheus exposition text
  // Responses.
  kOk = 128,
  kErr = 129,    // string: human-readable error
  kEvent = 130,  // JobStatus (STREAM progress tick)
};

// A frame too large to be a legitimate request (alignments are the largest
// payload; 256 MiB is far beyond any data set this code targets). Oversized
// lengths are treated as protocol corruption, not as allocations to attempt.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

struct Frame {
  Op op = Op::kErr;
  mpi::Bytes body;
};

// Blocking frame I/O over a connected stream socket, EINTR-safe. read_frame
// returns false on clean EOF at a frame boundary; throws std::runtime_error
// on mid-frame EOF, I/O errors, or an oversized length prefix.
bool read_frame(int fd, Frame& out);
void write_frame(int fd, Op op, const mpi::Bytes& body);

// ---------------------------------------------------------------------------
// SUBMIT payload
// ---------------------------------------------------------------------------

struct JobRequest {
  std::string name;             // client label; the server assigns the id
  std::string tenant;           // optional owner label for metrics attribution
  std::string model = "GTRCAT";  // model config: part of the cache key
  std::string alignment;        // raw PHYLIP bytes (hashed for the cache)
  int priority = 0;             // higher admits/schedules first; FIFO within
  int nranks = 1;               // coarse-grained logical ranks
  int num_threads = 1;          // fine-grained crew width per rank
  int bootstraps = 20;          // -N
  std::int64_t parsimony_seed = 12345;
  std::int64_t bootstrap_seed = 12345;
  bool checkpoint = false;      // persist per-rank bootstrap checkpoints
  // Search intensity overrides, 0 = the stage preset's default. Tests and
  // benchmarks shrink these; production submissions leave them 0.
  int fast_rounds = 0;
  int slow_rounds = 0;
  int thorough_rounds = 0;
};

void pack_request(mpi::Packer& p, const JobRequest& r);
JobRequest unpack_request(mpi::Unpacker& u);

// ---------------------------------------------------------------------------
// STATUS / EVENT payload
// ---------------------------------------------------------------------------

enum class JobState : std::uint8_t {
  kQueued = 0,   // submitted, awaiting admission (parse + compress)
  kReady = 1,    // admitted, awaiting a scheduler slot
  kRunning = 2,
  kDone = 3,
  kFailed = 4,
  kCancelled = 5,
};

[[nodiscard]] const char* job_state_name(JobState s);
[[nodiscard]] inline bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

struct JobStatus {
  std::string id;
  std::string name;
  std::string tenant;  // echoed from the request ("" when unset)
  JobState state = JobState::kQueued;
  std::string error;       // non-empty iff kFailed
  bool cache_hit = false;  // admission reused a cached compressed alignment
  double fraction = 0.0;   // mean progress over the job's logical ranks
  std::string phase;       // rank 0's current stage
  double best_lnl = 0.0;
  bool has_lnl = false;
  double queue_s = 0.0;  // submit -> start (or now, while waiting)
  double run_s = 0.0;    // start -> finish (or now, while running)
};

void pack_status(mpi::Packer& p, const JobStatus& s);
JobStatus unpack_status(mpi::Unpacker& u);

// ---------------------------------------------------------------------------
// RESULT payload
// ---------------------------------------------------------------------------

struct JobResult {
  std::string best_tree_newick;
  double best_lnl = 0.0;
  int winner_rank = 0;
  std::string support_tree_newick;  // bootstrap-annotated best tree
  int total_bootstrap_trees = 0;
};

void pack_result(mpi::Packer& p, const JobResult& r);
JobResult unpack_result(mpi::Unpacker& u);

}  // namespace raxh::serve
