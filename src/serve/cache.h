// Content-addressed cache of pattern-compressed alignments. PHYLIP parsing
// and site-pattern compression are the daemon's admission cost; submissions
// that share an alignment (bootstrap sweeps, seed scans, re-runs) should pay
// it once. The key is (FNV-1a 64 over the raw alignment bytes, model config
// string): seeds and replicate counts are deliberately excluded so two jobs
// differing only in those hit, while a single-byte alignment edit or a model
// change misses. Entries are immutable shared_ptrs — a hit is handed to a
// job while eviction can proceed concurrently.
//
// Eviction is exact LRU under a byte budget: a hit refreshes recency, an
// insert evicts least-recently-used entries until the budget holds again.
// The entry being inserted is never evicted by its own insert, so a single
// alignment larger than the whole budget still serves its submitting job
// (the cache transiently exceeds the budget by that one entry).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bio/patterns.h"

namespace raxh::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t bytes = 0;       // current resident estimate
  std::size_t entries = 0;
  std::size_t capacity = 0;    // byte budget
};

class AlignmentCache {
 public:
  explicit AlignmentCache(std::size_t capacity_bytes);

  // Lookup by raw alignment bytes + model config. A hit refreshes recency
  // and bumps the hit counters (CacheStats and obs); a miss bumps the miss
  // counters and returns null — the caller parses, compresses, and insert()s.
  [[nodiscard]] std::shared_ptr<const PatternAlignment> find(
      const std::string& raw, const std::string& model);

  // Insert a freshly compressed alignment, evicting LRU entries until the
  // byte budget holds. Re-inserting an existing key refreshes its entry.
  void insert(const std::string& raw, const std::string& model,
              std::shared_ptr<const PatternAlignment> patterns);

  [[nodiscard]] CacheStats stats() const;

  // FNV-1a 64 over `raw` — the content half of the cache key, exposed so
  // tests can assert addressing behaviour directly.
  [[nodiscard]] static std::uint64_t fingerprint(const std::string& raw);

  // The byte-budget estimate of one compressed alignment: pattern matrix +
  // weights + site map + names. An estimate, not an exact heap measurement —
  // it only needs to be deterministic and proportional for LRU accounting.
  [[nodiscard]] static std::size_t approx_bytes(const PatternAlignment& p);

 private:
  struct Entry {
    std::string key;  // fingerprint-hex + '\0' + model
    std::shared_ptr<const PatternAlignment> patterns;
    std::size_t bytes = 0;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace raxh::serve
