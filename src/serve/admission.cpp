#include "serve/admission.h"

#include <algorithm>
#include <sstream>

#include "bio/io.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/check.h"

namespace raxh::serve {

AdmissionPipeline::AdmissionPipeline(
    AlignmentCache* cache, int lookahead,
    std::function<void(AdmissionOutcome)> on_admitted)
    : cache_(cache), lookahead_(lookahead), on_admitted_(std::move(on_admitted)) {
  RAXH_EXPECTS(cache != nullptr);
  RAXH_EXPECTS(lookahead >= 1);
  thread_ = std::thread([this] { run(); });
}

AdmissionPipeline::~AdmissionPipeline() { stop(); }

void AdmissionPipeline::enqueue(AdmissionTicket ticket) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(ticket));
  }
  cv_.notify_all();
}

bool AdmissionPipeline::discard(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find_if(
      pending_.begin(), pending_.end(),
      [&](const AdmissionTicket& t) { return t.job_id == job_id; });
  if (it == pending_.end()) return false;
  pending_.erase(it);
  return true;
}

void AdmissionPipeline::job_started() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (admitted_unstarted_ > 0) --admitted_unstarted_;
  }
  cv_.notify_all();
}

void AdmissionPipeline::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void AdmissionPipeline::run() {
  for (;;) {
    AdmissionTicket ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ ||
               (!pending_.empty() && admitted_unstarted_ < lookahead_);
      });
      if (stop_) return;
      // Highest priority wins; the lowest sequence number (earliest SUBMIT)
      // breaks ties — the FIFO half of the contract.
      const auto best = std::min_element(
          pending_.begin(), pending_.end(),
          [](const AdmissionTicket& a, const AdmissionTicket& b) {
            if (a.priority != b.priority) return a.priority > b.priority;
            return a.seq < b.seq;
          });
      ticket = std::move(*best);
      pending_.erase(best);
      ++admitted_unstarted_;
    }

    AdmissionOutcome outcome = process(ticket);
    if (!outcome.error.empty()) {
      // A failed admission never starts, so its lookahead slot frees now.
      std::lock_guard<std::mutex> lock(mu_);
      if (admitted_unstarted_ > 0) --admitted_unstarted_;
    }
    on_admitted_(std::move(outcome));
  }
}

AdmissionOutcome AdmissionPipeline::process(const AdmissionTicket& ticket) {
  AdmissionOutcome out;
  out.job_id = ticket.job_id;
  // Charge the parse/cache-probe work this thread does to the owning job.
  obs::JobScope attribution(ticket.jobobs);
  if (auto cached = cache_->find(*ticket.raw, ticket.model)) {
    // Warm path: the compressed alignment is reused as-is — no parse, no
    // compression. Tests assert this via the obs counters (kAlignParses
    // stays flat while kAlignCacheHits moves).
    out.patterns = std::move(cached);
    out.cache_hit = true;
    return out;
  }
  try {
    std::istringstream in(*ticket.raw);
    const Alignment alignment = read_phylip(in);
    obs::count(obs::Counter::kAlignParses);
    auto patterns = std::make_shared<const PatternAlignment>(
        PatternAlignment::compress(alignment));
    cache_->insert(*ticket.raw, ticket.model, patterns);
    out.patterns = std::move(patterns);
  } catch (const std::exception& e) {
    out.error = std::string("admission failed: ") + e.what();
  }
  return out;
}

}  // namespace raxh::serve
