// Deterministic pseudo-random number generation.
//
// Two generators are provided:
//  * Lcg        — the minimal-standard Lehmer generator used by RAxML's
//                 randum(): reproducibility of bootstrap resampling and
//                 starting-tree randomization depends on its exact sequence.
//  * Xoshiro256 — a fast, high-quality generator for everything that does not
//                 need to match RAxML's stream (data-set simulation, tests).
//
// Seed policy (paper §2.4): MPI rank r derives its seeds from the user seeds
// by adding kRankSeedStride * r, which makes runs reproducible for a fixed
// (seed, rank count) pair. See seeds_for_rank().
#pragma once

#include <cstdint>

namespace raxh {

// Stride between per-rank seeds, as in the paper: "seeds incremented by
// constant amounts (specifically, multiples of 10,000) on the other processes".
inline constexpr std::int64_t kRankSeedStride = 10000;

// Park-Miller minimal standard LCG as implemented by RAxML's randum().
// State and output are kept in the open interval (0, 1).
class Lcg {
 public:
  explicit Lcg(std::int64_t seed);

  // Uniform draw in [0, 1); advances the state.
  double next_double();

  // Uniform integer in [0, n); requires n > 0.
  std::int32_t next_below(std::int32_t n);

  [[nodiscard]] std::int64_t state() const { return seed_; }

 private:
  std::int64_t seed_;
};

// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
// seeded via SplitMix64 so that any 64-bit value is a good seed.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next_u64();
  // Uniform in [0, 1).
  double next_double();
  // Uniform integer in [0, n); requires n > 0.
  std::uint64_t next_below(std::uint64_t n);
  // Standard normal via Box-Muller (uses two draws on every second call).
  double next_gaussian();
  // Exponential with rate 1.
  double next_exponential();

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

// Per-rank seed derivation (paper §2.4).
struct RankSeeds {
  std::int64_t parsimony_seed;  // -p
  std::int64_t bootstrap_seed;  // -x (rapid) or -b (standard)
};

RankSeeds seeds_for_rank(std::int64_t parsimony_seed, std::int64_t bootstrap_seed,
                         int rank);

}  // namespace raxh
