#include "util/prng.h"

#include <cmath>

#include "util/check.h"

namespace raxh {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Lcg::Lcg(std::int64_t seed) : seed_(seed) {
  RAXH_EXPECTS(seed > 0);
}

double Lcg::next_double() {
  // RAxML's randum(): a 32-bit multiplicative congruential generator carried
  // out in 12/12/8-bit limbs (mult = 406*4096 + 1549).
  constexpr std::int64_t kMult0 = 1549;
  constexpr std::int64_t kMult1 = 406;

  const std::int64_t seed0 = seed_ & 4095;
  const std::int64_t seed1 = (seed_ >> 12) & 4095;
  const std::int64_t seed2 = (seed_ >> 24) & 255;

  std::int64_t sum = kMult0 * seed0;
  const std::int64_t new0 = sum & 4095;
  sum >>= 12;
  sum += kMult0 * seed1 + kMult1 * seed0;
  const std::int64_t new1 = sum & 4095;
  sum >>= 12;
  sum += kMult0 * seed2 + kMult1 * seed1;
  const std::int64_t new2 = sum & 255;

  seed_ = (new2 << 24) | (new1 << 12) | new0;
  if (seed_ == 0) seed_ = 1;  // the zero state is absorbing; step off it
  return 0.00390625 *
         (static_cast<double>(new2) +
          0.000244140625 * (static_cast<double>(new1) +
                            0.000244140625 * static_cast<double>(new0)));
}

std::int32_t Lcg::next_below(std::int32_t n) {
  RAXH_EXPECTS(n > 0);
  auto v = static_cast<std::int32_t>(next_double() * n);
  return v >= n ? n - 1 : v;
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t n) {
  RAXH_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Xoshiro256::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Xoshiro256::next_exponential() {
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u);
}

RankSeeds seeds_for_rank(std::int64_t parsimony_seed,
                         std::int64_t bootstrap_seed, int rank) {
  RAXH_EXPECTS(parsimony_seed > 0);
  RAXH_EXPECTS(bootstrap_seed > 0);
  RAXH_EXPECTS(rank >= 0);
  return RankSeeds{parsimony_seed + kRankSeedStride * rank,
                   bootstrap_seed + kRankSeedStride * rank};
}

}  // namespace raxh
