#include "util/cli.h"

#include <cstdlib>

namespace raxh {

CliParser::CliParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() >= 2 && arg[0] == '-' &&
        !(arg.size() > 1 && (std::isdigit(arg[1]) || arg[1] == '.'))) {
      const std::string flag = arg.substr(1);
      // GNU-style inline value: "--flag=value" (or "-flag=value").
      const std::size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        options_[flag.substr(0, eq)] = flag.substr(eq + 1);
        continue;
      }
      // A following token that is not itself a flag is this option's value.
      if (i + 1 < argc) {
        const std::string next = argv[i + 1];
        const bool next_is_flag =
            next.size() >= 2 && next[0] == '-' &&
            !(std::isdigit(next[1]) || next[1] == '.');
        if (!next_is_flag) {
          options_[flag] = next;
          ++i;
          continue;
        }
      }
      options_[flag] = "";
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliParser::has(const std::string& flag) const {
  return options_.count(flag) != 0;
}

std::optional<std::string> CliParser::value(const std::string& flag) const {
  auto it = options_.find(flag);
  if (it == options_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

std::string CliParser::value_or(const std::string& flag,
                                std::string fallback) const {
  auto v = value(flag);
  return v ? *v : std::move(fallback);
}

long long CliParser::int_or(const std::string& flag, long long fallback) const {
  auto v = value(flag);
  return v ? std::strtoll(v->c_str(), nullptr, 10) : fallback;
}

double CliParser::double_or(const std::string& flag, double fallback) const {
  auto v = value(flag);
  return v ? std::strtod(v->c_str(), nullptr) : fallback;
}

}  // namespace raxh
