// A small command-line parser modelled on RAxML's option style: single-dash
// short options, each taking at most one value (e.g. "-N 100 -p 12345 -f a").
// Used by the example executables; not a general-purpose getopt clone.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace raxh {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  // True if "-flag" occurred (with or without a value).
  [[nodiscard]] bool has(const std::string& flag) const;

  // Value of "-flag value"; nullopt if the flag is absent or valueless.
  [[nodiscard]] std::optional<std::string> value(const std::string& flag) const;

  [[nodiscard]] std::string value_or(const std::string& flag,
                                     std::string fallback) const;
  [[nodiscard]] long long int_or(const std::string& flag,
                                 long long fallback) const;
  [[nodiscard]] double double_or(const std::string& flag,
                                 double fallback) const;

  // Arguments that did not belong to any flag, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;  // flag -> value ("" if none)
  std::vector<std::string> positional_;
};

}  // namespace raxh
