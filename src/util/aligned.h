// Cache-line-aligned storage for the likelihood engine's CLV buffers. SIMD
// kernels want 64-byte-aligned bases so a block of 8 doubles is one aligned
// cache line (and one AVX-512 register load); std::vector's default allocator
// only guarantees alignof(double).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace raxh {

inline constexpr std::size_t kCacheLineBytes = 64;

// Minimal C++17 allocator returning 64-byte-aligned blocks. Equality is
// stateless, so containers can swap/move freely.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    // aligned_alloc requires the size to be a multiple of the alignment.
    std::size_t bytes = n * sizeof(T);
    bytes = (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

// 64-byte-aligned vector: drop-in std::vector with aligned backing store.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace raxh
