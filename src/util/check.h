// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (GSL). Violations are programming errors and abort with a
// message; they are never used for recoverable user-input validation.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace raxh {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[raxh] %s violated: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace raxh

#define RAXH_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                        \
          : ::raxh::contract_failure("precondition", #cond, __FILE__, __LINE__))

#define RAXH_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                         \
          : ::raxh::contract_failure("postcondition", #cond, __FILE__, __LINE__))

#define RAXH_ASSERT(cond)                                              \
  ((cond) ? static_cast<void>(0)                                       \
          : ::raxh::contract_failure("invariant", #cond, __FILE__, __LINE__))
