// Minimal leveled logger. Coarse-grained ranks prefix their messages with the
// rank id, and fine-grained crew threads add a monotonic timestamp and a
// thread id, so interleaved multi-process / multi-thread output stays
// attributable. When neither rank nor thread is set the prefix stays the
// bare "[LVL] " form.
#pragma once

#include <cstdarg>
#include <optional>
#include <string>

namespace raxh {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Parse a --log-level value ("debug" | "info" | "warn" | "error");
// nullopt on anything else.
std::optional<LogLevel> parse_log_level(const std::string& name);

class Logger {
 public:
  // Process-wide logger. Thread-safe for concurrent log calls.
  static Logger& instance();

  void set_level(LogLevel level);
  void set_rank(int rank);    // -1 (default) omits the rank prefix
  void set_thread(int tid);   // thread-local; -1 (default) omits the tid
  [[nodiscard]] LogLevel level() const;

  void log(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

 private:
  Logger() = default;
};

// The prefix for a log line: "[LVL] " when rank and tid are both unset,
// otherwise "[LVL +SECS.mmms rR tT] " with the rank/thread parts present
// only when set. Exposed for tests.
std::string format_log_prefix(LogLevel level, int rank, int tid,
                              double monotonic_secs);

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace raxh
