// Minimal leveled logger. Coarse-grained ranks prefix their messages with the
// rank id so interleaved multi-process output stays attributable.
#pragma once

#include <cstdarg>
#include <string>

namespace raxh {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  // Process-wide logger. Thread-safe for concurrent log calls.
  static Logger& instance();

  void set_level(LogLevel level);
  void set_rank(int rank);  // -1 (default) omits the rank prefix
  [[nodiscard]] LogLevel level() const;

  void log(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

 private:
  Logger() = default;
};

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace raxh
