#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace raxh {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_rank{-1};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DBG";
    case LogLevel::kInfo:
      return "INF";
    case LogLevel::kWarn:
      return "WRN";
    case LogLevel::kError:
      return "ERR";
  }
  return "???";
}

void vlog(LogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  const int rank = g_rank.load(std::memory_order_relaxed);
  if (rank >= 0) {
    std::fprintf(stderr, "[%s r%d] ", level_tag(level), rank);
  } else {
    std::fprintf(stderr, "[%s] ", level_tag(level));
  }
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::set_rank(int rank) {
  g_rank.store(rank, std::memory_order_relaxed);
}

LogLevel Logger::level() const {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::log(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

#define RAXH_DEFINE_LOG_FN(name, level)       \
  void name(const char* fmt, ...) {           \
    va_list args;                             \
    va_start(args, fmt);                      \
    vlog(level, fmt, args);                   \
    va_end(args);                             \
  }

RAXH_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
RAXH_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
RAXH_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
RAXH_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef RAXH_DEFINE_LOG_FN

}  // namespace raxh
