#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace raxh {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_rank{-1};
thread_local int t_tid = -1;
std::mutex g_mutex;

// Monotonic epoch fixed at load time, before any fork — forked ranks inherit
// it, so cross-rank timestamps are comparable.
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

double monotonic_secs() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_epoch)
      .count();
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DBG";
    case LogLevel::kInfo:
      return "INF";
    case LogLevel::kWarn:
      return "WRN";
    case LogLevel::kError:
      return "ERR";
  }
  return "???";
}

void vlog(LogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  const std::string prefix =
      format_log_prefix(level, g_rank.load(std::memory_order_relaxed), t_tid,
                        monotonic_secs());
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fputs(prefix.c_str(), stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

std::string format_log_prefix(LogLevel level, int rank, int tid,
                              double monotonic) {
  char buf[64];
  if (rank < 0 && tid < 0) {
    // Historical single-process, single-thread format, kept stable.
    std::snprintf(buf, sizeof(buf), "[%s] ", level_tag(level));
    return buf;
  }
  std::string out;
  std::snprintf(buf, sizeof(buf), "[%s +%.3fs", level_tag(level), monotonic);
  out = buf;
  if (rank >= 0) {
    std::snprintf(buf, sizeof(buf), " r%d", rank);
    out += buf;
  }
  if (tid >= 0) {
    std::snprintf(buf, sizeof(buf), " t%d", tid);
    out += buf;
  }
  out += "] ";
  return out;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::set_rank(int rank) {
  g_rank.store(rank, std::memory_order_relaxed);
}

void Logger::set_thread(int tid) { t_tid = tid; }

LogLevel Logger::level() const {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::log(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

#define RAXH_DEFINE_LOG_FN(name, level)       \
  void name(const char* fmt, ...) {           \
    va_list args;                             \
    va_start(args, fmt);                      \
    vlog(level, fmt, args);                   \
    va_end(args);                             \
  }

RAXH_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
RAXH_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
RAXH_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
RAXH_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef RAXH_DEFINE_LOG_FN

}  // namespace raxh
