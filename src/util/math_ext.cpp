#include "util/math_ext.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace raxh {

namespace {

// std::lgamma writes the process-global `signgam`, which races when thread
// ranks fit GAMMA rates concurrently. Every argument here is positive (the
// sign is always +1), so the re-entrant lgamma_r (glibc/BSD extension) is a
// drop-in; fall back to plain lgamma elsewhere.
double lgamma_positive(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double incomplete_gamma(double x, double alpha) {
  RAXH_EXPECTS(alpha > 0.0);
  RAXH_EXPECTS(x >= 0.0);
  if (x == 0.0) return 0.0;

  const double lga = lgamma_positive(alpha);
  if (x < alpha + 1.0) {
    // Series expansion: P(a,x) = x^a e^-x / Gamma(a) * sum x^n / (a)_n.
    double term = 1.0 / alpha;
    double sum = term;
    double a = alpha;
    for (int n = 0; n < 500; ++n) {
      a += 1.0;
      term *= x / a;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + alpha * std::log(x) - lga);
  }
  // Continued fraction (modified Lentz) for Q(a,x); P = 1 - Q.
  const double tiny = 1e-300;
  double b = x + 1.0 - alpha;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - alpha);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + alpha * std::log(x) - lga) * h;
  return 1.0 - q;
}

double point_normal(double p) {
  // Odeh & Evans (1974) rational approximation, as used in DiscreteGamma.
  RAXH_EXPECTS(p > 0.0 && p < 1.0);
  constexpr double a0 = -0.322232431088, a1 = -1.0, a2 = -0.342242088547,
                   a3 = -0.0204231210245, a4 = -0.453642210148e-4;
  constexpr double b0 = 0.0993484626060, b1 = 0.588581570495,
                   b2 = 0.531103462366, b3 = 0.103537752850,
                   b4 = 0.38560700634e-2;
  const bool upper = p > 0.5;
  const double pp = upper ? 1.0 - p : p;
  if (pp < 1e-20) return upper ? 10.0 : -10.0;
  const double y = std::sqrt(std::log(1.0 / (pp * pp)));
  const double z =
      y + ((((y * a4 + a3) * y + a2) * y + a1) * y + a0) /
              ((((y * b4 + b3) * y + b2) * y + b1) * y + b0);
  return upper ? z : -z;
}

double point_chi2(double p, double v) {
  // Best & Roberts (1975) AS91, the standard construction for DiscreteGamma.
  RAXH_EXPECTS(p > 0.0 && p < 1.0);
  RAXH_EXPECTS(v > 0.0);
  constexpr double e = 0.5e-6, aa = 0.6931471805;
  const double xx = 0.5 * v;
  const double c = xx - 1.0;
  const double g = lgamma_positive(xx);
  double ch = 0.0;

  if (v < -1.24 * std::log(p)) {
    ch = std::pow(p * xx * std::exp(g + xx * aa), 1.0 / xx);
    if (ch - e < 0.0) return ch;
  } else if (v > 0.32) {
    const double x = point_normal(p);
    const double p1 = 0.222222 / v;
    ch = v * std::pow(x * std::sqrt(p1) + 1.0 - p1, 3.0);
    if (ch > 2.2 * v + 6.0)
      ch = -2.0 * (std::log(1.0 - p) - c * std::log(0.5 * ch) + g);
  } else {
    ch = 0.4;
    const double a = std::log(1.0 - p);
    for (int i = 0; i < 200; ++i) {
      const double q0 = ch;
      const double p1 = 1.0 + ch * (4.67 + ch);
      const double p2 = ch * (6.73 + ch * (6.66 + ch));
      const double t =
          -0.5 + (4.67 + 2.0 * ch) / p1 - (6.73 + ch * (13.32 + 3.0 * ch)) / p2;
      ch -= (1.0 - std::exp(a + g + 0.5 * ch + c * aa) * p2 / p1) / t;
      if (std::fabs(q0 / ch - 1.0) <= 0.01) break;
    }
  }

  for (int i = 0; i < 200; ++i) {
    const double q0 = ch;
    const double p1 = 0.5 * ch;
    const double p2 = p - incomplete_gamma(p1, xx);
    const double t = p2 * std::exp(xx * aa + g + p1 - c * std::log(ch));
    const double b = t / ch;
    const double a = 0.5 * t - b * c;
    const double s1 =
        (210.0 + a * (140.0 + a * (105.0 + a * (84.0 + a * (70.0 + 60.0 * a))))) /
        420.0;
    const double s2 =
        (420.0 + a * (735.0 + a * (966.0 + a * (1141.0 + 1278.0 * a)))) / 2520.0;
    const double s3 = (210.0 + a * (462.0 + a * (707.0 + 932.0 * a))) / 2520.0;
    const double s4 =
        (252.0 + a * (672.0 + 1182.0 * a) + c * (294.0 + a * (889.0 + 1740.0 * a))) /
        5040.0;
    const double s5 = (84.0 + 264.0 * a + c * (175.0 + 606.0 * a)) / 2520.0;
    const double s6 = (120.0 + c * (346.0 + 127.0 * c)) / 5040.0;
    ch += t * (1.0 + 0.5 * t * s1 -
               b * c *
                   (s1 - b * (s2 - b * (s3 - b * (s4 - b * (s5 - b * s6))))));
    if (std::fabs(q0 / ch - 1.0) <= e) break;
  }
  return ch;
}

std::vector<double> discrete_gamma_rates(double alpha, int ncat) {
  RAXH_EXPECTS(alpha > 0.0);
  RAXH_EXPECTS(ncat >= 1);
  std::vector<double> rates(static_cast<std::size_t>(ncat), 1.0);
  if (ncat == 1) return rates;

  const double factor = ncat;  // alpha/beta * K with beta == alpha
  std::vector<double> cut(static_cast<std::size_t>(ncat));
  // Category boundaries as chi2 quantiles (PointGamma(p, a, b) =
  // PointChi2(p, 2a) / (2b) with b = alpha), then mean rate per category via
  // the incomplete gamma of alpha+1 (Yang 1994).
  for (int i = 1; i < ncat; ++i) {
    const double q = point_chi2(static_cast<double>(i) / ncat, 2.0 * alpha);
    cut[static_cast<std::size_t>(i - 1)] = q / (2.0 * alpha);
  }
  std::vector<double> upper_p(static_cast<std::size_t>(ncat - 1));
  for (int i = 0; i < ncat - 1; ++i)
    upper_p[static_cast<std::size_t>(i)] =
        incomplete_gamma(cut[static_cast<std::size_t>(i)] * alpha, alpha + 1.0);

  for (int i = 0; i < ncat; ++i) {
    const double lo = (i == 0) ? 0.0 : upper_p[static_cast<std::size_t>(i - 1)];
    const double hi =
        (i == ncat - 1) ? 1.0 : upper_p[static_cast<std::size_t>(i)];
    rates[static_cast<std::size_t>(i)] = (hi - lo) * factor;
  }
  // Normalize to mean exactly 1 to kill residual quadrature error.
  double mean = 0.0;
  for (double r : rates) mean += r;
  mean /= ncat;
  for (double& r : rates) r /= mean;
  return rates;
}

double kahan_sum(std::span<const double> values) {
  double sum = 0.0, comp = 0.0;
  for (double v : values) {
    const double t = sum + v;
    if (std::fabs(sum) >= std::fabs(v)) {
      comp += (sum - t) + v;
    } else {
      comp += (v - t) + sum;
    }
    sum = t;
  }
  return sum + comp;
}

double log_sum_exp(std::span<const double> values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - m);
  return m + std::log(sum);
}

}  // namespace raxh
