// Wall-clock timing helpers used by the stage instrumentation of the
// comprehensive analysis (Figs. 3-4 report per-stage wall times).
#pragma once

#include <chrono>
#include <string>
#include <vector>

namespace raxh {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates named phase durations; phases may repeat and accumulate.
class PhaseTimer {
 public:
  void start(std::string phase) {
    flush();
    current_ = std::move(phase);
    timer_.reset();
    running_ = true;
  }

  void stop() { flush(); }

  [[nodiscard]] double total(const std::string& phase) const {
    for (const auto& [name, secs] : phases_)
      if (name == phase) return secs;
    return 0.0;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& phases()
      const {
    return phases_;
  }

 private:
  void flush() {
    if (!running_) return;
    running_ = false;
    const double elapsed = timer_.seconds();
    for (auto& [name, secs] : phases_) {
      if (name == current_) {
        secs += elapsed;
        return;
      }
    }
    phases_.emplace_back(current_, elapsed);
  }

  WallTimer timer_;
  std::string current_;
  bool running_ = false;
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace raxh
