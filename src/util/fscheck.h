// Pre-flight filesystem probes. A telemetry or artifact path that turns out
// to be unwritable after hours of tree search (or days of daemon uptime) is
// silent data loss; both CLIs (raxh, raxhd) probe every output location
// before any work starts and fail fast with the offending flag named.
#pragma once

#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

namespace raxh {

// True when files can be created inside `dir` (created first if missing).
// Probes by actually writing: permission bits lie on exotic mounts.
inline bool dir_accepts_files(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // fine if it already exists
  const std::filesystem::path probe = dir / ".raxh_write_probe";
  {
    std::ofstream f(probe);
    if (!f) return false;
  }
  std::filesystem::remove(probe, ec);
  return true;
}

// True when a file at `path` could be created: its parent directory (the
// current directory for a bare filename) accepts files.
inline bool file_path_writable(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  return dir_accepts_files(parent);
}

}  // namespace raxh
