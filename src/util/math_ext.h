// Special functions needed by the GAMMA rate-heterogeneity model and by the
// statistical tests. The incomplete-gamma / quantile routines follow the
// classical algorithms used throughout phylogenetics (Yang's DiscreteGamma
// construction), implemented from the published formulas.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace raxh {

// Regularized lower incomplete gamma P(alpha, x); alpha > 0, x >= 0.
double incomplete_gamma(double x, double alpha);

// Quantile of the standard normal distribution; 0 < p < 1.
double point_normal(double p);

// Quantile of the chi-squared distribution with v degrees of freedom.
double point_chi2(double p, double v);

// Mean rates of ncat equal-probability categories of a Gamma(alpha, alpha)
// distribution (mean 1). This is the standard discrete-GAMMA construction.
std::vector<double> discrete_gamma_rates(double alpha, int ncat);

// Numerically careful summation (Kahan-Babuska) for log-likelihood totals.
double kahan_sum(std::span<const double> values);

// log(sum(exp(x_i))) without overflow.
double log_sum_exp(std::span<const double> values);

}  // namespace raxh
