// Cooperative job cancellation. A cancel token is one atomic flag owned by
// whoever controls the job's lifecycle (the serving layer's job table, a
// test); the analysis code polls it at natural unit boundaries — between
// bootstrap replicates, between SPR rounds — and unwinds with JobCancelled.
//
// JobCancelled deliberately derives from std::exception (unlike mpi::
// RankDeath): cancellation is a *requested* outcome that generic cleanup may
// observe, not a fault that must escape every handler. Harnesses that run a
// job's ranks must catch it at the rank boundary (src/serve does) so it
// never reaches minimpi's abort-on-escape backstop.
#pragma once

#include <atomic>
#include <stdexcept>

namespace raxh {

struct JobCancelled : std::runtime_error {
  JobCancelled() : std::runtime_error("job cancelled") {}
};

// Null-tolerant flag check: no token means "never cancelled".
inline bool cancel_requested(const std::atomic<bool>* token) {
  return token != nullptr && token->load(std::memory_order_relaxed);
}

inline void throw_if_cancelled(const std::atomic<bool>* token) {
  if (cancel_requested(token)) throw JobCancelled();
}

}  // namespace raxh
