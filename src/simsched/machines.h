// The paper's four benchmark clusters (Table 4) as performance-model
// parameters. Per-core speeds are relative to Abe's Clovertown; the
// fine-grained parameters shape each machine's thread-scaling curve:
//
//  * mem_contention  — per-extra-thread slowdown of the pattern loops
//                      (bus-based Clovertown is worst, Nehalem best);
//  * cache_boost     — superlinear speedup from aggregate cache growth at
//                      low thread counts (Fig. 8's rising speed-per-core on
//                      Abe/Ranger/Triton; Dash's larger caches show none);
//  * sync_cost       — per-extra-thread barrier/sync overhead, expressed in
//                      pattern-equivalents per kernel invocation.
#pragma once

#include <string>
#include <vector>

namespace raxh::sim {

struct Machine {
  std::string name;
  std::string processor;
  double clock_ghz;
  int cores_per_node;
  double core_speed;      // relative serial speed (Abe = 1.0)
  double mem_contention;  // beta: time factor 1 + beta*(T-1)
  double cache_boost;     // superlinear low-T boost amplitude
  double sync_cost;       // gamma: pattern-equivalents per extra thread
};

// Table 4, in the paper's order.
const std::vector<Machine>& paper_machines();
const Machine& machine_by_name(const std::string& name);

}  // namespace raxh::sim
