#include "simsched/sweeps.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.h"

namespace raxh::sim {

double run_seconds(const PerfModel& model, int processes, int threads,
                   int bootstraps) {
  RunConfig config;
  config.processes = processes;
  config.threads = threads;
  config.bootstraps = bootstraps;
  // p == 1 runs use the Pthreads-only (or serial) binary, avoiding the MPI
  // overhead, exactly as the paper's measurements did (§5.1).
  config.mpi_code_path = processes > 1;
  return model.total_time(config);
}

BestRun best_run(const PerfModel& model, int cores, int bootstraps) {
  RAXH_EXPECTS(cores >= 1);
  BestRun best;
  best.seconds = -1.0;
  for (int threads = 1;
       threads <= std::min(cores, model.machine().cores_per_node); ++threads) {
    if (cores % threads != 0) continue;
    // Threads per process must pack into whole nodes (the paper's clusters
    // charge whole nodes; fractional-node thread counts are not used).
    if (model.machine().cores_per_node % threads != 0) continue;
    const int processes = cores / threads;
    const double seconds = run_seconds(model, processes, threads, bootstraps);
    if (best.seconds < 0.0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.config = RunConfig{processes, threads, bootstraps, processes > 1};
    }
  }
  RAXH_ASSERT(best.seconds > 0.0);
  best.speedup = model.serial_time(bootstraps) / best.seconds;
  best.efficiency = best.speedup / cores;
  return best;
}

Series speedup_series(const PerfModel& model, int threads, int max_cores,
                      int bootstraps, bool efficiency) {
  Series out;
  out.label = std::to_string(threads) + " threads";
  const double serial = model.serial_time(bootstraps);
  for (int processes = 1; processes * threads <= max_cores; ++processes) {
    const int cores = processes * threads;
    const double seconds = run_seconds(model, processes, threads, bootstraps);
    const double value = serial / seconds / (efficiency ? cores : 1);
    out.points.push_back(SeriesPoint{cores, value});
  }
  return out;
}

Series single_process_series(const PerfModel& model, int max_threads,
                             int bootstraps, bool efficiency) {
  Series out;
  out.label = "1 process";
  const double serial = model.serial_time(bootstraps);
  const int limit = std::min(max_threads, model.machine().cores_per_node);
  for (int threads = 1; threads <= limit; ++threads) {
    const double seconds = run_seconds(model, 1, threads, bootstraps);
    const double value = serial / seconds / (efficiency ? threads : 1);
    out.points.push_back(SeriesPoint{threads, value});
  }
  return out;
}

std::string series_csv(const std::vector<Series>& series) {
  // Union of core counts, ascending.
  std::map<int, std::vector<std::optional<double>>> rows;
  for (std::size_t s = 0; s < series.size(); ++s)
    for (const auto& pt : series[s].points) {
      auto& row = rows[pt.cores];
      row.resize(series.size());
      row[s] = pt.value;
    }

  std::ostringstream out;
  out << "cores";
  for (const auto& s : series) out << ',' << s.label;
  out << '\n';
  for (const auto& [cores, row] : rows) {
    out << cores;
    for (std::size_t s = 0; s < series.size(); ++s) {
      out << ',';
      if (s < row.size() && row[s]) out << *row[s];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace raxh::sim
