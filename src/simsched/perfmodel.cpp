#include "simsched/perfmodel.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace raxh::sim {

namespace {

// Stage cost ratios relative to one rapid-bootstrap search. The thorough
// multiplier's pattern/taxon term reproduces the paper's §5.1 observation
// that the thorough fraction is much larger for the 19,436-pattern set.
constexpr double kFastWeight = 2.5;
constexpr double kSlowWeight = 6.0;
constexpr double kThoroughBase = 10.0;
constexpr double kThoroughShapeScale = 30.0;  // patterns-per-taxon scale

// Serial (non-pattern-parallel) work per search unit, in pattern units.
constexpr double kSerialPatterns = 45.0;

// Load imbalance between unbarriered ranks: the slowest of p ranks running u
// units each exceeds the mean by roughly imb/sqrt(u).
constexpr double kImbalance = 0.10;

// Single-process MPI overhead fraction for tiny data (paper: >10% for the
// smallest sets), decaying with pattern count.
double mpi_tax(std::size_t patterns) {
  return 0.12 * 400.0 / (400.0 + static_cast<double>(patterns));
}

double imbalance_factor(int processes, int units_per_rank) {
  if (processes <= 1) return 1.0;
  return 1.0 + kImbalance / std::sqrt(static_cast<double>(units_per_rank));
}

}  // namespace

DataShape paper_shape(std::size_t patterns) {
  switch (patterns) {
    case 348: return DataShape{354, 348};
    case 1130: return DataShape{150, 1130};
    case 1846: return DataShape{218, 1846};
    case 7429: return DataShape{404, 7429};
    case 19436: return DataShape{125, 19436};
    default: RAXH_EXPECTS(false && "not a paper data set"); return {};
  }
}

double serial_anchor_seconds(const Machine& machine, const DataShape& shape) {
  // Table 5, 1c column (Dash rows; Triton PDAF row for the largest set).
  double dash_seconds = 0.0;
  switch (shape.patterns) {
    case 348: dash_seconds = 1980; break;
    case 1130: dash_seconds = 2325; break;
    case 1846: dash_seconds = 9630; break;
    case 7429: dash_seconds = 72866; break;
    case 19436: dash_seconds = 22970; break;
    default:
      // Non-paper data: rough proportionality to taxa * patterns against the
      // 1,846-pattern anchor.
      dash_seconds = 9630.0 *
                     (static_cast<double>(shape.taxa) * shape.patterns) /
                     (218.0 * 1846.0);
  }
  if (machine.name == "Triton PDAF" && shape.patterns == 19436)
    return 32627;  // measured in Table 5
  const double dash_speed = machine_by_name("Dash").core_speed;
  return dash_seconds * dash_speed / machine.core_speed;
}

PerfModel::PerfModel(const Machine& machine, const DataShape& shape)
    : machine_(machine), shape_(shape) {
  RAXH_EXPECTS(shape.taxa >= 4);
  RAXH_EXPECTS(shape.patterns >= 1);
  anchor_seconds_ = serial_anchor_seconds(machine, shape);
}

void PerfModel::set_serial_anchor(double seconds_100_bootstraps) {
  RAXH_EXPECTS(seconds_100_bootstraps > 0.0);
  anchor_seconds_ = seconds_100_bootstraps;
}

double PerfModel::stage_weight(Stage stage) const {
  switch (stage) {
    case Stage::kBootstrap:
      return 1.0;
    case Stage::kFast:
      return kFastWeight;
    case Stage::kSlow:
      return kSlowWeight;
    case Stage::kThorough:
      return kThoroughBase *
             (1.0 + static_cast<double>(shape_.patterns) /
                        static_cast<double>(shape_.taxa) /
                        kThoroughShapeScale);
  }
  return 1.0;
}

double PerfModel::thread_factor(int threads) const {
  RAXH_EXPECTS(threads >= 1);
  RAXH_EXPECTS(threads <= machine_.cores_per_node);
  const auto t = static_cast<double>(threads);
  const auto p = static_cast<double>(shape_.patterns);

  // Parallelizable pattern loops: contended memory bandwidth, offset by the
  // aggregate-cache boost at low thread counts.
  const double contention = 1.0 + machine_.mem_contention * (t - 1.0);
  const double cache =
      1.0 + machine_.cache_boost * (1.0 - std::exp(-(t - 1.0) / 2.0));
  const double parallel_part = p * contention / (t * cache);

  // Serial bookkeeping plus per-thread synchronization.
  const double serial_part = kSerialPatterns;
  const double sync_part = machine_.sync_cost * (t - 1.0);

  const double one_thread = p + kSerialPatterns;
  return (parallel_part + serial_part + sync_part) / one_thread;
}

double PerfModel::serial_time(int bootstraps) const {
  RAXH_EXPECTS(bootstraps >= 1);
  const HybridSchedule s = make_schedule(bootstraps, 1);
  const double units_100 =
      100.0 * stage_weight(Stage::kBootstrap) +
      20.0 * stage_weight(Stage::kFast) + 10.0 * stage_weight(Stage::kSlow) +
      1.0 * stage_weight(Stage::kThorough);
  const double units =
      s.per_rank.bootstraps * stage_weight(Stage::kBootstrap) +
      s.per_rank.fast_searches * stage_weight(Stage::kFast) +
      s.per_rank.slow_searches * stage_weight(Stage::kSlow) +
      s.per_rank.thorough_searches * stage_weight(Stage::kThorough);
  return anchor_seconds_ * units / units_100;
}

double PerfModel::unit_time(Stage stage, int threads) const {
  const double units_100 =
      100.0 * stage_weight(Stage::kBootstrap) +
      20.0 * stage_weight(Stage::kFast) + 10.0 * stage_weight(Stage::kSlow) +
      1.0 * stage_weight(Stage::kThorough);
  const double serial_unit = anchor_seconds_ * stage_weight(stage) / units_100;
  return serial_unit * thread_factor(threads);
}

StageBreakdown PerfModel::run_breakdown(const RunConfig& config) const {
  RAXH_EXPECTS(config.processes >= 1);
  RAXH_EXPECTS(config.threads >= 1);
  const HybridSchedule s = make_schedule(config.bootstraps, config.processes);

  StageBreakdown out;
  out.bootstrap = s.per_rank.bootstraps *
                  unit_time(Stage::kBootstrap, config.threads) *
                  imbalance_factor(config.processes, s.per_rank.bootstraps);
  out.fast = s.per_rank.fast_searches *
             unit_time(Stage::kFast, config.threads) *
             imbalance_factor(config.processes, s.per_rank.fast_searches);
  out.slow = s.per_rank.slow_searches *
             unit_time(Stage::kSlow, config.threads) *
             imbalance_factor(config.processes, s.per_rank.slow_searches);
  out.thorough = s.per_rank.thorough_searches *
                 unit_time(Stage::kThorough, config.threads) *
                 imbalance_factor(config.processes, 1);

  if (config.mpi_code_path) {
    const double tax = 1.0 + mpi_tax(shape_.patterns);
    out.bootstrap *= tax;
    out.fast *= tax;
    out.slow *= tax;
    out.thorough *= tax;
  }
  return out;
}

}  // namespace raxh::sim
