#include "simsched/machines.h"

#include "util/check.h"

namespace raxh::sim {

const std::vector<Machine>& paper_machines() {
  // core_speed calibration: Dash/Abe from the paper's observation that Dash
  // is fastest per core up to 16 cores (Nehalem vs Clovertown, ~1.4x);
  // Triton from the two measured serial times of the 19,436-pattern set
  // (22,970 s on Dash vs 32,627 s on Triton -> 1.40 * 22970/32627 = 0.985);
  // Ranger slightly below Abe-class per-core (2.3 GHz Barcelona).
  static const std::vector<Machine> machines = {
      {"Abe", "2.33-GHz Intel Clovertown", 2.33, 8, 1.00, 0.050, 0.22, 12.0},
      {"Dash", "2.4-GHz Intel Nehalem", 2.40, 8, 1.40, 0.012, 0.00, 7.0},
      {"Ranger", "2.3-GHz AMD Barcelona", 2.30, 16, 0.95, 0.012, 0.28, 8.0},
      {"Triton PDAF", "2.5-GHz AMD Shanghai", 2.50, 32, 0.985, 0.004, 0.28,
       5.0},
  };
  return machines;
}

const Machine& machine_by_name(const std::string& name) {
  for (const auto& m : paper_machines())
    if (m.name == name) return m;
  RAXH_EXPECTS(false && "unknown machine");
  return paper_machines().front();  // unreachable
}

}  // namespace raxh::sim
