// Sweep helpers over the performance model: pick the fastest (processes,
// threads) split of a core budget, and generate the series the paper's
// figures plot.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "simsched/perfmodel.h"

namespace raxh::sim {

struct BestRun {
  RunConfig config;
  double seconds = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
};

// Fastest configuration using exactly `cores` cores (threads <= cores/node,
// processes * threads == cores). Runs with processes == 1 use the
// Pthreads-only code path (no MPI tax), matching the paper's methodology;
// cores == 1 is the serial code.
BestRun best_run(const PerfModel& model, int cores, int bootstraps);

// Time of a specific (p, T); p == 1 uses the Pthreads-only code path and
// T == 1 (with p > 1) the MPI-only code, as in the paper's Fig. 1.
double run_seconds(const PerfModel& model, int processes, int threads,
                   int bootstraps);

// A point series for the figures.
struct SeriesPoint {
  int cores;
  double value;
};
struct Series {
  std::string label;
  std::vector<SeriesPoint> points;
};

// Fig. 1/2-style series: speedup (or efficiency) vs. cores at a fixed thread
// count. Core counts are multiples of `threads`.
Series speedup_series(const PerfModel& model, int threads, int max_cores,
                      int bootstraps, bool efficiency);

// Fig. 1's "1 process" series: Pthreads-only, cores = threads.
Series single_process_series(const PerfModel& model, int max_threads,
                             int bootstraps, bool efficiency);

// Render a list of series as CSV (header: cores,<label1>,<label2>,...).
std::string series_csv(const std::vector<Series>& series);

}  // namespace raxh::sim
