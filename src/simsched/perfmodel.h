// Analytical performance model of the hybrid comprehensive analysis.
//
// Structure (everything the paper's evaluation hinges on is mechanistic, not
// fitted): per-rank work counts come from the real Table 2 schedule law;
// stage 4 gets no MPI speedup because every rank runs exactly one thorough
// search; fine-grained speedup follows a thread-efficiency curve whose
// parallel fraction grows with the pattern count.
//
// Calibration (documented in EXPERIMENTS.md): per-(machine, data set) serial
// anchor times are taken from the paper's own 1-core measurements (Table 5)
// since the 2009 hardware cannot be re-measured; stage cost ratios are fixed
// constants except the thorough-search weight, which grows with
// patterns/taxon (the paper's §5.1 observation for the 19,436-pattern set).
#pragma once

#include "core/schedule.h"
#include "simsched/machines.h"

namespace raxh::sim {

struct DataShape {
  std::size_t taxa = 0;
  std::size_t patterns = 0;
};

enum class Stage { kBootstrap, kFast, kSlow, kThorough };

struct StageBreakdown {
  double bootstrap = 0.0;
  double fast = 0.0;
  double slow = 0.0;
  double thorough = 0.0;
  [[nodiscard]] double total() const {
    return bootstrap + fast + slow + thorough;
  }
};

struct RunConfig {
  int processes = 1;
  int threads = 1;  // per process
  int bootstraps = 100;
  // True for runs using the hybrid/MPI binary even at p=1 (the paper found
  // >10% single-process MPI overhead on small data; pthreads-only runs and
  // the serial code avoid it).
  bool mpi_code_path = true;
};

class PerfModel {
 public:
  PerfModel(const Machine& machine, const DataShape& shape);

  // Time multiplier of one search unit at T threads relative to 1 thread
  // (h(T) < 1 is speedup; includes sync overhead, memory contention, cache
  // boost, and the serial fraction).
  [[nodiscard]] double thread_factor(int threads) const;

  // Seconds for one search unit of `stage` on `threads` threads.
  [[nodiscard]] double unit_time(Stage stage, int threads) const;

  // Serial comprehensive-analysis time (serial code path, no MPI tax).
  [[nodiscard]] double serial_time(int bootstraps) const;

  // Per-stage wall time of a full hybrid run (the slowest rank's view, with
  // the paper's mild load imbalance for unbarriered stages).
  [[nodiscard]] StageBreakdown run_breakdown(const RunConfig& config) const;

  [[nodiscard]] double total_time(const RunConfig& config) const {
    return run_breakdown(config).total();
  }

  // Speedup relative to the serial code on one core of the same machine.
  [[nodiscard]] double speedup(const RunConfig& config) const {
    return serial_time(config.bootstraps) / total_time(config);
  }

  // Parallel efficiency = speedup / cores, cores = processes * threads.
  [[nodiscard]] double efficiency(const RunConfig& config) const {
    return speedup(config) / (config.processes * config.threads);
  }

  // Override the serial anchor (seconds for the 100-bootstrap serial run on
  // this machine). Defaults come from Table 5 where the paper measured them.
  void set_serial_anchor(double seconds_100_bootstraps);

  [[nodiscard]] const Machine& machine() const { return machine_; }
  [[nodiscard]] const DataShape& shape() const { return shape_; }

  // Relative stage-unit weights (bootstrap == 1).
  [[nodiscard]] double stage_weight(Stage stage) const;

 private:
  Machine machine_;
  DataShape shape_;
  double anchor_seconds_ = 0.0;  // serial 100-bootstrap comprehensive run
};

// The paper's Table 5 serial (1-core) anchor in seconds for a machine/data
// combination; falls back to scaling the Dash anchor by relative core speed.
double serial_anchor_seconds(const Machine& machine, const DataShape& shape);

// Data shapes of the five paper data sets (taxa, patterns).
DataShape paper_shape(std::size_t patterns);

}  // namespace raxh::sim
