// Configuration helpers encoding the paper's tuning observations (§5, §8):
// the useful number of MPI processes is bounded by the schedule law, and the
// optimal number of Pthreads grows with the pattern count but is capped by
// the cores per node.
#pragma once

#include <algorithm>
#include <cstddef>

#include "core/schedule.h"

namespace raxh {

// Patterns-per-thread sweet spot: below this, barrier overhead beats the
// fine-grained speedup (empirically ~250-500 in the paper's Figs. 2/5/6,
// where 1,846 patterns prefer 4-8 threads and 19,436 prefer 32).
inline constexpr std::size_t kPatternsPerThread = 400;

// Suggested crew width for a data set on a node with `cores_per_node` cores,
// rounded up to a divisor of the node size (threads must pack into nodes).
inline int suggest_threads(std::size_t num_patterns, int cores_per_node) {
  const int by_patterns = static_cast<int>(
      (num_patterns + kPatternsPerThread - 1) / kPatternsPerThread);
  const int capped = std::clamp(by_patterns, 1, cores_per_node);
  int threads = capped;
  while (threads < cores_per_node && cores_per_node % threads != 0) ++threads;
  return threads;
}

// Largest process count that still splits every MPI-parallel stage evenly
// (beyond ~N/5 processes the fast-search stage stops scaling; beyond
// kSerialSlowSearches the slow stage replicates work — paper §2.3).
inline int suggest_max_processes(int specified_bootstraps) {
  return std::max(kSerialSlowSearches,
                  specified_bootstraps / kFastSearchDivisor / 5);
}

// Given a fixed core budget on one machine, pick (processes, threads):
// processes that divide the schedule well, threads limited per node.
struct HybridShape {
  int processes = 1;
  int threads = 1;
};

inline HybridShape suggest_shape(std::size_t num_patterns, int total_cores,
                                 int cores_per_node, int specified_bootstraps) {
  HybridShape shape;
  shape.threads = std::min(suggest_threads(num_patterns, cores_per_node),
                           total_cores);
  shape.processes = std::max(1, total_cores / shape.threads);
  shape.processes =
      std::min(shape.processes, suggest_max_processes(specified_bootstraps));
  return shape;
}

}  // namespace raxh
