// Job lifecycle isolation. Historically one process tree hosted exactly one
// analysis, so job-scoped state — the PRNG seed chain, artifact directories,
// the live progress model, the work schedule — lived in process globals and
// rank-keyed file names. The serving layer (src/serve/) runs N analyses
// concurrently in one process tree; a JobContext carries everything that
// must be per-job, and is passed explicitly through core/hybrid,
// core/comprehensive, core/analyses, and (as a cancel token) into search/.
//
// A default-constructed JobContext reproduces the legacy single-job
// behaviour exactly: empty job id (legacy artifact paths), the process-
// default live model, no cancellation, and ownership of process-global
// attribution (logger rank, obs rank). The one-shot CLI path uses exactly
// that, so `raxh` output is bit-identical with or without the refactor.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/cancel.h"
#include "util/prng.h"

namespace raxh::obs {
class LiveModel;
class JobObs;
}  // namespace raxh::obs

namespace raxh {

struct JobContext {
  // Identifies this job in logs and namespaces every per-job artifact path
  // (checkpoints, heartbeats). Empty = legacy single-job layout.
  std::string job_id;

  // Optional owner label (daemon --tenant on SUBMIT) and trace correlation
  // id; both are attribution-only and never affect the computation.
  std::string tenant;
  std::string trace_id;

  // When set, every rank thread of the job (and the crews it spawns) binds
  // this block so counters/histograms/spans are charged to the job as well
  // as the process-global pool. Null = no per-job attribution (one-shot CLI).
  std::shared_ptr<obs::JobObs> obs_job;

  // Base seeds of the job's reproducibility chain; per-logical-rank seeds
  // derive from these via the paper's §2.4 stride (see seeds_for()). The
  // analysis options carry the same seeds for backward compatibility; when
  // `use_seed_chain` is set the context is authoritative.
  std::int64_t parsimony_seed = 12345;
  std::int64_t bootstrap_seed = 12345;
  bool use_seed_chain = false;

  // Cooperative cancellation: polled between work units (and between SPR
  // rounds inside search/); null = never cancelled. The pointee must outlive
  // every rank of the job.
  const std::atomic<bool>* cancel = nullptr;

  // Per-logical-rank live progress models, indexed by rank. Empty = the
  // process-default model (one-shot CLI, where each ProcessComm rank is its
  // own process). The serving layer points these at the job record's models
  // so STREAM can aggregate per-job progress while N jobs run concurrently.
  std::vector<obs::LiveModel*> live_models;

  // A served job must not retag process-wide attribution (logger rank, obs
  // rank): concurrent jobs would fight over it and the daemon's own rank
  // stamp would corrupt. True only for the legacy one-job-per-process path.
  bool owns_process_globals = true;

  // Seeds for logical rank `rank`: the context chain when use_seed_chain,
  // otherwise the caller-supplied option seeds (legacy behaviour).
  [[nodiscard]] RankSeeds seeds_for(std::int64_t option_parsimony,
                                    std::int64_t option_bootstrap,
                                    int rank) const {
    return use_seed_chain
               ? seeds_for_rank(parsimony_seed, bootstrap_seed, rank)
               : seeds_for_rank(option_parsimony, option_bootstrap, rank);
  }

  [[nodiscard]] bool cancelled() const { return cancel_requested(cancel); }
  void throw_if_cancelled() const { raxh::throw_if_cancelled(cancel); }

  // The live model comprehensive stages should report into for logical rank
  // `rank` (the process default when this context carries none).
  [[nodiscard]] obs::LiveModel& live_for_rank(int rank) const;
};

// The shared default context of the legacy entry points (single job, process
// globals owned, no cancellation).
[[nodiscard]] const JobContext& default_job_context();

}  // namespace raxh
