#include "core/analyses.h"

#include <algorithm>
#include <limits>

#include "core/schedule.h"
#include "likelihood/engine.h"
#include "parallel/workforce.h"
#include "search/bootstrap.h"
#include "search/parsimony.h"
#include "tree/consensus.h"
#include "util/check.h"
#include "util/prng.h"

namespace raxh {

MultistartResult run_multistart_ml(const JobContext& ctx, mpi::Comm& comm,
                                   const PatternAlignment& patterns,
                                   const MultistartOptions& options) {
  RAXH_EXPECTS(options.searches >= 1);
  const int rank = comm.rank();
  const int nranks = comm.size();
  const int per_rank = ceil_div(options.searches, nranks);

  Workforce crew(options.num_threads);
  Workforce* crew_ptr = options.num_threads > 1 ? &crew : nullptr;

  GtrParams gtr;
  gtr.freqs = patterns.empirical_frequencies();
  LikelihoodEngine engine(patterns, gtr,
                          RateModel::cat(patterns.num_patterns()), crew_ptr);

  const RankSeeds seeds =
      ctx.seeds_for(options.parsimony_seed, options.parsimony_seed, rank);
  Lcg start_rng(seeds.parsimony_seed);

  SearchSettings settings = options.search;
  settings.cancel = ctx.cancel;
  std::string local_best_newick;
  double local_best = -std::numeric_limits<double>::infinity();
  std::vector<double> local_lnls;
  for (int s = 0; s < per_rank; ++s) {
    ctx.throw_if_cancelled();
    Tree tree =
        randomized_stepwise_addition(patterns, patterns.weights(), start_rng);
    engine.optimize_cat_rates(tree);
    SprSearch search(engine, settings);
    search.run(tree);

    // Final scoring under GAMMA with full model re-optimization, so lnLs
    // are comparable across ranks regardless of the CAT search state.
    LikelihoodEngine gamma(patterns, engine.gtr(),
                           RateModel::gamma(options.final_alpha), crew_ptr);
    const double lnl = gamma.optimize_all(tree, 0.02, 5);
    local_lnls.push_back(lnl);
    if (lnl > local_best) {
      local_best = lnl;
      local_best_newick = tree.to_newick(patterns.names());
    }
  }

  MultistartResult result;
  const auto best = comm.allreduce_maxloc(local_best);
  result.best_lnl = best.value;
  result.winner_rank = best.rank;
  result.best_tree_newick = local_best_newick;
  comm.bcast_string(result.best_tree_newick, best.rank);

  const auto gathered = comm.gather_doubles(local_lnls, 0);
  if (rank == 0)
    for (const auto& row : gathered)
      result.all_lnls.insert(result.all_lnls.end(), row.begin(), row.end());
  return result;
}

BootstrapRunResult run_bootstrap_analysis(const JobContext& ctx,
                                          mpi::Comm& comm,
                                          const PatternAlignment& patterns,
                                          const BootstrapRunOptions& options) {
  RAXH_EXPECTS(options.replicates >= 1);
  const int rank = comm.rank();
  const int nranks = comm.size();
  const int per_rank = ceil_div(options.replicates, nranks);

  Workforce crew(options.num_threads);
  Workforce* crew_ptr = options.num_threads > 1 ? &crew : nullptr;

  GtrParams gtr;
  gtr.freqs = patterns.empirical_frequencies();
  LikelihoodEngine engine(patterns, gtr,
                          RateModel::cat(patterns.num_patterns()), crew_ptr);

  const RankSeeds seeds =
      ctx.seeds_for(options.parsimony_seed, options.bootstrap_seed, rank);
  RapidBootstrap bootstrapper(engine, patterns, seeds.bootstrap_seed,
                              seeds.parsimony_seed, ctx.cancel);
  const auto replicates = bootstrapper.run(per_rank);

  std::string blob;
  for (const auto& rep : replicates) {
    blob += rep.tree.to_newick(patterns.names());
    blob += '\n';
  }
  const auto gathered = comm.gather_strings(blob, 0);

  BootstrapRunResult result;
  result.total_replicates = per_rank * nranks;
  if (rank == 0) {
    for (const auto& rank_blob : gathered) {
      std::size_t pos = 0;
      while (pos < rank_blob.size()) {
        const std::size_t end = rank_blob.find('\n', pos);
        const std::string line = rank_blob.substr(pos, end - pos);
        if (!line.empty()) result.replicate_newicks.push_back(line);
        if (end == std::string::npos) break;
        pos = end + 1;
      }
    }
    if (options.build_consensus && !result.replicate_newicks.empty()) {
      BipartitionTable table;
      for (const auto& nwk : result.replicate_newicks)
        table.add_tree(Tree::parse_newick(nwk, patterns.names()));
      result.consensus_newick =
          majority_rule_consensus(table, patterns.names());
    }
  }
  return result;
}

AdaptiveBootstrapResult run_adaptive_bootstrap(
    const JobContext& ctx, mpi::Comm& comm, const PatternAlignment& patterns,
    const AdaptiveBootstrapOptions& options) {
  RAXH_EXPECTS(options.round_size >= 1);
  RAXH_EXPECTS(options.min_replicates >= 2);
  RAXH_EXPECTS(options.max_replicates >= options.min_replicates);
  const int rank = comm.rank();
  const int nranks = comm.size();
  const int per_rank_cap = ceil_div(options.max_replicates, nranks);

  Workforce crew(options.num_threads);
  Workforce* crew_ptr = options.num_threads > 1 ? &crew : nullptr;

  GtrParams gtr;
  gtr.freqs = patterns.empirical_frequencies();
  LikelihoodEngine engine(patterns, gtr,
                          RateModel::cat(patterns.num_patterns()), crew_ptr);

  const RankSeeds seeds =
      ctx.seeds_for(options.parsimony_seed, options.bootstrap_seed, rank);
  RapidBootstrap bootstrapper(engine, patterns, seeds.bootstrap_seed,
                              seeds.parsimony_seed, ctx.cancel);
  BootstrapSnapshot snapshot;

  AdaptiveBootstrapResult result;
  int per_rank_done = 0;
  for (;;) {
    ++result.rounds;
    per_rank_done = std::min(per_rank_done + options.round_size, per_rank_cap);
    bootstrapper.run_resumable(per_rank_done, snapshot);

    // Parallel-hash-table round: gather every rank's replicate set; rank 0
    // rebuilds each rank's local BipartitionTable, merges them, and runs the
    // FC convergence test over the merged replicate set.
    std::string blob;
    for (const auto& raw : snapshot.replicate_trees) {
      blob += Tree::import_raw(raw).to_newick(patterns.names());
      blob += '\n';
    }
    const auto gathered = comm.gather_strings(blob, 0);

    int stop = 0;
    double correlation = 0.0;
    int total = per_rank_done * nranks;
    if (rank == 0) {
      std::vector<Tree> trees;
      BipartitionTable merged;
      for (const auto& rank_blob : gathered) {
        BipartitionTable local;
        std::size_t pos = 0;
        while (pos < rank_blob.size()) {
          const std::size_t end = rank_blob.find('\n', pos);
          const std::string line = rank_blob.substr(pos, end - pos);
          if (!line.empty()) {
            trees.push_back(Tree::parse_newick(line, patterns.names()));
            local.add_tree(trees.back());
          }
          if (end == std::string::npos) break;
          pos = end + 1;
        }
        merged.merge(local);
      }
      RAXH_ASSERT(merged.num_trees() == static_cast<int>(trees.size()));
      total = static_cast<int>(trees.size());

      if (total >= options.min_replicates) {
        const BootstopResult fc = frequency_criterion(trees, options.bootstop);
        correlation = fc.mean_correlation;
        if (fc.converged) stop = 1;
      }
      if (per_rank_done >= per_rank_cap) stop = stop == 1 ? 1 : 2;  // cap hit

      if (stop != 0) {
        result.replicate_newicks.clear();
        for (const auto& tree : trees)
          result.replicate_newicks.push_back(
              tree.to_newick(patterns.names()));
      }
    }

    // Broadcast the verdict so every rank takes the same branch.
    mpi::Packer p;
    p.put(stop);
    p.put(correlation);
    p.put(total);
    mpi::Bytes verdict = p.take();
    comm.bcast(verdict, 0);
    mpi::Unpacker u(verdict);
    stop = u.get<int>();
    correlation = u.get<double>();
    total = u.get<int>();

    if (stop != 0) {
      result.converged = stop == 1;
      result.total_replicates = total;
      result.final_correlation = correlation;
      return result;
    }
  }
}

MultistartResult run_multistart_ml(mpi::Comm& comm,
                                   const PatternAlignment& patterns,
                                   const MultistartOptions& options) {
  return run_multistart_ml(default_job_context(), comm, patterns, options);
}

BootstrapRunResult run_bootstrap_analysis(mpi::Comm& comm,
                                          const PatternAlignment& patterns,
                                          const BootstrapRunOptions& options) {
  return run_bootstrap_analysis(default_job_context(), comm, patterns,
                                options);
}

AdaptiveBootstrapResult run_adaptive_bootstrap(
    mpi::Comm& comm, const PatternAlignment& patterns,
    const AdaptiveBootstrapOptions& options) {
  return run_adaptive_bootstrap(default_job_context(), comm, patterns,
                                options);
}

}  // namespace raxh
