#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/flight.h"
#include "obs/live.h"
#include "util/check.h"

namespace raxh {

namespace {

constexpr const char* kMagic = "raxh-bootstrap-checkpoint";
// v2: the body is covered by an FNV-1a checksum in a trailing "end" line, so
// truncated or bit-flipped files are rejected instead of partially parsed.
constexpr int kVersion = 2;

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw std::runtime_error("checkpoint '" + path + "': " + what);
}

// FNV-1a 64-bit over the serialized body. Not cryptographic — it guards
// against torn writes and disk corruption, not adversaries.
std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Raw tree layouts (not newicks) go to disk so that resumed searches walk
// records in the same order as the uninterrupted run (see Tree::RawTopology).
// The stream must already carry precision 17 for exact double round trips.
void write_raw_topology(std::ostream& body, const Tree::RawTopology& t) {
  body << t.num_taxa << ' ' << t.inserted_tips << '\n';
  body << t.back.size();
  for (std::size_t i = 0; i < t.back.size(); ++i)
    body << ' ' << t.back[i] << ' ' << t.length[i];
  body << '\n';
  body << t.internal_used.size();
  for (auto u : t.internal_used) body << ' ' << static_cast<int>(u);
  body << '\n';
}

void read_raw_topology(std::istream& in, Tree::RawTopology& t,
                       const std::string& path) {
  if (!(in >> t.num_taxa >> t.inserted_tips))
    corrupt(path, "missing tree header");
  std::size_t nrec = 0;
  if (!(in >> nrec)) corrupt(path, "missing tree record count");
  t.back.resize(nrec);
  t.length.resize(nrec);
  for (std::size_t i = 0; i < nrec; ++i)
    if (!(in >> t.back[i] >> t.length[i]))
      corrupt(path, "truncated tree records");
  std::size_t nused = 0;
  if (!(in >> nused)) corrupt(path, "missing tree ring count");
  t.internal_used.resize(nused);
  for (auto& u : t.internal_used) {
    int v = 0;
    if (!(in >> v)) corrupt(path, "truncated tree rings");
    u = static_cast<std::uint8_t>(v);
  }
}

}  // namespace

void save_bootstrap_checkpoint(const std::string& path,
                               const BootstrapSnapshot& snapshot) {
  std::ostringstream body;
  body << snapshot.next_replicate << ' ' << snapshot.bootstrap_rng_state
       << ' ' << snapshot.parsimony_rng_state << '\n';
  body.precision(17);
  write_raw_topology(body, snapshot.current_tree);
  body << snapshot.cat_rates.size();
  for (double r : snapshot.cat_rates) body << ' ' << r;
  body << '\n';
  body << snapshot.cat_categories.size();
  for (int c : snapshot.cat_categories) body << ' ' << c;
  body << '\n';
  body << snapshot.replicate_trees.size() << '\n';
  for (std::size_t i = 0; i < snapshot.replicate_trees.size(); ++i) {
    body << snapshot.replicate_lnls[i] << '\n';
    write_raw_topology(body, snapshot.replicate_trees[i]);
  }
  const std::string serialized = body.str();

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("cannot write checkpoint: " + tmp);
    out << kMagic << ' ' << kVersion << '\n'
        << serialized << "end " << std::hex << fnv1a(serialized) << '\n';
    if (!out) throw std::runtime_error("short write on checkpoint: " + tmp);
  }
  std::filesystem::rename(tmp, path);
  obs::flight::record(obs::flight::Kind::kCkptWrite,
                      obs::flight::name_id(path.c_str()), serialized.size());
}

std::optional<BootstrapSnapshot> load_bootstrap_checkpoint(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());

  // Header line: magic + version.
  const std::size_t header_end = content.find('\n');
  if (header_end == std::string::npos) corrupt(path, "bad header");
  {
    std::istringstream header(content.substr(0, header_end));
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != kMagic)
      corrupt(path, "bad header");
    if (version != kVersion)
      corrupt(path, "unsupported version " + std::to_string(version));
  }

  // Trailing "end <fnv1a-hex>" marker: its presence proves the file was
  // written out completely, the checksum that no byte changed since.
  const std::size_t marker = content.rfind("\nend ");
  if (marker == std::string::npos || marker < header_end)
    corrupt(path, "missing end marker (truncated file)");
  const std::string serialized =
      content.substr(header_end + 1, marker - header_end);
  {
    std::istringstream tail(content.substr(marker + 1));
    std::string word;
    std::uint64_t stored = 0;
    if (!(tail >> word >> std::hex >> stored) || word != "end")
      corrupt(path, "malformed end marker");
    std::string trailing;
    if (tail >> trailing) corrupt(path, "trailing data after end marker");
    if (stored != fnv1a(serialized))
      corrupt(path, "checksum mismatch (corrupt or torn file)");
  }

  std::istringstream in(serialized);
  BootstrapSnapshot snapshot;
  if (!(in >> snapshot.next_replicate >> snapshot.bootstrap_rng_state >>
        snapshot.parsimony_rng_state))
    corrupt(path, "bad state line");
  read_raw_topology(in, snapshot.current_tree, path);

  std::size_t nrates = 0;
  if (!(in >> nrates)) corrupt(path, "missing CAT rate count");
  snapshot.cat_rates.resize(nrates);
  for (auto& r : snapshot.cat_rates)
    if (!(in >> r)) corrupt(path, "truncated CAT rates");
  std::size_t ncats = 0;
  if (!(in >> ncats)) corrupt(path, "missing CAT category count");
  snapshot.cat_categories.resize(ncats);
  for (auto& c : snapshot.cat_categories)
    if (!(in >> c)) corrupt(path, "truncated CAT categories");

  std::size_t count = 0;
  if (!(in >> count)) corrupt(path, "missing replicate count");
  if (count != static_cast<std::size_t>(snapshot.next_replicate))
    corrupt(path, "replicate count disagrees with progress counter");
  for (std::size_t i = 0; i < count; ++i) {
    double lnl = 0.0;
    if (!(in >> lnl)) corrupt(path, "truncated replicate list");
    snapshot.replicate_lnls.push_back(lnl);
    Tree::RawTopology tree;
    read_raw_topology(in, tree, path);
    snapshot.replicate_trees.push_back(std::move(tree));
  }
  return snapshot;
}

std::function<void(const BootstrapSnapshot&)> checkpoint_to(std::string path) {
  return [path = std::move(path)](const BootstrapSnapshot& snapshot) {
    save_bootstrap_checkpoint(path, snapshot);
  };
}

std::string rank_checkpoint_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".ckpt";
}

std::string rank_checkpoint_path(const std::string& dir,
                                 const std::string& job_id, int rank) {
  if (job_id.empty()) return rank_checkpoint_path(dir, rank);
  return dir + "/job" + obs::sanitize_job_id(job_id) + ".rank" +
         std::to_string(rank) + ".ckpt";
}

}  // namespace raxh
