#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace raxh {

namespace {

constexpr const char* kMagic = "raxh-bootstrap-checkpoint";
constexpr int kVersion = 1;

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw std::runtime_error("checkpoint '" + path + "': " + what);
}

}  // namespace

void save_bootstrap_checkpoint(const std::string& path,
                               const BootstrapSnapshot& snapshot) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("cannot write checkpoint: " + tmp);
    out << kMagic << ' ' << kVersion << '\n';
    out << snapshot.next_replicate << ' ' << snapshot.bootstrap_rng_state
        << ' ' << snapshot.parsimony_rng_state << '\n';
    out.precision(17);
    out << snapshot.current_tree.num_taxa << ' '
        << snapshot.current_tree.inserted_tips << '\n';
    out << snapshot.current_tree.back.size();
    for (std::size_t i = 0; i < snapshot.current_tree.back.size(); ++i)
      out << ' ' << snapshot.current_tree.back[i] << ' '
          << snapshot.current_tree.length[i];
    out << '\n';
    out << snapshot.current_tree.internal_used.size();
    for (auto u : snapshot.current_tree.internal_used)
      out << ' ' << static_cast<int>(u);
    out << '\n';
    out << snapshot.cat_rates.size();
    for (double r : snapshot.cat_rates) out << ' ' << r;
    out << '\n';
    out << snapshot.cat_categories.size();
    for (int c : snapshot.cat_categories) out << ' ' << c;
    out << '\n';
    out << snapshot.replicate_newicks.size() << '\n';
    for (std::size_t i = 0; i < snapshot.replicate_newicks.size(); ++i) {
      out.precision(17);
      out << snapshot.replicate_lnls[i] << ' '
          << snapshot.replicate_newicks[i] << '\n';
    }
    if (!out) throw std::runtime_error("short write on checkpoint: " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::optional<BootstrapSnapshot> load_bootstrap_checkpoint(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic)
    corrupt(path, "bad header");
  if (version != kVersion)
    corrupt(path, "unsupported version " + std::to_string(version));

  BootstrapSnapshot snapshot;
  if (!(in >> snapshot.next_replicate >> snapshot.bootstrap_rng_state >>
        snapshot.parsimony_rng_state))
    corrupt(path, "bad state line");
  if (!(in >> snapshot.current_tree.num_taxa >>
        snapshot.current_tree.inserted_tips))
    corrupt(path, "missing carried-tree header");
  std::size_t nrec = 0;
  if (!(in >> nrec)) corrupt(path, "missing carried-tree record count");
  snapshot.current_tree.back.resize(nrec);
  snapshot.current_tree.length.resize(nrec);
  for (std::size_t i = 0; i < nrec; ++i)
    if (!(in >> snapshot.current_tree.back[i] >>
          snapshot.current_tree.length[i]))
      corrupt(path, "truncated carried-tree records");
  std::size_t nused = 0;
  if (!(in >> nused)) corrupt(path, "missing carried-tree ring count");
  snapshot.current_tree.internal_used.resize(nused);
  for (auto& u : snapshot.current_tree.internal_used) {
    int v = 0;
    if (!(in >> v)) corrupt(path, "truncated carried-tree rings");
    u = static_cast<std::uint8_t>(v);
  }

  std::size_t nrates = 0;
  if (!(in >> nrates)) corrupt(path, "missing CAT rate count");
  snapshot.cat_rates.resize(nrates);
  for (auto& r : snapshot.cat_rates)
    if (!(in >> r)) corrupt(path, "truncated CAT rates");
  std::size_t ncats = 0;
  if (!(in >> ncats)) corrupt(path, "missing CAT category count");
  snapshot.cat_categories.resize(ncats);
  for (auto& c : snapshot.cat_categories)
    if (!(in >> c)) corrupt(path, "truncated CAT categories");

  std::size_t count = 0;
  if (!(in >> count)) corrupt(path, "missing replicate count");
  if (count != static_cast<std::size_t>(snapshot.next_replicate))
    corrupt(path, "replicate count disagrees with progress counter");
  for (std::size_t i = 0; i < count; ++i) {
    double lnl = 0.0;
    std::string newick;
    if (!(in >> lnl >> newick)) corrupt(path, "truncated replicate list");
    snapshot.replicate_lnls.push_back(lnl);
    snapshot.replicate_newicks.push_back(std::move(newick));
  }
  return snapshot;
}

std::function<void(const BootstrapSnapshot&)> checkpoint_to(std::string path) {
  return [path = std::move(path)](const BootstrapSnapshot& snapshot) {
    save_bootstrap_checkpoint(path, snapshot);
  };
}

}  // namespace raxh
