#include "core/comprehensive.h"

#include <algorithm>

#include "likelihood/engine.h"
#include "obs/obs.h"
#include "obs/phase.h"
#include "search/bootstrap.h"
#include "search/parsimony.h"
#include "tree/bipartition.h"
#include "tree/tree.h"
#include "util/check.h"
#include "util/log.h"

namespace raxh {

namespace {

struct ScoredTree {
  Tree tree;
  double lnl;
};

}  // namespace

RankReport run_comprehensive_rank(
    const PatternAlignment& patterns, const ComprehensiveOptions& options,
    int rank, int nranks, Workforce* crew,
    const std::function<void()>& after_bootstraps,
    const std::function<bool(double)>& select_thorough) {
  RAXH_EXPECTS(rank >= 0 && rank < nranks);

  RankReport report;
  report.rank = rank;
  const HybridSchedule schedule =
      make_schedule(options.specified_bootstraps, nranks);
  report.counts = schedule.per_rank;

  const RankSeeds seeds =
      seeds_for_rank(options.parsimony_seed, options.bootstrap_seed, rank);

  // Model setup: empirical base frequencies, unit exchangeabilities; the
  // searches optimize from there. The search engine uses CAT (as the paper's
  // "-m GTRCAT" runs do); the final evaluation uses GAMMA.
  GtrParams gtr;
  gtr.freqs = patterns.empirical_frequencies();
  LikelihoodEngine cat_engine(patterns, gtr,
                              RateModel::cat(patterns.num_patterns()), crew);

  // Stage wall times land in a per-rank accumulator (the Figs. 3/4 report
  // path) and, via ScopedPhase, in the process-wide obs::run_phases() table
  // and the span trace behind --report-components / --trace-out.
  obs::PhaseAccumulator stage_times;

  // --- Stage 1: rapid bootstraps ---
  std::vector<BootstrapReplicate> replicates;
  {
    obs::ScopedPhase phase("bootstrap", &stage_times);
    RapidBootstrap bootstrapper(cat_engine, patterns, seeds.bootstrap_seed,
                                seeds.parsimony_seed);
    replicates = bootstrapper.run(report.counts.bootstraps);
  }
  for (const auto& rep : replicates)
    report.bootstrap_newicks.push_back(rep.tree.to_newick(patterns.names()));

  if (after_bootstraps) {
    // The paper's mid-run barrier: waiting on slower ranks is neither
    // bootstrap nor fast-search work, so it gets its own component.
    obs::ScopedPhase phase("sync");
    after_bootstraps();
  }

  // --- Stage 2: fast ML searches from the best bootstrap trees ---
  std::vector<ScoredTree> fast_results;
  {
    obs::ScopedPhase phase("fast", &stage_times);
    // Rank replicates by their (bootstrap-weighted) lnL and take the local
    // best as starting points — the local, communication-free selection of
    // paper §2.2.
    std::vector<std::size_t> order(replicates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return replicates[a].lnl > replicates[b].lnl;
    });
    const auto nfast = static_cast<std::size_t>(report.counts.fast_searches);
    cat_engine.reset_weights();
    for (std::size_t i = 0; i < nfast && i < order.size(); ++i) {
      Tree tree = replicates[order[i]].tree;
      cat_engine.optimize_cat_rates(tree);
      SprSearch search(cat_engine, options.fast);
      const double lnl = search.run(tree);
      fast_results.push_back(ScoredTree{std::move(tree), lnl});
    }
  }

  // --- Stage 3: slow ML searches on the locally best fast trees ---
  std::vector<ScoredTree> slow_results;
  {
    obs::ScopedPhase phase("slow", &stage_times);
    std::sort(fast_results.begin(), fast_results.end(),
              [](const ScoredTree& a, const ScoredTree& b) {
                return a.lnl > b.lnl;
              });
    const auto nslow = static_cast<std::size_t>(report.counts.slow_searches);
    for (std::size_t i = 0; i < nslow && i < fast_results.size(); ++i) {
      Tree tree = fast_results[i].tree;
      SprSearch search(cat_engine, options.slow);
      const double lnl = search.run(tree);
      slow_results.push_back(ScoredTree{std::move(tree), lnl});
    }
  }

  // --- Stage 4: one thorough search from the local best slow tree ---
  {
    obs::ScopedPhase phase("thorough", &stage_times);
    RAXH_ASSERT(!slow_results.empty());
    const auto best_it = std::max_element(
        slow_results.begin(), slow_results.end(),
        [](const ScoredTree& a, const ScoredTree& b) { return a.lnl < b.lnl; });
    const Tree slow_best = best_it->tree;
    Tree searched = slow_best;
    const bool run_thorough =
        !select_thorough || select_thorough(best_it->lnl);
    if (run_thorough) {
      SprSearch search(cat_engine, options.thorough);
      report.cat_lnl = search.run(searched);
    } else {
      report.cat_lnl = best_it->lnl;
    }

    // Final model + branch-length evaluation under GAMMA, as "-f a" reports.
    // The CAT-driven thorough search can (rarely, on degenerate data)
    // regress the GAMMA score; score both candidates under the final
    // criterion and keep the better one.
    LikelihoodEngine gamma_engine(patterns, cat_engine.gtr(),
                                  RateModel::gamma(options.initial_alpha),
                                  crew);
    auto gamma_score = [&](Tree& tree) {
      // Full model re-optimization under GAMMA (branches, GTR, alpha) to
      // convergence, so the final score depends only on the topology — not
      // on whatever model state the CAT stages left behind.
      return gamma_engine.optimize_all(tree, 0.02, 5);
    };
    const double searched_lnl = gamma_score(searched);
    report.best_lnl = searched_lnl;
    report.best_tree_newick = searched.to_newick(patterns.names());
    if (run_thorough) {
      Tree fallback = slow_best;
      const double fallback_lnl = gamma_score(fallback);
      if (fallback_lnl > searched_lnl) {
        report.best_lnl = fallback_lnl;
        report.best_tree_newick = fallback.to_newick(patterns.names());
      }
    }
  }

  report.times.bootstrap = stage_times.total("bootstrap");
  report.times.fast = stage_times.total("fast");
  report.times.slow = stage_times.total("slow");
  report.times.thorough = stage_times.total("thorough");

  log_debug("rank %d/%d done: lnL=%.4f (CAT %.4f)", rank, nranks,
            report.best_lnl, report.cat_lnl);
  return report;
}

}  // namespace raxh
