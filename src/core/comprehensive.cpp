#include "core/comprehensive.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "likelihood/engine.h"
#include "obs/live.h"
#include "obs/obs.h"
#include "obs/phase.h"
#include "search/bootstrap.h"
#include "search/parsimony.h"
#include "tree/bipartition.h"
#include "tree/tree.h"
#include "util/check.h"
#include "util/log.h"

namespace raxh {

namespace {

struct ScoredTree {
  Tree tree;
  double lnl;
};

// Relative per-unit stage costs feeding the live progress fraction (and thus
// the aggregator's ETA): one bootstrap replicate is the unit. Ratios derived
// from the paper's Figs. 3/4 component breakdowns (bootstraps ~45% of a
// serial run over 100 units, fast ~20% over 20, slow ~20% over 10, thorough
// ~15% over 1). They shape progress reporting only — never scheduling.
constexpr double kFastUnitWeight = 2.5;
constexpr double kSlowUnitWeight = 4.5;
constexpr double kThoroughUnitWeight = 25.0;

}  // namespace

RankReport run_comprehensive_rank(
    const JobContext& ctx, const PatternAlignment& patterns,
    const ComprehensiveOptions& options, int rank, int nranks, Workforce* crew,
    const std::function<void()>& after_bootstraps,
    const std::function<bool(double)>& select_thorough,
    const std::function<void()>& on_unit) {
  RAXH_EXPECTS(rank >= 0 && rank < nranks);
  obs::LiveModel& live = ctx.live_for_rank(rank);
  const auto unit_done = [&] {
    live.unit_done();
    ctx.throw_if_cancelled();
    if (on_unit) on_unit();
  };

  RankReport report;
  report.rank = rank;
  const HybridSchedule schedule =
      make_schedule(options.specified_bootstraps, nranks);
  report.counts = schedule.per_rank;

  const RankSeeds seeds =
      ctx.seeds_for(options.parsimony_seed, options.bootstrap_seed, rank);

  // Model setup: empirical base frequencies, unit exchangeabilities; the
  // searches optimize from there. The search engine uses CAT (as the paper's
  // "-m GTRCAT" runs do); the final evaluation uses GAMMA.
  GtrParams gtr;
  gtr.freqs = patterns.empirical_frequencies();
  LikelihoodEngine cat_engine(patterns, gtr,
                              RateModel::cat(patterns.num_patterns()), crew);

  // Stage wall times land in a per-rank accumulator (the Figs. 3/4 report
  // path) and, via ScopedPhase, in the process-wide obs::run_phases() table
  // and the span trace behind --report-components / --trace-out.
  obs::PhaseAccumulator stage_times;

  // Live progress model (obs/live.h): this rank's Table-2 work grant, so
  // heartbeats can report units done vs granted and the rank-0 aggregator
  // can project an ETA. Updated once per completed search unit.
  live.begin_run(
      rank,
      {{"bootstrap", report.counts.bootstraps, 1.0},
       {"fast", report.counts.fast_searches, kFastUnitWeight},
       {"slow", report.counts.slow_searches, kSlowUnitWeight},
       {"thorough", report.counts.thorough_searches, kThoroughUnitWeight}});

  // --- Stage 1: rapid bootstraps ---
  std::vector<BootstrapReplicate> replicates;
  {
    obs::ScopedPhase phase("bootstrap", &stage_times);
    live.begin_stage("bootstrap");
    RapidBootstrap bootstrapper(cat_engine, patterns, seeds.bootstrap_seed,
                                seeds.parsimony_seed, ctx.cancel);
    // The resumable path's per-replicate callback doubles as the live
    // progress tick and checkpoint persist (bit-identical to run()
    // otherwise). Checkpoints are keyed by the job id plus the *logical*
    // rank: the job id keeps concurrent jobs sharing one checkpoint
    // directory from clobbering each other, the logical rank lets a
    // survivor re-granted a dead rank's bootstraps resume that rank's own
    // snapshot.
    BootstrapSnapshot progress_snapshot;
    std::string checkpoint_path;
    if (!options.checkpoint_dir.empty()) {
      checkpoint_path =
          rank_checkpoint_path(options.checkpoint_dir, ctx.job_id, rank);
      if (auto loaded = load_bootstrap_checkpoint(checkpoint_path)) {
        // A snapshot from a finished or over-granted previous run replays
        // only up to this run's grant.
        if (loaded->next_replicate <= report.counts.bootstraps)
          progress_snapshot = std::move(*loaded);
      }
      report.resumed_replicates = progress_snapshot.next_replicate;
      if (report.resumed_replicates > 0)
        log_info("rank %d resuming bootstraps from checkpoint (%d/%d done)",
                 rank, report.resumed_replicates, report.counts.bootstraps);
    }
    replicates = bootstrapper.run_resumable(
        report.counts.bootstraps, progress_snapshot,
        [&](const BootstrapSnapshot& snapshot) {
          if (!checkpoint_path.empty())
            save_bootstrap_checkpoint(checkpoint_path, snapshot);
          unit_done();
        });
  }
  for (const auto& rep : replicates)
    report.bootstrap_newicks.push_back(rep.tree.to_newick(patterns.names()));

  if (after_bootstraps) {
    // The paper's mid-run barrier: waiting on slower ranks is neither
    // bootstrap nor fast-search work, so it gets its own component.
    obs::ScopedPhase phase("sync");
    live.begin_stage("sync");
    after_bootstraps();
  }

  // --- Stage 2: fast ML searches from the best bootstrap trees ---
  std::vector<ScoredTree> fast_results;
  {
    obs::ScopedPhase phase("fast", &stage_times);
    live.begin_stage("fast");
    // Rank replicates by their (bootstrap-weighted) lnL and take the local
    // best as starting points — the local, communication-free selection of
    // paper §2.2.
    std::vector<std::size_t> order(replicates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return replicates[a].lnl > replicates[b].lnl;
    });
    const auto nfast = static_cast<std::size_t>(report.counts.fast_searches);
    cat_engine.reset_weights();
    SearchSettings fast_with_cancel = options.fast;
    fast_with_cancel.cancel = ctx.cancel;
    for (std::size_t i = 0; i < nfast && i < order.size(); ++i) {
      Tree tree = replicates[order[i]].tree;
      cat_engine.optimize_cat_rates(tree);
      SprSearch search(cat_engine, fast_with_cancel);
      const double lnl = search.run(tree);
      fast_results.push_back(ScoredTree{std::move(tree), lnl});
      unit_done();
      live.report_lnl(lnl);
    }
  }

  // --- Stage 3: slow ML searches on the locally best fast trees ---
  std::vector<ScoredTree> slow_results;
  {
    obs::ScopedPhase phase("slow", &stage_times);
    live.begin_stage("slow");
    std::sort(fast_results.begin(), fast_results.end(),
              [](const ScoredTree& a, const ScoredTree& b) {
                return a.lnl > b.lnl;
              });
    const auto nslow = static_cast<std::size_t>(report.counts.slow_searches);
    SearchSettings slow_with_cancel = options.slow;
    slow_with_cancel.cancel = ctx.cancel;
    for (std::size_t i = 0; i < nslow && i < fast_results.size(); ++i) {
      Tree tree = fast_results[i].tree;
      SprSearch search(cat_engine, slow_with_cancel);
      const double lnl = search.run(tree);
      slow_results.push_back(ScoredTree{std::move(tree), lnl});
      unit_done();
      live.report_lnl(lnl);
    }
  }

  // --- Stage 4: one thorough search from the local best slow tree ---
  {
    obs::ScopedPhase phase("thorough", &stage_times);
    live.begin_stage("thorough");
    RAXH_ASSERT(!slow_results.empty());
    const auto best_it = std::max_element(
        slow_results.begin(), slow_results.end(),
        [](const ScoredTree& a, const ScoredTree& b) { return a.lnl < b.lnl; });
    const Tree slow_best = best_it->tree;
    Tree searched = slow_best;
    const bool run_thorough =
        !select_thorough || select_thorough(best_it->lnl);
    if (run_thorough) {
      SearchSettings thorough_with_cancel = options.thorough;
      thorough_with_cancel.cancel = ctx.cancel;
      SprSearch search(cat_engine, thorough_with_cancel);
      report.cat_lnl = search.run(searched);
    } else {
      report.cat_lnl = best_it->lnl;
    }

    // Final model + branch-length evaluation under GAMMA, as "-f a" reports.
    // The CAT-driven thorough search can (rarely, on degenerate data)
    // regress the GAMMA score; score both candidates under the final
    // criterion and keep the better one.
    LikelihoodEngine gamma_engine(patterns, cat_engine.gtr(),
                                  RateModel::gamma(options.initial_alpha),
                                  crew);
    auto gamma_score = [&](Tree& tree) {
      // Full model re-optimization under GAMMA (branches, GTR, alpha) to
      // convergence, so the final score depends only on the topology — not
      // on whatever model state the CAT stages left behind.
      return gamma_engine.optimize_all(tree, 0.02, 5);
    };
    const double searched_lnl = gamma_score(searched);
    report.best_lnl = searched_lnl;
    report.best_tree_newick = searched.to_newick(patterns.names());
    if (run_thorough) {
      Tree fallback = slow_best;
      const double fallback_lnl = gamma_score(fallback);
      if (fallback_lnl > searched_lnl) {
        report.best_lnl = fallback_lnl;
        report.best_tree_newick = fallback.to_newick(patterns.names());
      }
    }
    unit_done();
    // Heartbeats track the search-criterion (CAT) score; the final GAMMA
    // evaluation lives on a different scale and is reported via the normal
    // program output instead.
    live.report_lnl(report.cat_lnl);
  }

  report.times.bootstrap = stage_times.total("bootstrap");
  report.times.fast = stage_times.total("fast");
  report.times.slow = stage_times.total("slow");
  report.times.thorough = stage_times.total("thorough");

  log_debug("rank %d/%d done: lnL=%.4f (CAT %.4f)", rank, nranks,
            report.best_lnl, report.cat_lnl);
  return report;
}

RankReport run_comprehensive_rank(
    const PatternAlignment& patterns, const ComprehensiveOptions& options,
    int rank, int nranks, Workforce* crew,
    const std::function<void()>& after_bootstraps,
    const std::function<bool(double)>& select_thorough,
    const std::function<void()>& on_unit) {
  return run_comprehensive_rank(default_job_context(), patterns, options,
                                rank, nranks, crew, after_bootstraps,
                                select_thorough, on_unit);
}

}  // namespace raxh
