// The paper's other two analysis types (§1), both "essentially constant
// parallelism throughout":
//
//  1. Multiple ML searches from distinct randomized starting trees
//     (RAxML -f d -N k): ranks split the k searches; the best tree wins.
//  2. Multiple bootstrap searches (RAxML -x/-b -N k) with no subsequent ML
//     search: ranks split the replicates; rank 0 aggregates the replicate
//     set (consensus / support downstream).
//
// Both reuse the comprehensive machinery: per-rank seed policy, minimal
// communication (a final Bcast for type 1, a final Gather for type 2).
#pragma once

#include <string>
#include <vector>

#include "bio/patterns.h"
#include "core/job_context.h"
#include "minimpi/comm.h"
#include "search/spr.h"
#include "tree/bootstopping.h"

namespace raxh {

// --- analysis type 1: multi-start ML search ---

struct MultistartOptions {
  int searches = 10;             // -N
  std::int64_t parsimony_seed = 12345;  // -p
  int num_threads = 1;
  SearchSettings search = slow_settings();
  double final_alpha = 0.5;  // GAMMA shape for final scoring
};

struct MultistartResult {
  // On every rank (Bcast):
  std::string best_tree_newick;
  double best_lnl = 0.0;  // GAMMA lnL
  int winner_rank = 0;
  // Rank 0 only:
  std::vector<double> all_lnls;  // every search's final lnL, rank-major
};

// Searches are split ceil(k/p) per rank, like the bootstrap stage of the
// comprehensive analysis. Collective: all ranks must call.
//
// Every analysis has a job-aware primary form (ctx supplies the seed chain
// when use_seed_chain is set and the cancel token threaded into each
// search) and a legacy form forwarding default_job_context().
MultistartResult run_multistart_ml(const JobContext& ctx, mpi::Comm& comm,
                                   const PatternAlignment& patterns,
                                   const MultistartOptions& options);
MultistartResult run_multistart_ml(mpi::Comm& comm,
                                   const PatternAlignment& patterns,
                                   const MultistartOptions& options);

// --- analysis type 2: standalone rapid bootstrapping ---

struct BootstrapRunOptions {
  int replicates = 100;          // -N
  std::int64_t parsimony_seed = 12345;  // -p
  std::int64_t bootstrap_seed = 12345;  // -x
  int num_threads = 1;
  bool build_consensus = true;   // rank 0: majority-rule consensus
};

struct BootstrapRunResult {
  // Rank 0 only:
  std::vector<std::string> replicate_newicks;  // all ranks' replicates
  std::string consensus_newick;                // if build_consensus
  // On every rank:
  int total_replicates = 0;
};

BootstrapRunResult run_bootstrap_analysis(const JobContext& ctx,
                                          mpi::Comm& comm,
                                          const PatternAlignment& patterns,
                                          const BootstrapRunOptions& options);
BootstrapRunResult run_bootstrap_analysis(mpi::Comm& comm,
                                          const PatternAlignment& patterns,
                                          const BootstrapRunOptions& options);

// --- adaptive bootstopping (the paper's stated future work, §2) ---
//
// "the current implementation only handles a fixed number of bootstraps, not
//  the case where that number can vary depending upon a bootstopping test.
//  Parallelization of that test, which operates on bipartitions of trees
//  stored in a hash table, will require implementation of a framework for
//  parallel operations on hash tables."
//
// This is that framework put to work: every rank bootstraps in rounds of
// `round_size` replicates, builds a LOCAL bipartition hash table, and the
// tables are merged across ranks (BipartitionTable::merge over gathered
// entries); rank 0 runs the FC convergence test on the merged replicate set
// and broadcasts continue/stop. Ranks therefore run only as many replicates
// as the data demand, in parallel.

struct AdaptiveBootstrapOptions {
  int round_size = 8;        // replicates per rank per round
  int min_replicates = 16;   // total, before the first convergence test
  int max_replicates = 200;  // total hard cap (ceil-shared per rank)
  std::int64_t parsimony_seed = 12345;
  std::int64_t bootstrap_seed = 12345;
  int num_threads = 1;
  BootstopOptions bootstop;  // FC test parameters
};

struct AdaptiveBootstrapResult {
  // On every rank (Bcast):
  bool converged = false;
  int total_replicates = 0;
  int rounds = 0;
  double final_correlation = 0.0;
  // Rank 0 only:
  std::vector<std::string> replicate_newicks;
};

AdaptiveBootstrapResult run_adaptive_bootstrap(
    const JobContext& ctx, mpi::Comm& comm, const PatternAlignment& patterns,
    const AdaptiveBootstrapOptions& options);
AdaptiveBootstrapResult run_adaptive_bootstrap(
    mpi::Comm& comm, const PatternAlignment& patterns,
    const AdaptiveBootstrapOptions& options);

}  // namespace raxh
