#include "core/hybrid.h"

#include "likelihood/engine.h"
#include "obs/live.h"
#include "obs/obs.h"
#include "obs/phase.h"
#include "tree/consensus.h"
#include "util/check.h"
#include "util/log.h"

namespace raxh {

HybridResult run_hybrid_comprehensive(mpi::Comm& comm,
                                      const PatternAlignment& patterns,
                                      const HybridOptions& options) {
  const int rank = comm.rank();
  const int nranks = comm.size();
  Logger::instance().set_rank(nranks > 1 ? rank : -1);
  obs::set_rank(rank);

  Workforce crew(options.analysis.num_threads);
  Workforce* crew_ptr =
      options.analysis.num_threads > 1 ? &crew : nullptr;

  // The paper's mid-run synchronization: MPI_Barrier after the bootstraps.
  RankReport report = run_comprehensive_rank(
      patterns, options.analysis, rank, nranks, crew_ptr,
      [&comm] { comm.barrier(); });

  HybridResult result;

  // End-of-run synchronization: the winner selection plus the report-only
  // gathers. On a rank that finished early this is mostly waiting on peers,
  // so it is a component of its own in the breakdown ("sync").
  std::vector<std::vector<double>> all_times, all_lnls;
  std::vector<std::string> all_bootstraps;
  {
    obs::ScopedPhase phase("sync");
    obs::live_begin_stage("sync");

    // Select the global winner (MPI_MAXLOC) and broadcast its tree — the
    // paper's "call to MPI_Bcast" that ends the run.
    const auto best = comm.allreduce_maxloc(report.best_lnl);
    result.best_lnl = best.value;
    result.winner_rank = best.rank;
    result.best_tree_newick = report.best_tree_newick;
    comm.bcast_string(result.best_tree_newick, best.rank);

    // Report-only gathers (outside the paper's hot path): stage times,
    // per-rank final likelihoods, and the replicates for support values.
    const std::vector<double> my_times = {report.times.bootstrap,
                                          report.times.fast, report.times.slow,
                                          report.times.thorough};
    all_times = comm.gather_doubles(my_times, 0);
    all_lnls = comm.gather_doubles({report.best_lnl}, 0);

    std::string my_bootstraps;
    for (const auto& nwk : report.bootstrap_newicks) {
      my_bootstraps += nwk;
      my_bootstraps += '\n';
    }
    all_bootstraps = comm.gather_strings(my_bootstraps, 0);
  }

  if (rank == 0) {
    // Rank 0's post-search reporting (support values, bootstopping) is real
    // wall time; give it a phase so component breakdowns stay near-complete.
    obs::ScopedPhase phase("finalize");
    obs::live_begin_stage("finalize");
    for (const auto& t : all_times) {
      RAXH_ASSERT(t.size() == 4);
      result.rank_times.push_back(StageTimes{t[0], t[1], t[2], t[3]});
    }
    for (const auto& l : all_lnls) result.rank_lnls.push_back(l.at(0));

    // Parse every rank's replicates; fill the bipartition table.
    std::vector<Tree> replicate_trees;
    for (const auto& blob : all_bootstraps) {
      std::size_t pos = 0;
      while (pos < blob.size()) {
        const std::size_t end = blob.find('\n', pos);
        const std::string line = blob.substr(pos, end - pos);
        if (!line.empty())
          replicate_trees.push_back(Tree::parse_newick(line, patterns.names()));
        if (end == std::string::npos) break;
        pos = end + 1;
      }
    }
    result.total_bootstrap_trees = static_cast<int>(replicate_trees.size());

    if (options.compute_support && !replicate_trees.empty()) {
      BipartitionTable table;
      for (const auto& t : replicate_trees) table.add_tree(t);
      const Tree best_tree =
          Tree::parse_newick(result.best_tree_newick, patterns.names());
      result.support_tree_newick =
          annotate_support(best_tree, patterns.names(), table);
    }
    if (options.run_bootstopping && replicate_trees.size() >= 2) {
      result.bootstop = frequency_criterion(replicate_trees);
    }
  }

  obs::live_end_run();
  Logger::instance().set_rank(-1);
  return result;
}

}  // namespace raxh
