#include "core/hybrid.h"

#include <optional>

#include "likelihood/engine.h"
#include "obs/flight.h"
#include "obs/live.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/phase.h"
#include "obs/postmortem.h"
#include "tree/consensus.h"
#include "util/check.h"
#include "util/log.h"

namespace raxh {

namespace {

// Fault-tolerant protocol tags, outside user space and the collectives'
// 1000000+ range. The protocol is a star around rank 0 (the job controller):
//  * barrier  — worker sends "arrived", root answers "go" (replaces the
//    paper's post-bootstrap MPI_Barrier);
//  * report   — worker ships its packed RankReport to root;
//  * control  — root sends REGRANT <logical rank> or FINISH <winner + meta>
//    (the latter replaces the final MPI_Bcast).
constexpr int kFtBarrierTag = 900001;
constexpr int kFtReportTag = 900002;
constexpr int kFtControlTag = 900003;

constexpr std::uint8_t kCtrlRegrant = 1;
constexpr std::uint8_t kCtrlFinish = 2;

mpi::Bytes pack_report(const RankReport& r) {
  mpi::Packer p;
  p.put<std::int32_t>(r.rank);
  p.put_string(r.best_tree_newick);
  p.put(r.best_lnl);
  p.put(r.cat_lnl);
  p.put_doubles(
      {r.times.bootstrap, r.times.fast, r.times.slow, r.times.thorough});
  p.put<std::int32_t>(r.resumed_replicates);
  p.put<std::uint64_t>(r.bootstrap_newicks.size());
  for (const auto& nwk : r.bootstrap_newicks) p.put_string(nwk);
  return p.take();
}

RankReport unpack_report(const mpi::Bytes& bytes) {
  mpi::Unpacker u(bytes);
  RankReport r;
  r.rank = u.get<std::int32_t>();
  r.best_tree_newick = u.get_string();
  r.best_lnl = u.get<double>();
  r.cat_lnl = u.get<double>();
  const std::vector<double> t = u.get_doubles();
  RAXH_ASSERT(t.size() == 4);
  r.times = StageTimes{t[0], t[1], t[2], t[3]};
  r.resumed_replicates = u.get<std::int32_t>();
  const auto nboots = u.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < nboots; ++i)
    r.bootstrap_newicks.push_back(u.get_string());
  return r;
}

// Rank 0's post-search reporting (support values, bootstopping) — real wall
// time, so it gets its own phase in the component breakdown. `blobs` holds
// newline-joined replicate newicks, one entry per logical rank.
void finalize_on_root(const JobContext& ctx, const PatternAlignment& patterns,
                      const HybridOptions& options,
                      const std::vector<std::string>& blobs,
                      HybridResult& result) {
  obs::ScopedPhase phase("finalize");
  ctx.live_for_rank(0).begin_stage("finalize");

  std::vector<Tree> replicate_trees;
  for (const auto& blob : blobs) {
    std::size_t pos = 0;
    while (pos < blob.size()) {
      const std::size_t end = blob.find('\n', pos);
      const std::string line = blob.substr(pos, end - pos);
      if (!line.empty())
        replicate_trees.push_back(Tree::parse_newick(line, patterns.names()));
      if (end == std::string::npos) break;
      pos = end + 1;
    }
  }
  result.total_bootstrap_trees = static_cast<int>(replicate_trees.size());

  if (options.compute_support && !replicate_trees.empty()) {
    BipartitionTable table;
    for (const auto& t : replicate_trees) table.add_tree(t);
    const Tree best_tree =
        Tree::parse_newick(result.best_tree_newick, patterns.names());
    result.support_tree_newick =
        annotate_support(best_tree, patterns.names(), table);
  }
  if (options.run_bootstopping && replicate_trees.size() >= 2) {
    result.bootstop = frequency_criterion(replicate_trees);
  }
}

// The paper's communication pattern, verbatim: Barrier after the bootstraps,
// MAXLOC + Bcast of the winner at the end, report-only gathers. Any rank
// death hangs or aborts — that is the pre-fault-tolerance contract.
HybridResult run_plain(const JobContext& ctx, mpi::Comm& comm,
                       const PatternAlignment& patterns,
                       const HybridOptions& options, Workforce* crew) {
  const int rank = comm.rank();
  const int nranks = comm.size();

  RankReport report = run_comprehensive_rank(
      ctx, patterns, options.analysis, rank, nranks, crew,
      [&comm] { comm.barrier(); });

  HybridResult result;

  // End-of-run synchronization: the winner selection plus the report-only
  // gathers. On a rank that finished early this is mostly waiting on peers,
  // so it is a component of its own in the breakdown ("sync").
  std::vector<std::vector<double>> all_times, all_lnls;
  std::vector<std::string> all_bootstraps;
  {
    obs::ScopedPhase phase("sync");
    ctx.live_for_rank(rank).begin_stage("sync");

    // Select the global winner (MPI_MAXLOC) and broadcast its tree — the
    // paper's "call to MPI_Bcast" that ends the run.
    const auto best = comm.allreduce_maxloc(report.best_lnl);
    result.best_lnl = best.value;
    result.winner_rank = best.rank;
    result.best_tree_newick = report.best_tree_newick;
    comm.bcast_string(result.best_tree_newick, best.rank);

    // Report-only gathers (outside the paper's hot path): stage times,
    // per-rank final likelihoods, and the replicates for support values.
    const std::vector<double> my_times = {report.times.bootstrap,
                                          report.times.fast, report.times.slow,
                                          report.times.thorough};
    all_times = comm.gather_doubles(my_times, 0);
    all_lnls = comm.gather_doubles({report.best_lnl}, 0);

    std::string my_bootstraps;
    for (const auto& nwk : report.bootstrap_newicks) {
      my_bootstraps += nwk;
      my_bootstraps += '\n';
    }
    all_bootstraps = comm.gather_strings(my_bootstraps, 0);
  }

  if (rank == 0) {
    for (const auto& t : all_times) {
      RAXH_ASSERT(t.size() == 4);
      result.rank_times.push_back(StageTimes{t[0], t[1], t[2], t[3]});
    }
    for (const auto& l : all_lnls) result.rank_lnls.push_back(l.at(0));
    finalize_on_root(ctx, patterns, options, all_bootstraps, result);
  }
  return result;
}

// The fault-tolerant driver. Same work, star-shaped communication: rank 0
// plays job controller, detects dead peers through RankFailed, and re-grants
// their unfinished *logical* shares round-robin to survivors (or runs them
// itself when no worker is left). Logical share k always runs with seeds
// derived from k — never from the physical rank executing it — so the final
// tree and lnL are bit-identical to a fault-free run.
HybridResult run_fault_tolerant(const JobContext& ctx, mpi::Comm& comm,
                                const PatternAlignment& patterns,
                                const HybridOptions& options, Workforce* crew) {
  const int rank = comm.rank();
  const int nranks = comm.size();
  const auto tick = [&comm] { comm.fault_tick(); };

  if (rank != 0) {
    // Worker: run the original share (with the FT barrier in the paper's
    // barrier slot), then serve REGRANT orders until FINISH arrives. A
    // re-granted share skips the barrier — that synchronization point is
    // already globally past.
    const auto run_share = [&](int logical, bool with_barrier) {
      std::function<void()> barrier;
      if (with_barrier)
        barrier = [&comm] {
          static const std::uint32_t kFlightName =
              obs::flight::name_id("ft.barrier");
          const std::uint64_t start = obs::now_ns();
          obs::flight::record(obs::flight::Kind::kCollBegin, kFlightName);
          comm.send(0, kFtBarrierTag, {});
          comm.recv(0, kFtBarrierTag);
          obs::flight::record(obs::flight::Kind::kCollEnd, kFlightName,
                              obs::now_ns() - start);
        };
      const RankReport rep =
          run_comprehensive_rank(ctx, patterns, options.analysis, logical,
                                 nranks, crew, barrier, {}, tick);
      comm.send(0, kFtReportTag, pack_report(rep));
    };
    run_share(rank, /*with_barrier=*/true);

    HybridResult result;
    for (;;) {
      const mpi::Bytes msg = comm.recv(0, kFtControlTag);
      mpi::Unpacker u(msg);
      const auto op = u.get<std::uint8_t>();
      if (op == kCtrlRegrant) {
        const int logical = u.get<std::int32_t>();
        obs::flight::record(obs::flight::Kind::kRegrant,
                            static_cast<std::uint64_t>(logical),
                            static_cast<std::uint64_t>(rank));
        log_info("rank %d re-granted logical share %d", rank, logical);
        run_share(logical, /*with_barrier=*/false);
        continue;
      }
      RAXH_ASSERT(op == kCtrlFinish);
      result.best_tree_newick = u.get_string();
      result.best_lnl = u.get<double>();
      result.winner_rank = u.get<std::int32_t>();
      const auto nfailed = u.get<std::uint64_t>();
      for (std::uint64_t i = 0; i < nfailed; ++i)
        result.failed_ranks.push_back(u.get<std::int32_t>());
      result.resumed_replicates = u.get<std::int32_t>();
      return result;
    }
  }

  // --- Rank 0: controller + its own logical share 0 ---
  std::vector<bool> dead(nranks, false);
  const auto mark_dead = [&](int w, const char* where) {
    if (dead[w]) return;
    dead[w] = true;
    obs::count(obs::Counter::kRankFailures);
    obs::flight::record(obs::flight::Kind::kRankDead,
                        static_cast<std::uint64_t>(w),
                        obs::flight::name_id(where));
    log_warn("rank %d failed (detected at %s); its work will be re-granted",
             w, where);
    // Sweep the black boxes: persist the survivor's own ring so the failure
    // context is on disk even if recovery later wedges, then read the dead
    // rank's box (it dumps before its death is observable) and name its
    // last completed comm op in the recovery log.
    obs::flight::dump_now(comm.rank(), "peer failure detected");
    const std::string box = obs::flight::dump_path_for_rank(w);
    if (const auto last = obs::pm::last_op_summary(box, w))
      log_warn("rank %d black box: %s", w, last->c_str());
    else
      log_warn("rank %d black box not available at %s", w, box.c_str());
  };

  // Reports keyed by *logical* rank; a missing entry is an unfinished share.
  std::vector<std::optional<RankReport>> reports(nranks);
  const auto try_recv_report = [&](int w) {
    try {
      RankReport rep = unpack_report(comm.recv(w, kFtReportTag));
      RAXH_ASSERT(rep.rank >= 0 && rep.rank < nranks);
      reports[rep.rank] = std::move(rep);
    } catch (const mpi::RankFailed&) {
      mark_dead(w, "report collection");
    }
  };

  // Overlapped report collection: one report irecv per surviving worker is
  // posted right after the barrier release, and the tick callback harvests
  // whichever have arrived while rank 0 is still running its own share. A
  // worker that finishes early hands its report over immediately instead of
  // waiting for the controller — the irecv/test overlap the tree collectives
  // refactor added to minimpi.
  std::vector<std::optional<mpi::Comm::Request>> pending_reports(nranks);
  const auto harvest_ready_reports = [&] {
    for (int w = 1; w < nranks; ++w) {
      if (!pending_reports[w]) continue;
      try {
        if (!comm.test(*pending_reports[w])) continue;
        RankReport rep = unpack_report(pending_reports[w]->payload());
        RAXH_ASSERT(rep.rank >= 0 && rep.rank < nranks);
        reports[rep.rank] = std::move(rep);
      } catch (const mpi::RankFailed&) {
        mark_dead(w, "report collection");
      }
      pending_reports[w].reset();
    }
  };
  const auto root_tick = [&] {
    comm.fault_tick();
    harvest_ready_reports();
  };

  RankReport own = run_comprehensive_rank(
      ctx, patterns, options.analysis, 0, nranks, crew,
      [&] {
        // The FT barrier: collect an arrival from every worker still
        // believed live (a failed recv marks the worker dead — its share is
        // re-granted later), then release the survivors.
        static const std::uint32_t kFlightName =
            obs::flight::name_id("ft.barrier");
        const std::uint64_t start = obs::now_ns();
        obs::flight::record(obs::flight::Kind::kCollBegin, kFlightName);
        for (int w = 1; w < nranks; ++w) {
          if (dead[w]) continue;
          try {
            comm.recv(w, kFtBarrierTag);
          } catch (const mpi::RankFailed&) {
            mark_dead(w, "barrier");
          }
        }
        for (int w = 1; w < nranks; ++w) {
          if (dead[w]) continue;
          try {
            comm.send(w, kFtBarrierTag, {});
          } catch (const mpi::RankFailed&) {
            mark_dead(w, "barrier release");
          }
        }
        // Every released worker owes exactly one first-round report next;
        // post its irecv now so the tick callback can harvest it mid-share.
        for (int w = 1; w < nranks; ++w)
          if (!dead[w]) pending_reports[w] = comm.irecv(w, kFtReportTag);
        obs::flight::record(obs::flight::Kind::kCollEnd, kFlightName,
                            obs::now_ns() - start);
      },
      {}, root_tick);
  reports[0] = std::move(own);

  HybridResult result;
  {
    obs::ScopedPhase phase("sync");
    ctx.live_for_rank(0).begin_stage("sync");

    // Drain whatever first-round reports the tick harvests did not already
    // pick up during rank 0's own share (typically the stragglers).
    for (int w = 1; w < nranks; ++w) {
      if (!pending_reports[w]) continue;
      try {
        RankReport rep = unpack_report(comm.wait(*pending_reports[w]));
        RAXH_ASSERT(rep.rank >= 0 && rep.rank < nranks);
        reports[rep.rank] = std::move(rep);
      } catch (const mpi::RankFailed&) {
        mark_dead(w, "report collection");
      }
      pending_reports[w].reset();
    }

    // Re-grant loop: hand each unfinished logical share to the next live
    // worker, round-robin, until every share has reported. A worker that
    // dies mid-regrant just sends the share back into the pool. With no
    // workers left the controller runs the share itself — the run degrades
    // to serial rather than failing.
    const auto next_pending = [&] {
      for (int k = 0; k < nranks; ++k)
        if (!reports[k]) return k;
      return -1;
    };
    int cursor = 1;
    for (int k = next_pending(); k != -1; k = next_pending()) {
      int w = -1;
      for (int i = 0; i < nranks - 1; ++i) {
        const int cand = 1 + (cursor - 1 + i) % (nranks - 1);
        if (!dead[cand]) {
          w = cand;
          break;
        }
      }
      obs::count(obs::Counter::kUnitsRegranted);
      if (w == -1) {
        log_warn("no surviving workers; controller re-running share %d", k);
        reports[k] = run_comprehensive_rank(ctx, patterns, options.analysis,
                                            k, nranks, crew, {}, {}, tick);
        continue;
      }
      cursor = 1 + w % (nranks - 1);
      obs::flight::record(obs::flight::Kind::kRegrant,
                          static_cast<std::uint64_t>(k),
                          static_cast<std::uint64_t>(w));
      log_info("re-granting logical share %d to rank %d", k, w);
      mpi::Packer order;
      order.put<std::uint8_t>(kCtrlRegrant);
      order.put<std::int32_t>(k);
      try {
        comm.send(w, kFtControlTag, order.take());
      } catch (const mpi::RankFailed&) {
        mark_dead(w, "regrant order");
        continue;
      }
      try_recv_report(w);  // a failure leaves the share pending; loop retries
    }

    // Deterministic winner selection over logical shares — the same strict
    // max / lowest-rank-wins scan allreduce_maxloc performs, so the
    // fault-tolerant path picks the identical winner.
    int winner = 0;
    for (int k = 1; k < nranks; ++k)
      if (reports[k]->best_lnl > reports[winner]->best_lnl) winner = k;
    result.best_lnl = reports[winner]->best_lnl;
    result.winner_rank = winner;
    result.best_tree_newick = reports[winner]->best_tree_newick;
    for (int w = 1; w < nranks; ++w)
      if (dead[w]) result.failed_ranks.push_back(w);
    for (int k = 0; k < nranks; ++k)
      result.resumed_replicates += reports[k]->resumed_replicates;

    // FINISH to the survivors (the Bcast's replacement). A send can still
    // hit a rank that died after its last report; that only shrinks the
    // audience.
    mpi::Packer fin;
    fin.put<std::uint8_t>(kCtrlFinish);
    fin.put_string(result.best_tree_newick);
    fin.put(result.best_lnl);
    fin.put<std::int32_t>(result.winner_rank);
    fin.put<std::uint64_t>(result.failed_ranks.size());
    for (const int f : result.failed_ranks) fin.put<std::int32_t>(f);
    fin.put<std::int32_t>(result.resumed_replicates);
    const mpi::Bytes fin_bytes = fin.take();
    for (int w = 1; w < nranks; ++w) {
      if (dead[w]) continue;
      try {
        comm.send(w, kFtControlTag, fin_bytes);
      } catch (const mpi::RankFailed&) {
        mark_dead(w, "finish broadcast");
      }
    }
  }

  // Rank 0 holds every share's report, so the report-only data needs no
  // gathers: assemble it locally, in logical-rank order.
  std::vector<std::string> blobs;
  for (int k = 0; k < nranks; ++k) {
    result.rank_times.push_back(reports[k]->times);
    result.rank_lnls.push_back(reports[k]->best_lnl);
    std::string blob;
    for (const auto& nwk : reports[k]->bootstrap_newicks) {
      blob += nwk;
      blob += '\n';
    }
    blobs.push_back(std::move(blob));
  }
  finalize_on_root(ctx, patterns, options, blobs, result);
  return result;
}

}  // namespace

HybridResult run_hybrid_comprehensive(const JobContext& ctx, mpi::Comm& comm,
                                      const PatternAlignment& patterns,
                                      const HybridOptions& options) {
  const int rank = comm.rank();
  const int nranks = comm.size();
  // Process-wide rank attribution (logger prefix, obs counter tagging) is
  // only safe to touch when this process hosts exactly one rank of one job —
  // a served job shares the daemon process with its siblings.
  if (ctx.owns_process_globals) {
    Logger::instance().set_rank(nranks > 1 ? rank : -1);
    obs::set_rank(rank);
  }
  // Per-job attribution (served jobs): bind this rank thread to the job's
  // telemetry block on trace lane `rank`. Bound before the crew spawns so
  // the workers inherit the binding. No-op (null scope) for one-shot runs.
  obs::JobScope job_attribution(ctx.obs_job, rank);
  if (ctx.obs_job)
    ctx.obs_job->set_lane_name(rank, "rank " + std::to_string(rank));

  Workforce crew(options.analysis.num_threads);
  Workforce* crew_ptr =
      options.analysis.num_threads > 1 ? &crew : nullptr;

  HybridResult result =
      options.fault_tolerant
          ? run_fault_tolerant(ctx, comm, patterns, options, crew_ptr)
          : run_plain(ctx, comm, patterns, options, crew_ptr);

  ctx.live_for_rank(rank).end_run();
  if (ctx.owns_process_globals) Logger::instance().set_rank(-1);
  return result;
}

HybridResult run_hybrid_comprehensive(mpi::Comm& comm,
                                      const PatternAlignment& patterns,
                                      const HybridOptions& options) {
  return run_hybrid_comprehensive(default_job_context(), comm, patterns,
                                  options);
}

}  // namespace raxh
