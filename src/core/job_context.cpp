#include "core/job_context.h"

#include "obs/live.h"
#include "util/check.h"

namespace raxh {

obs::LiveModel& JobContext::live_for_rank(int rank) const {
  if (live_models.empty()) return obs::default_live_model();
  RAXH_EXPECTS(rank >= 0 &&
               rank < static_cast<int>(live_models.size()) &&
               live_models[static_cast<std::size_t>(rank)] != nullptr);
  return *live_models[static_cast<std::size_t>(rank)];
}

const JobContext& default_job_context() {
  static const JobContext* ctx = new JobContext;  // leaked: teardown safe
  return *ctx;
}

}  // namespace raxh
