// The coarse-grained work-partitioning law of the hybrid comprehensive
// analysis (paper Table 2 + §2.3). Each rank receives an equal share:
//
//   bootstraps_per_rank = ceil(N / p)           (total can exceed N)
//   fast_per_rank       = ceil(bootstraps_per_rank / 5)
//   slow_per_rank       = ceil(10 / p)          (10 = serial slow-search count)
//   thorough_per_rank   = 1                     (=> no MPI speedup in stage 4)
//
// This law reproduces every row of Table 2 exactly; bench_table2_schedule
// asserts that.
#pragma once

namespace raxh {

inline constexpr int kFastSearchDivisor = 5;   // fast searches = bootstraps/5
inline constexpr int kSerialSlowSearches = 10;  // slow searches in serial code

struct StageCounts {
  int bootstraps = 0;
  int fast_searches = 0;
  int slow_searches = 0;
  int thorough_searches = 0;
};

struct HybridSchedule {
  int processes = 1;
  int specified_bootstraps = 100;
  StageCounts per_rank;

  [[nodiscard]] StageCounts totals() const {
    return StageCounts{per_rank.bootstraps * processes,
                       per_rank.fast_searches * processes,
                       per_rank.slow_searches * processes,
                       per_rank.thorough_searches * processes};
  }
};

// Compute the schedule for `specified_bootstraps` over `processes` ranks.
// Degenerate inputs (very small N) clamp so that fast >= slow >= 1 holds.
HybridSchedule make_schedule(int specified_bootstraps, int processes);

// Ceiling division helper used throughout the scheduling code.
constexpr int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace raxh
