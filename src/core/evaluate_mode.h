// Tree evaluation mode (RAxML "-f e"): optimize model parameters and branch
// lengths on a FIXED topology and report the likelihood — used for comparing
// candidate topologies under identical model treatment, and by the quality
// experiments (Table 6 uses GAMMA-evaluated final trees).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "bio/patterns.h"
#include "parallel/workforce.h"

namespace raxh {

struct EvaluateOptions {
  bool use_gamma = true;   // GAMMA (4 cat) if true, CAT otherwise
  double initial_alpha = 0.5;
  double epsilon = 0.05;   // lnL convergence threshold per round
  int max_rounds = 8;
  int num_threads = 1;
};

struct EvaluateResult {
  double lnl = 0.0;
  double alpha = 0.0;  // fitted GAMMA shape (0 for CAT)
  std::array<double, 6> gtr_rates{};
  std::array<double, 4> frequencies{};
  std::string optimized_tree_newick;  // with fitted branch lengths
  std::vector<double> per_pattern_lnl;
};

// Optimize everything except the topology of `newick` and evaluate it.
// Throws std::runtime_error if the newick does not cover the alignment.
EvaluateResult evaluate_fixed_topology(const PatternAlignment& patterns,
                                       const std::string& newick,
                                       const EvaluateOptions& options = {});

}  // namespace raxh
