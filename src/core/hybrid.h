// The hybrid MPI/Pthreads driver: binds one minimpi rank to one thread crew
// and runs the comprehensive analysis with the paper's communication pattern —
// a Barrier after the bootstrap stage and a Bcast of the winning tree at the
// end are the only noteworthy communications (§2.1).
#pragma once

#include <string>
#include <vector>

#include "bio/patterns.h"
#include "core/comprehensive.h"
#include "minimpi/comm.h"
#include "tree/bootstopping.h"

namespace raxh {

struct HybridResult {
  // Valid on every rank (Bcast, or the FINISH message in fault-tolerant
  // mode):
  std::string best_tree_newick;
  double best_lnl = 0.0;
  int winner_rank = 0;  // logical rank whose share produced the best tree

  // Fault-tolerant mode only: physical ranks that died during the run (as
  // known when the run finished) and the total number of bootstrap
  // replicates restored from checkpoints rather than recomputed.
  std::vector<int> failed_ranks;
  int resumed_replicates = 0;

  // Valid on rank 0 only (Gather; report-only data, not part of the paper's
  // minimal communication pattern):
  std::vector<StageTimes> rank_times;
  std::vector<double> rank_lnls;
  std::string support_tree_newick;  // best tree with bootstrap support values
  int total_bootstrap_trees = 0;
  BootstopResult bootstop;  // FC test over all replicates (extension)
};

struct HybridOptions {
  ComprehensiveOptions analysis;
  bool compute_support = true;   // build the BS-annotated best tree on rank 0
  bool run_bootstopping = false;  // run the FC convergence test on rank 0
  // Survive rank death: rank 0 coordinates a star-shaped protocol instead of
  // the bare collectives, detects dead peers via RankFailed, and re-grants
  // their unfinished logical shares to survivors. Because a share's results
  // depend only on its *logical* rank (seed + 10000*r), a re-granted share
  // reproduces the dead rank's results bit-identically, so the final tree
  // and lnL equal the fault-free run's.
  bool fault_tolerant = false;
};

// Collective: every rank of `comm` must call. Each rank creates its own
// `analysis.num_threads`-wide crew.
//
// The job-aware primary form. `ctx` must be the same object (or an
// identically-configured one) on every rank; when ctx.owns_process_globals
// is false the driver leaves the process-wide logger/obs rank attribution
// alone, which is required when several jobs (or several thread-backend
// ranks of one job) share a process.
HybridResult run_hybrid_comprehensive(const JobContext& ctx, mpi::Comm& comm,
                                      const PatternAlignment& patterns,
                                      const HybridOptions& options);

// Legacy single-job form: forwards with default_job_context().
HybridResult run_hybrid_comprehensive(mpi::Comm& comm,
                                      const PatternAlignment& patterns,
                                      const HybridOptions& options);

}  // namespace raxh
