#include "core/evaluate_mode.h"

#include "likelihood/engine.h"
#include "tree/tree.h"
#include "util/check.h"

namespace raxh {

EvaluateResult evaluate_fixed_topology(const PatternAlignment& patterns,
                                       const std::string& newick,
                                       const EvaluateOptions& options) {
  Tree tree = Tree::parse_newick(newick, patterns.names());

  Workforce crew(options.num_threads);
  Workforce* crew_ptr = options.num_threads > 1 ? &crew : nullptr;

  GtrParams gtr;
  gtr.freqs = patterns.empirical_frequencies();
  LikelihoodEngine engine(
      patterns, gtr,
      options.use_gamma ? RateModel::gamma(options.initial_alpha)
                        : RateModel::cat(patterns.num_patterns()),
      crew_ptr);

  EvaluateResult result;
  result.lnl = engine.optimize_all(tree, options.epsilon, options.max_rounds);
  result.alpha =
      options.use_gamma ? engine.rates().alpha() : 0.0;
  result.gtr_rates = engine.gtr().rates;
  result.frequencies = engine.gtr().freqs;
  result.optimized_tree_newick = tree.to_newick(patterns.names());
  result.per_pattern_lnl.resize(patterns.num_patterns());
  engine.per_pattern_lnl(tree, result.per_pattern_lnl);
  return result;
}

}  // namespace raxh
