#include "core/schedule.h"

#include <algorithm>

#include "util/check.h"

namespace raxh {

HybridSchedule make_schedule(int specified_bootstraps, int processes) {
  RAXH_EXPECTS(specified_bootstraps >= 1);
  RAXH_EXPECTS(processes >= 1);

  HybridSchedule s;
  s.processes = processes;
  s.specified_bootstraps = specified_bootstraps;

  auto& pr = s.per_rank;
  pr.bootstraps = ceil_div(specified_bootstraps, processes);
  pr.fast_searches = ceil_div(pr.bootstraps, kFastSearchDivisor);
  pr.slow_searches = ceil_div(kSerialSlowSearches, processes);
  pr.thorough_searches = 1;

  // Guard degenerate tiny-N cases (not reachable from Table 2's inputs):
  // can't select more trees than the previous stage produced.
  pr.fast_searches = std::min(pr.fast_searches, pr.bootstraps);
  pr.slow_searches = std::clamp(pr.slow_searches, 1, pr.fast_searches);
  return s;
}

}  // namespace raxh
