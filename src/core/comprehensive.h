// One rank's share of the comprehensive analysis ("-f a"): rapid bootstraps,
// fast ML searches started from the best bootstrap trees, slow ML searches on
// the locally best fast trees, and one thorough ML search from the local best
// slow tree (paper §2.1: *every* rank runs a thorough search — the extra,
// useful work that often improves the final likelihood, Table 6).
//
// Behavioural deltas of the MPI code vs. serial, all implemented here:
//  * local (communication-free) sorting between fast and slow stages (§2.2),
//  * per-rank equal work shares from the Table 2 law (§2.3),
//  * reproducible per-rank seeds: base seed + 10000 * rank (§2.4).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bio/patterns.h"
#include "core/job_context.h"
#include "core/schedule.h"
#include "parallel/workforce.h"
#include "search/spr.h"
#include "util/prng.h"

namespace raxh {

struct ComprehensiveOptions {
  int specified_bootstraps = 100;    // -N
  std::int64_t parsimony_seed = 12345;  // -p
  std::int64_t bootstrap_seed = 12345;  // -x
  int num_threads = 1;               // fine-grained crew size (-T)
  double initial_alpha = 0.5;        // GAMMA shape for the final evaluation
  // When non-empty, each logical rank persists its bootstrap progress to
  // <dir>/rank<r>.ckpt after every replicate and resumes from it on the next
  // run — bit-identically, so a restarted (or re-granted) share produces the
  // same replicates an uninterrupted run would have.
  std::string checkpoint_dir;
  // Search intensity knobs (tests shrink these for speed).
  SearchSettings fast = fast_settings();
  SearchSettings slow = slow_settings();
  SearchSettings thorough = thorough_settings();
};

struct StageTimes {
  double bootstrap = 0.0;
  double fast = 0.0;
  double slow = 0.0;
  double thorough = 0.0;

  [[nodiscard]] double total() const {
    return bootstrap + fast + slow + thorough;
  }
};

struct RankReport {
  int rank = 0;
  StageCounts counts;                 // this rank's work share
  std::string best_tree_newick;       // thorough-search result
  double best_lnl = 0.0;              // final GAMMA lnL of that tree
  double cat_lnl = 0.0;               // CAT lnL at the end of the search
  StageTimes times;
  std::vector<std::string> bootstrap_newicks;  // this rank's replicates
  int resumed_replicates = 0;         // replicates restored from a checkpoint
};

// Run rank `rank` of `nranks`. `after_bootstraps` fires between stages 1 and
// 2 — the hybrid driver hangs the barrier there (the paper's only mid-run
// synchronization point). `crew` may be nullptr (serial fine grain).
//
// `select_thorough` ablates the paper's §2.1 design decision: it receives the
// rank's best slow-search lnL and decides whether this rank runs stage 4.
// Default (unset) = always run it, the paper's behaviour; the ablation bench
// wires it to an allreduce so only the globally best rank searches (the
// serial-equivalent policy). A rank that skips stage 4 reports its best slow
// tree, GAMMA-evaluated.
//
// `on_unit` fires after every completed work unit (each bootstrap replicate
// and each fast/slow/thorough search). The fault-tolerant driver wires it to
// Comm::fault_tick so seeded fault plans can strike mid-stage; it must not
// affect the computation.
// The job-aware primary form: `ctx` supplies the job id (namespacing the
// checkpoint files), the cancel token (polled per work unit and threaded
// into every search), the live model progress reports land in, and —
// when ctx.use_seed_chain — the seed chain. default_job_context()
// reproduces the legacy behaviour bit-identically.
RankReport run_comprehensive_rank(
    const JobContext& ctx, const PatternAlignment& patterns,
    const ComprehensiveOptions& options, int rank, int nranks, Workforce* crew,
    const std::function<void()>& after_bootstraps = {},
    const std::function<bool(double)>& select_thorough = {},
    const std::function<void()>& on_unit = {});

// Legacy single-job form: forwards to the above with default_job_context().
RankReport run_comprehensive_rank(
    const PatternAlignment& patterns, const ComprehensiveOptions& options,
    int rank, int nranks, Workforce* crew,
    const std::function<void()>& after_bootstraps = {},
    const std::function<bool(double)>& select_thorough = {},
    const std::function<void()>& on_unit = {});

}  // namespace raxh
