// Checkpoint persistence for long bootstrap runs (RAxML grew an equivalent
// facility for multi-day analyses). A checkpoint file stores a
// BootstrapSnapshot — PRNG states, the carried tree, finished replicates —
// in a line-oriented text format with a version header.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "search/bootstrap.h"

namespace raxh {

// Write `snapshot` to `path` atomically (write temp + rename). Throws
// std::runtime_error on I/O failure.
void save_bootstrap_checkpoint(const std::string& path,
                               const BootstrapSnapshot& snapshot);

// Read a checkpoint; nullopt if the file does not exist. Throws
// std::runtime_error on a malformed or version-incompatible file.
std::optional<BootstrapSnapshot> load_bootstrap_checkpoint(
    const std::string& path);

// Convenience: a persist callback for RapidBootstrap::run_resumable that
// saves to `path` after every replicate.
std::function<void(const BootstrapSnapshot&)> checkpoint_to(std::string path);

// The per-logical-rank checkpoint file inside a checkpoint directory. Keyed
// by *logical* rank so a survivor re-granted a dead rank's bootstraps finds
// (and resumes) the dead rank's snapshot.
std::string rank_checkpoint_path(const std::string& dir, int rank);

// Job-namespaced variant: dir/job<id>.rank<r>.ckpt. Rank-only keying let two
// concurrent jobs sharing one checkpoint directory silently clobber (and
// cross-resume!) each other's snapshots; every job-aware caller must use
// this form. An empty job id degrades to the legacy rank-only path; the id
// is sanitized (obs::sanitize_job_id) so it can never introduce a path
// component.
std::string rank_checkpoint_path(const std::string& dir,
                                 const std::string& job_id, int rank);

}  // namespace raxh
