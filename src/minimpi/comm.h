// minimpi: the message-passing runtime hosting the coarse-grained level of
// the hybrid parallelization. The paper's MPI usage is deliberately minimal —
// per-rank independent work, one barrier after the bootstrap stage, one
// broadcast of the winning tree at the end — so this runtime implements
// exactly that contract: blocking tagged point-to-point plus the collectives
// Barrier / Bcast / Allreduce / Gather built on top of it.
//
// Two backends share the Comm interface:
//  * ProcessComm — ranks are forked OS processes wired by a full mesh of
//    Unix socketpairs (no shared memory; the real coarse-grained deployment).
//  * ThreadComm  — ranks are threads with in-process channels (deterministic
//    unit testing).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace raxh::mpi {

using Bytes = std::vector<std::uint8_t>;

class Comm {
 public:
  virtual ~Comm() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  // --- per-rank communication statistics ---
  // Counted at the send/recv layer of the base class, so both backends report
  // identical numbers for identical protocols. Attribution is to the
  // *outermost* collective in flight (e.g. the broadcast inside an allreduce
  // counts as reduce traffic); traffic outside any collective is p2p.
  struct OpStats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_recv = 0;
    std::uint64_t bytes_recv = 0;
  };
  struct Stats {
    OpStats p2p, barrier, bcast, reduce, gather;
    std::uint64_t barrier_wait_ns = 0;  // time blocked inside barrier()
    [[nodiscard]] OpStats total() const;
    [[nodiscard]] std::string to_json() const;  // {"comm":{...}} section
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  // Blocking tagged point-to-point. recv blocks until a message with the
  // exact (src, tag) arrives; messages from one src preserve send order.
  void send(int dest, int tag, const Bytes& payload);
  Bytes recv(int src, int tag);

  // --- collectives (implemented over send/recv; every rank must call) ---
  void barrier();
  void bcast(Bytes& data, int root);
  void bcast_string(std::string& data, int root);

  // Max over all ranks, plus the lowest rank attaining it (MPI_MAXLOC).
  struct MaxLoc {
    double value;
    int rank;
  };
  MaxLoc allreduce_maxloc(double value);
  double allreduce_sum(double value);
  double allreduce_max(double value);
  long allreduce_sum_long(long value);

  // Root receives every rank's vector (in rank order); others get {}.
  std::vector<std::vector<double>> gather_doubles(
      const std::vector<double>& mine, int root);
  std::vector<std::string> gather_strings(const std::string& mine, int root);

 protected:
  // Backend transport, wrapped by the counting send()/recv() above.
  virtual void do_send(int dest, int tag, const Bytes& payload) = 0;
  virtual Bytes do_recv(int src, int tag) = 0;

  static constexpr int kTagBarrier = 1000000;
  static constexpr int kTagBcast = 1000001;
  static constexpr int kTagReduce = 1000002;
  static constexpr int kTagGather = 1000003;

 private:
  // Scoped attribution: routes send/recv counts to one collective's OpStats.
  // Outermost-wins, so nested collectives keep the caller's attribution.
  class ScopedOp {
   public:
    ScopedOp(Comm& comm, OpStats& op) : comm_(comm), saved_(comm.current_op_) {
      if (comm_.current_op_ == &comm_.stats_.p2p) comm_.current_op_ = &op;
    }
    ~ScopedOp() { comm_.current_op_ = saved_; }

   private:
    Comm& comm_;
    OpStats* saved_;
  };

  Stats stats_;
  OpStats* current_op_ = &stats_.p2p;
};

// --- serialization helpers for payloads ---

class Packer {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    data_.insert(data_.end(), p, p + sizeof(T));
  }
  void put_string(const std::string& s);
  void put_doubles(const std::vector<double>& v);

  [[nodiscard]] const Bytes& bytes() const { return data_; }
  Bytes take() { return std::move(data_); }

 private:
  Bytes data_;
};

class Unpacker {
 public:
  explicit Unpacker(const Bytes& data) : data_(&data) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read(reinterpret_cast<std::uint8_t*>(&value), sizeof(T));
    return value;
  }
  std::string get_string();
  std::vector<double> get_doubles();

  [[nodiscard]] bool exhausted() const { return offset_ == data_->size(); }

 private:
  void read(std::uint8_t* out, std::size_t n);

  const Bytes* data_;
  std::size_t offset_ = 0;
};

// Run `fn(comm)` on `nranks` thread-backed ranks; returns when all finish.
// Exceptions escaping a rank abort the program (as an MPI error would).
void run_thread_ranks(int nranks, const std::function<void(Comm&)>& fn);

// Run `fn(comm)` on `nranks` process-backed ranks. The calling process
// becomes rank 0 (its fn return is the caller's); ranks 1.. are forked
// children that _exit after fn. Call before creating any threads.
void run_process_ranks(int nranks, const std::function<void(Comm&)>& fn);

}  // namespace raxh::mpi
