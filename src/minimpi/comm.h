// minimpi: the message-passing runtime hosting the coarse-grained level of
// the hybrid parallelization. The paper's MPI usage is deliberately minimal —
// per-rank independent work, one barrier after the bootstrap stage, one
// broadcast of the winning tree at the end — so this runtime implements
// exactly that contract: blocking tagged point-to-point, nonblocking
// isend/irecv with wait/test, plus the collectives Barrier / Bcast /
// Allreduce / Gather built on top of it.
//
// Collectives run one of two algorithms (CommOptions::collectives):
//  * kTree (default) — latency-scalable: dissemination barrier, binomial
//    broadcast, binomial gather-and-fold reduces. Critical path O(log p).
//  * kStar — everyone talks to rank 0; O(p) on rank 0. Kept selectable for
//    A/B benching (the pre-scale behaviour).
// Both fold reduction operands in ascending rank order, so every collective
// result is bit-identical across algorithms, backends, and transports — the
// reproducibility contract the chaos suite pins down.
//
// Two backends share the Comm interface:
//  * ProcessComm — ranks are forked OS processes wired by a full mesh of
//    Unix socketpairs (the real coarse-grained deployment), or by per-pair
//    shared-memory rings with the socketpairs retained as liveness channels
//    (Transport::kShm).
//  * ThreadComm  — ranks are threads with in-process channels (deterministic
//    unit testing), or the same shm rings placed in heap memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.h"

namespace raxh::obs::comm {
struct Block;  // comm-plane accumulation block (obs/comm_obs.h)
}  // namespace raxh::obs::comm

namespace raxh::mpi {

using Bytes = std::vector<std::uint8_t>;

// Thrown when a communication op touches a rank that is gone: the process
// backend maps EOF / EPIPE / ECONNRESET on the mesh to this, the thread
// backend throws it when a peer's rank thread has exited and its channel is
// drained. Fault-tolerant drivers catch it and re-grant the dead rank's
// work; everything else treats it as fatal (the harnesses print a clean
// error instead of hanging forever on a dead peer).
class RankFailed : public std::runtime_error {
 public:
  RankFailed(int failed_rank, const std::string& what)
      : std::runtime_error(what), rank(failed_rank) {}
  int rank;
};

// The unwind signal for an *injected* rank death (minimpi/fault.h): thrown
// through the dying rank's stack; the rank harnesses catch it, mark the rank
// dead, and let the remaining ranks observe RankFailed. Not an error type —
// it deliberately does not derive from std::exception so generic handlers
// cannot swallow it.
struct RankDeath {
  int rank;
};

// Exit status of a process-backed rank that died by fault injection; the
// parent in run_process_ranks treats it as a rank failure, not a crash.
inline constexpr int kRankDeathExit = 86;

// Collective algorithm: tree is the scalable default, star the O(p)
// pre-scale baseline kept for A/B comparisons (--collectives=star|tree).
enum class CollectiveAlgo { kStar, kTree };

// Per-pair transport of a rank mesh (--transport=socketpair|shm). For the
// thread backend, kSocketpair selects its native in-process channel mesh
// (the thread analogue of the socketpair mesh).
enum class Transport { kSocketpair, kShm };

// How to wire a rank mesh; accepted by run_thread_ranks/run_process_ranks.
struct CommOptions {
  CollectiveAlgo collectives = CollectiveAlgo::kTree;
  Transport transport = Transport::kSocketpair;
  // Per-ordered-pair ring capacity (kShm). Bounds buffering, not message
  // size: larger messages stream through the ring in chunks.
  std::size_t shm_ring_bytes = std::size_t{1} << 16;
};

class Comm {
 public:
  // Retires this comm's comm-plane block (obs/comm_obs.h) so its traffic
  // stays visible in process-wide snapshots after the comm is gone.
  virtual ~Comm();

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  // --- per-rank communication statistics ---
  // Counted at the send/recv layer of the base class, so both backends report
  // identical numbers for identical protocols. Attribution is to the
  // *outermost* collective in flight (e.g. the broadcast inside an allreduce
  // counts as reduce traffic); traffic outside any collective is p2p.
  struct OpStats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_recv = 0;
    std::uint64_t bytes_recv = 0;
  };
  struct Stats {
    OpStats p2p, barrier, bcast, reduce, gather;
    std::uint64_t barrier_wait_ns = 0;  // time blocked inside barrier()
    // Fault-plan sleeps this rank served (FaultyComm `delay` actions). Kept
    // separate — and subtracted from this rank's own latency samples — so
    // chaos runs don't pollute p95/p99 comm latency in --metrics-out.
    std::uint64_t synthetic_delay_ns = 0;
    [[nodiscard]] OpStats total() const;
    [[nodiscard]] std::string to_json() const;  // {"comm":{...}} section
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  // Resetting while a collective is in flight would zero the OpStats its
  // ScopedOp still targets and silently mis-attribute the rest of that
  // collective, so it is a contract violation (asserted), not a rebind.
  void reset_stats() {
    RAXH_EXPECTS(active_scoped_ops_ == 0);
    stats_ = Stats{};
  }

  // Collective algorithm selection; run_*_ranks applies CommOptions, and
  // decorators copy the inner comm's choice. Switch only between
  // collectives, never inside one.
  void set_collectives(CollectiveAlgo algo) { collectives_ = algo; }
  [[nodiscard]] CollectiveAlgo collectives() const { return collectives_; }

  // Blocking tagged point-to-point. recv blocks until a message with the
  // exact (src, tag) arrives; messages from one src preserve send order.
  // Either may throw RankFailed when the peer is dead (see class comment).
  void send(int dest, int tag, const Bytes& payload);
  Bytes recv(int src, int tag);

  // --- nonblocking point-to-point ---
  // isend completes eagerly into the transport's buffering (channel queue,
  // kernel socket buffer, or shm ring) — it may block only when that
  // buffering is full, exactly like MPI's eager path. irecv is posted
  // lazily: test() polls the transport and performs the receive once the
  // message has started arriving; wait() blocks for it. Ordering contract:
  // requests on one (src, tag) complete in posted order, and an outstanding
  // irecv must be completed before a blocking recv on the same src (the
  // per-pair FIFO would otherwise hand the irecv's message to the recv).
  class Request {
   public:
    Request() = default;
    [[nodiscard]] bool done() const { return done_; }
    [[nodiscard]] int peer() const { return peer_; }
    [[nodiscard]] const Bytes& payload() const { return payload_; }

   private:
    friend class Comm;
    bool is_recv_ = false;
    bool done_ = true;
    int peer_ = -1;
    int tag_ = 0;
    // Overlap accounting: post time (0 when observability was off at post),
    // cleared once the completion is booked.
    std::uint64_t posted_ns_ = 0;
    Bytes payload_;
  };
  Request isend(int dest, int tag, const Bytes& payload);
  Request irecv(int src, int tag);
  // True once the request is complete; performs the pending receive when
  // the transport has the message. Throws RankFailed like recv.
  bool test(Request& req);
  // Blocks until complete; returns the received payload ({} for sends).
  Bytes wait(Request& req);

  // Cheap idempotent poll: a message (or the peer's death) is observable on
  // src's channel right now. Decorators forward it uncounted — probes are
  // timing-dependent, and counting them would break fault-plan replay.
  [[nodiscard]] bool probe(int src) { return do_probe(src); }

  // --- transport access for decorators (minimpi/fault.h) ---
  // Bypass the stats-counting layer and talk straight to the backend; only
  // fault-injection wrappers should need these.
  void raw_send(int dest, int tag, const Bytes& payload) {
    do_send(dest, tag, payload);
  }
  Bytes raw_recv(int src, int tag) { return do_recv(src, tag); }
  // Deliver a deliberately torn message: the receiver must observe the same
  // RankFailed it would see if the sender crashed mid-write. The default
  // (for backends without torn-write support) sends nothing, which yields the
  // same observable outcome once the sender dies.
  virtual void raw_send_torn(int dest, int tag, const Bytes& payload,
                             std::size_t keep_bytes) {
    (void)dest;
    (void)tag;
    (void)payload;
    (void)keep_bytes;
  }

  // Progress hook for fault injection: analysis loops call this once per
  // completed work unit so seeded fault plans can strike between collectives
  // (mid-bootstrap, mid-search). A plain Comm ignores it.
  virtual void fault_tick() {}

  // --- comm-plane observability (obs/comm_obs.h) ---
  // The per-(peer, op) edge matrix this comm accumulates into while
  // obs::enabled(); nullptr until the first enabled record. Tests reconcile
  // obs::comm::totals(comm_matrix()) against stats().
  [[nodiscard]] const obs::comm::Block* comm_matrix() const {
    return comm_block_;
  }
  // Transport hooks (shm_ring.h's RingChannel): one completed full-ring
  // stall episode toward `peer`, and a post-send occupancy sample.
  void note_ring_stall(int peer, std::uint64_t ns);
  void note_ring_depth(int peer, std::uint64_t bytes);

  // --- collectives (implemented over send/recv; every rank must call) ---
  void barrier();
  void bcast(Bytes& data, int root);
  void bcast_string(std::string& data, int root);

  // Max over all ranks, plus the lowest rank attaining it (MPI_MAXLOC).
  struct MaxLoc {
    double value;
    int rank;
  };
  MaxLoc allreduce_maxloc(double value);
  double allreduce_sum(double value);
  double allreduce_max(double value);
  long allreduce_sum_long(long value);

  // Root receives every rank's vector (in rank order); others get {}.
  std::vector<std::vector<double>> gather_doubles(
      const std::vector<double>& mine, int root);
  std::vector<std::string> gather_strings(const std::string& mine, int root);

 protected:
  // Backend transport, wrapped by the counting send()/recv() above.
  virtual void do_send(int dest, int tag, const Bytes& payload) = 0;
  virtual Bytes do_recv(int src, int tag) = 0;
  // Nonblocking message-availability poll (see probe()). The conservative
  // default makes test() degrade to wait() on backends without one.
  virtual bool do_probe(int src) {
    (void)src;
    return true;
  }

  // Fault decorators report their injected sleeps (see Stats above).
  void note_synthetic_delay_ns(std::uint64_t ns) {
    stats_.synthetic_delay_ns += ns;
  }

  static constexpr int kTagBarrier = 1000000;
  static constexpr int kTagBcast = 1000001;
  static constexpr int kTagReduce = 1000002;
  static constexpr int kTagGather = 1000003;

 private:
  // Scoped attribution: routes send/recv counts to one collective's OpStats.
  // Outermost-wins, so nested collectives keep the caller's attribution.
  // The depth count is what lets reset_stats() reject a reset while any
  // collective is still in flight.
  class ScopedOp {
   public:
    // op_index is the obs::comm:: op slot matching `op` (kOpBarrier, ...);
    // flight_name the interned collective name for kCollEdge hop events.
    // When outermost, the constructor also bumps the per-comm collective
    // sequence number so one collective call's hops share an instance id.
    ScopedOp(Comm& comm, OpStats& op, int op_index, std::uint32_t flight_name)
        : comm_(comm),
          saved_(comm.current_op_),
          saved_index_(comm.current_op_index_),
          saved_name_(comm.current_coll_name_) {
      if (comm_.current_op_ == &comm_.stats_.p2p) {
        comm_.current_op_ = &op;
        comm_.current_op_index_ = op_index;
        comm_.current_coll_name_ = flight_name;
        ++comm_.coll_seq_;
      }
      ++comm_.active_scoped_ops_;
    }
    ~ScopedOp() {
      --comm_.active_scoped_ops_;
      comm_.current_op_ = saved_;
      comm_.current_op_index_ = saved_index_;
      comm_.current_coll_name_ = saved_name_;
    }

   private:
    Comm& comm_;
    OpStats* saved_;
    int saved_index_;
    std::uint32_t saved_name_;
  };

  // Lazily acquires this comm's obs::comm block (rank must be known). Null
  // while obs is disabled — the hot path stays one relaxed load + branch.
  obs::comm::Block* obs_block();

  // Tree-algorithm building blocks (comm.cpp). tree_gather moves every
  // rank's blob to root up a binomial tree and returns them in rank order
  // on root ({} elsewhere) — reduces fold over that order, which is what
  // keeps tree results bit-identical to star's.
  void barrier_star();
  void barrier_dissemination();
  void bcast_binomial(Bytes& data, int root, int tag);
  std::vector<Bytes> tree_gather(const Bytes& mine, int root, int tag);
  std::vector<Bytes> star_gather(const Bytes& mine, int root, int tag);
  // Shared reduce skeleton: gather per-rank operand blobs (star or tree),
  // fold on rank 0 in rank order, broadcast the folded result.
  Bytes reduce_fold_bcast(
      const Bytes& mine,
      const std::function<Bytes(const std::vector<Bytes>&)>& fold);

  Stats stats_;
  OpStats* current_op_ = &stats_.p2p;
  int active_scoped_ops_ = 0;
  CollectiveAlgo collectives_ = CollectiveAlgo::kTree;
  // Comm-plane accumulation (obs/comm_obs.h): acquired on first enabled
  // record, retired by ~Comm. The index/name pair mirrors current_op_ for
  // the per-edge matrix and kCollEdge attribution; coll_seq_ counts
  // outermost collectives so hops of one call share an instance id.
  obs::comm::Block* comm_block_ = nullptr;
  int current_op_index_ = 0;
  std::uint32_t current_coll_name_ = 0;
  std::uint32_t coll_seq_ = 0;
};

// --- serialization helpers for payloads ---

class Packer {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    data_.insert(data_.end(), p, p + sizeof(T));
  }
  void put_string(const std::string& s);
  void put_doubles(const std::vector<double>& v);
  void put_bytes(const Bytes& b);

  [[nodiscard]] const Bytes& bytes() const { return data_; }
  Bytes take() { return std::move(data_); }

 private:
  Bytes data_;
};

class Unpacker {
 public:
  explicit Unpacker(const Bytes& data) : data_(&data) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read(reinterpret_cast<std::uint8_t*>(&value), sizeof(T));
    return value;
  }
  std::string get_string();
  std::vector<double> get_doubles();
  Bytes get_bytes();

  [[nodiscard]] bool exhausted() const { return offset_ == data_->size(); }

 private:
  void read(std::uint8_t* out, std::size_t n);

  const Bytes* data_;
  std::size_t offset_ = 0;
};

// Run `fn(comm)` on `nranks` thread-backed ranks; returns when all finish.
// A rank that finishes (or dies via RankDeath) is marked dead so late recvs
// from it raise RankFailed instead of hanging — mirroring the EOF a closed
// socket gives the process backend. Other exceptions escaping a rank abort
// the program (as an MPI error would), except RankFailed from rank 0, which
// propagates to the caller after the remaining ranks are joined.
void run_thread_ranks(int nranks, const std::function<void(Comm&)>& fn,
                      const CommOptions& options);
void run_thread_ranks(int nranks, const std::function<void(Comm&)>& fn);

// Run `fn(comm)` on `nranks` process-backed ranks. The calling process
// becomes rank 0 (its fn return is the caller's); ranks 1.. are forked
// children that _exit after fn. Call before creating any threads. A child
// that dies via RankDeath exits with kRankDeathExit and is tolerated; an
// unhandled RankFailed on rank 0 kills the remaining children and
// propagates.
void run_process_ranks(int nranks, const std::function<void(Comm&)>& fn,
                       const CommOptions& options);
void run_process_ranks(int nranks, const std::function<void(Comm&)>& fn);

}  // namespace raxh::mpi
