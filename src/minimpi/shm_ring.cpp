#include "minimpi/shm_ring.h"

#include <sched.h>
#include <time.h>

#include <thread>

namespace raxh::mpi {

int RingBackoff::spin_limit() {
  // Spinning is only productive when the peer can run concurrently; on a
  // single hardware thread it just burns the peer's quantum.
  static const int limit =
      std::thread::hardware_concurrency() > 1 ? 512 : 0;
  return limit;
}

void RingBackoff::cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

void RingBackoff::yield_now() { ::sched_yield(); }

void RingBackoff::sleep_briefly() {
  // 50us: long enough to stop burning a shared core, short enough that a
  // collective's critical path barely notices one straggling round.
  ::timespec ts{0, 50'000};
  ::nanosleep(&ts, nullptr);
}

}  // namespace raxh::mpi
