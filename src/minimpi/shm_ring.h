// The same-host shared-memory transport primitive: a single-producer /
// single-consumer byte ring, one per ordered rank pair, plus the framed
// channel both backends speak over it.
//
// The ring struct is position-independent (no pointers, only address-free
// atomics, data bytes trail the header), so the identical code runs over
// plain heap memory shared by rank threads and over a MAP_SHARED mapping
// shared by forked rank processes.
//
// Framing mirrors the socketpair mesh: [u64 tag][u64 len][len payload
// bytes]. Messages larger than the ring stream through it in chunks, so the
// ring size bounds memory, not message size. A frame whose advertised
// length can never be satisfied — the writer died mid-frame (torn write) or
// the header itself is truncated — surfaces as RankFailed once the writer
// is known dead; a length prefix beyond kMaxMessageBytes is a protocol
// violation and dies loudly. Neither may ever hang.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "minimpi/comm.h"
#include "obs/comm_obs.h"
#include "obs/obs.h"
#include "util/check.h"

namespace raxh::mpi {

// No ring frame may advertise more than this: a corrupt length prefix must
// die at the assert, not drive a multi-gigabyte allocation or an eternal
// wait for bytes that never come.
inline constexpr std::uint64_t kMaxMessageBytes = 1ull << 30;

class ShmRing {
 public:
  // Total footprint of a ring with `capacity` payload bytes.
  static std::size_t bytes_for(std::size_t capacity) {
    return sizeof(ShmRing) + capacity;
  }

  // Placement-initialize a ring in caller-owned memory (heap or MAP_SHARED).
  static ShmRing* create(void* mem, std::size_t capacity) {
    RAXH_EXPECTS(capacity > 0);
    auto* ring = new (mem) ShmRing();
    ring->capacity_ = capacity;
    return ring;
  }

  [[nodiscard]] std::size_t capacity() const {
    return static_cast<std::size_t>(capacity_);
  }

  // Nonblocking bulk transfers: move up to n bytes, return the count moved.
  // Only the producer calls write_some, only the consumer read_some.
  std::size_t write_some(const void* data, std::size_t n) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t space =
        static_cast<std::size_t>(capacity_ - (head - tail));
    const std::size_t take = n < space ? n : space;
    if (take == 0) return 0;
    const std::size_t at = static_cast<std::size_t>(head % capacity_);
    const std::size_t first = std::min(take, capacity() - at);
    std::memcpy(bytes() + at, data, first);
    std::memcpy(bytes(), static_cast<const std::uint8_t*>(data) + first,
                take - first);
    head_.store(head + take, std::memory_order_release);
    return take;
  }

  std::size_t read_some(void* out, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t avail = static_cast<std::size_t>(head - tail);
    const std::size_t take = n < avail ? n : avail;
    if (take == 0) return 0;
    const std::size_t at = static_cast<std::size_t>(tail % capacity_);
    const std::size_t first = std::min(take, capacity() - at);
    std::memcpy(out, bytes() + at, first);
    std::memcpy(static_cast<std::uint8_t*>(out) + first, bytes(),
                take - first);
    tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  [[nodiscard]] std::size_t readable() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_relaxed));
  }

  // Death flags: a rank that stops participating closes its side of every
  // ring it touches (the shm analogue of a process closing its sockets).
  // Crash paths that cannot reach these flags are covered by out-of-band
  // liveness (the thread hub's dead flags, the process mesh's EOF sockets).
  void close_writer() { w_closed_.store(1, std::memory_order_release); }
  void close_reader() { r_closed_.store(1, std::memory_order_release); }
  [[nodiscard]] bool writer_closed() const {
    return w_closed_.load(std::memory_order_acquire) != 0;
  }
  [[nodiscard]] bool reader_closed() const {
    return r_closed_.load(std::memory_order_acquire) != 0;
  }

 private:
  ShmRing() = default;

  std::uint8_t* bytes() { return reinterpret_cast<std::uint8_t*>(this + 1); }

  std::atomic<std::uint64_t> head_{0};  // bytes produced (monotonic)
  std::atomic<std::uint64_t> tail_{0};  // bytes consumed (monotonic)
  std::atomic<std::uint32_t> w_closed_{0};
  std::atomic<std::uint32_t> r_closed_{0};
  std::uint64_t capacity_ = 0;
  // `capacity_` data bytes trail the struct (see bytes_for / create).
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm rings require address-free lock-free 64-bit atomics");

// Tiered waiting for ring progress: brief pause-spinning (skipped outright
// on single-core hosts, where spinning only steals the peer's cycles),
// then sched_yield, then short sleeps. The `gone` probe runs on every
// post-spin round so a dead peer converts a wait into RankFailed instead
// of a hang.
class RingBackoff {
 public:
  template <typename PeerGone>
  void wait(const PeerGone& gone, int peer, const char* what) {
    if (spins_ < spin_limit()) {
      ++spins_;
      cpu_relax();
      return;
    }
    if (gone())
      throw RankFailed(peer, std::string("minimpi: rank ") +
                                 std::to_string(peer) + " died (" + what +
                                 " on shm ring)");
    if (yields_ < 256) {
      ++yields_;
      yield_now();
      return;
    }
    sleep_briefly();
  }

 private:
  static int spin_limit();
  static void cpu_relax();
  static void yield_now();
  static void sleep_briefly();

  int spins_ = 0;
  int yields_ = 0;
};

// One direction of a rank pair: framed messages over one ring. The peer
// liveness probe is injected because the two backends learn about death
// differently (hub dead-flags vs. EOF on the companion socket).
class RingChannel {
 public:
  // `owner` (when given) receives backpressure telemetry: full-ring stall
  // episodes and post-send occupancy samples (Comm::note_ring_*). The
  // channel itself stays observability-free when owner is null or obs is
  // disabled.
  RingChannel(ShmRing* ring, int peer, Comm* owner = nullptr)
      : ring_(ring), peer_(peer), owner_(owner) {}

  template <typename PeerGone>
  void send_frame(std::uint64_t tag, const Bytes& payload,
                  const PeerGone& gone) {
    RAXH_EXPECTS(payload.size() <= kMaxMessageBytes);
    if (gone())
      throw RankFailed(peer_, "minimpi: send to dead rank " +
                                  std::to_string(peer_) + " (shm ring)");
    const std::uint64_t header[2] = {tag, payload.size()};
    write_all(header, sizeof(header), gone);
    if (!payload.empty()) write_all(payload.data(), payload.size(), gone);
    if (owner_ != nullptr && obs::enabled())
      owner_->note_ring_depth(peer_, ring_->readable());
  }

  // Fault injection: advertise the full length, write only keep_bytes. The
  // reader blocks for the remainder until the writer's death closes the
  // ring, then observes RankFailed — a crash mid-write, ring edition.
  template <typename PeerGone>
  void send_torn(std::uint64_t tag, const Bytes& payload,
                 std::size_t keep_bytes, const PeerGone& gone) {
    const std::uint64_t header[2] = {tag, payload.size()};
    write_all(header, sizeof(header), gone);
    const std::size_t keep = std::min(keep_bytes, payload.size());
    if (keep > 0) write_all(payload.data(), keep, gone);
  }

  template <typename PeerGone>
  Bytes recv_frame(std::uint64_t expected_tag, const PeerGone& gone) {
    std::uint64_t header[2];
    read_all(header, sizeof(header), gone);
    // Tag mismatches are protocol bugs; corrupt lengths must die before
    // they become an absurd allocation or an unsatisfiable wait.
    RAXH_ASSERT(header[0] == expected_tag);
    RAXH_ASSERT(header[1] <= kMaxMessageBytes);
    Bytes payload(static_cast<std::size_t>(header[1]));
    if (!payload.empty()) read_all(payload.data(), payload.size(), gone);
    return payload;
  }

  // A message is ready to start receiving (at least a full header). Used by
  // irecv test(): the remainder of a started frame always arrives or the
  // writer's death surfaces as RankFailed, so "header present" is "recv
  // will complete without an unbounded peer wait".
  [[nodiscard]] bool probe() const {
    return ring_->readable() >= 2 * sizeof(std::uint64_t);
  }

  [[nodiscard]] ShmRing* ring() const { return ring_; }

 private:
  // One write_all's full-ring stall episode. Armed on the first zero-byte
  // write attempt, closed by the destructor so the episode books even when
  // the backoff's peer-gone probe throws RankFailed mid-stall. The repeated
  // stall-branch hits of a streamed message count as one episode — the
  // sender was continuously backpressured.
  class StallScope {
   public:
    StallScope(Comm* owner, int peer) : owner_(owner), peer_(peer) {}
    StallScope(const StallScope&) = delete;
    StallScope& operator=(const StallScope&) = delete;
    void arm() {
      if (armed_ || owner_ == nullptr || !obs::enabled()) return;
      armed_ = true;
      start_ = obs::now_ns();
      obs::comm::stall_enter();
    }
    ~StallScope() {
      if (!armed_) return;
      obs::comm::stall_exit();
      owner_->note_ring_stall(peer_, obs::now_ns() - start_);
    }

   private:
    Comm* owner_;
    int peer_;
    bool armed_ = false;
    std::uint64_t start_ = 0;
  };

  template <typename PeerGone>
  void write_all(const void* data, std::size_t n, const PeerGone& gone) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    RingBackoff backoff;
    StallScope stall(owner_, peer_);
    while (n > 0) {
      const std::size_t w = ring_->write_some(p, n);
      p += w;
      n -= w;
      if (n > 0 && w == 0) {
        stall.arm();
        backoff.wait([&] { return gone() || ring_->reader_closed(); }, peer_,
                     "ring full, peer gone");
      }
    }
  }

  template <typename PeerGone>
  void read_all(void* out, std::size_t n, const PeerGone& gone) {
    auto* p = static_cast<std::uint8_t*>(out);
    RingBackoff backoff;
    while (n > 0) {
      const std::size_t r = ring_->read_some(p, n);
      p += r;
      n -= r;
      if (n > 0 && r == 0) {
        // Drain-before-failure: bytes published before the writer died stay
        // deliverable; only a wait that can never be satisfied throws.
        backoff.wait(
            [&] { return (gone() || ring_->writer_closed()) &&
                         ring_->readable() == 0; },
            peer_, "truncated frame");
      }
    }
  }

  ShmRing* ring_;
  int peer_;
  Comm* owner_;
};

}  // namespace raxh::mpi
