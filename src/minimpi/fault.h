// Deterministic fault injection for the minimpi runtime.
//
// A FaultPlan is a seeded, fully explicit list of fault actions, each keyed
// to a (victim rank, op index) pair, where a rank's op index counts its own
// transport operations — every send, every recv, and every fault_tick() the
// analysis loop issues per completed work unit. Because each rank's op
// stream is a deterministic function of the protocol (minimpi is strictly
// blocking and, in the fault-tolerant driver, star-shaped around rank 0),
// the same plan replays identically on ProcessComm and ThreadComm.
//
// Lethal actions (die / drop / torn) model crash-consistency: a rank that
// drops or tears a message also dies, because in a blocking runtime a lost
// message from a live rank is indistinguishable from a deadlock. Peers
// observe the death as RankFailed (EOF/EPIPE on the process mesh, a closed
// channel on the thread hub) — never a hang.
//
// Plans never kill rank 0: rank 0 is the job controller (losing it loses
// the job, as in any practical MPI deployment), and keeping it alive is
// what makes every other rank's op stream — and therefore the injected
// behaviour — backend-independent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/comm.h"

namespace raxh::mpi {

struct FaultAction {
  enum class Kind {
    kDie,    // exit before performing the op
    kDrop,   // skip the send, then die (crash before the write hit the wire)
    kTorn,   // send header + half the payload, then die (crash mid-write)
    kDelay,  // sleep delay_ms before the op, then proceed (non-lethal)
  };
  Kind kind = Kind::kDie;
  int rank = 0;      // victim rank (lethal kinds require rank >= 1)
  int op = 1;        // fires at the victim's op-th transport op (1-based)
  int delay_ms = 0;  // kDelay only

  [[nodiscard]] bool lethal() const { return kind != Kind::kDelay; }
};

// A parsed, validated fault plan.
//
// Spec grammar (also accepted from the RAXH_FAULT_PLAN environment variable):
//   plan   := action (';' action)*              (empty spec = no faults)
//   action := kind '@' rank ',' op [',' ms]
//   kind   := 'die' | 'drop' | 'torn' | 'delay'
// Example: "die@1,7;torn@2,12;delay@0,3,15"
struct FaultPlan {
  std::vector<FaultAction> actions;

  [[nodiscard]] bool empty() const { return actions.empty(); }

  // Parse a spec string; throws std::runtime_error with a pointed message on
  // malformed input (bad kind, lethal action on rank 0, duplicate
  // (rank, op), non-positive op).
  static FaultPlan parse(const std::string& spec);

  // Seeded random plan over `nranks` ranks: 1..max_lethal lethal actions on
  // distinct ranks in [1, nranks), op uniform in [1, max_op], plus up to two
  // small delays on any rank. Identical (seed, nranks, max_op) inputs yield
  // identical plans — the chaos suite's replay key.
  static FaultPlan generate(std::uint64_t seed, int nranks, int max_op,
                            int max_lethal = 2);

  // Round-trips through parse(): serialize for logs and repro lines.
  [[nodiscard]] std::string to_spec() const;
};

// Decorator over any Comm backend that executes a FaultPlan against the
// wrapped rank's op stream. Collectives inherited from Comm route through
// do_send/do_recv, so every transport op of the protocol is counted. The
// decorator keeps its own (identically counted) stats; the inner comm is
// used purely as a transport.
class FaultyComm final : public Comm {
 public:
  // `inner` must outlive this. Only actions for inner.rank() are retained.
  FaultyComm(Comm& inner, const FaultPlan& plan);

  [[nodiscard]] int rank() const override { return inner_->rank(); }
  [[nodiscard]] int size() const override { return inner_->size(); }

  // Counts one op; applies die/delay actions. Called by analysis loops once
  // per completed work unit (see Comm::fault_tick).
  void fault_tick() override;

  // Ops performed so far (tests; also handy in failure logs).
  [[nodiscard]] std::uint64_t ops() const { return op_count_; }

  void raw_send_torn(int dest, int tag, const Bytes& payload,
                     std::size_t keep_bytes) override {
    inner_->raw_send_torn(dest, tag, payload, keep_bytes);
  }

 protected:
  void do_send(int dest, int tag, const Bytes& payload) override;
  Bytes do_recv(int src, int tag) override;
  // Forwarded uncounted: probes are timing-dependent polls, and letting them
  // advance the op counter would make plan replay depend on scheduling.
  bool do_probe(int src) override { return inner_->probe(src); }

 private:
  // Advance the op counter and return the action firing at this op, if any.
  const FaultAction* next_op();
  [[noreturn]] void die();
  // Serve a kDelay action; the measured sleep is booked as synthetic delay
  // (Comm::Stats + obs) so latency accounting can subtract it.
  void sleep_injected(int delay_ms);

  Comm* inner_;
  std::vector<FaultAction> actions_;  // this rank's actions only
  std::uint64_t op_count_ = 0;
};

}  // namespace raxh::mpi
