// The two Comm backends: in-process threads (testing) and forked processes
// over a socketpair mesh (deployment).
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "minimpi/comm.h"
#include "util/check.h"

namespace raxh::mpi {

namespace {

// ---------- thread backend ----------

struct Message {
  int tag;
  Bytes payload;
};

// One FIFO channel per ordered (src, dst) pair.
struct Channel {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct ThreadHub {
  explicit ThreadHub(int n) : nranks(n), channels(static_cast<std::size_t>(n) * n) {}
  int nranks;
  std::vector<std::unique_ptr<Channel>> channels;  // [src * n + dst]

  Channel& channel(int src, int dst) {
    auto& slot = channels[static_cast<std::size_t>(src) * nranks + dst];
    return *slot;
  }
};

class ThreadComm final : public Comm {
 public:
  ThreadComm(ThreadHub* hub, int my_rank) : hub_(hub), rank_(my_rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return hub_->nranks; }

  void do_send(int dest, int tag, const Bytes& payload) override {
    RAXH_EXPECTS(dest >= 0 && dest < size() && dest != rank_);
    Channel& ch = hub_->channel(rank_, dest);
    {
      std::lock_guard<std::mutex> lock(ch.mutex);
      ch.queue.push_back(Message{tag, payload});
    }
    ch.cv.notify_one();
  }

  Bytes do_recv(int src, int tag) override {
    RAXH_EXPECTS(src >= 0 && src < size() && src != rank_);
    Channel& ch = hub_->channel(src, rank_);
    std::unique_lock<std::mutex> lock(ch.mutex);
    ch.cv.wait(lock, [&] { return !ch.queue.empty(); });
    Message m = std::move(ch.queue.front());
    ch.queue.pop_front();
    // Deterministic protocols receive in send order; a tag mismatch is a
    // protocol bug, not a runtime condition.
    RAXH_ASSERT(m.tag == tag);
    return std::move(m.payload);
  }

 private:
  ThreadHub* hub_;
  int rank_;
};

// ---------- process backend ----------

void write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      std::perror("minimpi write");
      std::abort();
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_all(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      std::perror("minimpi read (peer gone?)");
      std::abort();
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

class ProcessComm final : public Comm {
 public:
  // fds[r] = this rank's socket to rank r (-1 for self).
  ProcessComm(int my_rank, std::vector<int> fds)
      : rank_(my_rank), fds_(std::move(fds)) {}

  ~ProcessComm() override {
    for (int fd : fds_)
      if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override {
    return static_cast<int>(fds_.size());
  }

  void do_send(int dest, int tag, const Bytes& payload) override {
    RAXH_EXPECTS(dest >= 0 && dest < size() && dest != rank_);
    const int fd = fds_[static_cast<std::size_t>(dest)];
    std::uint64_t header[2] = {static_cast<std::uint64_t>(tag),
                               payload.size()};
    write_all(fd, header, sizeof(header));
    if (!payload.empty()) write_all(fd, payload.data(), payload.size());
  }

  Bytes do_recv(int src, int tag) override {
    RAXH_EXPECTS(src >= 0 && src < size() && src != rank_);
    const int fd = fds_[static_cast<std::size_t>(src)];
    std::uint64_t header[2];
    read_all(fd, header, sizeof(header));
    RAXH_ASSERT(static_cast<int>(header[0]) == tag);
    Bytes payload(static_cast<std::size_t>(header[1]));
    if (!payload.empty()) read_all(fd, payload.data(), payload.size());
    return payload;
  }

 private:
  int rank_;
  std::vector<int> fds_;
};

}  // namespace

void run_thread_ranks(int nranks, const std::function<void(Comm&)>& fn) {
  RAXH_EXPECTS(nranks >= 1);
  ThreadHub hub(nranks);
  for (int s = 0; s < nranks; ++s)
    for (int d = 0; d < nranks; ++d)
      hub.channels[static_cast<std::size_t>(s) * nranks + d] =
          std::make_unique<Channel>();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&hub, &fn, r] {
      ThreadComm comm(&hub, r);
      fn(comm);
    });
  }
  for (auto& t : threads) t.join();
}

void run_process_ranks(int nranks, const std::function<void(Comm&)>& fn) {
  RAXH_EXPECTS(nranks >= 1);
  if (nranks == 1) {
    ProcessComm comm(0, {-1});
    fn(comm);
    return;
  }

  // mesh[i][j]: fd owned by rank i talking to rank j.
  std::vector<std::vector<int>> mesh(
      static_cast<std::size_t>(nranks),
      std::vector<int>(static_cast<std::size_t>(nranks), -1));
  for (int i = 0; i < nranks; ++i) {
    for (int j = i + 1; j < nranks; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        std::perror("minimpi socketpair");
        std::abort();
      }
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = sv[0];
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = sv[1];
    }
  }

  auto close_all_except = [&](int keep_rank) {
    for (int i = 0; i < nranks; ++i)
      for (int j = 0; j < nranks; ++j)
        if (i != keep_rank && mesh[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(j)] >= 0)
          ::close(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
  };

  std::vector<pid_t> children;
  for (int r = 1; r < nranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("minimpi fork");
      std::abort();
    }
    if (pid == 0) {
      close_all_except(r);
      {
        ProcessComm comm(r, std::move(mesh[static_cast<std::size_t>(r)]));
        fn(comm);
      }
      std::_Exit(0);
    }
    children.push_back(pid);
  }

  close_all_except(0);
  {
    ProcessComm comm(0, std::move(mesh[0]));
    fn(comm);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "[minimpi] child rank exited abnormally\n");
      std::abort();
    }
  }
}

}  // namespace raxh::mpi
