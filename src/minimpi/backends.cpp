// The two Comm backends: in-process threads (testing) and forked processes
// over a socketpair mesh (deployment).
//
// Both backends share one failure model: a rank that stops participating —
// normal completion, injected death (RankDeath), or a real crash — becomes
// observable to its peers as RankFailed on the next op touching it, after
// any messages it sent before dying have been drained (TCP-like semantics).
// The process backend gets this from EOF/EPIPE on the socket mesh; the
// thread backend replicates it with a per-rank dead flag in the hub.
#include <csignal>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "minimpi/comm.h"
#include "obs/flight.h"
#include "util/check.h"

namespace raxh::mpi {

namespace {

// ---------- thread backend ----------

struct Message {
  int tag;
  Bytes payload;
  bool torn = false;  // fault injection: sender crashed mid-write
};

// One FIFO channel per ordered (src, dst) pair.
struct Channel {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct ThreadHub {
  explicit ThreadHub(int n)
      : nranks(n),
        channels(static_cast<std::size_t>(n) * n),
        dead(std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(n))) {
    for (int r = 0; r < n; ++r) dead[static_cast<std::size_t>(r)] = false;
  }
  int nranks;
  std::vector<std::unique_ptr<Channel>> channels;  // [src * n + dst]
  std::unique_ptr<std::atomic<bool>[]> dead;       // rank exited (any reason)

  Channel& channel(int src, int dst) {
    auto& slot = channels[static_cast<std::size_t>(src) * nranks + dst];
    return *slot;
  }

  [[nodiscard]] bool is_dead(int r) const {
    return dead[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
  }

  // The thread-backend analogue of a process closing its sockets: flag the
  // rank and wake every receiver blocked on one of its channels.
  void mark_dead(int r) {
    dead[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
    for (int dst = 0; dst < nranks; ++dst) {
      if (dst == r) continue;
      Channel& ch = channel(r, dst);
      {
        // Pairs with the receiver's predicate check under the same mutex so
        // the wakeup cannot be missed.
        std::lock_guard<std::mutex> lock(ch.mutex);
      }
      ch.cv.notify_all();
    }
  }
};

class ThreadComm final : public Comm {
 public:
  ThreadComm(ThreadHub* hub, int my_rank) : hub_(hub), rank_(my_rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return hub_->nranks; }

  void do_send(int dest, int tag, const Bytes& payload) override {
    do_send_impl(dest, tag, payload, false, payload.size());
  }

  void raw_send_torn(int dest, int tag, const Bytes& payload,
                     std::size_t keep_bytes) override {
    do_send_impl(dest, tag, payload, true, keep_bytes);
  }

  Bytes do_recv(int src, int tag) override {
    RAXH_EXPECTS(src >= 0 && src < size() && src != rank_);
    Channel& ch = hub_->channel(src, rank_);
    std::unique_lock<std::mutex> lock(ch.mutex);
    ch.cv.wait(lock,
               [&] { return !ch.queue.empty() || hub_->is_dead(src); });
    // Messages queued before the peer died stay deliverable (the process
    // backend likewise reads buffered data before hitting EOF).
    if (ch.queue.empty())
      throw RankFailed(src, "minimpi: rank " + std::to_string(src) +
                                " died (channel closed)");
    Message m = std::move(ch.queue.front());
    ch.queue.pop_front();
    if (m.torn)
      throw RankFailed(src, "minimpi: rank " + std::to_string(src) +
                                " died mid-send (torn payload)");
    // Deterministic protocols receive in send order; a tag mismatch is a
    // protocol bug, not a runtime condition.
    RAXH_ASSERT(m.tag == tag);
    return std::move(m.payload);
  }

 private:
  void do_send_impl(int dest, int tag, const Bytes& payload, bool torn,
                    std::size_t keep_bytes) {
    RAXH_EXPECTS(dest >= 0 && dest < size() && dest != rank_);
    if (hub_->is_dead(dest))
      throw RankFailed(dest, "minimpi: send to dead rank " +
                                 std::to_string(dest));
    Channel& ch = hub_->channel(rank_, dest);
    {
      std::lock_guard<std::mutex> lock(ch.mutex);
      Message m{tag, payload, torn};
      if (torn) m.payload.resize(std::min(keep_bytes, m.payload.size()));
      ch.queue.push_back(std::move(m));
    }
    ch.cv.notify_one();
  }

  ThreadHub* hub_;
  int rank_;
};

// ---------- process backend ----------

// write/read results that mean "the peer is gone" rather than "I/O is
// broken": EPIPE/ECONNRESET on write, EOF or ECONNRESET on read.
void write_all(int fd, int peer, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET)
        throw RankFailed(peer, "minimpi: rank " + std::to_string(peer) +
                                   " died (EPIPE on send)");
      std::perror("minimpi write");
      std::abort();
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_all(int fd, int peer, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r == 0)
      throw RankFailed(peer, "minimpi: rank " + std::to_string(peer) +
                                 " died (EOF on mesh socket)");
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET)
        throw RankFailed(peer, "minimpi: rank " + std::to_string(peer) +
                                   " died (connection reset)");
      std::perror("minimpi read");
      std::abort();
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

class ProcessComm final : public Comm {
 public:
  // fds[r] = this rank's socket to rank r (-1 for self).
  ProcessComm(int my_rank, std::vector<int> fds)
      : rank_(my_rank), fds_(std::move(fds)) {}

  ~ProcessComm() override {
    for (int fd : fds_)
      if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override {
    return static_cast<int>(fds_.size());
  }

  void do_send(int dest, int tag, const Bytes& payload) override {
    RAXH_EXPECTS(dest >= 0 && dest < size() && dest != rank_);
    const int fd = fds_[static_cast<std::size_t>(dest)];
    std::uint64_t header[2] = {static_cast<std::uint64_t>(tag),
                               payload.size()};
    write_all(fd, dest, header, sizeof(header));
    if (!payload.empty())
      write_all(fd, dest, payload.data(), payload.size());
  }

  // Advertise the full length but stop writing partway: once this rank
  // exits, the receiver's read_all hits EOF mid-payload — exactly what a
  // crash between two writes looks like on a real mesh.
  void raw_send_torn(int dest, int tag, const Bytes& payload,
                     std::size_t keep_bytes) override {
    RAXH_EXPECTS(dest >= 0 && dest < size() && dest != rank_);
    const int fd = fds_[static_cast<std::size_t>(dest)];
    std::uint64_t header[2] = {static_cast<std::uint64_t>(tag),
                               payload.size()};
    write_all(fd, dest, header, sizeof(header));
    const std::size_t keep = std::min(keep_bytes, payload.size());
    if (keep > 0) write_all(fd, dest, payload.data(), keep);
  }

  Bytes do_recv(int src, int tag) override {
    RAXH_EXPECTS(src >= 0 && src < size() && src != rank_);
    const int fd = fds_[static_cast<std::size_t>(src)];
    std::uint64_t header[2];
    read_all(fd, src, header, sizeof(header));
    RAXH_ASSERT(static_cast<int>(header[0]) == tag);
    Bytes payload(static_cast<std::size_t>(header[1]));
    if (!payload.empty())
      read_all(fd, src, payload.data(), payload.size());
    return payload;
  }

 private:
  int rank_;
  std::vector<int> fds_;
};

}  // namespace

void run_thread_ranks(int nranks, const std::function<void(Comm&)>& fn) {
  RAXH_EXPECTS(nranks >= 1);
  ThreadHub hub(nranks);
  for (int s = 0; s < nranks; ++s)
    for (int d = 0; d < nranks; ++d)
      hub.channels[static_cast<std::size_t>(s) * nranks + d] =
          std::make_unique<Channel>();

  // An unrecovered peer failure on rank 0 is the caller's to handle (the
  // fault-tolerant driver catches RankFailed internally; anything reaching
  // the harness means the run cannot produce a result).
  std::exception_ptr rank0_failure;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&hub, &fn, &rank0_failure, r] {
      ThreadComm comm(&hub, r);
      obs::flight::set_thread_rank(r);
      try {
        fn(comm);
      } catch (const RankDeath&) {
        // Injected death: unwound cleanly; peers see RankFailed. Dump the
        // black box before mark_dead so it is complete by the time any peer
        // can observe the failure and sweep it.
        obs::flight::dump_now(r, "injected rank death", /*fatal=*/true);
      } catch (const RankFailed& f) {
        if (r == 0) {
          rank0_failure = std::current_exception();
        } else {
          std::fprintf(stderr,
                       "[minimpi] rank %d: unrecovered peer failure: %s\n", r,
                       f.what());
          std::abort();
        }
      }
      hub.mark_dead(r);
    });
  }
  for (auto& t : threads) t.join();
  if (rank0_failure) std::rethrow_exception(rank0_failure);
}

void run_process_ranks(int nranks, const std::function<void(Comm&)>& fn) {
  RAXH_EXPECTS(nranks >= 1);
  // A write to a dead peer must surface as EPIPE (mapped to RankFailed),
  // not kill the process with SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  if (nranks == 1) {
    ProcessComm comm(0, {-1});
    obs::flight::set_thread_rank(0);
    fn(comm);
    return;
  }

  // mesh[i][j]: fd owned by rank i talking to rank j.
  std::vector<std::vector<int>> mesh(
      static_cast<std::size_t>(nranks),
      std::vector<int>(static_cast<std::size_t>(nranks), -1));
  for (int i = 0; i < nranks; ++i) {
    for (int j = i + 1; j < nranks; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        std::perror("minimpi socketpair");
        std::abort();
      }
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = sv[0];
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = sv[1];
    }
  }

  auto close_all_except = [&](int keep_rank) {
    for (int i = 0; i < nranks; ++i)
      for (int j = 0; j < nranks; ++j)
        if (i != keep_rank && mesh[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(j)] >= 0)
          ::close(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
  };

  std::vector<pid_t> children;
  for (int r = 1; r < nranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("minimpi fork");
      std::abort();
    }
    if (pid == 0) {
      close_all_except(r);
      int exit_code = 0;
      {
        ProcessComm comm(r, std::move(mesh[static_cast<std::size_t>(r)]));
        obs::flight::set_thread_rank(r);
        try {
          fn(comm);
        } catch (const RankDeath&) {
          // Injected death: exit abruptly; the closing sockets deliver EOF.
          // The black box is written first, while the mesh is still open, so
          // peers cannot observe the death before the box is complete.
          obs::flight::dump_now(r, "injected rank death", /*fatal=*/true);
          exit_code = kRankDeathExit;
        } catch (const RankFailed& f) {
          std::fprintf(stderr,
                       "[minimpi] rank %d: unrecovered peer failure: %s\n", r,
                       f.what());
          exit_code = 1;
        }
      }
      std::_Exit(exit_code);
    }
    children.push_back(pid);
  }

  close_all_except(0);
  std::exception_ptr rank0_failure;
  {
    ProcessComm comm(0, std::move(mesh[0]));
    obs::flight::set_thread_rank(0);
    try {
      fn(comm);
    } catch (const RankFailed&) {
      rank0_failure = std::current_exception();
    }
  }
  if (rank0_failure) {
    // The job cannot finish; don't leave children blocked on a silent mesh.
    for (const pid_t pid : children) ::kill(pid, SIGKILL);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (rank0_failure) continue;
    if (WIFEXITED(status) && WEXITSTATUS(status) == kRankDeathExit) {
      // Injected rank death; survivors (or the caller) own recovery.
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "[minimpi] child rank exited abnormally\n");
      std::abort();
    }
  }
  if (rank0_failure) std::rethrow_exception(rank0_failure);
}

}  // namespace raxh::mpi
