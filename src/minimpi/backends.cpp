// The two Comm backends: in-process threads (testing) and forked processes
// over a socketpair mesh (deployment). Each backend speaks one of two
// per-pair transports (CommOptions::transport):
//  * its native one — mutex/CV channels for threads, socketpairs for
//    processes — or
//  * a shared-memory SPSC ring per ordered pair (minimpi/shm_ring.h): heap
//    memory for threads, one MAP_SHARED mapping created before fork for
//    processes. The process backend keeps the socketpair mesh alongside the
//    rings as a liveness channel: nothing is ever written on it, so POLLIN
//    means EOF means the peer is gone — the one signal a crashed process
//    cannot fake and a ring cannot deliver.
//
// Both backends and both transports share one failure model: a rank that
// stops participating — normal completion, injected death (RankDeath), or a
// real crash — becomes observable to its peers as RankFailed on the next op
// touching it, after any messages it sent before dying have been drained
// (TCP-like semantics). The process backend gets this from EOF/EPIPE on the
// socket mesh (or the liveness fds + ring close flags), the thread backend
// from a per-rank dead flag in the hub (mirrored into ring close flags).
#include <csignal>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "minimpi/comm.h"
#include "minimpi/shm_ring.h"
#include "obs/flight.h"
#include "util/check.h"

namespace raxh::mpi {

namespace {

// Rings are placed in slots of this granularity so adjacent rings never
// share a cache line (head/tail atomics of different pairs must not
// false-share) and every ring lands on a properly aligned address.
std::size_t ring_slot_bytes(std::size_t capacity) {
  return (ShmRing::bytes_for(capacity) + 63) & ~std::size_t{63};
}

// ---------- thread backend ----------

struct Message {
  int tag;
  Bytes payload;
  bool torn = false;  // fault injection: sender crashed mid-write
};

// One FIFO channel per ordered (src, dst) pair.
struct Channel {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct ThreadHub {
  ThreadHub(int n, const CommOptions& opts)
      : nranks(n),
        options(opts),
        channels(static_cast<std::size_t>(n) * n),
        dead(std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(n))) {
    for (int r = 0; r < n; ++r) dead[static_cast<std::size_t>(r)] = false;
    for (auto& slot : channels) slot = std::make_unique<Channel>();
    if (options.transport == Transport::kShm) {
      // Same ring code the process backend maps MAP_SHARED; here the "shared
      // memory" is plain heap visible to all rank threads.
      const std::size_t slot = ring_slot_bytes(options.shm_ring_bytes);
      ring_mem = std::make_unique<std::uint8_t[]>(
          slot * static_cast<std::size_t>(n) * n + 64);
      auto base = reinterpret_cast<std::uintptr_t>(ring_mem.get());
      base = (base + 63) & ~std::uintptr_t{63};
      rings.resize(static_cast<std::size_t>(n) * n, nullptr);
      for (int s = 0; s < n; ++s)
        for (int d = 0; d < n; ++d) {
          if (s == d) continue;
          const std::size_t idx = static_cast<std::size_t>(s) * n + d;
          rings[idx] = ShmRing::create(
              reinterpret_cast<void*>(base + slot * idx),
              options.shm_ring_bytes);
        }
    }
  }
  int nranks;
  CommOptions options;
  std::vector<std::unique_ptr<Channel>> channels;  // [src * n + dst]
  std::unique_ptr<std::atomic<bool>[]> dead;       // rank exited (any reason)
  std::unique_ptr<std::uint8_t[]> ring_mem;        // kShm only
  std::vector<ShmRing*> rings;                     // [src * n + dst], kShm

  Channel& channel(int src, int dst) {
    auto& slot = channels[static_cast<std::size_t>(src) * nranks + dst];
    return *slot;
  }

  ShmRing* ring(int src, int dst) {
    return rings[static_cast<std::size_t>(src) * nranks + dst];
  }

  [[nodiscard]] bool is_dead(int r) const {
    return dead[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
  }

  // The thread-backend analogue of a process closing its sockets: flag the
  // rank, close its side of every ring it touches, and wake every receiver
  // blocked on one of its channels.
  void mark_dead(int r) {
    dead[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
    for (int peer = 0; peer < nranks; ++peer) {
      if (peer == r) continue;
      if (!rings.empty()) {
        ring(r, peer)->close_writer();
        ring(peer, r)->close_reader();
      }
      Channel& ch = channel(r, peer);
      {
        // Pairs with the receiver's predicate check under the same mutex so
        // the wakeup cannot be missed.
        std::lock_guard<std::mutex> lock(ch.mutex);
      }
      ch.cv.notify_all();
    }
  }
};

class ThreadComm final : public Comm {
 public:
  ThreadComm(ThreadHub* hub, int my_rank) : hub_(hub), rank_(my_rank) {
    set_collectives(hub->options.collectives);
  }

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return hub_->nranks; }

  void do_send(int dest, int tag, const Bytes& payload) override {
    RAXH_EXPECTS(dest >= 0 && dest < size() && dest != rank_);
    if (use_rings()) {
      RingChannel ch(hub_->ring(rank_, dest), dest, this);
      ch.send_frame(static_cast<std::uint64_t>(tag), payload,
                    [&] { return hub_->is_dead(dest); });
      return;
    }
    channel_send(dest, tag, payload, false, payload.size());
  }

  void raw_send_torn(int dest, int tag, const Bytes& payload,
                     std::size_t keep_bytes) override {
    RAXH_EXPECTS(dest >= 0 && dest < size() && dest != rank_);
    if (use_rings()) {
      // Physically torn: the header advertises the full length but only
      // keep_bytes follow. The receiver drains them, then this rank's death
      // closes the ring and the wait surfaces as RankFailed.
      RingChannel ch(hub_->ring(rank_, dest), dest, this);
      ch.send_torn(static_cast<std::uint64_t>(tag), payload, keep_bytes,
                   [&] { return hub_->is_dead(dest); });
      return;
    }
    channel_send(dest, tag, payload, true, keep_bytes);
  }

  Bytes do_recv(int src, int tag) override {
    RAXH_EXPECTS(src >= 0 && src < size() && src != rank_);
    if (use_rings()) {
      RingChannel ch(hub_->ring(src, rank_), src, this);
      return ch.recv_frame(static_cast<std::uint64_t>(tag),
                           [&] { return hub_->is_dead(src); });
    }
    Channel& ch = hub_->channel(src, rank_);
    std::unique_lock<std::mutex> lock(ch.mutex);
    ch.cv.wait(lock,
               [&] { return !ch.queue.empty() || hub_->is_dead(src); });
    // Messages queued before the peer died stay deliverable (the process
    // backend likewise reads buffered data before hitting EOF).
    if (ch.queue.empty())
      throw RankFailed(src, "minimpi: rank " + std::to_string(src) +
                                " died (channel closed)");
    Message m = std::move(ch.queue.front());
    ch.queue.pop_front();
    if (m.torn)
      throw RankFailed(src, "minimpi: rank " + std::to_string(src) +
                                " died mid-send (torn payload)");
    // Deterministic protocols receive in send order; a tag mismatch is a
    // protocol bug, not a runtime condition.
    RAXH_ASSERT(m.tag == tag);
    return std::move(m.payload);
  }

  bool do_probe(int src) override {
    RAXH_EXPECTS(src >= 0 && src < size() && src != rank_);
    if (use_rings()) {
      RingChannel ch(hub_->ring(src, rank_), src, this);
      return ch.probe() || hub_->is_dead(src);
    }
    Channel& ch = hub_->channel(src, rank_);
    std::lock_guard<std::mutex> lock(ch.mutex);
    return !ch.queue.empty() || hub_->is_dead(src);
  }

 private:
  [[nodiscard]] bool use_rings() const { return !hub_->rings.empty(); }

  void channel_send(int dest, int tag, const Bytes& payload, bool torn,
                    std::size_t keep_bytes) {
    if (hub_->is_dead(dest))
      throw RankFailed(dest, "minimpi: send to dead rank " +
                                 std::to_string(dest));
    Channel& ch = hub_->channel(rank_, dest);
    {
      std::lock_guard<std::mutex> lock(ch.mutex);
      Message m{tag, payload, torn};
      if (torn) m.payload.resize(std::min(keep_bytes, m.payload.size()));
      ch.queue.push_back(std::move(m));
    }
    ch.cv.notify_one();
  }

  ThreadHub* hub_;
  int rank_;
};

// ---------- process backend ----------

// write/read results that mean "the peer is gone" rather than "I/O is
// broken": EPIPE/ECONNRESET on write, EOF or ECONNRESET on read.
void write_all(int fd, int peer, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET)
        throw RankFailed(peer, "minimpi: rank " + std::to_string(peer) +
                                   " died (EPIPE on send)");
      std::perror("minimpi write");
      std::abort();
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_all(int fd, int peer, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r == 0)
      throw RankFailed(peer, "minimpi: rank " + std::to_string(peer) +
                                 " died (EOF on mesh socket)");
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET)
        throw RankFailed(peer, "minimpi: rank " + std::to_string(peer) +
                                   " died (connection reset)");
      std::perror("minimpi read");
      std::abort();
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

class ProcessComm final : public Comm {
 public:
  // fds[r] = this rank's socket to rank r (-1 for self). With rings, the
  // sockets carry no data and serve purely as liveness channels:
  // send_rings[r]/recv_rings[r] are this rank's per-pair rings in the
  // pre-fork MAP_SHARED mapping (nullptr for self).
  ProcessComm(int my_rank, std::vector<int> fds,
              std::vector<ShmRing*> send_rings = {},
              std::vector<ShmRing*> recv_rings = {})
      : rank_(my_rank),
        fds_(std::move(fds)),
        send_rings_(std::move(send_rings)),
        recv_rings_(std::move(recv_rings)) {}

  ~ProcessComm() override {
    // Clean completion: close our side of every ring first (the shm
    // analogue of closing sockets), then drop the liveness fds. A crash
    // never runs this — peers learn from the socket EOF instead.
    for (ShmRing* r : send_rings_)
      if (r != nullptr) r->close_writer();
    for (ShmRing* r : recv_rings_)
      if (r != nullptr) r->close_reader();
    for (int fd : fds_)
      if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override {
    return static_cast<int>(fds_.size());
  }

  void do_send(int dest, int tag, const Bytes& payload) override {
    RAXH_EXPECTS(dest >= 0 && dest < size() && dest != rank_);
    if (use_rings()) {
      RingChannel ch(send_rings_[static_cast<std::size_t>(dest)], dest, this);
      ch.send_frame(static_cast<std::uint64_t>(tag), payload,
                    [&] { return peer_gone(dest); });
      return;
    }
    const int fd = fds_[static_cast<std::size_t>(dest)];
    std::uint64_t header[2] = {static_cast<std::uint64_t>(tag),
                               payload.size()};
    write_all(fd, dest, header, sizeof(header));
    if (!payload.empty())
      write_all(fd, dest, payload.data(), payload.size());
  }

  // Advertise the full length but stop writing partway: once this rank
  // exits, the receiver's read hits EOF (socket) or a closed ring
  // mid-payload — exactly what a crash between two writes looks like.
  void raw_send_torn(int dest, int tag, const Bytes& payload,
                     std::size_t keep_bytes) override {
    RAXH_EXPECTS(dest >= 0 && dest < size() && dest != rank_);
    if (use_rings()) {
      RingChannel ch(send_rings_[static_cast<std::size_t>(dest)], dest, this);
      ch.send_torn(static_cast<std::uint64_t>(tag), payload, keep_bytes,
                   [&] { return peer_gone(dest); });
      return;
    }
    const int fd = fds_[static_cast<std::size_t>(dest)];
    std::uint64_t header[2] = {static_cast<std::uint64_t>(tag),
                               payload.size()};
    write_all(fd, dest, header, sizeof(header));
    const std::size_t keep = std::min(keep_bytes, payload.size());
    if (keep > 0) write_all(fd, dest, payload.data(), keep);
  }

  Bytes do_recv(int src, int tag) override {
    RAXH_EXPECTS(src >= 0 && src < size() && src != rank_);
    if (use_rings()) {
      RingChannel ch(recv_rings_[static_cast<std::size_t>(src)], src, this);
      return ch.recv_frame(static_cast<std::uint64_t>(tag),
                           [&] { return peer_gone(src); });
    }
    const int fd = fds_[static_cast<std::size_t>(src)];
    std::uint64_t header[2];
    read_all(fd, src, header, sizeof(header));
    RAXH_ASSERT(static_cast<int>(header[0]) == tag);
    Bytes payload(static_cast<std::size_t>(header[1]));
    if (!payload.empty())
      read_all(fd, src, payload.data(), payload.size());
    return payload;
  }

  bool do_probe(int src) override {
    RAXH_EXPECTS(src >= 0 && src < size() && src != rank_);
    if (use_rings()) {
      RingChannel ch(recv_rings_[static_cast<std::size_t>(src)], src, this);
      return ch.probe() || recv_rings_[static_cast<std::size_t>(src)]
                                   ->writer_closed() ||
             peer_gone(src);
    }
    // Readable means a message has started arriving or the peer closed the
    // socket — either way recv() completes without an unbounded wait.
    ::pollfd pfd{fds_[static_cast<std::size_t>(src)], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 0);
    if (rc < 0) return false;
    return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }

 private:
  [[nodiscard]] bool use_rings() const { return !send_rings_.empty(); }

  // Ring-mode liveness: the companion socket never carries data, so any
  // readability (EOF) or error/hangup means the peer process is gone.
  [[nodiscard]] bool peer_gone(int peer) const {
    ::pollfd pfd{fds_[static_cast<std::size_t>(peer)], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 0);
    if (rc <= 0) return false;
    return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }

  int rank_;
  std::vector<int> fds_;
  std::vector<ShmRing*> send_rings_;  // [dest], kShm only
  std::vector<ShmRing*> recv_rings_;  // [src], kShm only
};

}  // namespace

void run_thread_ranks(int nranks, const std::function<void(Comm&)>& fn,
                      const CommOptions& options) {
  RAXH_EXPECTS(nranks >= 1);
  ThreadHub hub(nranks, options);

  // An unrecovered peer failure on rank 0 is the caller's to handle (the
  // fault-tolerant driver catches RankFailed internally; anything reaching
  // the harness means the run cannot produce a result).
  std::exception_ptr rank0_failure;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&hub, &fn, &rank0_failure, r] {
      ThreadComm comm(&hub, r);
      obs::flight::set_thread_rank(r);
      try {
        fn(comm);
      } catch (const RankDeath&) {
        // Injected death: unwound cleanly; peers see RankFailed. Dump the
        // black box before mark_dead so it is complete by the time any peer
        // can observe the failure and sweep it.
        obs::flight::dump_now(r, "injected rank death", /*fatal=*/true);
      } catch (const RankFailed& f) {
        if (r == 0) {
          rank0_failure = std::current_exception();
        } else {
          std::fprintf(stderr,
                       "[minimpi] rank %d: unrecovered peer failure: %s\n", r,
                       f.what());
          std::abort();
        }
      }
      hub.mark_dead(r);
    });
  }
  for (auto& t : threads) t.join();
  if (rank0_failure) std::rethrow_exception(rank0_failure);
}

void run_thread_ranks(int nranks, const std::function<void(Comm&)>& fn) {
  run_thread_ranks(nranks, fn, CommOptions{});
}

void run_process_ranks(int nranks, const std::function<void(Comm&)>& fn,
                       const CommOptions& options) {
  RAXH_EXPECTS(nranks >= 1);
  // A write to a dead peer must surface as EPIPE (mapped to RankFailed),
  // not kill the process with SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  if (nranks == 1) {
    ProcessComm comm(0, {-1});
    comm.set_collectives(options.collectives);
    obs::flight::set_thread_rank(0);
    fn(comm);
    return;
  }

  // mesh[i][j]: fd owned by rank i talking to rank j. With the shm
  // transport these become pure liveness channels (never written), but the
  // full mesh is wired either way.
  std::vector<std::vector<int>> mesh(
      static_cast<std::size_t>(nranks),
      std::vector<int>(static_cast<std::size_t>(nranks), -1));
  for (int i = 0; i < nranks; ++i) {
    for (int j = i + 1; j < nranks; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        std::perror("minimpi socketpair");
        std::abort();
      }
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = sv[0];
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = sv[1];
    }
  }

  // Shm transport: one anonymous MAP_SHARED region created before any fork
  // holds every ordered pair's ring; children inherit the mapping.
  const bool use_rings = options.transport == Transport::kShm;
  void* ring_region = nullptr;
  std::size_t ring_region_bytes = 0;
  std::vector<ShmRing*> rings;
  if (use_rings) {
    const std::size_t slot = ring_slot_bytes(options.shm_ring_bytes);
    ring_region_bytes =
        slot * static_cast<std::size_t>(nranks) * nranks;
    ring_region = ::mmap(nullptr, ring_region_bytes, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (ring_region == MAP_FAILED) {
      std::perror("minimpi mmap");
      std::abort();
    }
    rings.resize(static_cast<std::size_t>(nranks) * nranks, nullptr);
    for (int s = 0; s < nranks; ++s)
      for (int d = 0; d < nranks; ++d) {
        if (s == d) continue;
        const std::size_t idx = static_cast<std::size_t>(s) * nranks + d;
        rings[idx] = ShmRing::create(
            static_cast<std::uint8_t*>(ring_region) + slot * idx,
            options.shm_ring_bytes);
      }
  }
  auto rings_for = [&](int r) {
    std::pair<std::vector<ShmRing*>, std::vector<ShmRing*>> out;
    if (!use_rings) return out;
    out.first.resize(static_cast<std::size_t>(nranks), nullptr);
    out.second.resize(static_cast<std::size_t>(nranks), nullptr);
    for (int peer = 0; peer < nranks; ++peer) {
      if (peer == r) continue;
      out.first[static_cast<std::size_t>(peer)] =
          rings[static_cast<std::size_t>(r) * nranks + peer];
      out.second[static_cast<std::size_t>(peer)] =
          rings[static_cast<std::size_t>(peer) * nranks + r];
    }
    return out;
  };

  auto close_all_except = [&](int keep_rank) {
    for (int i = 0; i < nranks; ++i)
      for (int j = 0; j < nranks; ++j)
        if (i != keep_rank && mesh[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(j)] >= 0)
          ::close(mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
  };

  std::vector<pid_t> children;
  for (int r = 1; r < nranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("minimpi fork");
      std::abort();
    }
    if (pid == 0) {
      close_all_except(r);
      int exit_code = 0;
      {
        auto [send_rings, recv_rings] = rings_for(r);
        ProcessComm comm(r, std::move(mesh[static_cast<std::size_t>(r)]),
                         std::move(send_rings), std::move(recv_rings));
        comm.set_collectives(options.collectives);
        obs::flight::set_thread_rank(r);
        try {
          fn(comm);
        } catch (const RankDeath&) {
          // Injected death: exit abruptly; the closing sockets deliver EOF.
          // The black box is written first, while the mesh is still open, so
          // peers cannot observe the death before the box is complete.
          obs::flight::dump_now(r, "injected rank death", /*fatal=*/true);
          exit_code = kRankDeathExit;
        } catch (const RankFailed& f) {
          std::fprintf(stderr,
                       "[minimpi] rank %d: unrecovered peer failure: %s\n", r,
                       f.what());
          exit_code = 1;
        }
      }
      std::_Exit(exit_code);
    }
    children.push_back(pid);
  }

  close_all_except(0);
  std::exception_ptr rank0_failure;
  {
    auto [send_rings, recv_rings] = rings_for(0);
    ProcessComm comm(0, std::move(mesh[0]), std::move(send_rings),
                     std::move(recv_rings));
    comm.set_collectives(options.collectives);
    obs::flight::set_thread_rank(0);
    try {
      fn(comm);
    } catch (const RankFailed&) {
      rank0_failure = std::current_exception();
    }
  }
  if (rank0_failure) {
    // The job cannot finish; don't leave children blocked on a silent mesh.
    for (const pid_t pid : children) ::kill(pid, SIGKILL);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (rank0_failure) continue;
    if (WIFEXITED(status) && WEXITSTATUS(status) == kRankDeathExit) {
      // Injected rank death; survivors (or the caller) own recovery.
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "[minimpi] child rank exited abnormally\n");
      std::abort();
    }
  }
  if (ring_region != nullptr) ::munmap(ring_region, ring_region_bytes);
  if (rank0_failure) std::rethrow_exception(rank0_failure);
}

void run_process_ranks(int nranks, const std::function<void(Comm&)>& fn) {
  run_process_ranks(nranks, fn, CommOptions{});
}

}  // namespace raxh::mpi
