#include "minimpi/fault.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/flight.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/prng.h"

namespace raxh::mpi {

namespace {

const char* kind_name(FaultAction::Kind k) {
  switch (k) {
    case FaultAction::Kind::kDie:
      return "die";
    case FaultAction::Kind::kDrop:
      return "drop";
    case FaultAction::Kind::kTorn:
      return "torn";
    case FaultAction::Kind::kDelay:
      return "delay";
  }
  return "?";
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::runtime_error("fault plan '" + spec + "': " + why);
}

void validate(const FaultPlan& plan, const std::string& spec) {
  for (std::size_t i = 0; i < plan.actions.size(); ++i) {
    const FaultAction& a = plan.actions[i];
    if (a.op < 1) bad_spec(spec, "op indices are 1-based");
    if (a.rank < 0) bad_spec(spec, "negative rank");
    if (a.lethal() && a.rank == 0)
      bad_spec(spec, "lethal actions on rank 0 are not allowed (rank 0 is "
                     "the job controller)");
    if (a.kind == FaultAction::Kind::kDelay && a.delay_ms < 0)
      bad_spec(spec, "negative delay");
    for (std::size_t j = 0; j < i; ++j)
      if (plan.actions[j].rank == a.rank && plan.actions[j].op == a.op)
        bad_spec(spec, "duplicate action at rank " + std::to_string(a.rank) +
                           ", op " + std::to_string(a.op));
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t end = std::min(spec.find(';', pos), spec.size());
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;

    const std::size_t at = item.find('@');
    if (at == std::string::npos) bad_spec(spec, "missing '@' in '" + item + "'");
    const std::string kind = item.substr(0, at);
    FaultAction a;
    if (kind == "die")
      a.kind = FaultAction::Kind::kDie;
    else if (kind == "drop")
      a.kind = FaultAction::Kind::kDrop;
    else if (kind == "torn")
      a.kind = FaultAction::Kind::kTorn;
    else if (kind == "delay")
      a.kind = FaultAction::Kind::kDelay;
    else
      bad_spec(spec, "unknown kind '" + kind + "'");

    // rank ',' op [',' ms]
    int fields[3] = {0, 0, 0};
    int nfields = 0;
    std::size_t fpos = at + 1;
    while (fpos <= item.size() && nfields < 3) {
      const std::size_t fend = std::min(item.find(',', fpos), item.size());
      const std::string tok = item.substr(fpos, fend - fpos);
      if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos)
        bad_spec(spec, "bad number '" + tok + "' in '" + item + "'");
      fields[nfields++] = std::stoi(tok);
      if (fend == item.size()) break;
      fpos = fend + 1;
    }
    const int expected = a.kind == FaultAction::Kind::kDelay ? 3 : 2;
    if (nfields != expected)
      bad_spec(spec, "'" + item + "' needs " + std::to_string(expected) +
                         " numeric fields");
    a.rank = fields[0];
    a.op = fields[1];
    a.delay_ms = fields[2];
    plan.actions.push_back(a);
  }
  validate(plan, spec);
  return plan;
}

FaultPlan FaultPlan::generate(std::uint64_t seed, int nranks, int max_op,
                              int max_lethal) {
  RAXH_EXPECTS(nranks >= 2);
  RAXH_EXPECTS(max_op >= 1);
  RAXH_EXPECTS(max_lethal >= 1);
  Xoshiro256 rng(seed);
  FaultPlan plan;

  // Distinct victim ranks in [1, nranks): shuffle then take a prefix.
  std::vector<int> victims;
  for (int r = 1; r < nranks; ++r) victims.push_back(r);
  std::shuffle(victims.begin(), victims.end(), rng);
  const int nlethal = 1 + static_cast<int>(rng.next_below(
                              static_cast<std::uint64_t>(std::min(
                                  max_lethal,
                                  static_cast<int>(victims.size())))));
  constexpr FaultAction::Kind kLethalKinds[] = {FaultAction::Kind::kDie,
                                                FaultAction::Kind::kDrop,
                                                FaultAction::Kind::kTorn};
  for (int i = 0; i < nlethal; ++i) {
    FaultAction a;
    a.kind = kLethalKinds[rng.next_below(3)];
    a.rank = victims[static_cast<std::size_t>(i)];
    a.op = 1 + static_cast<int>(
                   rng.next_below(static_cast<std::uint64_t>(max_op)));
    plan.actions.push_back(a);
  }

  // Up to two small delays anywhere (non-lethal timing shaker). Skip
  // (rank, op) pairs already taken by a lethal action.
  const int ndelays = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < ndelays; ++i) {
    FaultAction a;
    a.kind = FaultAction::Kind::kDelay;
    a.rank = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(nranks)));
    a.op = 1 + static_cast<int>(
                   rng.next_below(static_cast<std::uint64_t>(max_op)));
    a.delay_ms = 1 + static_cast<int>(rng.next_below(5));
    bool taken = false;
    for (const FaultAction& prev : plan.actions)
      if (prev.rank == a.rank && prev.op == a.op) taken = true;
    if (!taken) plan.actions.push_back(a);
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::string out;
  for (const FaultAction& a : actions) {
    if (!out.empty()) out += ';';
    out += kind_name(a.kind);
    out += '@';
    out += std::to_string(a.rank);
    out += ',';
    out += std::to_string(a.op);
    if (a.kind == FaultAction::Kind::kDelay) {
      out += ',';
      out += std::to_string(a.delay_ms);
    }
  }
  return out;
}

FaultyComm::FaultyComm(Comm& inner, const FaultPlan& plan) : inner_(&inner) {
  set_collectives(inner.collectives());
  for (const FaultAction& a : plan.actions)
    if (a.rank == inner.rank()) actions_.push_back(a);
}

const FaultAction* FaultyComm::next_op() {
  ++op_count_;
  for (const FaultAction& a : actions_)
    if (static_cast<std::uint64_t>(a.op) == op_count_) {
      obs::count(obs::Counter::kFaultsInjected);
      obs::flight::record(obs::flight::Kind::kFault,
                          static_cast<std::uint64_t>(a.kind), op_count_);
      return &a;
    }
  return nullptr;
}

void FaultyComm::die() { throw RankDeath{rank()}; }

void FaultyComm::sleep_injected(int delay_ms) {
  const std::uint64_t start = obs::now_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  // Book the measured sleep (>= the nominal ms): oversleep is just as
  // synthetic as the requested delay.
  const std::uint64_t slept = obs::now_ns() - start;
  note_synthetic_delay_ns(slept);
  obs::add_synthetic_delay_ns(slept);
}

void FaultyComm::fault_tick() {
  const FaultAction* a = next_op();
  if (!a) return;
  switch (a->kind) {
    case FaultAction::Kind::kDelay:
      sleep_injected(a->delay_ms);
      return;
    case FaultAction::Kind::kDie:
    case FaultAction::Kind::kDrop:
    case FaultAction::Kind::kTorn:
      // No message in flight at a tick: every lethal kind is a plain death.
      die();
  }
}

void FaultyComm::do_send(int dest, int tag, const Bytes& payload) {
  const FaultAction* a = next_op();
  if (a) {
    switch (a->kind) {
      case FaultAction::Kind::kDelay:
        sleep_injected(a->delay_ms);
        break;
      case FaultAction::Kind::kDie:
        die();
      case FaultAction::Kind::kDrop:
        // Crash before the write hit the wire: nothing is sent.
        die();
      case FaultAction::Kind::kTorn:
        // Crash mid-write: the receiver sees a truncated payload, then EOF.
        inner_->raw_send_torn(dest, tag, payload, payload.size() / 2);
        die();
    }
  }
  inner_->raw_send(dest, tag, payload);
}

Bytes FaultyComm::do_recv(int src, int tag) {
  const FaultAction* a = next_op();
  if (a) {
    switch (a->kind) {
      case FaultAction::Kind::kDelay:
        sleep_injected(a->delay_ms);
        break;
      case FaultAction::Kind::kDie:
      case FaultAction::Kind::kDrop:
      case FaultAction::Kind::kTorn:
        // drop/torn are send-shaped; on a recv op they degrade to death.
        die();
    }
  }
  return inner_->raw_recv(src, tag);
}

}  // namespace raxh::mpi
