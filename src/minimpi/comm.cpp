#include "minimpi/comm.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/flight.h"
#include "obs/hist.h"
#include "obs/obs.h"
#include "util/check.h"

namespace raxh::mpi {

namespace {

namespace flight = obs::flight;

// Feeds the collective-latency histogram: one sample per collective call,
// measured from entry to completion (so it includes peer wait time — the
// coarse-grained analogue of the crew barrier wait). Sleeps injected by a
// fault plan on this thread are subtracted: they are chaos-test artifacts,
// not comm latency.
struct ScopedCollectiveLatency {
  bool armed = obs::enabled();
  std::uint64_t start = armed ? obs::now_ns() : 0;
  std::uint64_t synth0 = armed ? obs::synthetic_delay_ns_this_thread() : 0;
  ~ScopedCollectiveLatency() {
    if (!armed) return;
    std::uint64_t dur = obs::now_ns() - start;
    const std::uint64_t synth =
        obs::synthetic_delay_ns_this_thread() - synth0;
    dur -= std::min(dur, synth);
    obs::detail::hist_add(obs::Hist::kCollectiveNs, dur);
  }
};

// Flight-recorder bracket for one collective. Separate from the span/latency
// scopes above because the recorder is always on, even with obs:: disabled.
struct FlightCollective {
  std::uint32_t id;
  bool armed = flight::enabled();
  std::uint64_t start = 0;
  explicit FlightCollective(std::uint32_t name_id) : id(name_id) {
    if (armed) {
      start = obs::now_ns();
      flight::record(flight::Kind::kCollBegin, id);
    }
  }
  ~FlightCollective() {
    if (armed)
      flight::record(flight::Kind::kCollEnd, id, obs::now_ns() - start);
  }
};

}  // namespace

void Comm::send(int dest, int tag, const Bytes& payload) {
  current_op_->msgs_sent += 1;
  current_op_->bytes_sent += payload.size();
  const bool fl = flight::enabled();
  if (fl)
    flight::record(flight::Kind::kSendBegin, flight::peer_tag(dest, tag),
                   payload.size());
  do_send(dest, tag, payload);
  if (fl)
    flight::record(flight::Kind::kSendEnd, flight::peer_tag(dest, tag),
                   payload.size());
}

Bytes Comm::recv(int src, int tag) {
  const bool fl = flight::enabled();
  if (fl)
    flight::record(flight::Kind::kRecvBegin, flight::peer_tag(src, tag));
  Bytes payload = do_recv(src, tag);
  if (fl)
    flight::record(flight::Kind::kRecvEnd, flight::peer_tag(src, tag),
                   payload.size());
  current_op_->msgs_recv += 1;
  current_op_->bytes_recv += payload.size();
  return payload;
}

Comm::OpStats Comm::Stats::total() const {
  OpStats sum;
  for (const OpStats* op : {&p2p, &barrier, &bcast, &reduce, &gather}) {
    sum.msgs_sent += op->msgs_sent;
    sum.bytes_sent += op->bytes_sent;
    sum.msgs_recv += op->msgs_recv;
    sum.bytes_recv += op->bytes_recv;
  }
  return sum;
}

std::string Comm::Stats::to_json() const {
  const std::pair<const char*, const OpStats*> ops[] = {
      {"p2p", &p2p},       {"barrier", &barrier}, {"bcast", &bcast},
      {"reduce", &reduce}, {"gather", &gather}};
  std::string out = "\"comm\":{";
  char buf[160];
  for (const auto& [name, op] : ops) {
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"msgs_sent\":%llu,\"bytes_sent\":%llu,"
                  "\"msgs_recv\":%llu,\"bytes_recv\":%llu},",
                  name, static_cast<unsigned long long>(op->msgs_sent),
                  static_cast<unsigned long long>(op->bytes_sent),
                  static_cast<unsigned long long>(op->msgs_recv),
                  static_cast<unsigned long long>(op->bytes_recv));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "\"barrier_wait_ns\":%llu,\"synthetic_delay_ns\":%llu}",
                static_cast<unsigned long long>(barrier_wait_ns),
                static_cast<unsigned long long>(synthetic_delay_ns));
  out += buf;
  return out;
}

void Comm::barrier() {
  obs::Span span("mpi.barrier");
  static const std::uint32_t kFlightName = flight::name_id("mpi.barrier");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.barrier);
  const std::uint64_t wait_start = obs::now_ns();
  const std::uint64_t synth0 = obs::synthetic_delay_ns_this_thread();
  // Central coordinator: everyone checks in with rank 0, rank 0 releases.
  const Bytes empty;
  if (rank() == 0) {
    for (int r = 1; r < size(); ++r) recv(r, kTagBarrier);
    for (int r = 1; r < size(); ++r) send(r, kTagBarrier, empty);
  } else {
    send(0, kTagBarrier, empty);
    recv(0, kTagBarrier);
  }
  std::uint64_t waited = obs::now_ns() - wait_start;
  const std::uint64_t synth = obs::synthetic_delay_ns_this_thread() - synth0;
  waited -= std::min(waited, synth);  // injected sleeps are not barrier wait
  stats_.barrier_wait_ns += waited;
}

void Comm::bcast(Bytes& data, int root) {
  obs::Span span("mpi.bcast");
  static const std::uint32_t kFlightName = flight::name_id("mpi.bcast");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.bcast);
  RAXH_EXPECTS(root >= 0 && root < size());
  if (rank() == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, kTagBcast, data);
  } else {
    data = recv(root, kTagBcast);
  }
}

void Comm::bcast_string(std::string& data, int root) {
  Bytes bytes(data.begin(), data.end());
  bcast(bytes, root);
  data.assign(bytes.begin(), bytes.end());
}

Comm::MaxLoc Comm::allreduce_maxloc(double value) {
  obs::Span span("mpi.allreduce");
  static const std::uint32_t kFlightName = flight::name_id("mpi.allreduce");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.reduce);
  Packer p;
  p.put(value);
  Bytes mine = p.take();
  MaxLoc best{value, rank()};
  if (rank() == 0) {
    for (int r = 1; r < size(); ++r) {
      const Bytes b = recv(r, kTagReduce);
      Unpacker u(b);
      const double v = u.get<double>();
      if (v > best.value) best = MaxLoc{v, r};
    }
  } else {
    send(0, kTagReduce, mine);
  }
  Packer out;
  out.put(best.value);
  out.put(best.rank);
  Bytes result = out.take();
  bcast(result, 0);
  Unpacker u(result);
  best.value = u.get<double>();
  best.rank = u.get<int>();
  return best;
}

double Comm::allreduce_sum(double value) {
  obs::Span span("mpi.allreduce");
  static const std::uint32_t kFlightName = flight::name_id("mpi.allreduce");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.reduce);
  double total = value;
  if (rank() == 0) {
    for (int r = 1; r < size(); ++r) {
      const Bytes b = recv(r, kTagReduce);
      Unpacker u(b);
      total += u.get<double>();
    }
  } else {
    Packer p;
    p.put(value);
    send(0, kTagReduce, p.bytes());
  }
  Packer out;
  out.put(total);
  Bytes result = out.take();
  bcast(result, 0);
  Unpacker u(result);
  return u.get<double>();
}

double Comm::allreduce_max(double value) {
  obs::Span span("mpi.allreduce");
  static const std::uint32_t kFlightName = flight::name_id("mpi.allreduce");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.reduce);
  double best = value;
  if (rank() == 0) {
    for (int r = 1; r < size(); ++r) {
      const Bytes b = recv(r, kTagReduce);
      Unpacker u(b);
      best = std::max(best, u.get<double>());
    }
  } else {
    Packer p;
    p.put(value);
    send(0, kTagReduce, p.bytes());
  }
  Packer out;
  out.put(best);
  Bytes result = out.take();
  bcast(result, 0);
  Unpacker u(result);
  return u.get<double>();
}

long Comm::allreduce_sum_long(long value) {
  obs::Span span("mpi.allreduce");
  static const std::uint32_t kFlightName = flight::name_id("mpi.allreduce");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.reduce);
  long total = value;
  if (rank() == 0) {
    for (int r = 1; r < size(); ++r) {
      const Bytes b = recv(r, kTagReduce);
      Unpacker u(b);
      total += u.get<long>();
    }
  } else {
    Packer p;
    p.put(value);
    send(0, kTagReduce, p.bytes());
  }
  Packer out;
  out.put(total);
  Bytes result = out.take();
  bcast(result, 0);
  Unpacker u(result);
  return u.get<long>();
}

std::vector<std::vector<double>> Comm::gather_doubles(
    const std::vector<double>& mine, int root) {
  obs::Span span("mpi.gather");
  static const std::uint32_t kFlightName = flight::name_id("mpi.gather");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.gather);
  std::vector<std::vector<double>> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = mine;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const Bytes b = recv(r, kTagGather);
      Unpacker u(b);
      out[static_cast<std::size_t>(r)] = u.get_doubles();
    }
  } else {
    Packer p;
    p.put_doubles(mine);
    send(root, kTagGather, p.bytes());
  }
  return out;
}

std::vector<std::string> Comm::gather_strings(const std::string& mine,
                                              int root) {
  obs::Span span("mpi.gather");
  static const std::uint32_t kFlightName = flight::name_id("mpi.gather");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.gather);
  std::vector<std::string> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = mine;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const Bytes b = recv(r, kTagGather);
      Unpacker u(b);
      out[static_cast<std::size_t>(r)] = u.get_string();
    }
  } else {
    Packer p;
    p.put_string(mine);
    send(root, kTagGather, p.bytes());
  }
  return out;
}

void Packer::put_string(const std::string& s) {
  put(static_cast<std::uint64_t>(s.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  data_.insert(data_.end(), p, p + s.size());
}

void Packer::put_doubles(const std::vector<double>& v) {
  put(static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  data_.insert(data_.end(), p, p + v.size() * sizeof(double));
}

void Unpacker::read(std::uint8_t* out, std::size_t n) {
  RAXH_EXPECTS(offset_ + n <= data_->size());
  std::memcpy(out, data_->data() + offset_, n);
  offset_ += n;
}

std::string Unpacker::get_string() {
  const auto n = static_cast<std::size_t>(get<std::uint64_t>());
  std::string s(n, '\0');
  read(reinterpret_cast<std::uint8_t*>(s.data()), n);
  return s;
}

std::vector<double> Unpacker::get_doubles() {
  const auto n = static_cast<std::size_t>(get<std::uint64_t>());
  std::vector<double> v(n);
  read(reinterpret_cast<std::uint8_t*>(v.data()), n * sizeof(double));
  return v;
}

}  // namespace raxh::mpi
