#include "minimpi/comm.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/comm_obs.h"
#include "obs/flight.h"
#include "obs/hist.h"
#include "obs/obs.h"
#include "util/check.h"

namespace raxh::mpi {

namespace {

namespace flight = obs::flight;

// Feeds the collective-latency histogram: one sample per collective call,
// measured from entry to completion (so it includes peer wait time — the
// coarse-grained analogue of the crew barrier wait). Sleeps injected by a
// fault plan on this thread are subtracted: they are chaos-test artifacts,
// not comm latency.
struct ScopedCollectiveLatency {
  bool armed = obs::enabled();
  std::uint64_t start = armed ? obs::now_ns() : 0;
  std::uint64_t synth0 = armed ? obs::synthetic_delay_ns_this_thread() : 0;
  ~ScopedCollectiveLatency() {
    if (!armed) return;
    std::uint64_t dur = obs::now_ns() - start;
    const std::uint64_t synth =
        obs::synthetic_delay_ns_this_thread() - synth0;
    dur -= std::min(dur, synth);
    obs::detail::hist_add(obs::Hist::kCollectiveNs, dur);
  }
};

// Flight-recorder bracket for one collective. Separate from the span/latency
// scopes above because the recorder is always on, even with obs:: disabled.
struct FlightCollective {
  std::uint32_t id;
  bool armed = flight::enabled();
  std::uint64_t start = 0;
  explicit FlightCollective(std::uint32_t name_id) : id(name_id) {
    if (armed) {
      start = obs::now_ns();
      flight::record(flight::Kind::kCollBegin, id);
    }
  }
  ~FlightCollective() {
    if (armed)
      flight::record(flight::Kind::kCollEnd, id, obs::now_ns() - start);
  }
};

}  // namespace

Comm::~Comm() { obs::comm::retire(comm_block_); }

obs::comm::Block* Comm::obs_block() {
  if (!obs::enabled()) return nullptr;
  if (comm_block_ == nullptr) comm_block_ = obs::comm::acquire(rank());
  return comm_block_;
}

void Comm::note_ring_stall(int peer, std::uint64_t ns) {
  obs::comm::record_ring_stall(obs_block(), peer, ns);
}

void Comm::note_ring_depth(int peer, std::uint64_t bytes) {
  obs::comm::record_ring_depth(obs_block(), peer, bytes);
}

void Comm::send(int dest, int tag, const Bytes& payload) {
  current_op_->msgs_sent += 1;
  current_op_->bytes_sent += payload.size();
  const bool fl = flight::enabled();
  // Hop events are only meaningful inside a collective: one kCollEdge per
  // send/recv lets the postmortem attribute a slow collective instance to a
  // specific parent→child tree edge.
  const bool edge = fl && current_op_index_ != obs::comm::kOpP2p;
  obs::comm::Block* ob = obs_block();
  const std::uint64_t t0 = (ob != nullptr || edge) ? obs::now_ns() : 0;
  if (fl)
    flight::record(flight::Kind::kSendBegin, flight::peer_tag(dest, tag),
                   payload.size());
  do_send(dest, tag, payload);
  if (fl)
    flight::record(flight::Kind::kSendEnd, flight::peer_tag(dest, tag),
                   payload.size());
  if (ob != nullptr || edge) {
    const std::uint64_t dur = obs::now_ns() - t0;
    if (ob != nullptr)
      obs::comm::record_send(ob, dest, current_op_index_, payload.size(), dur);
    if (edge)
      flight::record(flight::Kind::kCollEdge,
                     flight::coll_edge_a(coll_seq_, current_coll_name_),
                     flight::coll_edge_b(dest, /*recv_side=*/false, dur));
  }
}

Bytes Comm::recv(int src, int tag) {
  const bool fl = flight::enabled();
  const bool edge = fl && current_op_index_ != obs::comm::kOpP2p;
  obs::comm::Block* ob = obs_block();
  // recv duration includes the wait for the sender, so a slow upstream edge
  // (e.g. a fault-plan delay) shows up as receiver-side latency — exactly
  // what raxh_comm's slow-edge table keys on.
  const std::uint64_t t0 = (ob != nullptr || edge) ? obs::now_ns() : 0;
  if (fl)
    flight::record(flight::Kind::kRecvBegin, flight::peer_tag(src, tag));
  Bytes payload = do_recv(src, tag);
  if (fl)
    flight::record(flight::Kind::kRecvEnd, flight::peer_tag(src, tag),
                   payload.size());
  current_op_->msgs_recv += 1;
  current_op_->bytes_recv += payload.size();
  if (ob != nullptr || edge) {
    const std::uint64_t dur = obs::now_ns() - t0;
    if (ob != nullptr)
      obs::comm::record_recv(ob, src, current_op_index_, payload.size(), dur);
    if (edge)
      flight::record(flight::Kind::kCollEdge,
                     flight::coll_edge_a(coll_seq_, current_coll_name_),
                     flight::coll_edge_b(src, /*recv_side=*/true, dur));
  }
  return payload;
}

Comm::OpStats Comm::Stats::total() const {
  OpStats sum;
  for (const OpStats* op : {&p2p, &barrier, &bcast, &reduce, &gather}) {
    sum.msgs_sent += op->msgs_sent;
    sum.bytes_sent += op->bytes_sent;
    sum.msgs_recv += op->msgs_recv;
    sum.bytes_recv += op->bytes_recv;
  }
  return sum;
}

std::string Comm::Stats::to_json() const {
  const std::pair<const char*, const OpStats*> ops[] = {
      {"p2p", &p2p},       {"barrier", &barrier}, {"bcast", &bcast},
      {"reduce", &reduce}, {"gather", &gather}};
  std::string out = "\"comm\":{";
  char buf[160];
  for (const auto& [name, op] : ops) {
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"msgs_sent\":%llu,\"bytes_sent\":%llu,"
                  "\"msgs_recv\":%llu,\"bytes_recv\":%llu},",
                  name, static_cast<unsigned long long>(op->msgs_sent),
                  static_cast<unsigned long long>(op->bytes_sent),
                  static_cast<unsigned long long>(op->msgs_recv),
                  static_cast<unsigned long long>(op->bytes_recv));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "\"barrier_wait_ns\":%llu,\"synthetic_delay_ns\":%llu}",
                static_cast<unsigned long long>(barrier_wait_ns),
                static_cast<unsigned long long>(synthetic_delay_ns));
  out += buf;
  return out;
}

void Comm::barrier() {
  obs::Span span("mpi.barrier");
  static const std::uint32_t kFlightName = flight::name_id("mpi.barrier");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.barrier, obs::comm::kOpBarrier, kFlightName);
  const std::uint64_t wait_start = obs::now_ns();
  const std::uint64_t synth0 = obs::synthetic_delay_ns_this_thread();
  if (collectives_ == CollectiveAlgo::kTree)
    barrier_dissemination();
  else
    barrier_star();
  std::uint64_t waited = obs::now_ns() - wait_start;
  const std::uint64_t synth = obs::synthetic_delay_ns_this_thread() - synth0;
  waited -= std::min(waited, synth);  // injected sleeps are not barrier wait
  stats_.barrier_wait_ns += waited;
}

// Central coordinator: everyone checks in with rank 0, rank 0 releases.
// O(p) serial work on rank 0 — the pre-scale baseline.
void Comm::barrier_star() {
  const Bytes empty;
  if (rank() == 0) {
    for (int r = 1; r < size(); ++r) recv(r, kTagBarrier);
    for (int r = 1; r < size(); ++r) send(r, kTagBarrier, empty);
  } else {
    send(0, kTagBarrier, empty);
    recv(0, kTagBarrier);
  }
}

// Dissemination barrier: ceil(log2 p) rounds; in round k every rank sends to
// (r + 2^k) mod p and receives from (r - 2^k) mod p. No rank leaves before
// every rank has entered, and no rank is a serial bottleneck. The round
// distances are distinct powers of two below p, so each ordered pair carries
// at most one message per barrier and per-pair FIFO keeps consecutive
// barriers from interleaving.
void Comm::barrier_dissemination() {
  const int n = size();
  const Bytes empty;
  for (int dist = 1; dist < n; dist <<= 1) {
    const int to = (rank() + dist) % n;
    const int from = (rank() - dist + n) % n;
    send(to, kTagBarrier, empty);
    recv(from, kTagBarrier);
  }
}

void Comm::bcast(Bytes& data, int root) {
  obs::Span span("mpi.bcast");
  static const std::uint32_t kFlightName = flight::name_id("mpi.bcast");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.bcast, obs::comm::kOpBcast, kFlightName);
  RAXH_EXPECTS(root >= 0 && root < size());
  if (collectives_ == CollectiveAlgo::kTree) {
    bcast_binomial(data, root, kTagBcast);
    return;
  }
  if (rank() == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, kTagBcast, data);
  } else {
    data = recv(root, kTagBcast);
  }
}

// Binomial broadcast on ranks relative to root: a rank receives from the
// parent that owns its lowest set relative-rank bit, then relays down every
// lower bit. Root's serial sends drop from p-1 to ceil(log2 p) and the
// critical path is ceil(log2 p) hops. Payload bytes are forwarded verbatim,
// so the delivered data is bit-identical to the star path's.
void Comm::bcast_binomial(Bytes& data, int root, int tag) {
  const int n = size();
  const int rr = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((rr & mask) != 0) {
      const int src = ((rr & ~mask) + root) % n;
      data = recv(src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rr + mask < n) {
      const int dst = ((rr + mask) % n + root) % n;
      send(dst, tag, data);
    }
    mask >>= 1;
  }
}

// Star gather: every non-root rank sends its blob straight to root; root
// receives in ascending rank order. Returns blobs indexed by rank on root,
// {} elsewhere.
std::vector<Bytes> Comm::star_gather(const Bytes& mine, int root, int tag) {
  std::vector<Bytes> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = mine;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv(r, tag);
    }
  } else {
    send(root, tag, mine);
  }
  return out;
}

// Binomial gather: the mirror of bcast_binomial. Each rank accumulates
// (rank, blob) entries from the subtree hanging off its set relative-rank
// bits, then forwards the batch to its parent. Root ends up holding every
// rank's original blob and indexes them by absolute rank — the rank-ordered
// view reduce_fold_bcast folds over, which is what keeps tree reductions
// bit-identical to star ones (same operands, same fold order; the tree only
// changes the routing).
std::vector<Bytes> Comm::tree_gather(const Bytes& mine, int root, int tag) {
  const int n = size();
  const int rr = (rank() - root + n) % n;
  std::vector<std::pair<int, Bytes>> entries;
  entries.emplace_back(rank(), mine);
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((rr & mask) == 0) {
      const int src_rr = rr | mask;
      if (src_rr >= n) continue;
      const int src = (src_rr + root) % n;
      const Bytes packed = recv(src, tag);
      Unpacker u(packed);
      const auto count = u.get<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) {
        const int r = u.get<std::int32_t>();
        entries.emplace_back(r, u.get_bytes());
      }
    } else {
      const int dst = ((rr & ~mask) + root) % n;
      Packer p;
      p.put(static_cast<std::uint32_t>(entries.size()));
      for (const auto& [r, blob] : entries) {
        p.put(static_cast<std::int32_t>(r));
        p.put_bytes(blob);
      }
      send(dst, tag, p.bytes());
      entries.clear();
      break;
    }
  }
  std::vector<Bytes> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(n));
    for (auto& [r, blob] : entries)
      out[static_cast<std::size_t>(r)] = std::move(blob);
  }
  return out;
}

// The reduce skeleton shared by every allreduce flavour: move per-rank
// operand blobs to rank 0 (star or tree routing), fold them there in
// ascending rank order, broadcast the folded result. Folding at a single
// rank over rank-ordered operands is the reproducibility contract — FP
// association order is identical across algorithms, backends, transports,
// and MAXLOC ties resolve to the lowest rank.
Bytes Comm::reduce_fold_bcast(
    const Bytes& mine,
    const std::function<Bytes(const std::vector<Bytes>&)>& fold) {
  std::vector<Bytes> blobs = collectives_ == CollectiveAlgo::kTree
                                 ? tree_gather(mine, 0, kTagReduce)
                                 : star_gather(mine, 0, kTagReduce);
  Bytes result;
  if (rank() == 0) result = fold(blobs);
  bcast(result, 0);  // outermost ScopedOp keeps this attributed to reduce
  return result;
}

void Comm::bcast_string(std::string& data, int root) {
  Bytes bytes(data.begin(), data.end());
  bcast(bytes, root);
  data.assign(bytes.begin(), bytes.end());
}

Comm::MaxLoc Comm::allreduce_maxloc(double value) {
  obs::Span span("mpi.allreduce");
  static const std::uint32_t kFlightName = flight::name_id("mpi.allreduce");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.reduce, obs::comm::kOpReduce, kFlightName);
  Packer p;
  p.put(value);
  const Bytes result =
      reduce_fold_bcast(p.take(), [](const std::vector<Bytes>& blobs) {
        Unpacker u0(blobs[0]);
        MaxLoc best{u0.get<double>(), 0};
        // Strict > with ascending rank order: ties go to the lowest rank.
        for (std::size_t r = 1; r < blobs.size(); ++r) {
          Unpacker u(blobs[r]);
          const double v = u.get<double>();
          if (v > best.value) best = MaxLoc{v, static_cast<int>(r)};
        }
        Packer out;
        out.put(best.value);
        out.put(best.rank);
        return out.take();
      });
  Unpacker u(result);
  MaxLoc best{};
  best.value = u.get<double>();
  best.rank = u.get<int>();
  return best;
}

double Comm::allreduce_sum(double value) {
  obs::Span span("mpi.allreduce");
  static const std::uint32_t kFlightName = flight::name_id("mpi.allreduce");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.reduce, obs::comm::kOpReduce, kFlightName);
  Packer p;
  p.put(value);
  const Bytes result =
      reduce_fold_bcast(p.take(), [](const std::vector<Bytes>& blobs) {
        Unpacker u0(blobs[0]);
        double total = u0.get<double>();  // seed with rank 0's operand (not
                                          // 0.0: preserves -0.0 semantics)
        for (std::size_t r = 1; r < blobs.size(); ++r) {
          Unpacker u(blobs[r]);
          total += u.get<double>();
        }
        Packer out;
        out.put(total);
        return out.take();
      });
  Unpacker u(result);
  return u.get<double>();
}

double Comm::allreduce_max(double value) {
  obs::Span span("mpi.allreduce");
  static const std::uint32_t kFlightName = flight::name_id("mpi.allreduce");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.reduce, obs::comm::kOpReduce, kFlightName);
  Packer p;
  p.put(value);
  const Bytes result =
      reduce_fold_bcast(p.take(), [](const std::vector<Bytes>& blobs) {
        Unpacker u0(blobs[0]);
        double best = u0.get<double>();
        for (std::size_t r = 1; r < blobs.size(); ++r) {
          Unpacker u(blobs[r]);
          best = std::max(best, u.get<double>());
        }
        Packer out;
        out.put(best);
        return out.take();
      });
  Unpacker u(result);
  return u.get<double>();
}

long Comm::allreduce_sum_long(long value) {
  obs::Span span("mpi.allreduce");
  static const std::uint32_t kFlightName = flight::name_id("mpi.allreduce");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.reduce, obs::comm::kOpReduce, kFlightName);
  Packer p;
  p.put(value);
  const Bytes result =
      reduce_fold_bcast(p.take(), [](const std::vector<Bytes>& blobs) {
        Unpacker u0(blobs[0]);
        long total = u0.get<long>();
        for (std::size_t r = 1; r < blobs.size(); ++r) {
          Unpacker u(blobs[r]);
          total += u.get<long>();
        }
        Packer out;
        out.put(total);
        return out.take();
      });
  Unpacker u(result);
  return u.get<long>();
}

std::vector<std::vector<double>> Comm::gather_doubles(
    const std::vector<double>& mine, int root) {
  obs::Span span("mpi.gather");
  static const std::uint32_t kFlightName = flight::name_id("mpi.gather");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.gather, obs::comm::kOpGather, kFlightName);
  Packer p;
  p.put_doubles(mine);
  const std::vector<Bytes> blobs =
      collectives_ == CollectiveAlgo::kTree
          ? tree_gather(p.take(), root, kTagGather)
          : star_gather(p.take(), root, kTagGather);
  std::vector<std::vector<double>> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      Unpacker u(blobs[static_cast<std::size_t>(r)]);
      out[static_cast<std::size_t>(r)] = u.get_doubles();
    }
  }
  return out;
}

std::vector<std::string> Comm::gather_strings(const std::string& mine,
                                              int root) {
  obs::Span span("mpi.gather");
  static const std::uint32_t kFlightName = flight::name_id("mpi.gather");
  FlightCollective fl(kFlightName);
  ScopedCollectiveLatency latency;
  ScopedOp op(*this, stats_.gather, obs::comm::kOpGather, kFlightName);
  Packer p;
  p.put_string(mine);
  const std::vector<Bytes> blobs =
      collectives_ == CollectiveAlgo::kTree
          ? tree_gather(p.take(), root, kTagGather)
          : star_gather(p.take(), root, kTagGather);
  std::vector<std::string> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      Unpacker u(blobs[static_cast<std::size_t>(r)]);
      out[static_cast<std::size_t>(r)] = u.get_string();
    }
  }
  return out;
}

// --- nonblocking point-to-point ---

Comm::Request Comm::isend(int dest, int tag, const Bytes& payload) {
  // Eager completion into the transport's buffering (see comm.h): by the
  // time send() returns the message is queued, so the request is done.
  Request req;
  req.is_recv_ = false;
  req.peer_ = dest;
  req.tag_ = tag;
  const bool fl = flight::enabled();
  obs::comm::Block* ob = obs_block();
  const std::uint64_t t0 = (ob != nullptr || fl) ? obs::now_ns() : 0;
  if (fl)
    flight::record(flight::Kind::kReqPost, flight::peer_tag(dest, tag),
                   /*is_recv=*/0);
  send(dest, tag, payload);
  // Eager sends are in flight exactly as long as the caller is blocked in
  // them, so they honestly contribute zero overlap.
  if (ob != nullptr) {
    const std::uint64_t dur = obs::now_ns() - t0;
    obs::comm::record_request(ob, /*completed_by_test=*/false, dur, dur);
  }
  return req;
}

Comm::Request Comm::irecv(int src, int tag) {
  Request req;
  req.is_recv_ = true;
  req.done_ = false;
  req.peer_ = src;
  req.tag_ = tag;
  const bool fl = flight::enabled();
  if (fl || obs::enabled()) req.posted_ns_ = obs::now_ns();
  if (fl)
    flight::record(flight::Kind::kReqPost, flight::peer_tag(src, tag),
                   /*is_recv=*/1);
  return req;
}

bool Comm::test(Request& req) {
  if (req.done_) return true;
  // do_probe is per-source: it reports a message (or the peer's death)
  // observable on src's channel. The recv below is the normal counted path,
  // so Stats and flight events are identical whether a message arrives via
  // recv, wait, or a test that completed it.
  if (!do_probe(req.peer_)) return false;
  const bool fl = flight::enabled();
  obs::comm::Block* ob = obs_block();
  const std::uint64_t t0 =
      ((ob != nullptr || fl) && req.posted_ns_ != 0) ? obs::now_ns() : 0;
  req.payload_ = recv(req.peer_, req.tag_);
  req.done_ = true;
  if (t0 != 0) {
    const std::uint64_t now = obs::now_ns();
    if (ob != nullptr)
      obs::comm::record_request(ob, /*completed_by_test=*/true,
                                now - req.posted_ns_, now - t0);
    if (fl)
      flight::record(flight::Kind::kReqTestOk,
                     flight::peer_tag(req.peer_, req.tag_),
                     now - req.posted_ns_);
    req.posted_ns_ = 0;
  }
  return true;
}

Bytes Comm::wait(Request& req) {
  if (!req.done_) {
    const bool fl = flight::enabled();
    obs::comm::Block* ob = obs_block();
    const std::uint64_t t0 =
        ((ob != nullptr || fl) && req.posted_ns_ != 0) ? obs::now_ns() : 0;
    req.payload_ = recv(req.peer_, req.tag_);
    req.done_ = true;
    if (t0 != 0) {
      const std::uint64_t now = obs::now_ns();
      if (ob != nullptr)
        obs::comm::record_request(ob, /*completed_by_test=*/false,
                                  now - req.posted_ns_, now - t0);
      if (fl)
        flight::record(flight::Kind::kReqWaitDone,
                       flight::peer_tag(req.peer_, req.tag_), now - t0);
      req.posted_ns_ = 0;
    }
  }
  return std::move(req.payload_);
}

void Packer::put_string(const std::string& s) {
  put(static_cast<std::uint64_t>(s.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  data_.insert(data_.end(), p, p + s.size());
}

void Packer::put_doubles(const std::vector<double>& v) {
  put(static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  data_.insert(data_.end(), p, p + v.size() * sizeof(double));
}

void Packer::put_bytes(const Bytes& b) {
  put(static_cast<std::uint64_t>(b.size()));
  data_.insert(data_.end(), b.begin(), b.end());
}

void Unpacker::read(std::uint8_t* out, std::size_t n) {
  RAXH_EXPECTS(offset_ + n <= data_->size());
  std::memcpy(out, data_->data() + offset_, n);
  offset_ += n;
}

std::string Unpacker::get_string() {
  const auto n = static_cast<std::size_t>(get<std::uint64_t>());
  std::string s(n, '\0');
  read(reinterpret_cast<std::uint8_t*>(s.data()), n);
  return s;
}

std::vector<double> Unpacker::get_doubles() {
  const auto n = static_cast<std::size_t>(get<std::uint64_t>());
  std::vector<double> v(n);
  read(reinterpret_cast<std::uint8_t*>(v.data()), n * sizeof(double));
  return v;
}

Bytes Unpacker::get_bytes() {
  const auto n = static_cast<std::size_t>(get<std::uint64_t>());
  Bytes b(n);
  read(b.data(), n);
  return b;
}

}  // namespace raxh::mpi
