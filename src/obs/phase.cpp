#include "obs/phase.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "obs/flight.h"
#include "obs/obs.h"

namespace raxh::obs {

void PhaseAccumulator::start(std::string phase) {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
  current_ = std::move(phase);
  started_ns_ = now_ns();
  running_ = true;
}

void PhaseAccumulator::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

void PhaseAccumulator::flush_locked() {
  if (!running_) return;
  running_ = false;
  const double elapsed =
      static_cast<double>(now_ns() - started_ns_) / 1e9;
  for (auto& [name, secs] : phases_) {
    if (name == current_) {
      secs += elapsed;
      return;
    }
  }
  phases_.emplace_back(current_, elapsed);
}

void PhaseAccumulator::add(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, secs] : phases_) {
    if (name == phase) {
      secs += seconds;
      return;
    }
  }
  phases_.emplace_back(phase, seconds);
}

double PhaseAccumulator::total(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, secs] : phases_)
    if (name == phase) return secs;
  return 0.0;
}

double PhaseAccumulator::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double s = 0.0;
  for (const auto& [name, secs] : phases_) s += secs;
  return s;
}

std::vector<std::pair<std::string, double>> PhaseAccumulator::phases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_;
}

void PhaseAccumulator::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
  current_.clear();
  phases_.clear();
}

PhaseAccumulator& run_phases() {
  static PhaseAccumulator* acc = new PhaseAccumulator;  // leaked: teardown-safe
  return *acc;
}

void run_phases_reset_for_fork() {
  // The forked child is single-threaded; rebuild the accumulator in place so
  // an inherited mid-flight mutex cannot deadlock, then drop parent history.
  new (&run_phases()) PhaseAccumulator;
}

ScopedPhase::ScopedPhase(const char* name, PhaseAccumulator* local)
    : name_(name), local_(local), start_ns_(now_ns()) {
  flight::record(flight::Kind::kPhaseBegin, flight::name_id(name));
}

ScopedPhase::~ScopedPhase() {
  const std::uint64_t end_ns = now_ns();
  const double seconds = static_cast<double>(end_ns - start_ns_) / 1e9;
  run_phases().add(name_, seconds);
  if (local_ != nullptr) local_->add(name_, seconds);
  // The flight event carries the same elapsed sample run_phases() gets, so
  // raxh_blackbox's critical-path totals reconcile with the component table.
  flight::record(flight::Kind::kPhaseEnd, flight::name_id(name_),
                 end_ns - start_ns_);
  if (enabled())
    record_phase_span(std::string("phase:") + name_, start_ns_,
                      end_ns - start_ns_);
}

std::string serialize_phases(const PhaseAccumulator& acc) {
  std::string out;
  for (const auto& [name, secs] : acc.phases()) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "\t%.9f\n", secs);
    out += name;
    out += buf;
  }
  return out;
}

std::vector<std::pair<std::string, double>> deserialize_phases(
    const std::string& data) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t tab = data.find('\t', pos);
    if (tab == std::string::npos) break;
    const std::size_t eol = data.find('\n', tab);
    const std::string name = data.substr(pos, tab - pos);
    const double secs = std::strtod(data.c_str() + tab + 1, nullptr);
    out.emplace_back(name, secs);
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return out;
}

std::string format_component_table(
    const std::vector<std::vector<std::pair<std::string, double>>>& rows,
    const std::vector<std::string>& row_labels, const std::string& row_header) {
  // Column order: union of phase names in first-seen order.
  std::vector<std::string> columns;
  for (const auto& row : rows)
    for (const auto& [name, secs] : row)
      if (std::find(columns.begin(), columns.end(), name) == columns.end())
        columns.push_back(name);

  std::size_t label_width = row_header.size();
  for (const auto& label : row_labels)
    label_width = std::max(label_width, label.size());

  auto cell_width = [](const std::string& name) {
    return std::max<std::size_t>(name.size(), 9);
  };

  char buf[64];
  std::string out;
  out += row_header;
  out.append(label_width - row_header.size(), ' ');
  for (const auto& col : columns) {
    out += "  ";
    out.append(cell_width(col) - col.size(), ' ');
    out += col;
  }
  out += "  |        sum\n";

  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::string& label = r < row_labels.size() ? row_labels[r] : "";
    out.append(label_width - label.size(), ' ');
    out += label;
    double sum = 0.0;
    for (const auto& col : columns) {
      double secs = 0.0;
      for (const auto& [name, value] : rows[r]) {
        if (name == col) {
          secs = value;
          break;
        }
      }
      sum += secs;
      std::snprintf(buf, sizeof(buf), "  %*.3f",
                    static_cast<int>(cell_width(col)), secs);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "  |  %9.3f\n", sum);
    out += buf;
  }
  return out;
}

}  // namespace raxh::obs
