// Communication observability plane: per-rank (peer, op) edge matrices,
// shm-ring backpressure gauges, and nonblocking-request overlap accounting.
//
// minimpi's counted send()/recv() layer calls record_send/record_recv at the
// exact sites that bump Comm::Stats, so a block's per-op byte/message totals
// reconcile *exactly* with the per-op CommStats — raxh_comm asserts that
// equality offline and tests assert it in-process. Accumulation follows the
// hist.cpp idiom: each Comm owns a padded block of relaxed atomics written
// only by the communicating thread; snapshots read them from any thread.
//
// Layering: this header is part of raxh_obs, which minimpi links — so it
// must not include minimpi headers. The (peer, op) convention is defined
// here and minimpi translates into it (op indices match the declaration
// order of Comm::Stats: p2p, barrier, bcast, reduce, gather).
//
// Everything here is gated on obs::enabled() by the callers: with
// observability off the comm plane costs minimpi one relaxed load + branch
// per send/recv (bench_obs_overhead's comm mode enforces the <2% budget).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace raxh::obs::comm {

// Peers at or above the clamp accumulate into the last slot so byte totals
// still reconcile at any rank count; Snapshot::clamped_records counts how
// many records were clamped (0 in every supported deployment — the hybrid
// paper tops out at far fewer ranks).
inline constexpr int kMaxPeers = 64;

// Op indices, matching Comm::Stats declaration order.
inline constexpr int kOpP2p = 0;
inline constexpr int kOpBarrier = 1;
inline constexpr int kOpBcast = 2;
inline constexpr int kOpReduce = 3;
inline constexpr int kOpGather = 4;
inline constexpr int kNumOps = 5;
[[nodiscard]] const char* op_name(int op);   // "p2p", "barrier", ...
[[nodiscard]] int op_index(const std::string& name);  // -1 if unknown

// One rank's accumulation block. Opaque: allocated by acquire(), written
// through the record_* hooks, read through totals()/snapshot().
struct Block;

// Allocate + register a block for `rank` (minimpi calls this lazily on the
// first enabled record of a Comm). retire() folds the block's content into
// a process-wide retired aggregate and frees it — a Comm's traffic stays
// visible in snapshot() after the Comm is destroyed.
[[nodiscard]] Block* acquire(int rank);
void retire(Block* block);

// --- hot-path hooks (null-safe; relaxed owner-thread writes) ---
void record_send(Block* block, int peer, int op, std::uint64_t bytes,
                 std::uint64_t ns);
void record_recv(Block* block, int peer, int op, std::uint64_t bytes,
                 std::uint64_t ns);
// One completed full-ring stall episode on the send path to `peer`.
void record_ring_stall(Block* block, int peer, std::uint64_t ns);
// Post-send occupancy sample of the ring to `peer`; keeps the high-water mark.
void record_ring_depth(Block* block, int peer, std::uint64_t bytes);
// One completed nonblocking request: total posted→completed time and the
// slice of it the caller spent blocked inside test()/wait()'s receive.
void record_request(Block* block, bool completed_by_test,
                    std::uint64_t inflight_ns, std::uint64_t blocked_ns);

// Process-wide "a sender is stalled on a full ring right now" gauge; bracket
// calls come from the ring stall scope. Mirrored into the bound JobObs (if
// any) so raxh_top can show per-job stall state.
void stall_enter();
void stall_exit();
[[nodiscard]] int stalled_now();

// --- read side ---

struct EdgeTotals {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t send_ns = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t recv_ns = 0;
};
struct RingTotals {
  std::uint64_t stalls = 0;
  std::uint64_t stalled_ns = 0;
  std::uint64_t hwm_bytes = 0;
};
struct OverlapTotals {
  std::uint64_t requests = 0;
  std::uint64_t test_completions = 0;
  std::uint64_t wait_completions = 0;
  std::uint64_t inflight_ns = 0;
  std::uint64_t blocked_ns = 0;
  // Fraction of in-flight time the caller was NOT blocked waiting; the
  // overlap the nonblocking API actually bought. 0 when nothing completed.
  [[nodiscard]] double overlap_ratio() const;
};

// Per-op totals of one live block (tests reconcile these against the owning
// Comm's Stats). Null block → zeros.
struct BlockTotals {
  std::array<EdgeTotals, kNumOps> per_op;
  OverlapTotals overlap;
};
[[nodiscard]] BlockTotals totals(const Block* block);

struct EdgeSample {
  int rank = -1;
  int peer = -1;
  int op = 0;
  EdgeTotals t;
};
struct RingSample {
  int rank = -1;
  int peer = -1;
  RingTotals t;
};
struct OverlapSample {
  int rank = -1;
  OverlapTotals t;
};

// Merged view of every live block plus the retired aggregate, nonzero
// entries only, sorted by (rank, peer, op).
struct Snapshot {
  std::vector<EdgeSample> edges;
  std::vector<RingSample> rings;
  std::vector<OverlapSample> overlap;
  std::uint64_t clamped_records = 0;
  int stalled_now = 0;
};
[[nodiscard]] Snapshot snapshot();
[[nodiscard]] Snapshot snapshot_for_rank(int rank);

// This rank's matrix as a pre-rendered metrics section
// ("comm_matrix":{...}), appended after Comm::Stats::to_json() in the
// --metrics-out fragment. Emitted even when empty so raxh_comm can tell
// "comm plane on, no traffic" from "comm plane off".
[[nodiscard]] std::string to_json_section(int rank);

// Zero every live block and drop the retired aggregate (tests; forked
// children via the obs atfork hook — a child must not re-export the
// parent's pre-fork traffic).
void reset();
// Fork-safe variant for the obs atfork child hook: re-initializes the
// registry mutex (which may have been held mid-fork) before clearing.
void reset_for_fork();

// ---------------------------------------------------------------------------
// Offline analysis (tools/raxh_comm)
// ---------------------------------------------------------------------------

// One rank's decoded slice of a merged --metrics-out document: the CommStats
// "comm" section and (when the run had observability on) the "comm_matrix"
// section emitted by to_json_section().
struct RankDump {
  int rank = -1;
  bool has_comm_stats = false;
  bool has_matrix = false;
  // From "comm": per-op msgs/bytes (ns fields stay 0 — CommStats has none).
  std::array<EdgeTotals, kNumOps> comm_stats;
  std::vector<EdgeSample> edges;
  std::vector<RingSample> rings;
  OverlapTotals overlap;
  std::uint64_t clamped_records = 0;
};

// Parse the JSON array --metrics-out writes (obs::merge_metrics_fragments
// output). Tolerant of ranks without comm sections; hard errors (not an
// array, malformed numbers) set *error and return {}.
[[nodiscard]] std::vector<RankDump> parse_metrics_report(
    const std::string& json, std::string* error);

// Exact per-op reconciliation of one rank's matrix totals against its
// CommStats; mismatch details (if any) are appended to *detail.
[[nodiscard]] bool reconciles(const RankDump& rank, std::string* detail);

// The raxh_comm report: reconciliation table, top-k hot edges, tree-vs-star
// traffic-shape classification, ring stall table, and overlap summary.
// Sets *ok=false when any rank fails reconciliation.
[[nodiscard]] std::string format_report(const std::vector<RankDump>& ranks,
                                        int top_k, bool* ok);

}  // namespace raxh::obs::comm
