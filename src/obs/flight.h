// Flight recorder ("black box"): an always-on, per-thread lock-free ring of
// fixed-size binary event records covering the hybrid stack — phase begin/end,
// minimpi send/recv/collective, crew job dispatch/join, checkpoint writes,
// fault-plan triggers, rank-death detection, and work re-grants.
//
// Design constraints, in order:
//  * Always on. Unlike the obs:: tracing layer (opt-in via --trace-out), the
//    recorder runs in production so a crash is explainable after the fact.
//    The steady-state cost is one relaxed load + four relaxed stores + a
//    clock sample per event; bench_obs_overhead enforces the <2% budget.
//  * Async-signal-safe dump. The SIGSEGV/SIGBUS/SIGABRT handlers and the
//    std::terminate hook write DIR/rank<r>.blackbox using only open/write/
//    mkdir — no malloc, no stdio, paths prebuilt into fixed buffers. The
//    file carries a trailing FNV-1a checksum + end marker mirroring
//    checkpoint v2, so torn dumps are rejected, never half-parsed.
//  * Lock-free recording. Each thread owns a preallocated ring and a bump
//    cursor; event words are relaxed atomics so a dump (or TSan) can read a
//    live ring without writer coordination. A slot being overwritten during
//    a dump can decode torn — the reader skips undecodable slots and counts
//    them instead of failing.
//
// The binary format is native-endian: black boxes are decoded on the machine
// (class) that wrote them, like checkpoints.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace raxh::obs::flight {

// Fixed per-thread ring capacity in events (32 B each → 128 KiB per thread).
inline constexpr std::size_t kRingCapacity = 1 << 12;

enum class Kind : std::uint32_t {
  kPhaseBegin = 1,  // a = name id
  kPhaseEnd,        // a = name id, b = duration ns (same sample run_phases gets)
  kSendBegin,       // a = peer_tag(dest, tag), b = payload bytes
  kSendEnd,         // a = peer_tag(dest, tag), b = payload bytes
  kRecvBegin,       // a = peer_tag(src, tag)
  kRecvEnd,         // a = peer_tag(src, tag), b = payload bytes
  kCollBegin,       // a = name id ("mpi.barrier", "ft.barrier", ...)
  kCollEnd,         // a = name id, b = duration ns
  kJobBegin,        // crew job dispatched (every 64th job is sampled);
                    // a = crew size, b = job index
  kJobEnd,          // a = crew size, b = duration ns (dispatch + the
                    // master's own job execution — the master's wait for
                    // the crew is booked separately as kJobWait, so the
                    // duration means the same thing on the 1-thread and
                    // crew paths)
  kJobWait,         // a = crew size, b = ns the master waited on the crew
                    // barrier after finishing its own share (imbalance)
  kCkptWrite,       // a = name id of path, b = serialized bytes
  kFault,           // a = FaultAction::Kind, b = 1-based op index
  kRankDead,        // a = dead rank, b = name id of detection site
  kRegrant,         // a = logical share, b = executing rank
  kNote,            // a = name id
  kReqPost,         // nonblocking request posted; a = peer_tag(peer, tag),
                    // b = 1 for irecv, 0 for isend
  kReqTestOk,       // request completed inside test(); a = peer_tag,
                    // b = posted-to-complete (in-flight) ns
  kReqWaitDone,     // request completed inside wait(); a = peer_tag,
                    // b = ns blocked in the wait
  kCollEdge,        // one hop of a collective (see coll_edge_* helpers);
                    // a = (per-comm collective seq << 32) | name id,
                    // b = packed peer / direction / hop duration ns
  kMaxKind = kCollEdge
};

// Peer + tag packed into the `a` word of send/recv events.
inline std::uint64_t peer_tag(int peer, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 32) |
         static_cast<std::uint32_t>(tag);
}
inline int peer_of(std::uint64_t a) { return static_cast<int>(a >> 32); }
inline int tag_of(std::uint64_t a) {
  return static_cast<int>(static_cast<std::uint32_t>(a));
}

// kCollEdge packing. `a` identifies the collective instance (a per-comm
// sequence number, so one rank's hops of the same collective call group
// together) and its interned name; `b` carries the peer, the direction
// (recv = the edge peer→me, send = me→peer), and the hop duration, capped
// at 2^47-1 ns (~1.6 days — effectively never).
inline std::uint64_t coll_edge_a(std::uint32_t seq, std::uint32_t name) {
  return (static_cast<std::uint64_t>(seq) << 32) | name;
}
inline std::uint32_t coll_edge_seq(std::uint64_t a) {
  return static_cast<std::uint32_t>(a >> 32);
}
inline std::uint32_t coll_edge_name(std::uint64_t a) {
  return static_cast<std::uint32_t>(a);
}
inline constexpr std::uint64_t kCollEdgeNsMask = (std::uint64_t{1} << 47) - 1;
inline std::uint64_t coll_edge_b(int peer, bool recv_side, std::uint64_t ns) {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(peer)) << 48) |
         (recv_side ? (std::uint64_t{1} << 47) : 0) |
         (ns < kCollEdgeNsMask ? ns : kCollEdgeNsMask);
}
inline int coll_edge_peer(std::uint64_t b) {
  return static_cast<int>(static_cast<std::uint16_t>(b >> 48));
}
inline bool coll_edge_is_recv(std::uint64_t b) {
  return ((b >> 47) & 1) != 0;
}
inline std::uint64_t coll_edge_ns(std::uint64_t b) {
  return b & kCollEdgeNsMask;
}

// Recorder switch, separate from obs::enabled() (which stays opt-in).
// Default: on.
namespace detail {
extern std::atomic<bool> g_enabled;
void do_record(Kind k, std::uint64_t a, std::uint64_t b);
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Stamp the calling thread's events with a coarse-grained rank (the minimpi
// harnesses call this at rank entry for both backends). Also remembered
// process-wide as the fallback rank for crash-dump file naming.
void set_thread_rank(int rank);

// Intern a short name into the process-wide table written into every dump;
// returns a stable nonzero id, or 0 when the table is full ("?" on decode).
// Cheap after first call for a given string; hot call sites cache the id in
// a function-local static.
std::uint32_t name_id(const char* name);

// Record one event into the calling thread's ring. No-op when disabled.
inline void record(Kind k, std::uint64_t a = 0, std::uint64_t b = 0) {
  if (!enabled()) return;
  detail::do_record(k, a, b);
}

// Where dumps go ("" disables dumping; the directory is created lazily at
// dump time with a plain mkdir, so it must be at most one level deep).
void set_dump_dir(const std::string& dir);
[[nodiscard]] std::string dump_dir();
// DIR/rank<r>.blackbox, or "" when no dump dir is configured.
[[nodiscard]] std::string dump_path_for_rank(int rank);

// Write every ring to DIR/rank<rank>.blackbox. rank < 0 picks the calling
// thread's rank, else the last rank any thread registered, else 0. `fatal`
// marks the box as a death record (crash/injected death) for the analyzer.
// Returns false when no dir is configured or the write failed. Safe from
// signal handlers.
bool dump_now(int rank = -1, const char* reason = nullptr, bool fatal = false);

// Install SIGSEGV/SIGBUS/SIGABRT handlers and a std::terminate hook that
// dump once (fatal) and then re-raise the default action.
void install_crash_handlers();

// Total events recorded process-wide since the last reset() (ring-wrap
// overwrites still count; used by bench_obs_overhead).
[[nodiscard]] std::uint64_t events_recorded();

// Clear all rings (tests; sequential chaos runs call this between plans so a
// dump only shows the current run). Interned names survive — ids are stable.
void reset();

// ---------------------------------------------------------------------------
// Decoded black boxes (normal, non-signal context)
// ---------------------------------------------------------------------------

struct DecodedEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  Kind kind{};
  int rank = -1;  // recording thread's rank; -1 = unattributed
};

struct Blackbox {
  int rank = -1;  // the rank this box was dumped for (file-name authority)
  std::uint32_t pid = 0;
  bool fatal = false;
  std::string reason;
  std::vector<std::string> names;  // id i+1 → names[i]
  struct RingDump {
    std::uint32_t tid = 0;    // ring registration order within the process
    std::uint64_t head = 0;   // total events ever recorded into this ring
    std::vector<DecodedEvent> events;  // oldest first
  };
  std::vector<RingDump> rings;
  std::uint64_t dropped = 0;  // events lost to ring wrap (sum over rings)
  std::uint64_t torn = 0;     // slots skipped as undecodable (live-dump races)

  [[nodiscard]] const std::string& name(std::uint64_t id) const;
  [[nodiscard]] std::vector<DecodedEvent> all_events() const;
};

// Decode one black box file. Throws std::runtime_error with a diagnostic on
// any malformed input — truncation, bit flips, trailing garbage — mirroring
// checkpoint v2's rejection semantics.
Blackbox read_blackbox(const std::string& path);

}  // namespace raxh::obs::flight
