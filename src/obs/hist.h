// Lock-free log2-bucketed latency histograms for the hybrid stack's three
// synchronization hot spots: crew job durations, the master's barrier wait,
// and minimpi collective latencies.
//
// Storage mirrors the counter design in obs.h: each thread owns a padded
// block of relaxed-atomic bucket counts (owner-thread writes only — no
// contention, no lock prefix), and snapshots merge the per-thread blocks.
// A recorded duration costs one bit_width plus a handful of relaxed stores;
// with observability disabled hist_record() is the usual single-branch no-op.
//
// Buckets are powers of two of nanoseconds: bucket 0 holds exactly 0 ns,
// bucket b >= 1 holds [2^(b-1), 2^b - 1] ns, and bucket 64 tops out at
// UINT64_MAX. Quantiles interpolate linearly inside the selected bucket,
// so p50/p95/p99 are exact to within one octave — plenty for latency
// triage, and the price of never allocating or locking on the hot path.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace raxh::obs {

enum class Hist : int {
  kCrewJobNs = 0,    // one crew thread executing one dispatched job
  kBarrierWaitNs,    // master blocked waiting for crew completion
  kCollectiveNs,     // one minimpi collective call (barrier/bcast/reduce/...)
  // Serving-stack latencies (raxhd; recorded by the ServiceCore pipeline):
  kAdmissionNs,      // SUBMIT accepted -> alignment admitted (parse or hit)
  kQueueWaitNs,      // admitted -> executor slot granted
  kExecNs,           // executor slot granted -> terminal state
  kHistCount
};
inline constexpr int kNumHists = static_cast<int>(Hist::kHistCount);

// Stable export names, indexed by Hist.
[[nodiscard]] const char* hist_name(Hist h);

inline constexpr int kHistBuckets = 65;

// Bucket index for a duration: 0 for 0 ns, otherwise bit_width(ns)
// (so exact powers of two open a new bucket: 2^k lands in bucket k+1).
[[nodiscard]] constexpr int hist_bucket(std::uint64_t ns) {
  return static_cast<int>(std::bit_width(ns));
}

// Inclusive value range covered by a bucket.
[[nodiscard]] constexpr std::uint64_t hist_bucket_lower(int bucket) {
  return bucket <= 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}
[[nodiscard]] constexpr std::uint64_t hist_bucket_upper(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

namespace detail {
void hist_add(Hist h, std::uint64_t ns);
}  // namespace detail

// Record one duration sample into this thread's block. No-op when
// observability is disabled (callers may also pre-check obs::enabled()).
void hist_record(Hist h, std::uint64_t ns);

// Merged-over-threads view of one histogram at a point in time.
struct HistSnapshot {
  std::uint64_t buckets[kHistBuckets] = {};
  std::uint64_t count = 0;   // total samples
  std::uint64_t sum_ns = 0;  // sum of all recorded durations
  std::uint64_t max_ns = 0;  // largest recorded duration

  // Value at quantile q in [0, 1]: linear interpolation inside the bucket
  // containing the q-th sample. 0 when empty.
  [[nodiscard]] std::uint64_t quantile_ns(double q) const;
  [[nodiscard]] double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
};
[[nodiscard]] HistSnapshot hist_snapshot(Hist h);

// The `"latency":{...}` JSON section embedded in export_metrics_fragment():
// per histogram count/mean/max plus p50/p95/p99 in nanoseconds.
[[nodiscard]] std::string hist_metrics_section();

// Clears all histograms (tests; obs::reset()).
void hist_reset();
// Fork-child reinitialization (called from obs's pthread_atfork child
// handler; not for general use).
void hist_reset_for_fork();

}  // namespace raxh::obs
