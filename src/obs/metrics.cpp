#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace raxh::obs {

// ---------------------------------------------------------------------------
// JobObs
// ---------------------------------------------------------------------------

void JobObs::add_span(std::string name, std::uint64_t start_ns,
                      std::uint64_t dur_ns, int lane) {
  std::lock_guard<std::mutex> lock(span_mu_);
  JobSpan span{std::move(name), start_ns, dur_ns, lane};
  if (spans_.size() < kJobSpanCapacity) {
    spans_.push_back(std::move(span));
    return;
  }
  span_full_ = true;
  spans_[span_next_] = std::move(span);
  span_next_ = (span_next_ + 1) % kJobSpanCapacity;
  dropped_spans_.fetch_add(1, std::memory_order_relaxed);
}

void JobObs::set_lane_name(int lane, std::string name) {
  std::lock_guard<std::mutex> lock(span_mu_);
  for (auto& [l, n] : lane_names_)
    if (l == lane) {
      n = std::move(name);
      return;
    }
  lane_names_.emplace_back(lane, std::move(name));
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void append_span_event(std::string& out, const std::string& name,
                       std::uint64_t start_ns, std::uint64_t dur_ns, int pid,
                       int tid, bool& first) {
  if (!first) out += ",\n";
  first = false;
  char buf[128];
  out += "{\"name\":\"";
  append_json_escaped(out, name);
  std::snprintf(buf, sizeof(buf),
                "\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                "\"dur\":%.3f}",
                pid, tid, static_cast<double>(start_ns) / 1000.0,
                static_cast<double>(dur_ns) / 1000.0);
  out += buf;
}

}  // namespace

std::string JobObs::export_trace_fragment(
    int pid, const std::string& process_name,
    const std::vector<ExtraSpan>& extra) const {
  std::string out;
  bool first = true;
  {
    char buf[64];
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    std::snprintf(buf, sizeof(buf), "%d", pid);
    out += buf;
    out += ",\"args\":{\"name\":\"";
    append_json_escaped(out, process_name);
    out += "\"}}";
    first = false;
  }
  std::lock_guard<std::mutex> lock(span_mu_);
  for (const auto& [lane, lname] : lane_names_) {
    char buf[64];
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    std::snprintf(buf, sizeof(buf), "%d,\"tid\":%d", pid, lane);
    out += buf;
    out += ",\"args\":{\"name\":\"";
    append_json_escaped(out, lname);
    out += "\"}}";
  }
  for (const auto& e : extra)
    append_span_event(out, e.name, e.start_ns, e.dur_ns, pid, e.lane, first);
  // Chronological emission once the ring wrapped.
  const std::size_t n = spans_.size();
  const std::size_t begin = span_full_ ? span_next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const JobSpan& s = spans_[(begin + i) % n];
    append_span_event(out, s.name, s.start_ns, s.dur_ns, pid, s.lane, first);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Thread binding
// ---------------------------------------------------------------------------

namespace detail {
thread_local JobObs* t_job_sink = nullptr;
thread_local int t_job_lane = -1;
}  // namespace detail

namespace {
// The owning reference behind detail::t_job_sink; a thread's binding dies
// with the thread (or at the next bind), never dangles.
thread_local std::shared_ptr<JobObs> t_job_ref;
}  // namespace

void bind_job(std::shared_ptr<JobObs> job) {
  detail::t_job_sink = job.get();
  t_job_ref = std::move(job);
}

std::shared_ptr<JobObs> current_job() { return t_job_ref; }

int current_job_lane() { return detail::t_job_lane; }

JobScope::JobScope(std::shared_ptr<JobObs> job, int lane)
    : saved_(t_job_ref), saved_lane_(detail::t_job_lane) {
  detail::t_job_sink = job.get();
  detail::t_job_lane = lane;
  t_job_ref = std::move(job);
}

JobScope::~JobScope() {
  detail::t_job_sink = saved_.get();
  detail::t_job_lane = saved_lane_;
  t_job_ref = std::move(saved_);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

std::string prom_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char ch : value) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

void PromWriter::preamble(const std::string& name, const std::string& help,
                          const char* type) {
  out_ += "# HELP " + name + " " + help + "\n";
  out_ += "# TYPE " + name + " ";
  out_ += type;
  out_ += "\n";
}

namespace {

std::string format_double(double value) {
  char buf[64];
  // %.17g round-trips doubles; trim the noise for the common clean cases.
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

void PromWriter::gauge(const std::string& name, const std::string& help,
                       double value) {
  preamble(name, help, "gauge");
  out_ += name + " " + format_double(value) + "\n";
}

void PromWriter::counter(const std::string& name, const std::string& help,
                         std::uint64_t value) {
  preamble(name, help, "counter");
  out_ += name + " " + std::to_string(value) + "\n";
}

void PromWriter::counter_labeled(
    const std::string& name, const std::string& help,
    const std::string& label_name,
    const std::vector<std::pair<std::string, std::uint64_t>>& series) {
  preamble(name, help, "counter");
  for (const auto& [label, value] : series)
    out_ += name + "{" + label_name + "=\"" + prom_escape_label(label) +
            "\"} " + std::to_string(value) + "\n";
}

void PromWriter::gauge_labeled(
    const std::string& name, const std::string& help,
    const std::string& label_name,
    const std::vector<std::pair<std::string, double>>& series) {
  preamble(name, help, "gauge");
  for (const auto& [label, value] : series)
    out_ += name + "{" + label_name + "=\"" + prom_escape_label(label) +
            "\"} " + format_double(value) + "\n";
}

void PromWriter::counter_multilabeled(
    const std::string& name, const std::string& help,
    const std::vector<std::pair<std::string, std::uint64_t>>& series) {
  preamble(name, help, "counter");
  for (const auto& [labels, value] : series)
    out_ += name + "{" + labels + "} " + std::to_string(value) + "\n";
}

void PromWriter::gauge_multilabeled(
    const std::string& name, const std::string& help,
    const std::vector<std::pair<std::string, double>>& series) {
  preamble(name, help, "gauge");
  for (const auto& [labels, value] : series)
    out_ += name + "{" + labels + "} " + format_double(value) + "\n";
}

void PromWriter::histogram_ns(const std::string& name, const std::string& help,
                              const HistSnapshot& snap) {
  preamble(name, help, "histogram");
  // Cumulative `le` buckets in seconds at the log2 upper bounds. Every
  // scrape emits the same bucket boundaries (up to the fixed top) so a
  // Prometheus server sees a stable series set; empty high buckets beyond
  // the last occupied one collapse into +Inf to keep scrapes compact.
  int top = 0;
  for (int b = 0; b < kHistBuckets; ++b)
    if (snap.buckets[b] != 0) top = b;
  std::uint64_t cumulative = 0;
  for (int b = 0; b <= top; ++b) {
    cumulative += snap.buckets[b];
    const double le =
        static_cast<double>(hist_bucket_upper(b)) / 1e9;  // ns -> s
    out_ += name + "_bucket{le=\"" + format_double(le) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  out_ += name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
  out_ += name + "_sum " +
          format_double(static_cast<double>(snap.sum_ns) / 1e9) + "\n";
  out_ += name + "_count " + std::to_string(snap.count) + "\n";
}

}  // namespace raxh::obs
