// Offline analysis of flight-recorder black boxes (see flight.h): merge the
// per-rank dumps of one run into a single timeline and render the three
// post-mortem reports the `raxh_blackbox` tool ships —
//  * a last-N event timeline around the moment of death,
//  * barrier-wait attribution per comprehensive-analysis stage (which rank
//    made everyone wait, and for how long — the Table-2 view),
//  * a critical-path summary over the per-stage phase timers that reconciles
//    with the Figs. 3/4 component table.
//
// Black boxes record the monotonic clock of the process that wrote them, so
// merging estimates a per-rank offset by aligning matched barrier-exit
// events (every participant leaves a barrier at the same instant up to
// messaging latency). On one host the offsets are near zero; the machinery
// exists so multi-process timelines stay ordered even when they are not.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight.h"

namespace raxh::obs::pm {

struct Event {
  std::uint64_t ts_ns = 0;  // offset-adjusted
  flight::Kind kind{};
  int rank = -1;
  std::uint32_t tid = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string name;  // resolved name-table entry for kinds that carry one
};

struct Merged {
  std::vector<Event> events;  // sorted by adjusted timestamp
  std::vector<int> ranks;     // sorted, unique
  // rank → monotonic-clock offset (ns) added to that rank's timestamps.
  std::vector<std::pair<int, std::int64_t>> offsets;
  // Ranks whose box was dumped as a death record, with the dump reason.
  std::vector<std::pair<int, std::string>> dead;
  std::uint64_t dropped = 0;  // ring-wrap losses summed over deduped rings
};

// Merge decoded boxes: dedupe rings shared between boxes of one process
// (thread backend dumps carry every rank's ring), estimate offsets, sort.
Merged merge(const std::vector<flight::Blackbox>& boxes);

// The latest completed comm operation (send/recv/collective end) recorded by
// `rank`, or nullopt if it died before completing any.
std::optional<Event> last_completed_comm_op(const Merged& merged, int rank);

// One-line human rendering of an event (no timestamp).
std::string describe(const Event& ev);

// Report 0 (always printed): dead ranks and their last completed comm ops.
std::string format_postmortem(const Merged& merged);

// Report 1: the last `last_n` merged events, timestamped relative to the
// earliest event on record; dead ranks are marked.
std::string format_timeline(const Merged& merged, std::size_t last_n = 40);

// Report 2: barrier-wait attribution per stage.
std::string format_barrier_report(const Merged& merged);

// Report 4: collective edge attribution from kCollEdge hop events —
// receiver-side hop latency aggregated per (collective, src → dst) edge,
// plus the slowest collective instances with the edge that gated each one.
// This is how a slow tree Allreduce/Bcast is pinned to one parent→child
// edge after the fact.
std::string format_edge_report(const Merged& merged);

// Report 3: per-stage, per-rank phase seconds + the critical path.
struct StageRow {
  std::string stage;
  std::vector<double> per_rank_s;  // indexed like Merged::ranks
  int slowest = -1;                // rank attaining the stage maximum
  double max_s = 0.0;
};
std::vector<StageRow> stage_table(const Merged& merged);
std::string format_critical_path(const Merged& merged);

// Recovery-log helper: decode one box and summarize rank `rank`'s last
// completed comm op. Returns nullopt when the box is missing or unreadable;
// otherwise a short sentence (possibly "died before completing any comm
// op"). Never throws — this runs inside the failure-detection path.
std::optional<std::string> last_op_summary(const std::string& blackbox_path,
                                           int rank);

// Decode every *.blackbox under `dir` (sorted by name). Undecodable files are
// skipped with a diagnostic appended to `errors` (when non-null).
std::vector<flight::Blackbox> read_dir(const std::string& dir,
                                       std::vector<std::string>* errors);

}  // namespace raxh::obs::pm
