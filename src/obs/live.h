// Live run telemetry: the in-flight counterpart of the post-mortem exports
// in obs.h. Three layers:
//
//  * A per-rank **progress model** — the current stage, units completed vs
//    granted under the Table-2 schedule law, the best log-likelihood seen so
//    far — updated from the analysis code (core/comprehensive.cpp) with a
//    handful of mutex-protected writes per *search unit* (tens per run, far
//    off the likelihood hot path).
//  * A **HeartbeatWriter** monitor thread that samples the model plus the
//    obs counters on an interval and appends newline-delimited JSON to
//    <dir>/rank<r>.ndjson. File-per-rank because minimpi's ProcessComm ranks
//    are forked processes sharing no address space — the filesystem is the
//    one channel that needs no collective participation.
//  * A rank-0 **HeartbeatAggregator** that tails the heartbeat directory,
//    estimates a fleet ETA from per-rank progress rates, flags stragglers
//    (progress rate lagging the median by a configurable factor), and logs a
//    one-line live status.
//
// The ETA/straggler math is exposed as pure functions over parsed heartbeat
// records so tests can drive it with synthetic streams.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace raxh::obs {

// ---------------------------------------------------------------------------
// Progress model
// ---------------------------------------------------------------------------

// One stage of this rank's planned work. `unit_weight` is the relative cost
// of one unit of this stage vs one bootstrap replicate; it only shapes the
// progress fraction (and thus the ETA), not any scheduling decision.
struct StagePlan {
  std::string name;
  int units = 0;
  double unit_weight = 1.0;
};

struct ProgressSnapshot {
  int rank = -1;
  std::string phase;        // current stage name ("" before live_begin_run)
  int units_done = 0;       // completed units of the current stage
  int units_total = 0;      // granted units of the current stage
  double fraction = 0.0;    // weighted progress over the whole plan, [0, 1]
  double best_lnl = 0.0;    // best log-likelihood so far (valid iff has_lnl)
  bool has_lnl = false;
  double elapsed_s = 0.0;   // since live_begin_run
  bool running = false;     // between live_begin_run and live_end_run
};

// One progress model instance. Historically this was a process-wide
// singleton — fine while a process hosted exactly one analysis. The serving
// layer (src/serve/) runs N concurrent jobs in one process tree, each with
// its own LiveModel per logical rank, so the model is now an instantiable
// class; the live_* free functions below keep the old API by delegating to a
// process-default instance (used by the one-shot CLI path, where each
// ProcessComm rank is its own process).
//
// All methods are thread-safe: updates arrive per search unit (tens per
// run) and reads at heartbeat/stream rate (a few Hz), so one mutex-protected
// struct is the whole model — nothing here is near the likelihood hot path.
class LiveModel {
 public:
  LiveModel();
  ~LiveModel();
  LiveModel(const LiveModel&) = delete;
  LiveModel& operator=(const LiveModel&) = delete;

  // Install this rank's plan and start the run clock. Resets prior state.
  void begin_run(int rank, std::vector<StagePlan> plan);

  // Enter a stage. Names in the plan reset the unit counters to that stage's
  // grant; other names (e.g. "sync", "finalize") just relabel the phase.
  void begin_stage(const std::string& name);

  // One unit of the current stage completed.
  void unit_done();

  // Report a log-likelihood; the model keeps the maximum. Callers must feed
  // scores under one criterion only (the comprehensive run reports its CAT
  // search scores) — mixing criteria would make the max meaningless.
  void report_lnl(double lnl);

  // Mark the run finished: fraction snaps to 1, phase to "done".
  void end_run();

  [[nodiscard]] ProgressSnapshot snapshot();

  // Clears the model (tests; obs::reset()).
  void reset();
  // Fork-child reinitialization: the inherited mutex state is undefined to
  // lock, so it is re-initialized in place before clearing. Only for the
  // single-threaded child of a fork.
  void reset_for_fork();

 private:
  struct Impl;
  Impl* impl_;
};

// The process-default model the live_* free functions operate on.
[[nodiscard]] LiveModel& default_live_model();

// Free-function API over the default model (one-shot CLI path).
void live_begin_run(int rank, std::vector<StagePlan> plan);
void live_begin_stage(const std::string& name);
void live_unit_done();
void live_report_lnl(double lnl);
void live_end_run();
[[nodiscard]] ProgressSnapshot live_snapshot();

// Clears the default model (tests; obs::reset()).
void live_reset();
// Fork-child reinitialization (called from obs's pthread_atfork child
// handler; not for general use).
void live_reset_for_fork();

// ---------------------------------------------------------------------------
// Heartbeat wire format
// ---------------------------------------------------------------------------

// One parsed heartbeat line.
struct Heartbeat {
  std::uint64_t ts_ns = 0;
  int rank = -1;
  std::string phase;
  int units_done = 0;
  int units_total = 0;
  double fraction = 0.0;
  double best_lnl = 0.0;
  bool has_lnl = false;
  double elapsed_s = 0.0;
  bool done = false;
  std::uint64_t newview_calls = 0;
  std::uint64_t rank_failures = 0;  // dead peers this rank has detected
};

// Render one ndjson heartbeat line (no trailing newline). `rank_failures`
// surfaces the fault-tolerant driver's failure events in the live stream
// (only rank 0, the failure detector, reports nonzero values).
[[nodiscard]] std::string format_heartbeat_line(const ProgressSnapshot& snap,
                                                std::uint64_t ts_ns,
                                                std::uint64_t newview_calls,
                                                std::uint64_t rank_failures = 0);

// Parse a heartbeat line; nullopt on malformed input (the aggregator must
// tolerate torn final lines from a writer mid-append).
[[nodiscard]] std::optional<Heartbeat> parse_heartbeat_line(
    const std::string& line);

// Per-rank heartbeat file path under `dir`.
[[nodiscard]] std::string heartbeat_path(const std::string& dir, int rank);

// Job-namespaced variant: dir/job<id>.rank<r>.ndjson. Two concurrent jobs
// sharing one telemetry directory must never write the same file; an empty
// job id degrades to the legacy per-rank path. The id is sanitized (alnum,
// '-', '_', '.') so a job name cannot escape the directory.
[[nodiscard]] std::string heartbeat_path(const std::string& dir,
                                         const std::string& job_id, int rank);

// The sanitizer behind all job-namespaced artifact paths (heartbeats here,
// checkpoints in core/checkpoint.h): any character outside [A-Za-z0-9._-]
// becomes '_', so ids compose into file names but never into new path
// components.
[[nodiscard]] std::string sanitize_job_id(const std::string& job_id);

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct HeartbeatOptions {
  std::string dir;        // created if missing
  int rank = 0;
  int interval_ms = 250;  // sampling period of the monitor thread
  std::string job_id;     // non-empty: write the job-namespaced path
  LiveModel* model = nullptr;  // sample this model; null = the default model
};

// Publishes this rank's progress as ndjson heartbeats from a monitor thread.
// Writes one line immediately on start and a final line on stop, so even
// sub-interval runs leave a parseable record. Construct only after forking
// (each ProcessComm rank owns its writer).
class HeartbeatWriter {
 public:
  explicit HeartbeatWriter(HeartbeatOptions options);
  ~HeartbeatWriter();
  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  // Write the final heartbeat and join the monitor thread. Idempotent.
  void stop();

 private:
  struct Impl;
  Impl* impl_;
};

// ---------------------------------------------------------------------------
// Aggregation (rank 0)
// ---------------------------------------------------------------------------

struct FleetStatus {
  int ranks_reporting = 0;      // ranks whose heartbeat file parsed
  int nranks = 0;
  double fraction = 0.0;        // mean progress over reporting ranks
  double eta_s = -1.0;          // wall seconds to fleet completion; -1 unknown
  double best_lnl = 0.0;
  bool has_lnl = false;
  // Ranks whose progress rate lags the median by more than the factor,
  // paired with their rate as a multiple of the median (e.g. 0.33).
  std::vector<std::pair<int, double>> stragglers;
};

// Pure ETA/straggler math over the latest heartbeat per rank. The fleet ETA
// is the slowest rank's projected remaining time (the run ends at the final
// collective, so the fleet finishes when its last rank does). A rank is a
// straggler when its progress rate (fraction/elapsed) is below
// median_rate / straggler_factor; finished ranks are never flagged.
[[nodiscard]] FleetStatus aggregate_status(const std::vector<Heartbeat>& latest,
                                           int nranks,
                                           double straggler_factor);

// The one-line live status rendered by the aggregator.
[[nodiscard]] std::string format_status_line(const FleetStatus& status);

// One scan of the heartbeat directory: parse each rank's newest complete
// line and aggregate. Exposed for tests and for one-shot status queries.
[[nodiscard]] FleetStatus scan_heartbeat_dir(const std::string& dir,
                                             int nranks,
                                             double straggler_factor);

struct AggregatorOptions {
  std::string dir;
  int nranks = 1;
  double straggler_factor = 2.0;
  int interval_ms = 1000;
};

// Rank 0's monitor: periodically scans the heartbeat dir and logs the
// status line via the process logger.
class HeartbeatAggregator {
 public:
  explicit HeartbeatAggregator(AggregatorOptions options);
  ~HeartbeatAggregator();
  HeartbeatAggregator(const HeartbeatAggregator&) = delete;
  HeartbeatAggregator& operator=(const HeartbeatAggregator&) = delete;

  // Final scan + status line, then join. Idempotent.
  void stop();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace raxh::obs
