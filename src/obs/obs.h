// Observability core: process-wide enable flag, cache-line-padded per-thread
// monotonic counters, and lightweight scoped span tracing with thread/rank
// attribution.
//
// Cost model: every instrumentation point is an inline check of one relaxed
// atomic bool; with observability disabled nothing else happens, so hot
// kernels pay a single predictable branch. When enabled, counters land in
// per-thread padded blocks (relaxed atomics, owner-thread writes only — no
// contention, no lock prefix) and spans land in a per-thread ring buffer
// (bounded memory; oldest spans are dropped and counted).
//
// Rank attribution: obs::set_rank() stamps this process's exported events.
// Forked child ranks (minimpi's ProcessComm) start from a clean slate — a
// pthread_atfork handler clears counters, spans, and phases in the child so
// rank 0's pre-fork events are never duplicated into other ranks' exports.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace raxh::obs {

// ---------------------------------------------------------------------------
// Enable flag + rank attribution
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// The runtime switch every instrumentation point checks. Default: off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Coarse-grained rank stamped onto exported traces/metrics (-1 = unset).
void set_rank(int rank);
[[nodiscard]] int rank();

// Monotonic nanoseconds (CLOCK_MONOTONIC — coherent across forked ranks on
// the same host, so per-rank traces merge into one timeline).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Clears all counters, spans, and phase accumulations (tests; also run in
// forked children via pthread_atfork). Live threads stay registered.
void reset();

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

enum class Counter : int {
  kNewviewCalls = 0,     // likelihood newview kernel invocations
  kEvaluateCalls,        // edge log-likelihood evaluations
  kDerivativeCalls,      // Newton-Raphson derivative evaluations
  kPatternsEvaluated,    // patterns processed across all striped dispatches
  kReductionCalls,       // crew reduction sums
  kWorkforceJobs,        // jobs dispatched to the thread crew
  kBarrierWaitNs,        // ns the master spent waiting on crew completion
  kSpansDropped,         // spans evicted from full ring buffers
  kFaultsInjected,       // fault-plan actions fired on this rank (minimpi)
  kRankFailures,         // dead peers detected (fault-tolerant driver)
  kUnitsRegranted,       // work units re-run on behalf of dead ranks
  kSyntheticDelayNs,     // injected (fault-plan) sleep time, kept out of
                         // latency histograms
  kAlignParses,          // alignments parsed + pattern-compressed (serve
                         // admission; a cache hit must NOT increment this)
  kAlignCacheHits,       // content-addressed alignment cache hits
  kAlignCacheMisses,     // ... and misses (admission had to parse)
  kAlignCacheEvictions,  // LRU evictions under the cache byte budget
  kServeJobsSubmitted,   // jobs accepted by the serving layer
  kServeJobsCompleted,   // jobs that reached a terminal state
  kCommBytesSent,        // payload bytes through Comm::send (comm plane)
  kCommBytesRecv,        // payload bytes through Comm::recv
  kCommRingStalls,       // full-shm-ring stall episodes on the send path
  kCommRingStallNs,      // ns spent stalled on full shm rings
  kKernelFallback,       // SIMD kernel member fell back to the scalar
                         // reference (layout unsupported, e.g. ncat_model >
                         // kMaxCatMatrices) — benches watch this to avoid
                         // measuring the wrong kernel
  kRepeatPatternsComputed,  // site-repeat newview: representative patterns
                            // actually computed
  kRepeatPatternsCopied,    // site-repeat newview: patterns served by
                            // copying their class representative
  kCount
};
inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

// Stable export names, indexed by Counter.
[[nodiscard]] const char* counter_name(Counter c);

namespace detail {
struct ThreadState;
// This thread's state block (registered globally on first use).
ThreadState& thread_state();
void add_count(Counter c, std::uint64_t n);
}  // namespace detail

// Add `n` to this thread's slot of counter `c`. No-op when disabled.
inline void count(Counter c, std::uint64_t n = 1) {
  if (!enabled()) return;
  detail::add_count(c, n);
}

// Synthetic-delay accounting: FaultyComm (minimpi/fault.h) reports its
// injected sleeps here, per thread, so latency instrumentation can subtract
// them — chaos runs must not pollute p95/p99 comm latency. Scopes snapshot
// the thread total at entry and subtract the delta at exit. Always tracked
// (independent of enabled(); the counter copy is gated as usual).
void add_synthetic_delay_ns(std::uint64_t ns);
[[nodiscard]] std::uint64_t synthetic_delay_ns_this_thread();

// Summed-over-threads counter values at a point in time.
struct CounterSnapshot {
  std::uint64_t values[kNumCounters] = {};
  [[nodiscard]] std::uint64_t operator[](Counter c) const {
    return values[static_cast<int>(c)];
  }
};
[[nodiscard]] CounterSnapshot counters_snapshot();

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

// Per-thread ring capacity in events; the oldest events are evicted (and
// kSpansDropped incremented) once a thread exceeds it.
inline constexpr std::size_t kTraceCapacity = 1 << 15;

// Record a completed span directly (non-RAII callers, e.g. merge tooling).
void record_span(std::string name, std::uint64_t start_ns,
                 std::uint64_t dur_ns);

// Exported tid of the dedicated phase track (see record_phase_span).
inline constexpr int kPhaseTrackTid = 1000;

// Record a span onto the process-wide "phases" track instead of the calling
// thread's ring. Phase markers are rare but load-bearing for reading a
// trace, so they must not compete for ring slots with high-frequency spans
// (a busy crew evicts tens of thousands of job spans per stage).
void record_phase_span(std::string name, std::uint64_t start_ns,
                       std::uint64_t dur_ns);

// RAII scoped span: samples the clock at construction and records on
// destruction. Nearly free when observability is disabled.
class Span {
 public:
  explicit Span(const char* name) : armed_(enabled()) {
    if (armed_) {
      name_ = name;
      start_ = now_ns();
    }
  }
  ~Span() {
    if (armed_) record_span(name_, start_, now_ns() - start_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool armed_;
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

// This process's spans as a Chrome trace_event JSON fragment: a comma-joined
// sequence of event objects (no enclosing brackets) with pid=`rank` and
// tid=thread registration order. Empty string if no spans were recorded.
[[nodiscard]] std::string export_trace_fragment(int rank);

// Rank 0 merge: wraps per-rank fragments (e.g. from Comm::gather_strings)
// into one well-formed Chrome trace JSON document loadable in
// chrome://tracing or https://ui.perfetto.dev.
[[nodiscard]] std::string merge_trace_fragments(
    const std::vector<std::string>& fragments);

// One rank's counters, phase table, and latency histogram quantiles (see
// hist.h) (+ optional pre-rendered extra sections, e.g. the comm stats JSON
// from minimpi) as a JSON object.
[[nodiscard]] std::string export_metrics_fragment(
    int rank, const std::string& extra_sections = "");

// Rank 0 merge of per-rank metrics objects into a JSON array.
[[nodiscard]] std::string merge_metrics_fragments(
    const std::vector<std::string>& fragments);

}  // namespace raxh::obs
