#include "obs/obs.h"

#include <pthread.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <new>

#include "obs/comm_obs.h"
#include "obs/hist.h"
#include "obs/live.h"
#include "obs/metrics.h"
#include "obs/phase.h"

namespace raxh::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {
std::atomic<int> g_rank{-1};
}  // namespace

// One per thread, padded so no two threads' counters share a cache line.
// Owner-thread writes are relaxed atomic stores (no lock prefix); snapshot
// reads from other threads are relaxed loads — race-free under TSan.
struct alignas(64) ThreadState {
  int tid = 0;
  std::atomic<std::uint64_t> counters[kNumCounters] = {};

  struct SpanEvent {
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
  };
  std::mutex trace_mutex;           // uncontended: owner writes, exporter reads
  std::vector<SpanEvent> ring;      // bounded at kTraceCapacity
  std::size_t ring_next = 0;        // insertion cursor once full
  bool ring_full = false;
};

namespace {

struct Registry {
  std::mutex mutex;
  // shared_ptr so a thread's spans and counters outlive the thread (crew
  // workers are torn down per analysis, but their data belongs to the run).
  std::vector<std::shared_ptr<ThreadState>> states;
  // Process-wide track for phase markers, exported as tid kPhaseTrackTid.
  // Kept out of `states` so phase spans never compete with per-thread rings.
  std::shared_ptr<ThreadState> phase_track;
  int next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static teardown
  return *r;
}

void clear_state(ThreadState& state) {
  for (auto& c : state.counters) c.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state.trace_mutex);
  state.ring.clear();
  state.ring_next = 0;
  state.ring_full = false;
}

void clear_all_locked(Registry& reg) {
  for (auto& state : reg.states) clear_state(*state);
  if (reg.phase_track) clear_state(*reg.phase_track);
}

// Forked children must not re-export the parent's pre-fork history: minimpi's
// ProcessComm forks rank 1.. from rank 0 after setup, and a child that kept
// the inherited spans would duplicate them in the merged timeline.
void atfork_child() {
  Registry& reg = registry();
  // Fresh mutexes: the forked child owns single-threaded copies, but a mutex
  // state inherited mid-flight would be undefined to lock.
  new (&reg.mutex) std::mutex;
  for (auto& state : reg.states)
    new (&state->trace_mutex) std::mutex;
  if (reg.phase_track) new (&reg.phase_track->trace_mutex) std::mutex;
  clear_all_locked(reg);
  run_phases_reset_for_fork();
  hist_reset_for_fork();
  live_reset_for_fork();
  comm::reset_for_fork();
}

std::once_flag g_atfork_once;

thread_local std::shared_ptr<ThreadState> t_state;

}  // namespace

ThreadState& thread_state() {
  if (!t_state) {
    std::call_once(g_atfork_once,
                   [] { ::pthread_atfork(nullptr, nullptr, atfork_child); });
    auto fresh = std::make_shared<ThreadState>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    fresh->tid = reg.next_tid++;
    reg.states.push_back(fresh);
    t_state = std::move(fresh);
  }
  return *t_state;
}

void add_count(Counter c, std::uint64_t n) {
  auto& slot = thread_state().counters[static_cast<int>(c)];
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  // Job attribution: a thread bound to a JobObs (serving layer) mirrors the
  // increment into the job's block, so per-job deltas sum to the global
  // delta. Unbound threads (every one-shot run) pay one TLS load + branch.
  if (JobObs* job = t_job_sink) job->add_count(c, n);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_rank(int r) { detail::g_rank.store(r, std::memory_order_relaxed); }

int rank() { return detail::g_rank.load(std::memory_order_relaxed); }

namespace {
thread_local std::uint64_t t_synthetic_delay_ns = 0;
}  // namespace

void add_synthetic_delay_ns(std::uint64_t ns) {
  t_synthetic_delay_ns += ns;
  count(Counter::kSyntheticDelayNs, ns);
}

std::uint64_t synthetic_delay_ns_this_thread() { return t_synthetic_delay_ns; }

void reset() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  detail::clear_all_locked(reg);
  run_phases().clear();
  hist_reset();
  live_reset();
  set_rank(-1);
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kNewviewCalls:
      return "newview_calls";
    case Counter::kEvaluateCalls:
      return "evaluate_calls";
    case Counter::kDerivativeCalls:
      return "derivative_calls";
    case Counter::kPatternsEvaluated:
      return "patterns_evaluated";
    case Counter::kReductionCalls:
      return "reduction_calls";
    case Counter::kWorkforceJobs:
      return "workforce_jobs";
    case Counter::kBarrierWaitNs:
      return "barrier_wait_ns";
    case Counter::kSpansDropped:
      return "spans_dropped";
    case Counter::kFaultsInjected:
      return "faults_injected";
    case Counter::kRankFailures:
      return "rank_failures";
    case Counter::kUnitsRegranted:
      return "units_regranted";
    case Counter::kSyntheticDelayNs:
      return "synthetic_delay_ns";
    case Counter::kAlignParses:
      return "align_parses";
    case Counter::kAlignCacheHits:
      return "align_cache_hits";
    case Counter::kAlignCacheMisses:
      return "align_cache_misses";
    case Counter::kAlignCacheEvictions:
      return "align_cache_evictions";
    case Counter::kServeJobsSubmitted:
      return "serve_jobs_submitted";
    case Counter::kServeJobsCompleted:
      return "serve_jobs_completed";
    case Counter::kCommBytesSent:
      return "comm_bytes_sent";
    case Counter::kCommBytesRecv:
      return "comm_bytes_recv";
    case Counter::kCommRingStalls:
      return "comm_ring_stalls";
    case Counter::kCommRingStallNs:
      return "comm_ring_stall_ns";
    case Counter::kKernelFallback:
      return "kernel_fallbacks";
    case Counter::kRepeatPatternsComputed:
      return "repeat_patterns_computed";
    case Counter::kRepeatPatternsCopied:
      return "repeat_patterns_copied";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

CounterSnapshot counters_snapshot() {
  CounterSnapshot snap;
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& state : reg.states)
    for (int i = 0; i < kNumCounters; ++i)
      snap.values[i] += state->counters[i].load(std::memory_order_relaxed);
  return snap;
}

namespace {

void push_span(detail::ThreadState& state, std::string name,
               std::uint64_t start_ns, std::uint64_t dur_ns) {
  std::lock_guard<std::mutex> lock(state.trace_mutex);
  detail::ThreadState::SpanEvent event{std::move(name), start_ns, dur_ns};
  if (state.ring.size() < kTraceCapacity) {
    state.ring.push_back(std::move(event));
    return;
  }
  state.ring_full = true;
  state.ring[state.ring_next] = std::move(event);
  state.ring_next = (state.ring_next + 1) % kTraceCapacity;
  detail::add_count(Counter::kSpansDropped, 1);
}

}  // namespace

void record_span(std::string name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  // A thread bound to a job routes its spans into the job's ring instead of
  // the process-global one: the daemon's merged trace nests them under the
  // owning job, and concurrent jobs stop interleaving in one timeline.
  if (JobObs* job = detail::t_job_sink) {
    const int lane = detail::t_job_lane >= 0
                         ? detail::t_job_lane
                         : kJobUnlanedTidBase + detail::thread_state().tid;
    job->add_span(std::move(name), start_ns, dur_ns, lane);
    return;
  }
  push_span(detail::thread_state(), std::move(name), start_ns, dur_ns);
}

void record_phase_span(std::string name, std::uint64_t start_ns,
                       std::uint64_t dur_ns) {
  if (JobObs* job = detail::t_job_sink) {
    job->set_lane_name(kJobPhaseLane, "phases");
    job->add_span(std::move(name), start_ns, dur_ns, kJobPhaseLane);
    return;
  }
  auto& reg = detail::registry();
  std::shared_ptr<detail::ThreadState> track;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (!reg.phase_track) {
      reg.phase_track = std::make_shared<detail::ThreadState>();
      reg.phase_track->tid = kPhaseTrackTid;
    }
    track = reg.phase_track;
  }
  push_span(*track, std::move(name), start_ns, dur_ns);
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void append_event(std::string& out, const detail::ThreadState::SpanEvent& e,
                  int pid, int tid, bool& first) {
  if (!first) out += ",\n";
  first = false;
  char buf[128];
  out += "{\"name\":\"";
  append_json_escaped(out, e.name);
  std::snprintf(buf, sizeof(buf),
                "\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                "\"dur\":%.3f}",
                pid, tid, static_cast<double>(e.start_ns) / 1000.0,
                static_cast<double>(e.dur_ns) / 1000.0);
  out += buf;
}

}  // namespace

std::string export_trace_fragment(int my_rank) {
  const int pid = my_rank >= 0 ? my_rank : 0;
  std::string out;
  bool first = true;

  // Process-name metadata so Perfetto labels each rank's track group.
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"rank %d\"}}",
                  pid, pid);
    out += buf;
    first = false;
  }

  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  bool any_event = false;
  const auto emit_ring = [&](detail::ThreadState& state) {
    std::lock_guard<std::mutex> tlock(state.trace_mutex);
    if (state.ring.empty()) return;
    any_event = true;
    // Chronological order: [ring_next, end) then [0, ring_next) once full.
    const std::size_t n = state.ring.size();
    const std::size_t begin = state.ring_full ? state.ring_next : 0;
    for (std::size_t i = 0; i < n; ++i)
      append_event(out, state.ring[(begin + i) % n], pid, state.tid, first);
  };
  for (const auto& state : reg.states) emit_ring(*state);
  if (reg.phase_track) {
    bool has_phases;
    {
      std::lock_guard<std::mutex> tlock(reg.phase_track->trace_mutex);
      has_phases = !reg.phase_track->ring.empty();
    }
    if (has_phases) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"tid\":%d,\"args\":{\"name\":\"phases\"}}",
                    pid, kPhaseTrackTid);
      out += buf;
      emit_ring(*reg.phase_track);
    }
  }
  return any_event ? out : std::string();
}

std::string merge_trace_fragments(const std::vector<std::string>& fragments) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& frag : fragments) {
    if (frag.empty()) continue;
    if (!first) out += ",\n";
    first = false;
    out += frag;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string export_metrics_fragment(int my_rank,
                                    const std::string& extra_sections) {
  const CounterSnapshot snap = counters_snapshot();
  std::string out = "{\"rank\":" + std::to_string(my_rank >= 0 ? my_rank : 0);
  out += ",\"counters\":{";
  for (int i = 0; i < kNumCounters; ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += counter_name(static_cast<Counter>(i));
    out += "\":" + std::to_string(snap.values[i]);
  }
  out += "},\"phases\":{";
  bool first = true;
  for (const auto& [name, secs] : run_phases().phases()) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "\":%.6f", secs);
    out += buf;
  }
  out += "},";
  out += hist_metrics_section();
  if (!extra_sections.empty()) {
    out += ",";
    out += extra_sections;
  }
  out += "}";
  return out;
}

std::string merge_metrics_fragments(const std::vector<std::string>& fragments) {
  std::string out = "[\n";
  bool first = true;
  for (const auto& frag : fragments) {
    if (frag.empty()) continue;
    if (!first) out += ",\n";
    first = false;
    out += frag;
  }
  out += "\n]\n";
  return out;
}

}  // namespace raxh::obs
