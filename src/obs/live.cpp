#include "obs/live.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <new>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "util/log.h"

namespace raxh::obs {

// ---------------------------------------------------------------------------
// Progress model
// ---------------------------------------------------------------------------

namespace {

double plan_total_weight(const std::vector<StagePlan>& plan) {
  double total = 0.0;
  for (const auto& s : plan) total += s.units * s.unit_weight;
  return total;
}

}  // namespace

struct LiveModel::Impl {
  std::mutex mutex;
  int rank = -1;
  std::vector<StagePlan> plan;
  int current_stage = -1;       // index into plan; -1 = unplanned phase
  std::string phase;
  int units_done = 0;
  int units_total = 0;
  double weight_done = 0.0;     // completed prior stages
  double best_lnl = 0.0;
  bool has_lnl = false;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;     // nonzero once end_run ran
  bool running = false;

  void clear_locked() {
    rank = -1;
    plan.clear();
    current_stage = -1;
    phase.clear();
    units_done = 0;
    units_total = 0;
    weight_done = 0.0;
    best_lnl = 0.0;
    has_lnl = false;
    begin_ns = 0;
    end_ns = 0;
    running = false;
  }
};

LiveModel::LiveModel() : impl_(new Impl) {}
LiveModel::~LiveModel() { delete impl_; }

void LiveModel::begin_run(int rank, std::vector<StagePlan> plan) {
  Impl& m = *impl_;
  std::lock_guard<std::mutex> lock(m.mutex);
  m.clear_locked();
  m.rank = rank;
  m.plan = std::move(plan);
  m.begin_ns = now_ns();
  m.running = true;
}

void LiveModel::begin_stage(const std::string& name) {
  Impl& m = *impl_;
  std::lock_guard<std::mutex> lock(m.mutex);
  // Credit whatever the previous planned stage completed before moving on.
  if (m.current_stage >= 0) {
    const StagePlan& prev = m.plan[static_cast<std::size_t>(m.current_stage)];
    m.weight_done += m.units_done * prev.unit_weight;
  }
  m.phase = name;
  m.current_stage = -1;
  m.units_done = 0;
  m.units_total = 0;
  for (std::size_t i = 0; i < m.plan.size(); ++i) {
    if (m.plan[i].name == name) {
      m.current_stage = static_cast<int>(i);
      m.units_total = m.plan[i].units;
      break;
    }
  }
}

void LiveModel::unit_done() {
  Impl& m = *impl_;
  std::lock_guard<std::mutex> lock(m.mutex);
  ++m.units_done;
}

void LiveModel::report_lnl(double lnl) {
  Impl& m = *impl_;
  std::lock_guard<std::mutex> lock(m.mutex);
  if (!m.has_lnl || lnl > m.best_lnl) {
    m.best_lnl = lnl;
    m.has_lnl = true;
  }
}

void LiveModel::end_run() {
  Impl& m = *impl_;
  std::lock_guard<std::mutex> lock(m.mutex);
  if (m.current_stage >= 0) {
    const StagePlan& prev = m.plan[static_cast<std::size_t>(m.current_stage)];
    m.weight_done += m.units_done * prev.unit_weight;
    m.current_stage = -1;
  }
  m.phase = "done";
  m.units_done = 0;
  m.units_total = 0;
  m.end_ns = now_ns();
  m.running = false;
}

ProgressSnapshot LiveModel::snapshot() {
  Impl& m = *impl_;
  std::lock_guard<std::mutex> lock(m.mutex);
  ProgressSnapshot snap;
  snap.rank = m.rank;
  snap.phase = m.phase;
  snap.units_done = m.units_done;
  snap.units_total = m.units_total;
  snap.best_lnl = m.best_lnl;
  snap.has_lnl = m.has_lnl;
  snap.running = m.running;
  const double total = plan_total_weight(m.plan);
  if (m.phase == "done" && m.end_ns != 0) {
    snap.fraction = 1.0;
  } else if (total > 0.0) {
    double done = m.weight_done;
    if (m.current_stage >= 0)
      done += m.units_done *
              m.plan[static_cast<std::size_t>(m.current_stage)].unit_weight;
    snap.fraction = std::clamp(done / total, 0.0, 1.0);
  }
  if (m.begin_ns != 0) {
    const std::uint64_t end = m.end_ns != 0 ? m.end_ns : now_ns();
    snap.elapsed_s = static_cast<double>(end - m.begin_ns) * 1e-9;
  }
  return snap;
}

void LiveModel::reset() {
  Impl& m = *impl_;
  std::lock_guard<std::mutex> lock(m.mutex);
  m.clear_locked();
}

void LiveModel::reset_for_fork() {
  Impl& m = *impl_;
  // Single-threaded forked child; the inherited mutex state is undefined to
  // lock, so re-initialize it in place before clearing.
  new (&m.mutex) std::mutex;
  m.clear_locked();
}

LiveModel& default_live_model() {
  static LiveModel* m = new LiveModel;  // leaked: teardown safe
  return *m;
}

void live_begin_run(int rank, std::vector<StagePlan> plan) {
  default_live_model().begin_run(rank, std::move(plan));
}
void live_begin_stage(const std::string& name) {
  default_live_model().begin_stage(name);
}
void live_unit_done() { default_live_model().unit_done(); }
void live_report_lnl(double lnl) { default_live_model().report_lnl(lnl); }
void live_end_run() { default_live_model().end_run(); }
ProgressSnapshot live_snapshot() { return default_live_model().snapshot(); }
void live_reset() { default_live_model().reset(); }
void live_reset_for_fork() { default_live_model().reset_for_fork(); }

// ---------------------------------------------------------------------------
// Heartbeat wire format
// ---------------------------------------------------------------------------

namespace {

// Phase names are internal identifiers, but keep the line valid JSON for any
// input: escape the two structural characters and flatten control bytes.
void append_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out += ch;
    }
  }
}

// Locates `"key":` and parses the number after it; false if absent/NaN.
bool find_number(const std::string& line, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start || std::isnan(v)) return false;
  *out = v;
  return true;
}

bool find_string(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::string value;
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      value += line[++i];
    } else if (line[i] == '"') {
      *out = std::move(value);
      return true;
    } else {
      value += line[i];
    }
  }
  return false;  // unterminated string: torn line
}

}  // namespace

std::string format_heartbeat_line(const ProgressSnapshot& snap,
                                  std::uint64_t ts_ns,
                                  std::uint64_t newview_calls,
                                  std::uint64_t rank_failures) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "{\"ts_ns\":%llu,\"rank\":%d,\"phase\":\"",
                static_cast<unsigned long long>(ts_ns), snap.rank);
  out += buf;
  append_escaped(out, snap.phase);
  std::snprintf(buf, sizeof(buf),
                "\",\"units_done\":%d,\"units_total\":%d,\"fraction\":%.4f,"
                "\"elapsed_s\":%.3f,\"best_lnl\":",
                snap.units_done, snap.units_total, snap.fraction,
                snap.elapsed_s);
  out += buf;
  if (snap.has_lnl) {
    std::snprintf(buf, sizeof(buf), "%.6f", snap.best_lnl);
    out += buf;
  } else {
    out += "null";
  }
  std::snprintf(buf, sizeof(buf), ",\"newview_calls\":%llu",
                static_cast<unsigned long long>(newview_calls));
  out += buf;
  if (rank_failures > 0) {
    std::snprintf(buf, sizeof(buf), ",\"rank_failures\":%llu",
                  static_cast<unsigned long long>(rank_failures));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ",\"done\":%s}",
                snap.phase == "done" ? "true" : "false");
  out += buf;
  return out;
}

std::optional<Heartbeat> parse_heartbeat_line(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}')
    return std::nullopt;
  Heartbeat hb;
  double ts = 0.0, rank = 0.0, frac = 0.0, elapsed = 0.0;
  if (!find_number(line, "ts_ns", &ts) || !find_number(line, "rank", &rank) ||
      !find_number(line, "fraction", &frac) ||
      !find_number(line, "elapsed_s", &elapsed) ||
      !find_string(line, "phase", &hb.phase))
    return std::nullopt;
  hb.ts_ns = static_cast<std::uint64_t>(ts);
  hb.rank = static_cast<int>(rank);
  hb.fraction = frac;
  hb.elapsed_s = elapsed;
  double v = 0.0;
  if (find_number(line, "units_done", &v)) hb.units_done = static_cast<int>(v);
  if (find_number(line, "units_total", &v))
    hb.units_total = static_cast<int>(v);
  if (find_number(line, "best_lnl", &v)) {
    hb.best_lnl = v;
    hb.has_lnl = true;
  }
  if (find_number(line, "newview_calls", &v))
    hb.newview_calls = static_cast<std::uint64_t>(v);
  if (find_number(line, "rank_failures", &v))
    hb.rank_failures = static_cast<std::uint64_t>(v);
  hb.done = line.find("\"done\":true") != std::string::npos;
  return hb;
}

std::string heartbeat_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".ndjson";
}

std::string sanitize_job_id(const std::string& job_id) {
  std::string out;
  out.reserve(job_id.size());
  for (const char ch : job_id) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '-' || ch == '_' ||
                    ch == '.';
    out += ok ? ch : '_';
  }
  return out;
}

std::string heartbeat_path(const std::string& dir, const std::string& job_id,
                           int rank) {
  if (job_id.empty()) return heartbeat_path(dir, rank);
  return dir + "/job" + sanitize_job_id(job_id) + ".rank" +
         std::to_string(rank) + ".ndjson";
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct HeartbeatWriter::Impl {
  HeartbeatOptions options;
  std::ofstream out;
  std::thread monitor;
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;

  void beat() {
    LiveModel& model = options.model ? *options.model : default_live_model();
    ProgressSnapshot snap = model.snapshot();
    // The model only learns the rank at begin_run; beats before that
    // (the immediate first one) must still carry this writer's rank.
    snap.rank = options.rank;
    const CounterSnapshot counters = counters_snapshot();
    out << format_heartbeat_line(snap, now_ns(),
                                 counters[Counter::kNewviewCalls],
                                 counters[Counter::kRankFailures])
        << '\n';
    out.flush();  // the aggregator tails this file from another process
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      lock.unlock();
      beat();
      lock.lock();
      cv.wait_for(lock, std::chrono::milliseconds(options.interval_ms),
                  [this] { return stopping; });
    }
  }
};

HeartbeatWriter::HeartbeatWriter(HeartbeatOptions options)
    : impl_(new Impl) {
  impl_->options = std::move(options);
  std::error_code ec;
  std::filesystem::create_directories(impl_->options.dir, ec);
  const std::string path = heartbeat_path(
      impl_->options.dir, impl_->options.job_id, impl_->options.rank);
  impl_->out.open(path, std::ios::trunc);
  if (!impl_->out) {
    log_warn("heartbeat: cannot write %s; live telemetry disabled",
             path.c_str());
    return;
  }
  impl_->monitor = std::thread([this] { impl_->loop(); });
}

void HeartbeatWriter::stop() {
  if (!impl_) return;
  if (impl_->monitor.joinable()) {
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->stopping = true;
    }
    impl_->cv.notify_all();
    impl_->monitor.join();
    impl_->beat();  // final state (typically phase "done", fraction 1)
  }
  delete impl_;
  impl_ = nullptr;
}

HeartbeatWriter::~HeartbeatWriter() { stop(); }

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

FleetStatus aggregate_status(const std::vector<Heartbeat>& latest, int nranks,
                             double straggler_factor) {
  FleetStatus status;
  status.nranks = nranks;
  status.ranks_reporting = static_cast<int>(latest.size());
  if (latest.empty()) return status;

  struct RankRate {
    int rank;
    double rate;      // progress fraction per second
    bool finished;
  };
  std::vector<RankRate> rates;
  double frac_sum = 0.0;
  double eta = -1.0;
  bool all_finished = true;
  for (const auto& hb : latest) {
    const double frac = std::clamp(hb.fraction, 0.0, 1.0);
    frac_sum += frac;
    if (hb.has_lnl && (!status.has_lnl || hb.best_lnl > status.best_lnl)) {
      status.best_lnl = hb.best_lnl;
      status.has_lnl = true;
    }
    const bool finished = hb.done || frac >= 1.0;
    if (!finished) all_finished = false;
    if (hb.elapsed_s > 0.0 && frac > 0.0) {
      const double rate = frac / hb.elapsed_s;
      rates.push_back(RankRate{hb.rank, rate, finished});
      if (!finished) eta = std::max(eta, (1.0 - frac) / rate);
    }
  }
  status.fraction = frac_sum / static_cast<double>(latest.size());
  status.eta_s = all_finished ? 0.0 : eta;

  if (rates.size() >= 2 && straggler_factor > 1.0) {
    std::vector<double> sorted;
    sorted.reserve(rates.size());
    for (const auto& r : rates) sorted.push_back(r.rate);
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    const double median = n % 2 == 1
                              ? sorted[n / 2]
                              : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    if (median > 0.0) {
      for (const auto& r : rates) {
        if (!r.finished && r.rate < median / straggler_factor)
          status.stragglers.emplace_back(r.rank, r.rate / median);
      }
      std::sort(status.stragglers.begin(), status.stragglers.end());
    }
  }
  return status;
}

std::string format_status_line(const FleetStatus& status) {
  char buf[128];
  std::string out;
  std::snprintf(buf, sizeof(buf), "live: %5.1f%% done, %d/%d ranks",
                status.fraction * 100.0, status.ranks_reporting,
                status.nranks);
  out += buf;
  if (status.eta_s >= 0.0) {
    std::snprintf(buf, sizeof(buf), ", ETA %.0fs", status.eta_s);
    out += buf;
  } else {
    out += ", ETA --";
  }
  if (status.has_lnl) {
    std::snprintf(buf, sizeof(buf), ", best lnL %.4f", status.best_lnl);
    out += buf;
  }
  for (const auto& [rank, ratio] : status.stragglers) {
    std::snprintf(buf, sizeof(buf), ", STRAGGLER rank %d (%.2fx median)",
                  rank, ratio);
    out += buf;
  }
  return out;
}

FleetStatus scan_heartbeat_dir(const std::string& dir, int nranks,
                               double straggler_factor) {
  std::vector<Heartbeat> latest;
  for (int r = 0; r < nranks; ++r) {
    std::ifstream in(heartbeat_path(dir, r));
    if (!in) continue;
    std::optional<Heartbeat> newest;
    std::string line;
    while (std::getline(in, line)) {
      // Keep the newest parseable line; a torn final line (writer mid-append
      // in another process) parses as nullopt and is skipped.
      if (auto hb = parse_heartbeat_line(line)) newest = std::move(hb);
    }
    if (newest) latest.push_back(std::move(*newest));
  }
  return aggregate_status(latest, nranks, straggler_factor);
}

struct HeartbeatAggregator::Impl {
  AggregatorOptions options;
  std::thread monitor;
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;

  void scan_and_log() {
    const FleetStatus status = scan_heartbeat_dir(
        options.dir, options.nranks, options.straggler_factor);
    if (status.ranks_reporting > 0)
      log_info("%s", format_status_line(status).c_str());
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      if (cv.wait_for(lock, std::chrono::milliseconds(options.interval_ms),
                      [this] { return stopping; }))
        break;
      lock.unlock();
      scan_and_log();
      lock.lock();
    }
  }
};

HeartbeatAggregator::HeartbeatAggregator(AggregatorOptions options)
    : impl_(new Impl) {
  impl_->options = std::move(options);
  impl_->monitor = std::thread([this] { impl_->loop(); });
}

void HeartbeatAggregator::stop() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->monitor.join();
  impl_->scan_and_log();  // final status with every rank's last heartbeat
  delete impl_;
  impl_ = nullptr;
}

HeartbeatAggregator::~HeartbeatAggregator() { stop(); }

}  // namespace raxh::obs
