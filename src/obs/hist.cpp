#include "obs/hist.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace raxh::obs {

namespace {

// One per thread, padded so no two threads' buckets share a cache line.
// Only the owner thread writes; snapshot readers use relaxed loads, so a
// snapshot taken mid-run is approximate to within in-flight samples.
struct alignas(64) HistBlock {
  std::atomic<std::uint64_t> buckets[kNumHists][kHistBuckets] = {};
  std::atomic<std::uint64_t> count[kNumHists] = {};
  std::atomic<std::uint64_t> sum_ns[kNumHists] = {};
  std::atomic<std::uint64_t> max_ns[kNumHists] = {};
};

struct HistRegistry {
  std::mutex mutex;
  // shared_ptr so a crew thread's samples outlive the thread (crews are torn
  // down per analysis, but their latencies belong to the run).
  std::vector<std::shared_ptr<HistBlock>> blocks;
};

HistRegistry& registry() {
  static HistRegistry* r = new HistRegistry;  // leaked: static-teardown safe
  return *r;
}

thread_local std::shared_ptr<HistBlock> t_block;

HistBlock& thread_block() {
  if (!t_block) {
    auto fresh = std::make_shared<HistBlock>();
    HistRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.blocks.push_back(fresh);
    t_block = std::move(fresh);
  }
  return *t_block;
}

void clear_block(HistBlock& b) {
  for (int h = 0; h < kNumHists; ++h) {
    for (auto& bucket : b.buckets[h]) bucket.store(0, std::memory_order_relaxed);
    b.count[h].store(0, std::memory_order_relaxed);
    b.sum_ns[h].store(0, std::memory_order_relaxed);
    b.max_ns[h].store(0, std::memory_order_relaxed);
  }
}

// Owner-thread read-modify-write without a lock prefix (same idiom as the
// counters in obs.cpp).
void bump(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

}  // namespace

namespace detail {

void hist_add(Hist h, std::uint64_t ns) {
  HistBlock& b = thread_block();
  const int hi = static_cast<int>(h);
  bump(b.buckets[hi][hist_bucket(ns)], 1);
  bump(b.count[hi], 1);
  bump(b.sum_ns[hi], ns);
  if (ns > b.max_ns[hi].load(std::memory_order_relaxed))
    b.max_ns[hi].store(ns, std::memory_order_relaxed);
  // Mirror into the bound job's block (serving layer), as in obs add_count.
  if (JobObs* job = t_job_sink) job->add_hist(h, ns);
}

}  // namespace detail

void hist_record(Hist h, std::uint64_t ns) {
  if (!enabled()) return;
  detail::hist_add(h, ns);
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kCrewJobNs:
      return "crew_job";
    case Hist::kBarrierWaitNs:
      return "barrier_wait";
    case Hist::kCollectiveNs:
      return "collective";
    case Hist::kAdmissionNs:
      return "admission";
    case Hist::kQueueWaitNs:
      return "queue_wait";
    case Hist::kExecNs:
      return "exec";
    case Hist::kHistCount:
      break;
  }
  return "unknown";
}

HistSnapshot hist_snapshot(Hist h) {
  HistSnapshot snap;
  const int hi = static_cast<int>(h);
  HistRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& b : reg.blocks) {
    for (int i = 0; i < kHistBuckets; ++i)
      snap.buckets[i] += b->buckets[hi][i].load(std::memory_order_relaxed);
    snap.count += b->count[hi].load(std::memory_order_relaxed);
    snap.sum_ns += b->sum_ns[hi].load(std::memory_order_relaxed);
    const std::uint64_t m = b->max_ns[hi].load(std::memory_order_relaxed);
    if (m > snap.max_ns) snap.max_ns = m;
  }
  return snap;
}

std::uint64_t HistSnapshot::quantile_ns(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil so q=1 hits the last sample).
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t rank = target == 0 ? 1 : target;
  std::uint64_t seen = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      const std::uint64_t lo = hist_bucket_lower(b);
      const std::uint64_t hi = hist_bucket_upper(b);
      // Position of the target sample inside this bucket, interpolated
      // linearly across the bucket's value range.
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[b]);
      const std::uint64_t est =
          lo + static_cast<std::uint64_t>(static_cast<double>(hi - lo) * frac);
      // Interpolation can overshoot in the top bucket (whose upper bound is
      // a power of two, not an observation); never report past the true max.
      return std::min(est, max_ns);
    }
    seen += buckets[b];
  }
  return max_ns;
}

std::string hist_metrics_section() {
  std::string out = "\"latency\":{";
  char buf[256];
  for (int h = 0; h < kNumHists; ++h) {
    const HistSnapshot snap = hist_snapshot(static_cast<Hist>(h));
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\":{\"count\":%llu,\"mean_ns\":%.1f,\"max_ns\":%llu,"
        "\"p50_ns\":%llu,\"p95_ns\":%llu,\"p99_ns\":%llu}",
        h > 0 ? "," : "", hist_name(static_cast<Hist>(h)),
        static_cast<unsigned long long>(snap.count), snap.mean_ns(),
        static_cast<unsigned long long>(snap.max_ns),
        static_cast<unsigned long long>(snap.quantile_ns(0.50)),
        static_cast<unsigned long long>(snap.quantile_ns(0.95)),
        static_cast<unsigned long long>(snap.quantile_ns(0.99)));
    out += buf;
  }
  out += "}";
  return out;
}

void hist_reset() {
  HistRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& b : reg.blocks) clear_block(*b);
}

void hist_reset_for_fork() {
  HistRegistry& reg = registry();
  // The forked child is single-threaded; a mutex inherited mid-flight would
  // be undefined to lock, so re-initialize it in place before clearing.
  new (&reg.mutex) std::mutex;
  for (auto& b : reg.blocks) clear_block(*b);
}

}  // namespace raxh::obs
