#include "obs/comm_obs.h"

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <mutex>
#include <new>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace raxh::obs::comm {

namespace {

// Edge slot layout inside a block (see record_send/record_recv).
constexpr int kMsgsSent = 0;
constexpr int kBytesSent = 1;
constexpr int kSendNs = 2;
constexpr int kMsgsRecv = 3;
constexpr int kBytesRecv = 4;
constexpr int kRecvNs = 5;
constexpr int kEdgeFields = 6;

// Ring slot layout.
constexpr int kStalls = 0;
constexpr int kStalledNs = 1;
constexpr int kHwmBytes = 2;
constexpr int kRingFields = 3;

// Overlap slot layout.
constexpr int kReqs = 0;
constexpr int kReqTest = 1;
constexpr int kReqWait = 2;
constexpr int kReqInflightNs = 3;
constexpr int kReqBlockedNs = 4;
constexpr int kOverlapFields = 5;

}  // namespace

// One rank's accumulation block: relaxed atomics, owner-thread writes only
// (the hist.cpp idiom), snapshot reads from any thread. ~17 KiB per Comm.
struct alignas(64) Block {
  int rank = -1;
  std::atomic<std::uint64_t> edges[kMaxPeers][kNumOps][kEdgeFields];
  std::atomic<std::uint64_t> rings[kMaxPeers][kRingFields];
  std::atomic<std::uint64_t> overlap[kOverlapFields];
  std::atomic<std::uint64_t> clamped;
};

namespace {

// Plain (non-atomic) mirror a retired block folds into, one per rank.
struct PlainBlock {
  EdgeTotals edges[kMaxPeers][kNumOps];
  RingTotals rings[kMaxPeers];
  OverlapTotals overlap;
  std::uint64_t clamped = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<Block*> live;
  std::map<int, PlainBlock> retired;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static teardown
  return *r;
}

std::atomic<int> g_stalled_now{0};

inline void add_relaxed(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

inline int clamp_peer(Block* block, int peer) {
  if (peer >= 0 && peer < kMaxPeers) return peer;
  add_relaxed(block->clamped, 1);
  return kMaxPeers - 1;
}

void zero_block(Block* block) {
  for (auto& per_peer : block->edges)
    for (auto& per_op : per_peer)
      for (auto& f : per_op) f.store(0, std::memory_order_relaxed);
  for (auto& per_peer : block->rings)
    for (auto& f : per_peer) f.store(0, std::memory_order_relaxed);
  for (auto& f : block->overlap) f.store(0, std::memory_order_relaxed);
  block->clamped.store(0, std::memory_order_relaxed);
}

void fold_into(PlainBlock& out, const Block& block) {
  for (int p = 0; p < kMaxPeers; ++p) {
    for (int op = 0; op < kNumOps; ++op) {
      const auto& e = block.edges[p][op];
      EdgeTotals& t = out.edges[p][op];
      t.msgs_sent += e[kMsgsSent].load(std::memory_order_relaxed);
      t.bytes_sent += e[kBytesSent].load(std::memory_order_relaxed);
      t.send_ns += e[kSendNs].load(std::memory_order_relaxed);
      t.msgs_recv += e[kMsgsRecv].load(std::memory_order_relaxed);
      t.bytes_recv += e[kBytesRecv].load(std::memory_order_relaxed);
      t.recv_ns += e[kRecvNs].load(std::memory_order_relaxed);
    }
    const auto& r = block.rings[p];
    RingTotals& rt = out.rings[p];
    rt.stalls += r[kStalls].load(std::memory_order_relaxed);
    rt.stalled_ns += r[kStalledNs].load(std::memory_order_relaxed);
    rt.hwm_bytes = std::max(rt.hwm_bytes,
                            r[kHwmBytes].load(std::memory_order_relaxed));
  }
  out.overlap.requests += block.overlap[kReqs].load(std::memory_order_relaxed);
  out.overlap.test_completions +=
      block.overlap[kReqTest].load(std::memory_order_relaxed);
  out.overlap.wait_completions +=
      block.overlap[kReqWait].load(std::memory_order_relaxed);
  out.overlap.inflight_ns +=
      block.overlap[kReqInflightNs].load(std::memory_order_relaxed);
  out.overlap.blocked_ns +=
      block.overlap[kReqBlockedNs].load(std::memory_order_relaxed);
  out.clamped += block.clamped.load(std::memory_order_relaxed);
}

}  // namespace

const char* op_name(int op) {
  switch (op) {
    case kOpP2p:
      return "p2p";
    case kOpBarrier:
      return "barrier";
    case kOpBcast:
      return "bcast";
    case kOpReduce:
      return "reduce";
    case kOpGather:
      return "gather";
    default:
      return "unknown";
  }
}

int op_index(const std::string& name) {
  for (int op = 0; op < kNumOps; ++op)
    if (name == op_name(op)) return op;
  return -1;
}

Block* acquire(int rank) {
  auto* block = new Block;
  block->rank = rank;
  zero_block(block);
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.live.push_back(block);
  return block;
}

void retire(Block* block) {
  if (block == nullptr) return;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  fold_into(reg.retired[block->rank], *block);
  reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), block),
                 reg.live.end());
  delete block;
}

void record_send(Block* block, int peer, int op, std::uint64_t bytes,
                 std::uint64_t ns) {
  if (block == nullptr) return;
  auto& e = block->edges[clamp_peer(block, peer)][op];
  add_relaxed(e[kMsgsSent], 1);
  add_relaxed(e[kBytesSent], bytes);
  add_relaxed(e[kSendNs], ns);
  count(Counter::kCommBytesSent, bytes);
}

void record_recv(Block* block, int peer, int op, std::uint64_t bytes,
                 std::uint64_t ns) {
  if (block == nullptr) return;
  auto& e = block->edges[clamp_peer(block, peer)][op];
  add_relaxed(e[kMsgsRecv], 1);
  add_relaxed(e[kBytesRecv], bytes);
  add_relaxed(e[kRecvNs], ns);
  count(Counter::kCommBytesRecv, bytes);
}

void record_ring_stall(Block* block, int peer, std::uint64_t ns) {
  if (block == nullptr) return;
  auto& r = block->rings[clamp_peer(block, peer)];
  add_relaxed(r[kStalls], 1);
  add_relaxed(r[kStalledNs], ns);
  count(Counter::kCommRingStalls, 1);
  count(Counter::kCommRingStallNs, ns);
}

void record_ring_depth(Block* block, int peer, std::uint64_t bytes) {
  if (block == nullptr) return;
  auto& hwm = block->rings[clamp_peer(block, peer)][kHwmBytes];
  if (bytes > hwm.load(std::memory_order_relaxed))
    hwm.store(bytes, std::memory_order_relaxed);
}

void record_request(Block* block, bool completed_by_test,
                    std::uint64_t inflight_ns, std::uint64_t blocked_ns) {
  if (block == nullptr) return;
  add_relaxed(block->overlap[kReqs], 1);
  add_relaxed(block->overlap[completed_by_test ? kReqTest : kReqWait], 1);
  add_relaxed(block->overlap[kReqInflightNs], inflight_ns);
  add_relaxed(block->overlap[kReqBlockedNs], blocked_ns);
}

void stall_enter() {
  g_stalled_now.fetch_add(1, std::memory_order_relaxed);
  if (JobObs* job = detail::t_job_sink) job->comm_stall_delta(1);
}

void stall_exit() {
  g_stalled_now.fetch_sub(1, std::memory_order_relaxed);
  if (JobObs* job = detail::t_job_sink) job->comm_stall_delta(-1);
}

int stalled_now() { return g_stalled_now.load(std::memory_order_relaxed); }

double OverlapTotals::overlap_ratio() const {
  if (inflight_ns == 0) return 0.0;
  const std::uint64_t blocked = std::min(blocked_ns, inflight_ns);
  return static_cast<double>(inflight_ns - blocked) /
         static_cast<double>(inflight_ns);
}

BlockTotals totals(const Block* block) {
  BlockTotals out{};
  if (block == nullptr) return out;
  PlainBlock plain;
  fold_into(plain, *block);
  for (int p = 0; p < kMaxPeers; ++p)
    for (int op = 0; op < kNumOps; ++op) {
      const EdgeTotals& e = plain.edges[p][op];
      EdgeTotals& t = out.per_op[static_cast<std::size_t>(op)];
      t.msgs_sent += e.msgs_sent;
      t.bytes_sent += e.bytes_sent;
      t.send_ns += e.send_ns;
      t.msgs_recv += e.msgs_recv;
      t.bytes_recv += e.bytes_recv;
      t.recv_ns += e.recv_ns;
    }
  out.overlap = plain.overlap;
  return out;
}

namespace {

bool edge_nonzero(const EdgeTotals& t) {
  return t.msgs_sent != 0 || t.msgs_recv != 0;
}

bool ring_nonzero(const RingTotals& t) {
  return t.stalls != 0 || t.stalled_ns != 0 || t.hwm_bytes != 0;
}

bool overlap_nonzero(const OverlapTotals& t) { return t.requests != 0; }

Snapshot snapshot_filtered(bool all_ranks, int only_rank) {
  // Fold every live block plus the retired aggregate into per-rank plains,
  // then flatten nonzero entries.
  std::map<int, PlainBlock> merged;
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    merged = reg.retired;
    for (const Block* block : reg.live) fold_into(merged[block->rank], *block);
  }
  Snapshot snap;
  snap.stalled_now = stalled_now();
  for (const auto& [rank, plain] : merged) {
    if (!all_ranks && rank != only_rank) continue;
    for (int p = 0; p < kMaxPeers; ++p) {
      for (int op = 0; op < kNumOps; ++op)
        if (edge_nonzero(plain.edges[p][op]))
          snap.edges.push_back(EdgeSample{rank, p, op, plain.edges[p][op]});
      if (ring_nonzero(plain.rings[p]))
        snap.rings.push_back(RingSample{rank, p, plain.rings[p]});
    }
    if (overlap_nonzero(plain.overlap))
      snap.overlap.push_back(OverlapSample{rank, plain.overlap});
    snap.clamped_records += plain.clamped;
  }
  return snap;
}

}  // namespace

Snapshot snapshot() { return snapshot_filtered(true, -1); }

Snapshot snapshot_for_rank(int rank) { return snapshot_filtered(false, rank); }

std::string to_json_section(int rank) {
  const Snapshot snap = snapshot_for_rank(rank);
  std::string out = "\"comm_matrix\":{\"edges\":[";
  char buf[320];
  bool first = true;
  for (const auto& e : snap.edges) {
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"peer\":%d,\"op\":\"%s\",\"msgs_sent\":%llu,\"bytes_sent\":%llu,"
        "\"send_ns\":%llu,\"msgs_recv\":%llu,\"bytes_recv\":%llu,"
        "\"recv_ns\":%llu}",
        first ? "" : ",", e.peer, op_name(e.op),
        static_cast<unsigned long long>(e.t.msgs_sent),
        static_cast<unsigned long long>(e.t.bytes_sent),
        static_cast<unsigned long long>(e.t.send_ns),
        static_cast<unsigned long long>(e.t.msgs_recv),
        static_cast<unsigned long long>(e.t.bytes_recv),
        static_cast<unsigned long long>(e.t.recv_ns));
    out += buf;
    first = false;
  }
  out += "],\"rings\":[";
  first = true;
  for (const auto& r : snap.rings) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"peer\":%d,\"stalls\":%llu,\"stalled_ns\":%llu,"
                  "\"hwm_bytes\":%llu}",
                  first ? "" : ",", r.peer,
                  static_cast<unsigned long long>(r.t.stalls),
                  static_cast<unsigned long long>(r.t.stalled_ns),
                  static_cast<unsigned long long>(r.t.hwm_bytes));
    out += buf;
    first = false;
  }
  out += "],\"overlap\":{";
  OverlapTotals ov;
  for (const auto& o : snap.overlap) {
    ov.requests += o.t.requests;
    ov.test_completions += o.t.test_completions;
    ov.wait_completions += o.t.wait_completions;
    ov.inflight_ns += o.t.inflight_ns;
    ov.blocked_ns += o.t.blocked_ns;
  }
  std::snprintf(buf, sizeof(buf),
                "\"requests\":%llu,\"test_completions\":%llu,"
                "\"wait_completions\":%llu,\"inflight_ns\":%llu,"
                "\"blocked_ns\":%llu},\"clamped_records\":%llu}",
                static_cast<unsigned long long>(ov.requests),
                static_cast<unsigned long long>(ov.test_completions),
                static_cast<unsigned long long>(ov.wait_completions),
                static_cast<unsigned long long>(ov.inflight_ns),
                static_cast<unsigned long long>(ov.blocked_ns),
                static_cast<unsigned long long>(snap.clamped_records));
  out += buf;
  return out;
}

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (Block* block : reg.live) zero_block(block);
  reg.retired.clear();
  g_stalled_now.store(0, std::memory_order_relaxed);
}

void reset_for_fork() {
  // Called from the obs atfork child hook: the child is single-threaded, but
  // the inherited mutex may have been held mid-fork — re-initialize it
  // before touching the registry.
  Registry& reg = registry();
  new (&reg.mutex) std::mutex;
  for (Block* block : reg.live) zero_block(block);
  reg.retired.clear();
  g_stalled_now.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Offline analysis (tools/raxh_comm)
// ---------------------------------------------------------------------------

namespace {

// Minimal scanning parser for the metrics JSON we emit ourselves. It only
// needs to be robust against *our* output plus hand-edits, so it skips
// strings correctly but does not validate full JSON grammar.

// Advance past a JSON string starting at s[pos] == '"'; returns one past the
// closing quote (or npos on truncation).
std::size_t skip_string(const std::string& s, std::size_t pos) {
  ++pos;
  while (pos < s.size()) {
    if (s[pos] == '\\')
      pos += 2;
    else if (s[pos] == '"')
      return pos + 1;
    else
      ++pos;
  }
  return std::string::npos;
}

// [start, end) offsets of each top-level element object of a JSON array.
std::vector<std::pair<std::size_t, std::size_t>> array_objects(
    const std::string& s, std::size_t from, std::size_t limit) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  int depth = 0;
  std::size_t obj_start = 0;
  for (std::size_t i = from; i < limit && i < s.size();) {
    const char c = s[i];
    if (c == '"') {
      i = skip_string(s, i);
      if (i == std::string::npos) break;
      continue;
    }
    if (c == '{') {
      if (depth == 0) obj_start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) out.emplace_back(obj_start, i + 1);
    } else if (c == ']' && depth == 0) {
      break;
    }
    ++i;
  }
  return out;
}

// Find `"key":` inside [from, limit); returns offset just past the colon,
// or npos.
std::size_t find_key(const std::string& s, const char* key, std::size_t from,
                     std::size_t limit) {
  const std::string pat = std::string("\"") + key + "\":";
  const std::size_t pos = s.find(pat, from);
  if (pos == std::string::npos || pos + pat.size() > limit)
    return std::string::npos;
  return pos + pat.size();
}

std::uint64_t parse_u64_at(const std::string& s, std::size_t pos) {
  std::uint64_t v = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(s[pos] - '0');
    ++pos;
  }
  return v;
}

std::uint64_t u64_field(const std::string& s, const char* key,
                        std::size_t from, std::size_t limit) {
  const std::size_t pos = find_key(s, key, from, limit);
  return pos == std::string::npos ? 0 : parse_u64_at(s, pos);
}

std::string string_field(const std::string& s, const char* key,
                         std::size_t from, std::size_t limit) {
  std::size_t pos = find_key(s, key, from, limit);
  if (pos == std::string::npos || pos >= s.size() || s[pos] != '"') return "";
  const std::size_t end = skip_string(s, pos);
  if (end == std::string::npos) return "";
  return s.substr(pos + 1, end - pos - 2);
}

// End offset of the {...} value starting at the first '{' at/after `pos`.
std::size_t object_end(const std::string& s, std::size_t pos,
                       std::size_t limit) {
  while (pos < limit && s[pos] != '{') ++pos;
  int depth = 0;
  for (std::size_t i = pos; i < limit;) {
    if (s[i] == '"') {
      i = skip_string(s, i);
      if (i == std::string::npos) return std::string::npos;
      continue;
    }
    if (s[i] == '{') ++depth;
    if (s[i] == '}' && --depth == 0) return i + 1;
    ++i;
  }
  return std::string::npos;
}

void parse_rank_object(const std::string& s, std::size_t from,
                       std::size_t limit, RankDump& out) {
  const std::size_t rank_pos = find_key(s, "rank", from, limit);
  if (rank_pos != std::string::npos)
    out.rank = static_cast<int>(parse_u64_at(s, rank_pos));

  // CommStats section: "comm":{"p2p":{...},...}.
  const std::size_t comm_pos = s.find("\"comm\":{", from);
  if (comm_pos != std::string::npos && comm_pos < limit) {
    const std::size_t comm_end = object_end(s, comm_pos + 7, limit);
    if (comm_end != std::string::npos) {
      out.has_comm_stats = true;
      std::size_t cursor = comm_pos;
      for (int op = 0; op < kNumOps; ++op) {
        const std::string pat = std::string("\"") + op_name(op) + "\":{";
        const std::size_t op_pos = s.find(pat, cursor);
        if (op_pos == std::string::npos || op_pos >= comm_end) continue;
        const std::size_t op_end =
            object_end(s, op_pos + pat.size() - 1, comm_end);
        if (op_end == std::string::npos) continue;
        EdgeTotals& t = out.comm_stats[static_cast<std::size_t>(op)];
        t.msgs_sent = u64_field(s, "msgs_sent", op_pos, op_end);
        t.bytes_sent = u64_field(s, "bytes_sent", op_pos, op_end);
        t.msgs_recv = u64_field(s, "msgs_recv", op_pos, op_end);
        t.bytes_recv = u64_field(s, "bytes_recv", op_pos, op_end);
        cursor = op_end;
      }
    }
  }

  // Matrix section: "comm_matrix":{"edges":[...],"rings":[...],...}.
  const std::size_t mat_pos = s.find("\"comm_matrix\":{", from);
  if (mat_pos == std::string::npos || mat_pos >= limit) return;
  const std::size_t mat_end = object_end(s, mat_pos + 14, limit);
  if (mat_end == std::string::npos) return;
  out.has_matrix = true;

  const std::size_t edges_pos = find_key(s, "edges", mat_pos, mat_end);
  if (edges_pos != std::string::npos) {
    for (const auto& [b, e] : array_objects(s, edges_pos + 1, mat_end)) {
      EdgeSample sample;
      sample.rank = out.rank;
      sample.peer = static_cast<int>(u64_field(s, "peer", b, e));
      sample.op = op_index(string_field(s, "op", b, e));
      if (sample.op < 0) continue;
      sample.t.msgs_sent = u64_field(s, "msgs_sent", b, e);
      sample.t.bytes_sent = u64_field(s, "bytes_sent", b, e);
      sample.t.send_ns = u64_field(s, "send_ns", b, e);
      sample.t.msgs_recv = u64_field(s, "msgs_recv", b, e);
      sample.t.bytes_recv = u64_field(s, "bytes_recv", b, e);
      sample.t.recv_ns = u64_field(s, "recv_ns", b, e);
      out.edges.push_back(sample);
    }
  }
  const std::size_t rings_pos = find_key(s, "rings", mat_pos, mat_end);
  if (rings_pos != std::string::npos) {
    for (const auto& [b, e] : array_objects(s, rings_pos + 1, mat_end)) {
      RingSample sample;
      sample.rank = out.rank;
      sample.peer = static_cast<int>(u64_field(s, "peer", b, e));
      sample.t.stalls = u64_field(s, "stalls", b, e);
      sample.t.stalled_ns = u64_field(s, "stalled_ns", b, e);
      sample.t.hwm_bytes = u64_field(s, "hwm_bytes", b, e);
      out.rings.push_back(sample);
    }
  }
  const std::size_t ov_pos = s.find("\"overlap\":{", mat_pos);
  if (ov_pos != std::string::npos && ov_pos < mat_end) {
    const std::size_t ov_end = object_end(s, ov_pos + 10, mat_end);
    if (ov_end != std::string::npos) {
      out.overlap.requests = u64_field(s, "requests", ov_pos, ov_end);
      out.overlap.test_completions =
          u64_field(s, "test_completions", ov_pos, ov_end);
      out.overlap.wait_completions =
          u64_field(s, "wait_completions", ov_pos, ov_end);
      out.overlap.inflight_ns = u64_field(s, "inflight_ns", ov_pos, ov_end);
      out.overlap.blocked_ns = u64_field(s, "blocked_ns", ov_pos, ov_end);
    }
  }
  out.clamped_records = u64_field(s, "clamped_records", mat_pos, mat_end);
}

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

std::vector<RankDump> parse_metrics_report(const std::string& json,
                                           std::string* error) {
  std::vector<RankDump> out;
  const std::size_t open = json.find('[');
  if (open == std::string::npos) {
    if (error != nullptr) *error = "not a metrics JSON array";
    return out;
  }
  const auto objects = array_objects(json, open + 1, json.size());
  if (objects.empty()) {
    if (error != nullptr) *error = "metrics array holds no rank objects";
    return out;
  }
  for (const auto& [b, e] : objects) {
    RankDump rank;
    parse_rank_object(json, b, e, rank);
    out.push_back(std::move(rank));
  }
  return out;
}

bool reconciles(const RankDump& rank, std::string* detail) {
  if (!rank.has_matrix || !rank.has_comm_stats) return true;
  std::array<EdgeTotals, kNumOps> matrix{};
  for (const auto& e : rank.edges) {
    EdgeTotals& t = matrix[static_cast<std::size_t>(e.op)];
    t.msgs_sent += e.t.msgs_sent;
    t.bytes_sent += e.t.bytes_sent;
    t.msgs_recv += e.t.msgs_recv;
    t.bytes_recv += e.t.bytes_recv;
  }
  bool ok = true;
  for (int op = 0; op < kNumOps; ++op) {
    const EdgeTotals& m = matrix[static_cast<std::size_t>(op)];
    const EdgeTotals& c = rank.comm_stats[static_cast<std::size_t>(op)];
    if (m.msgs_sent == c.msgs_sent && m.bytes_sent == c.bytes_sent &&
        m.msgs_recv == c.msgs_recv && m.bytes_recv == c.bytes_recv)
      continue;
    ok = false;
    if (detail != nullptr)
      append_fmt(*detail,
                 "  rank %d op %s: matrix %llu/%llu sent %llu/%llu recv vs "
                 "CommStats %llu/%llu sent %llu/%llu recv\n",
                 rank.rank, op_name(op),
                 static_cast<unsigned long long>(m.msgs_sent),
                 static_cast<unsigned long long>(m.bytes_sent),
                 static_cast<unsigned long long>(m.msgs_recv),
                 static_cast<unsigned long long>(m.bytes_recv),
                 static_cast<unsigned long long>(c.msgs_sent),
                 static_cast<unsigned long long>(c.bytes_sent),
                 static_cast<unsigned long long>(c.msgs_recv),
                 static_cast<unsigned long long>(c.bytes_recv));
  }
  return ok;
}

std::string format_report(const std::vector<RankDump>& ranks, int top_k,
                          bool* ok) {
  if (ok != nullptr) *ok = true;
  std::string out = "=== comm reconciliation ===\n";
  int with_matrix = 0;
  for (const auto& rank : ranks) {
    if (!rank.has_matrix) {
      append_fmt(out, "rank %d: no comm matrix (run had observability off)\n",
                 rank.rank);
      continue;
    }
    ++with_matrix;
    std::string detail;
    if (reconciles(rank, &detail)) {
      std::uint64_t sent = 0;
      std::uint64_t recv = 0;
      for (const auto& e : rank.edges) {
        sent += e.t.bytes_sent;
        recv += e.t.bytes_recv;
      }
      append_fmt(out, "rank %d: OK (%llu bytes sent / %llu recv, %zu edges)\n",
                 rank.rank, static_cast<unsigned long long>(sent),
                 static_cast<unsigned long long>(recv), rank.edges.size());
    } else {
      if (ok != nullptr) *ok = false;
      append_fmt(out, "rank %d: MISMATCH\n", rank.rank);
      out += detail;
    }
    if (rank.clamped_records > 0)
      append_fmt(out, "rank %d: WARNING %llu records clamped (peer >= %d)\n",
                 rank.rank,
                 static_cast<unsigned long long>(rank.clamped_records),
                 kMaxPeers);
  }
  if (with_matrix == 0) {
    out += "no comm matrices found; re-run with observability enabled "
           "(--metrics-out)\n";
    return out;
  }
  if (ok == nullptr || *ok)
    out += "byte totals reconcile exactly with CommStats\n";

  // Directed hot edges, sender side.
  struct Directed {
    int src, dst, op;
    EdgeTotals t;
  };
  std::vector<Directed> edges;
  for (const auto& rank : ranks)
    for (const auto& e : rank.edges)
      if (e.t.msgs_sent > 0)
        edges.push_back(Directed{rank.rank, e.peer, e.op, e.t});
  std::sort(edges.begin(), edges.end(), [](const Directed& a,
                                           const Directed& b) {
    return a.t.bytes_sent > b.t.bytes_sent;
  });
  out += "\n=== top edges by bytes sent ===\n";
  for (std::size_t i = 0;
       i < edges.size() && i < static_cast<std::size_t>(top_k); ++i) {
    const Directed& e = edges[i];
    append_fmt(out, "#%-2zu r%d -> r%-2d %-8s %10llu bytes %7llu msgs\n",
               i + 1, e.src, e.dst, op_name(e.op),
               static_cast<unsigned long long>(e.t.bytes_sent),
               static_cast<unsigned long long>(e.t.msgs_sent));
  }

  // Slow edges: receiver-side mean latency. The receive clock includes the
  // wait for the sender, so a delayed/straggling parent shows up on its
  // outgoing edges here — this is what names an injected slow edge.
  struct SlowEdge {
    int src, dst, op;
    double avg_ns;
    std::uint64_t msgs;
  };
  std::vector<SlowEdge> slow;
  for (const auto& rank : ranks)
    for (const auto& e : rank.edges)
      if (e.t.msgs_recv > 0)
        slow.push_back(SlowEdge{e.peer, rank.rank, e.op,
                                static_cast<double>(e.t.recv_ns) /
                                    static_cast<double>(e.t.msgs_recv),
                                e.t.msgs_recv});
  std::sort(slow.begin(), slow.end(),
            [](const SlowEdge& a, const SlowEdge& b) {
              return a.avg_ns > b.avg_ns;
            });
  out += "\n=== slow edges by receive latency ===\n";
  for (std::size_t i = 0;
       i < slow.size() && i < static_cast<std::size_t>(top_k); ++i) {
    const SlowEdge& e = slow[i];
    append_fmt(out, "#%-2zu r%d -> r%-2d %-8s avg %9.3f ms over %llu msgs\n",
               i + 1, e.src, e.dst, op_name(e.op), e.avg_ns / 1e6,
               static_cast<unsigned long long>(e.msgs));
  }

  // Traffic shape over collective edges: star routes everything through
  // rank 0; tree collectives produce edges touching neither endpoint 0.
  out += "\n=== traffic shape ===\n";
  const std::size_t p = ranks.size();
  std::size_t coll_edges = 0;
  std::size_t off_hub = 0;
  for (const auto& rank : ranks)
    for (const auto& e : rank.edges) {
      if (e.op == kOpP2p || e.t.msgs_sent == 0) continue;
      ++coll_edges;
      if (rank.rank != 0 && e.peer != 0) ++off_hub;
    }
  if (coll_edges == 0)
    out += "no collective traffic recorded\n";
  else if (p <= 2)
    append_fmt(out, "p=%zu: star and tree topologies coincide\n", p);
  else if (off_hub == 0)
    append_fmt(out,
               "star-shaped: all %zu collective edges touch rank 0 (p=%zu)\n",
               coll_edges, p);
  else
    append_fmt(out,
               "tree-shaped: %zu of %zu collective edges bypass rank 0 "
               "(p=%zu)\n",
               off_hub, coll_edges, p);

  out += "\n=== shm ring stalls ===\n";
  bool any_stall = false;
  for (const auto& rank : ranks)
    for (const auto& r : rank.rings) {
      if (r.t.stalls == 0 && r.t.hwm_bytes == 0) continue;
      any_stall = true;
      append_fmt(out,
                 "r%d -> r%-2d %6llu stalls %10.3f ms stalled, hwm %llu "
                 "bytes\n",
                 rank.rank, r.peer,
                 static_cast<unsigned long long>(r.t.stalls),
                 ms(r.t.stalled_ns),
                 static_cast<unsigned long long>(r.t.hwm_bytes));
    }
  if (!any_stall) out += "no ring pressure recorded (or non-shm transport)\n";

  out += "\n=== nonblocking overlap ===\n";
  bool any_req = false;
  for (const auto& rank : ranks) {
    if (rank.overlap.requests == 0) continue;
    any_req = true;
    append_fmt(out,
               "rank %d: %llu requests (%llu via test, %llu via wait), "
               "in-flight %.3f ms, blocked %.3f ms, overlap %.1f%%\n",
               rank.rank,
               static_cast<unsigned long long>(rank.overlap.requests),
               static_cast<unsigned long long>(rank.overlap.test_completions),
               static_cast<unsigned long long>(rank.overlap.wait_completions),
               ms(rank.overlap.inflight_ns), ms(rank.overlap.blocked_ns),
               100.0 * rank.overlap.overlap_ratio());
  }
  if (!any_req) out += "no nonblocking requests recorded\n";
  return out;
}

}  // namespace raxh::obs::comm
