#include "obs/flight.h"

#include <fcntl.h>
#include <pthread.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/obs.h"

namespace raxh::obs::flight {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

namespace {

constexpr char kMagic[8] = {'R', 'A', 'X', 'H', 'B', 'B', 'X', '1'};
constexpr char kEndMarker[8] = {'R', 'A', 'X', 'H', 'B', 'B', 'X', 'E'};

// Ring table sized for long test processes that spawn hundreds of short-lived
// rank threads (rings are leaked so crash dumps can read dead threads' tails).
constexpr std::size_t kMaxRings = 512;
constexpr std::size_t kMaxNames = 256;
constexpr std::size_t kNameCap = 96;
constexpr std::size_t kRingMask = kRingCapacity - 1;

// One event is four u64 words. Word-level relaxed atomics make concurrent
// dump reads race-free (a whole event can still decode torn; the reader
// skips those). w3 packs (kind << 32) | u32(rank).
struct Ring {
  std::uint32_t tid = 0;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t>* words = nullptr;  // kRingCapacity * 4
};

std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<int> g_ring_claims{0};
std::atomic<std::uint32_t> g_next_tid{0};

char g_names[kMaxNames][kNameCap];
std::atomic<int> g_nnames{0};
std::atomic_flag g_name_lock = ATOMIC_FLAG_INIT;

char g_dump_dir[512] = {0};
std::mutex g_dir_mutex;
std::atomic<int> g_last_rank{-1};
std::atomic<bool> g_crash_dumped{false};

thread_local Ring* t_ring = nullptr;
thread_local int t_rank = -1;

// Forked children (minimpi ProcessComm) inherit the parent's rings; clear the
// cursors so a child's black box only shows its own life.
void reset_all_rings() {
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r) r->head.store(0, std::memory_order_relaxed);
  }
}

void atfork_child() {
  reset_all_rings();
  g_crash_dumped.store(false, std::memory_order_relaxed);
}

Ring* ring() {
  if (t_ring) return t_ring;
  static std::once_flag atfork_once;
  std::call_once(atfork_once,
                 [] { ::pthread_atfork(nullptr, nullptr, atfork_child); });
  // Table full: park the thread on a cursor-only ring so record() degrades to
  // a no-op instead of crashing.
  static Ring overflow;
  const int slot = g_ring_claims.fetch_add(1, std::memory_order_relaxed);
  if (slot >= static_cast<int>(kMaxRings)) {
    t_ring = &overflow;
    return t_ring;
  }
  auto* fresh = new Ring;  // leaked: dumps read rings of exited threads
  fresh->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  fresh->words = new std::atomic<std::uint64_t>[kRingCapacity * 4]();
  g_rings[slot].store(fresh, std::memory_order_release);
  t_ring = fresh;
  return t_ring;
}

// ---------------------------------------------------------------------------
// Async-signal-safe dump writer
// ---------------------------------------------------------------------------

std::uint64_t fnv1a_step(std::uint64_t h, unsigned char byte) {
  h ^= byte;
  h *= 1099511628211ULL;
  return h;
}

struct FileWriter {
  int fd = -1;
  std::uint64_t fnv = 1469598103934665603ULL;
  unsigned char buf[4096];
  std::size_t used = 0;
  bool ok = true;

  void flush() {
    std::size_t off = 0;
    while (off < used) {
      const ssize_t w = ::write(fd, buf + off, used - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(w);
    }
    used = 0;
  }
  // checksummed=false is only for the trailer (the checksum itself + marker).
  void put(const void* p, std::size_t n, bool checksummed = true) {
    const auto* s = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      if (checksummed) fnv = fnv1a_step(fnv, s[i]);
      buf[used++] = s[i];
      if (used == sizeof(buf)) flush();
    }
  }
  void put_u32(std::uint32_t v) { put(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put(&v, sizeof(v)); }
  void put_i32(std::int32_t v) { put(&v, sizeof(v)); }
};

// Append a decimal integer to `out` (signal-safe std::to_string stand-in).
std::size_t format_int(char* out, std::size_t cap, long v) {
  char tmp[24];
  std::size_t n = 0;
  bool neg = v < 0;
  unsigned long u = neg ? static_cast<unsigned long>(-v)
                        : static_cast<unsigned long>(v);
  do {
    tmp[n++] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0 && n < sizeof(tmp));
  std::size_t w = 0;
  if (neg && w < cap) out[w++] = '-';
  while (n > 0 && w < cap) out[w++] = tmp[--n];
  return w;
}

bool build_dump_path(char* out, std::size_t cap, int rank) {
  if (g_dump_dir[0] == '\0') return false;
  std::size_t w = 0;
  for (const char* p = g_dump_dir; *p != '\0' && w < cap; ++p) out[w++] = *p;
  const char* mid = "/rank";
  for (const char* p = mid; *p != '\0' && w < cap; ++p) out[w++] = *p;
  w += format_int(out + w, cap - w, rank);
  const char* suffix = ".blackbox";
  for (const char* p = suffix; *p != '\0' && w < cap; ++p) out[w++] = *p;
  if (w >= cap) return false;
  out[w] = '\0';
  return true;
}

bool dump_to_fd(int fd, int rank, const char* reason, bool fatal) {
  FileWriter w;
  w.fd = fd;
  w.put(kMagic, sizeof(kMagic));
  w.put_i32(rank);
  w.put_u32(static_cast<std::uint32_t>(::getpid()));
  w.put_u32(fatal ? 1u : 0u);
  const std::size_t reason_len = reason ? std::strlen(reason) : 0;
  w.put_u32(static_cast<std::uint32_t>(reason_len));
  if (reason_len > 0) w.put(reason, reason_len);

  const int nnames = g_nnames.load(std::memory_order_acquire);
  w.put_u32(static_cast<std::uint32_t>(nnames));
  for (int i = 0; i < nnames; ++i) {
    const std::size_t len = ::strnlen(g_names[i], kNameCap);
    w.put_u32(static_cast<std::uint32_t>(len));
    w.put(g_names[i], len);
  }

  // Snapshot (ring, head) pairs first so the ring count in the header agrees
  // with the ring sections even while other threads keep recording.
  Ring* rings[kMaxRings];
  std::uint64_t heads[kMaxRings];
  std::uint32_t nrings = 0;
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (!r || !r->words) continue;
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    if (head == 0) continue;
    rings[nrings] = r;
    heads[nrings] = head;
    ++nrings;
  }
  w.put_u32(nrings);
  for (std::uint32_t i = 0; i < nrings; ++i) {
    const Ring* r = rings[i];
    const std::uint64_t head = heads[i];
    const std::uint64_t n = head < kRingCapacity ? head : kRingCapacity;
    w.put_u32(r->tid);
    w.put_u64(head);
    w.put_u32(static_cast<std::uint32_t>(n));
    for (std::uint64_t e = head - n; e < head; ++e) {
      const std::atomic<std::uint64_t>* slot = r->words + (e & kRingMask) * 4;
      for (int word = 0; word < 4; ++word) {
        const std::uint64_t v = slot[word].load(std::memory_order_relaxed);
        w.put_u64(v);
      }
    }
  }

  const std::uint64_t checksum = w.fnv;
  w.put(&checksum, sizeof(checksum), /*checksummed=*/false);
  w.put(kEndMarker, sizeof(kEndMarker), /*checksummed=*/false);
  w.flush();
  return w.ok;
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGABRT:
      return "SIGABRT";
    default:
      return "signal";
  }
}

void crash_signal_handler(int sig) {
  if (!g_crash_dumped.exchange(true)) {
    dump_now(-1, signal_name(sig), /*fatal=*/true);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void terminate_hook() {
  if (!g_crash_dumped.exchange(true)) {
    dump_now(-1, "std::terminate", /*fatal=*/true);
  }
  std::abort();
}

}  // namespace

namespace detail {

void do_record(Kind k, std::uint64_t a, std::uint64_t b) {
  Ring* r = ring();
  if (!r->words) return;  // ring table overflow
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  std::atomic<std::uint64_t>* slot = r->words + (h & kRingMask) * 4;
  slot[0].store(now_ns(), std::memory_order_relaxed);
  slot[1].store(a, std::memory_order_relaxed);
  slot[2].store(b, std::memory_order_relaxed);
  slot[3].store((static_cast<std::uint64_t>(k) << 32) |
                    static_cast<std::uint32_t>(t_rank),
                std::memory_order_relaxed);
  r->head.store(h + 1, std::memory_order_release);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_thread_rank(int rank) {
  t_rank = rank;
  g_last_rank.store(rank, std::memory_order_relaxed);
}

std::uint32_t name_id(const char* name) {
  if (!name || name[0] == '\0') return 0;
  const int n = g_nnames.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i)
    if (std::strncmp(g_names[i], name, kNameCap - 1) == 0)
      return static_cast<std::uint32_t>(i + 1);
  while (g_name_lock.test_and_set(std::memory_order_acquire)) {
  }
  std::uint32_t id = 0;
  const int m = g_nnames.load(std::memory_order_relaxed);
  for (int i = 0; i < m && id == 0; ++i)
    if (std::strncmp(g_names[i], name, kNameCap - 1) == 0)
      id = static_cast<std::uint32_t>(i + 1);
  if (id == 0 && m < static_cast<int>(kMaxNames)) {
    std::strncpy(g_names[m], name, kNameCap - 1);
    g_names[m][kNameCap - 1] = '\0';
    g_nnames.store(m + 1, std::memory_order_release);
    id = static_cast<std::uint32_t>(m + 1);
  }
  g_name_lock.clear(std::memory_order_release);
  return id;
}

void set_dump_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_dir_mutex);
  std::string d = dir;
  while (!d.empty() && d.back() == '/') d.pop_back();
  if (d.size() >= sizeof(g_dump_dir)) d.resize(sizeof(g_dump_dir) - 1);
  std::memcpy(g_dump_dir, d.c_str(), d.size() + 1);
}

std::string dump_dir() { return g_dump_dir; }

std::string dump_path_for_rank(int rank) {
  char path[640];
  if (!build_dump_path(path, sizeof(path), rank)) return "";
  return path;
}

bool dump_now(int rank, const char* reason, bool fatal) {
  if (g_dump_dir[0] == '\0') return false;
  if (rank < 0) {
    rank = t_rank >= 0 ? t_rank : g_last_rank.load(std::memory_order_relaxed);
    if (rank < 0) rank = 0;
  }
  ::mkdir(g_dump_dir, 0777);  // EEXIST is the common case
  char path[640];
  if (!build_dump_path(path, sizeof(path), rank)) return false;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dump_to_fd(fd, rank, reason ? reason : "", fatal);
  ::close(fd);
  return ok;
}

void install_crash_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGABRT})
    ::sigaction(sig, &sa, nullptr);
  std::set_terminate(terminate_hook);
}

std::uint64_t events_recorded() {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r) total += r->head.load(std::memory_order_relaxed);
  }
  return total;
}

void reset() {
  reset_all_rings();
  g_crash_dumped.store(false, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw std::runtime_error("blackbox '" + path + "': " + what);
}

struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;
  const std::string* path;

  void need(std::size_t n, const char* what) const {
    if (size - pos < n)
      corrupt(*path, std::string("truncated ") + what);
  }
  void raw(void* out, std::size_t n, const char* what) {
    need(n, what);
    std::memcpy(out, data + pos, n);
    pos += n;
  }
  std::uint32_t u32(const char* what) {
    std::uint32_t v;
    raw(&v, sizeof(v), what);
    return v;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t v;
    raw(&v, sizeof(v), what);
    return v;
  }
  std::int32_t i32(const char* what) {
    std::int32_t v;
    raw(&v, sizeof(v), what);
    return v;
  }
  std::string str(std::size_t n, const char* what) {
    need(n, what);
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }
};

}  // namespace

const std::string& Blackbox::name(std::uint64_t id) const {
  static const std::string unknown = "?";
  if (id == 0 || id > names.size()) return unknown;
  return names[static_cast<std::size_t>(id - 1)];
}

std::vector<DecodedEvent> Blackbox::all_events() const {
  std::vector<DecodedEvent> out;
  for (const RingDump& r : rings)
    out.insert(out.end(), r.events.begin(), r.events.end());
  return out;
}

Blackbox read_blackbox(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) corrupt(path, "cannot open");
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  const auto* bytes = reinterpret_cast<const unsigned char*>(content.data());

  // Outermost integrity first, mirroring checkpoint v2: the end marker proves
  // the dump completed, the checksum that no byte changed since.
  constexpr std::size_t kTrailer = 8 + 8;  // u64 checksum + end marker
  if (content.size() < sizeof(kMagic) + kTrailer)
    corrupt(path, "file too small");
  if (std::memcmp(content.data() + content.size() - 8, kEndMarker, 8) != 0)
    corrupt(path, "missing end marker (truncated or trailing garbage)");
  std::uint64_t stored = 0;
  std::memcpy(&stored, content.data() + content.size() - kTrailer, 8);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < content.size() - kTrailer; ++i)
    h = fnv1a_step(h, bytes[i]);
  if (h != stored) corrupt(path, "checksum mismatch (corrupt or torn file)");

  Cursor c{bytes, content.size() - kTrailer, 0, &path};
  char magic[8];
  c.raw(magic, sizeof(magic), "header");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    corrupt(path, "bad magic");

  Blackbox box;
  box.rank = c.i32("rank");
  box.pid = c.u32("pid");
  box.fatal = (c.u32("flags") & 1u) != 0;
  box.reason = c.str(c.u32("reason length"), "reason");

  const std::uint32_t nnames = c.u32("name count");
  for (std::uint32_t i = 0; i < nnames; ++i)
    box.names.push_back(c.str(c.u32("name length"), "name table"));

  const std::uint32_t nrings = c.u32("ring count");
  for (std::uint32_t i = 0; i < nrings; ++i) {
    Blackbox::RingDump ring;
    ring.tid = c.u32("ring tid");
    ring.head = c.u64("ring head");
    const std::uint32_t n = c.u32("ring event count");
    if (n > ring.head) corrupt(path, "ring event count exceeds cursor");
    if (ring.head > n) box.dropped += ring.head - n;
    ring.events.reserve(n);
    for (std::uint32_t e = 0; e < n; ++e) {
      std::uint64_t w[4];
      for (auto& word : w) word = c.u64("event");
      const std::uint64_t kind_word = w[3] >> 32;
      if (kind_word < 1 ||
          kind_word > static_cast<std::uint64_t>(Kind::kMaxKind)) {
        ++box.torn;  // slot overwritten during a live dump
        continue;
      }
      DecodedEvent ev;
      ev.ts_ns = w[0];
      ev.a = w[1];
      ev.b = w[2];
      ev.kind = static_cast<Kind>(kind_word);
      ev.rank = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(w[3] & 0xffffffffu));
      ring.events.push_back(ev);
    }
    box.rings.push_back(std::move(ring));
  }
  if (c.pos != c.size) corrupt(path, "trailing data after ring sections");
  return box;
}

}  // namespace raxh::obs::flight
