#include "obs/postmortem.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

namespace raxh::obs::pm {

namespace {

using flight::Kind;

std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

// Friendly names for the protocol tags seen in send/recv events. The numeric
// values mirror minimpi's collective tags (comm.h) and the fault-tolerant
// driver's star-protocol tags (core/hybrid.cpp).
std::string tag_name(int tag) {
  switch (tag) {
    case 900001:
      return "ft.barrier";
    case 900002:
      return "ft.report";
    case 900003:
      return "ft.control";
    case 1000000:
      return "barrier";
    case 1000001:
      return "bcast";
    case 1000002:
      return "reduce";
    case 1000003:
      return "gather";
    default:
      return std::to_string(tag);
  }
}

// Mirrors FaultAction::Kind (minimpi/fault.h).
const char* fault_kind_name(std::uint64_t k) {
  switch (k) {
    case 0:
      return "die";
    case 1:
      return "drop";
    case 2:
      return "torn";
    case 3:
      return "delay";
    default:
      return "?";
  }
}

bool is_barrier_name(const std::string& name) {
  return name == "mpi.barrier" || name == "ft.barrier";
}

bool is_comm_end(Kind k) {
  return k == Kind::kSendEnd || k == Kind::kRecvEnd || k == Kind::kCollEnd;
}

std::size_t rank_index(const Merged& merged, int rank) {
  const auto it =
      std::find(merged.ranks.begin(), merged.ranks.end(), rank);
  return static_cast<std::size_t>(it - merged.ranks.begin());
}

std::uint64_t base_ts(const Merged& merged) {
  return merged.events.empty() ? 0 : merged.events.front().ts_ns;
}

std::string rel_s(const Merged& merged, std::uint64_t ts) {
  return fmt("+%.6fs", static_cast<double>(ts - base_ts(merged)) * 1e-9);
}

// Per-rank barrier episodes: each collective-end event of a barrier-shaped
// collective, with arrival (begin) reconstructed from the recorded duration.
struct Episode {
  std::uint64_t arrival_ns = 0;
  std::uint64_t wait_ns = 0;
};
std::map<int, std::vector<Episode>> barrier_episodes(const Merged& merged) {
  std::map<int, std::vector<Episode>> out;
  for (const Event& ev : merged.events) {
    if (ev.kind != Kind::kCollEnd || !is_barrier_name(ev.name)) continue;
    if (ev.rank < 0) continue;
    out[ev.rank].push_back(Episode{ev.ts_ns - std::min(ev.ts_ns, ev.b), ev.b});
  }
  return out;
}

// The stage `rank` was in at time `ts` (latest phase begin not yet ended).
std::string stage_at(const Merged& merged, int rank, std::uint64_t ts) {
  std::string stage = "?";
  bool open = false;
  for (const Event& ev : merged.events) {
    if (ev.rank != rank || ev.ts_ns > ts) continue;
    if (ev.kind == Kind::kPhaseBegin) {
      stage = ev.name;
      open = true;
    } else if (ev.kind == Kind::kPhaseEnd && open && ev.name == stage) {
      open = false;
    }
  }
  return open ? stage : stage + " (ended)";
}

}  // namespace

Merged merge(const std::vector<flight::Blackbox>& boxes) {
  Merged merged;

  // On the thread backend every box carries every rank's ring, so the same
  // (pid, tid) ring appears in several dumps taken at different times — keep
  // the copy with the furthest-advanced cursor.
  struct RingRef {
    const flight::Blackbox* box;
    const flight::Blackbox::RingDump* ring;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, RingRef> rings;
  for (const flight::Blackbox& box : boxes) {
    if (box.fatal) merged.dead.emplace_back(box.rank, box.reason);
    for (const flight::Blackbox::RingDump& ring : box.rings) {
      const auto key = std::make_pair(box.pid, ring.tid);
      const auto it = rings.find(key);
      if (it == rings.end() || ring.head > it->second.ring->head)
        rings[key] = RingRef{&box, &ring};
    }
  }

  std::set<int> ranks;
  for (const auto& [key, ref] : rings) {
    (void)key;
    merged.dropped += ref.ring->head - ref.ring->events.size();
    for (const flight::DecodedEvent& ev : ref.ring->events) {
      Event out;
      out.ts_ns = ev.ts_ns;
      out.kind = ev.kind;
      out.rank = ev.rank >= 0 ? ev.rank : ref.box->rank;
      out.tid = ref.ring->tid;
      out.a = ev.a;
      out.b = ev.b;
      switch (ev.kind) {
        case Kind::kPhaseBegin:
        case Kind::kPhaseEnd:
        case Kind::kCollBegin:
        case Kind::kCollEnd:
        case Kind::kCkptWrite:
        case Kind::kNote:
          out.name = ref.box->name(ev.a);
          break;
        case Kind::kRankDead:
          out.name = ref.box->name(ev.b);
          break;
        case Kind::kCollEdge:
          out.name = ref.box->name(flight::coll_edge_name(ev.a));
          break;
        default:
          break;
      }
      if (out.rank >= 0) ranks.insert(out.rank);
      merged.events.push_back(std::move(out));
    }
  }
  for (const auto& [rank, reason] : merged.dead) {
    (void)reason;
    ranks.insert(rank);
  }
  merged.ranks.assign(ranks.begin(), ranks.end());
  std::sort(merged.dead.begin(), merged.dead.end());
  merged.dead.erase(std::unique(merged.dead.begin(), merged.dead.end()),
                    merged.dead.end());

  // Clock-offset estimation: all participants leave a barrier at (nearly) the
  // same instant, so matched barrier-exit events pin the per-rank clocks to
  // the reference rank. Median over matched episodes resists one odd sample.
  std::sort(merged.events.begin(), merged.events.end(),
            [](const Event& x, const Event& y) { return x.ts_ns < y.ts_ns; });
  const auto episodes = barrier_episodes(merged);
  int ref_rank = -1;
  for (const auto& [rank, eps] : episodes) {
    (void)eps;
    if (ref_rank < 0 || rank < ref_rank) ref_rank = rank;
  }
  for (const int rank : merged.ranks) {
    std::int64_t offset = 0;
    if (ref_rank >= 0 && rank != ref_rank && episodes.count(rank)) {
      const auto& ref_eps = episodes.at(ref_rank);
      const auto& eps = episodes.at(rank);
      const std::size_t n = std::min(ref_eps.size(), eps.size());
      std::vector<std::int64_t> deltas;
      for (std::size_t i = 0; i < n; ++i)
        deltas.push_back(
            static_cast<std::int64_t>(ref_eps[i].arrival_ns +
                                      ref_eps[i].wait_ns) -
            static_cast<std::int64_t>(eps[i].arrival_ns + eps[i].wait_ns));
      if (!deltas.empty()) {
        std::sort(deltas.begin(), deltas.end());
        offset = deltas[deltas.size() / 2];
      }
    }
    merged.offsets.emplace_back(rank, offset);
    if (offset != 0)
      for (Event& ev : merged.events)
        if (ev.rank == rank)
          ev.ts_ns = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(ev.ts_ns) + offset);
  }
  std::stable_sort(
      merged.events.begin(), merged.events.end(),
      [](const Event& x, const Event& y) { return x.ts_ns < y.ts_ns; });
  return merged;
}

std::optional<Event> last_completed_comm_op(const Merged& merged, int rank) {
  std::optional<Event> last;
  for (const Event& ev : merged.events)
    if (ev.rank == rank && is_comm_end(ev.kind)) last = ev;
  return last;
}

std::string describe(const Event& ev) {
  switch (ev.kind) {
    case Kind::kPhaseBegin:
      return "phase " + ev.name + " begin";
    case Kind::kPhaseEnd:
      return "phase " + ev.name +
             fmt(" end (%.3fs)", static_cast<double>(ev.b) * 1e-9);
    case Kind::kSendBegin:
      return fmt("send -> r%d tag %s (%llu B)", flight::peer_of(ev.a),
                 tag_name(flight::tag_of(ev.a)).c_str(),
                 static_cast<unsigned long long>(ev.b));
    case Kind::kSendEnd:
      return fmt("send done -> r%d tag %s (%llu B)", flight::peer_of(ev.a),
                 tag_name(flight::tag_of(ev.a)).c_str(),
                 static_cast<unsigned long long>(ev.b));
    case Kind::kRecvBegin:
      return fmt("recv <- r%d tag %s", flight::peer_of(ev.a),
                 tag_name(flight::tag_of(ev.a)).c_str());
    case Kind::kRecvEnd:
      return fmt("recv done <- r%d tag %s (%llu B)", flight::peer_of(ev.a),
                 tag_name(flight::tag_of(ev.a)).c_str(),
                 static_cast<unsigned long long>(ev.b));
    case Kind::kCollBegin:
      return ev.name + " begin";
    case Kind::kCollEnd:
      return ev.name + fmt(" done (%.3f ms)", static_cast<double>(ev.b) * 1e-6);
    case Kind::kJobBegin:
      return fmt("crew job #%llu dispatched (%llu threads)",
                 static_cast<unsigned long long>(ev.b),
                 static_cast<unsigned long long>(ev.a));
    case Kind::kJobEnd:
      return fmt("crew job done on master (%.3f ms)",
                 static_cast<double>(ev.b) * 1e-6);
    case Kind::kJobWait:
      return fmt("crew barrier wait (%.3f ms, %llu threads)",
                 static_cast<double>(ev.b) * 1e-6,
                 static_cast<unsigned long long>(ev.a));
    case Kind::kCkptWrite:
      return "checkpoint written " + ev.name +
             fmt(" (%llu B)", static_cast<unsigned long long>(ev.b));
    case Kind::kFault:
      return fmt("fault injected: %s at op %llu", fault_kind_name(ev.a),
                 static_cast<unsigned long long>(ev.b));
    case Kind::kRankDead:
      return fmt("death of rank %llu detected at ",
                 static_cast<unsigned long long>(ev.a)) +
             ev.name;
    case Kind::kRegrant:
      return fmt("share %llu re-granted to rank %llu",
                 static_cast<unsigned long long>(ev.a),
                 static_cast<unsigned long long>(ev.b));
    case Kind::kNote:
      return ev.name;
    case Kind::kReqPost:
      return fmt("%s posted %s r%d tag %s", ev.b != 0 ? "irecv" : "isend",
                 ev.b != 0 ? "<-" : "->", flight::peer_of(ev.a),
                 tag_name(flight::tag_of(ev.a)).c_str());
    case Kind::kReqTestOk:
      return fmt("irecv <- r%d tag %s completed via test (in flight %.3f ms)",
                 flight::peer_of(ev.a), tag_name(flight::tag_of(ev.a)).c_str(),
                 static_cast<double>(ev.b) * 1e-6);
    case Kind::kReqWaitDone:
      return fmt("request <- r%d tag %s completed in wait (blocked %.3f ms)",
                 flight::peer_of(ev.a), tag_name(flight::tag_of(ev.a)).c_str(),
                 static_cast<double>(ev.b) * 1e-6);
    case Kind::kCollEdge:
      return fmt("%s hop %s r%d (#%u, %.3f ms)", ev.name.c_str(),
                 flight::coll_edge_is_recv(ev.b) ? "<-" : "->",
                 flight::coll_edge_peer(ev.b), flight::coll_edge_seq(ev.a),
                 static_cast<double>(flight::coll_edge_ns(ev.b)) * 1e-6);
  }
  return "?";
}

std::string format_edge_report(const Merged& merged) {
  // Receiver-side hops only: a recv's duration includes the wait for the
  // sender, so the edge whose receives are slow is the edge that gated the
  // collective — sender-side hops just measure local buffering.
  struct EdgeKey {
    std::string name;
    int src;
    int dst;
    bool operator<(const EdgeKey& o) const {
      if (name != o.name) return name < o.name;
      if (src != o.src) return src < o.src;
      return dst < o.dst;
    }
  };
  struct EdgeAgg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::map<EdgeKey, EdgeAgg> edges;
  // Per collective instance (name, seq): the slowest recv hop is the edge
  // on that instance's critical path. seq is a per-comm counter, so in the
  // SPMD drivers the same (name, seq) on every rank is the same call.
  struct InstKey {
    std::string name;
    std::uint32_t seq;
    bool operator<(const InstKey& o) const {
      if (name != o.name) return name < o.name;
      return seq < o.seq;
    }
  };
  struct InstAgg {
    std::uint64_t worst_ns = 0;
    int worst_src = -1;
    int worst_dst = -1;
  };
  std::map<InstKey, InstAgg> instances;
  for (const Event& ev : merged.events) {
    if (ev.kind != Kind::kCollEdge || ev.rank < 0) continue;
    if (!flight::coll_edge_is_recv(ev.b)) continue;
    const int src = flight::coll_edge_peer(ev.b);
    const std::uint64_t ns = flight::coll_edge_ns(ev.b);
    EdgeAgg& agg = edges[EdgeKey{ev.name, src, ev.rank}];
    agg.count += 1;
    agg.total_ns += ns;
    agg.max_ns = std::max(agg.max_ns, ns);
    InstAgg& inst = instances[InstKey{ev.name, flight::coll_edge_seq(ev.a)}];
    if (ns > inst.worst_ns) {
      inst.worst_ns = ns;
      inst.worst_src = src;
      inst.worst_dst = ev.rank;
    }
  }
  std::string out = "collective edge report (receiver-side hop latency):\n";
  if (edges.empty()) {
    out += "  no collective edge events on record\n";
    return out;
  }
  std::vector<std::pair<EdgeKey, EdgeAgg>> by_avg(edges.begin(), edges.end());
  std::sort(by_avg.begin(), by_avg.end(), [](const auto& x, const auto& y) {
    return x.second.total_ns * y.second.count >
           y.second.total_ns * x.second.count;
  });
  out += fmt("  %-14s %-10s %6s %12s %12s\n", "collective", "edge", "hops",
             "avg", "max");
  for (const auto& [key, agg] : by_avg)
    out += fmt("  %-14s r%d -> r%-3d %6llu %9.3f ms %9.3f ms\n",
               key.name.c_str(), key.src, key.dst,
               static_cast<unsigned long long>(agg.count),
               static_cast<double>(agg.total_ns) /
                   static_cast<double>(agg.count) * 1e-6,
               static_cast<double>(agg.max_ns) * 1e-6);
  std::vector<std::pair<InstKey, InstAgg>> slow(instances.begin(),
                                                instances.end());
  std::sort(slow.begin(), slow.end(), [](const auto& x, const auto& y) {
    return x.second.worst_ns > y.second.worst_ns;
  });
  const std::size_t top = std::min<std::size_t>(5, slow.size());
  out += "  slowest instances (critical edge):\n";
  for (std::size_t i = 0; i < top; ++i)
    out += fmt("    %s #%u gated by r%d -> r%d (%.3f ms)\n",
               slow[i].first.name.c_str(), slow[i].first.seq,
               slow[i].second.worst_src, slow[i].second.worst_dst,
               static_cast<double>(slow[i].second.worst_ns) * 1e-6);
  return out;
}

std::string format_postmortem(const Merged& merged) {
  std::string out = fmt("post-mortem: %zu event(s) across %zu rank(s)",
                        merged.events.size(), merged.ranks.size());
  if (merged.dropped > 0)
    out += fmt(", %llu lost to ring wrap",
               static_cast<unsigned long long>(merged.dropped));
  out += "\n";
  if (merged.dead.empty()) {
    out += "  no death records: all dumped ranks exited normally\n";
    return out;
  }
  for (const auto& [rank, reason] : merged.dead) {
    out += fmt("  rank %d died (%s)\n", rank,
               reason.empty() ? "no reason recorded" : reason.c_str());
    if (const auto last = last_completed_comm_op(merged, rank))
      out += "    last completed comm op: " + describe(*last) + " at " +
             rel_s(merged, last->ts_ns) + "\n";
    else
      out += "    died before completing any comm op\n";
  }
  return out;
}

std::string format_timeline(const Merged& merged, std::size_t last_n) {
  std::set<int> dead;
  for (const auto& [rank, reason] : merged.dead) {
    (void)reason;
    dead.insert(rank);
  }
  const std::size_t n = std::min(last_n, merged.events.size());
  std::string out = fmt("timeline: last %zu of %zu event(s)\n", n,
                        merged.events.size());
  for (std::size_t i = merged.events.size() - n; i < merged.events.size();
       ++i) {
    const Event& ev = merged.events[i];
    const std::string rank_col =
        ev.rank < 0 ? std::string("r?")
                    : fmt("r%d%s", ev.rank, dead.count(ev.rank) ? "†" : "");
    out += fmt("  %14s  %-4s t%-3u  ", rel_s(merged, ev.ts_ns).c_str(),
               rank_col.c_str(), ev.tid) +
           describe(ev) + "\n";
  }
  return out;
}

std::string format_barrier_report(const Merged& merged) {
  const auto episodes = barrier_episodes(merged);
  std::size_t max_episodes = 0;
  for (const auto& [rank, eps] : episodes) {
    (void)rank;
    max_episodes = std::max(max_episodes, eps.size());
  }
  // Per-stage aggregation: who arrived last (the blocker), how long the
  // others waited on them.
  struct StageAgg {
    std::size_t episodes = 0;
    double total_wait_s = 0.0;
    std::map<int, std::pair<std::size_t, double>> blockers;  // rank → (n, s)
  };
  std::map<std::string, StageAgg> stages;
  std::vector<std::string> stage_order;
  for (std::size_t i = 0; i < max_episodes; ++i) {
    std::vector<std::pair<int, Episode>> participants;
    for (const auto& [rank, eps] : episodes)
      if (i < eps.size()) participants.emplace_back(rank, eps[i]);
    if (participants.size() < 2) continue;
    const auto blocker = *std::max_element(
        participants.begin(), participants.end(),
        [](const auto& x, const auto& y) {
          return x.second.arrival_ns < y.second.arrival_ns;
        });
    double total_wait = 0.0;
    double caused_wait = 0.0;
    for (const auto& [rank, ep] : participants) {
      total_wait += static_cast<double>(ep.wait_ns) * 1e-9;
      if (rank == blocker.first) continue;
      // The slice of this rank's wait spent purely on the blocker.
      const std::uint64_t until_blocker =
          blocker.second.arrival_ns > ep.arrival_ns
              ? blocker.second.arrival_ns - ep.arrival_ns
              : 0;
      caused_wait +=
          static_cast<double>(std::min(until_blocker, ep.wait_ns)) * 1e-9;
    }
    const std::string stage =
        stage_at(merged, blocker.first, blocker.second.arrival_ns);
    if (!stages.count(stage)) stage_order.push_back(stage);
    StageAgg& agg = stages[stage];
    agg.episodes += 1;
    agg.total_wait_s += total_wait;
    agg.blockers[blocker.first].first += 1;
    agg.blockers[blocker.first].second += caused_wait;
  }

  std::string out = "barrier-wait attribution by stage:\n";
  if (stage_order.empty()) {
    out += "  no matched barrier episodes on record\n";
    return out;
  }
  out += fmt("  %-18s %9s %12s  %s\n", "stage", "episodes", "total wait",
             "worst blocker");
  for (const std::string& stage : stage_order) {
    const StageAgg& agg = stages.at(stage);
    const auto worst = *std::max_element(
        agg.blockers.begin(), agg.blockers.end(),
        [](const auto& x, const auto& y) {
          return x.second.second < y.second.second;
        });
    out += fmt("  %-18s %9zu %10.3f s  rank %d last to arrive in %zu "
               "episode(s), peers waited %.3f s on it\n",
               stage.c_str(), agg.episodes, agg.total_wait_s, worst.first,
               worst.second.first, worst.second.second);
  }
  return out;
}

std::vector<StageRow> stage_table(const Merged& merged) {
  std::vector<StageRow> rows;
  for (const Event& ev : merged.events) {
    if (ev.kind != Kind::kPhaseEnd || ev.rank < 0) continue;
    auto it = std::find_if(rows.begin(), rows.end(), [&](const StageRow& r) {
      return r.stage == ev.name;
    });
    if (it == rows.end()) {
      rows.push_back(StageRow{ev.name,
                              std::vector<double>(merged.ranks.size(), 0.0),
                              -1, 0.0});
      it = rows.end() - 1;
    }
    it->per_rank_s[rank_index(merged, ev.rank)] +=
        static_cast<double>(ev.b) * 1e-9;
  }
  for (StageRow& row : rows)
    for (std::size_t i = 0; i < row.per_rank_s.size(); ++i)
      if (row.slowest < 0 || row.per_rank_s[i] > row.max_s) {
        row.max_s = row.per_rank_s[i];
        row.slowest = merged.ranks[i];
      }
  return rows;
}

std::string format_critical_path(const Merged& merged) {
  const std::vector<StageRow> rows = stage_table(merged);
  std::string out = "critical path over phase timers:\n";
  if (rows.empty()) {
    out += "  no phase events on record\n";
    return out;
  }
  out += fmt("  %-12s", "stage");
  for (const int rank : merged.ranks) out += fmt(" %9s", fmt("r%d", rank).c_str());
  out += fmt(" %12s\n", "max (rank)");
  double critical_total = 0.0;
  std::vector<double> rank_totals(merged.ranks.size(), 0.0);
  for (const StageRow& row : rows) {
    out += fmt("  %-12s", row.stage.c_str());
    for (std::size_t i = 0; i < row.per_rank_s.size(); ++i) {
      out += fmt(" %9.3f", row.per_rank_s[i]);
      rank_totals[i] += row.per_rank_s[i];
    }
    out += fmt("   %7.3f (r%d)\n", row.max_s, row.slowest);
    critical_total += row.max_s;
  }
  out += fmt("  %-12s", "total");
  for (const double t : rank_totals) out += fmt(" %9.3f", t);
  out += fmt("   %7.3f\n", critical_total);
  out += fmt("  critical path (sum of per-stage maxima): %.3f s\n",
             critical_total);
  return out;
}

std::optional<std::string> last_op_summary(const std::string& blackbox_path,
                                           int rank) {
  if (blackbox_path.empty()) return std::nullopt;
  try {
    const Merged merged = merge({flight::read_blackbox(blackbox_path)});
    if (const auto last = last_completed_comm_op(merged, rank))
      return describe(*last);
    return std::string("died before completing any comm op");
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::vector<flight::Blackbox> read_dir(const std::string& dir,
                                       std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec))
    if (entry.path().extension() == ".blackbox")
      paths.push_back(entry.path().string());
  if (ec && errors)
    errors->push_back("cannot read directory '" + dir + "': " + ec.message());
  std::sort(paths.begin(), paths.end());
  std::vector<flight::Blackbox> boxes;
  for (const std::string& path : paths) {
    try {
      boxes.push_back(flight::read_blackbox(path));
    } catch (const std::exception& e) {
      if (errors) errors->push_back(e.what());
    }
  }
  return boxes;
}

}  // namespace raxh::obs::pm
