// Phase timers: named wall-time accumulators matched to the paper's run
// stages (bootstrap / fast / slow / thorough, Figs. 3-4 and Table 5), plus
// the Figs. 3/4-style component-breakdown table renderer.
//
// Two layers:
//  * PhaseAccumulator — a passive accumulator (start/stop or add()), usable
//    standalone (per-rank stage reports, benches replaying modeled times).
//  * run_phases() — the process-wide accumulator behind --report-components;
//    ScopedPhase feeds it and, when observability is enabled, also emits a
//    "phase:<name>" span into the trace.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace raxh::obs {

class PhaseAccumulator {
 public:
  // Begin accumulating under `phase` (closing any phase still running).
  void start(std::string phase);
  void stop();

  // Record an externally measured duration (merging, modeled times).
  void add(const std::string& phase, double seconds);

  [[nodiscard]] double total(const std::string& phase) const;
  [[nodiscard]] double sum() const;
  // (name, seconds) in first-start order.
  [[nodiscard]] std::vector<std::pair<std::string, double>> phases() const;
  void clear();

 private:
  void flush_locked();

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, double>> phases_;
  std::string current_;
  std::uint64_t started_ns_ = 0;
  bool running_ = false;
};

// The process-wide (per-rank, under ProcessComm) phase table for this run.
PhaseAccumulator& run_phases();
// Fork-child reinitialization hook (called from obs's pthread_atfork child
// handler; not for general use).
void run_phases_reset_for_fork();

// RAII phase marker: on destruction adds the elapsed time to run_phases(),
// to `local` when given, and emits a "phase:<name>" trace span if
// observability is enabled.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name, PhaseAccumulator* local = nullptr);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  PhaseAccumulator* local_;
  std::uint64_t start_ns_;
};

// Wire format for shipping one rank's phase table through gather_strings.
[[nodiscard]] std::string serialize_phases(const PhaseAccumulator& acc);
[[nodiscard]] std::vector<std::pair<std::string, double>> deserialize_phases(
    const std::string& data);

// Figs. 3/4-style component table: one row per entry of `rows` (a rank or a
// configuration), one column per phase (union, first-seen order) plus a
// trailing per-row sum.
[[nodiscard]] std::string format_component_table(
    const std::vector<std::vector<std::pair<std::string, double>>>& rows,
    const std::vector<std::string>& row_labels, const std::string& row_header);

}  // namespace raxh::obs
