// Job-scoped attribution and Prometheus text exposition — the service-level
// half of the observability stack.
//
// The counters/histograms in obs.h/hist.h are process-global: perfect for a
// one-shot run, useless for telling two concurrent daemon jobs apart. A
// JobObs block fixes that by *thread binding*: every thread working on
// behalf of a job binds the job's block (JobScope RAII; crew threads inherit
// their creator's binding), and the hot-path hooks in obs.cpp/hist.cpp then
// mirror each counter increment, histogram sample, and span into the bound
// block as well as the global pool. Because each event is charged to exactly
// one job (or to none, for daemon housekeeping), per-job deltas sum to the
// process-global delta — the invariant the serving tests assert.
//
// Cost model: the disabled path is untouched — obs::count() and friends
// still return after one relaxed atomic load when observability is off, so
// the <2% disabled-overhead budget is unaffected by construction. When
// enabled, a bound thread pays one thread-local load + branch plus a relaxed
// fetch_add into the job block per event (the block is shared by the job's
// few threads, so unlike the global pool it uses real atomic adds).
// bench_obs_overhead measures both numbers.
//
// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE preambles, escaped label values, and log2
// histograms re-expressed as cumulative `le` buckets in seconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/hist.h"
#include "obs/obs.h"

namespace raxh::obs {

// ---------------------------------------------------------------------------
// JobObs: one job's attributed slice of the process-global telemetry
// ---------------------------------------------------------------------------

// Spans mirrored into a job are bounded per job; beyond this the oldest are
// overwritten (and dropped_spans() counts them). 8k spans comfortably hold a
// small job's full crew/collective history and bound a huge one's memory.
inline constexpr std::size_t kJobSpanCapacity = 8192;

// Trace-lane layout inside one job's pid: ranks bind lanes 0..nranks-1,
// phase markers land on kJobPhaseLane, and bound threads without an explicit
// lane (rare) are exported at kJobUnlanedTidBase + their process obs tid.
inline constexpr int kJobPhaseLane = 999;
inline constexpr int kJobLifecycleLane = 998;
inline constexpr int kJobUnlanedTidBase = 100;

class JobObs {
 public:
  JobObs() = default;
  JobObs(const JobObs&) = delete;
  JobObs& operator=(const JobObs&) = delete;

  // Hot-path mirrors, called from obs.cpp/hist.cpp hooks on bound threads.
  // Multiple threads of one job add concurrently: real relaxed fetch_adds.
  void add_count(Counter c, std::uint64_t n) {
    counters_[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  void add_hist(Hist h, std::uint64_t ns) {
    const int hi = static_cast<int>(h);
    hist_buckets_[hi][hist_bucket(ns)].fetch_add(1, std::memory_order_relaxed);
    hist_count_[hi].fetch_add(1, std::memory_order_relaxed);
    hist_sum_[hi].fetch_add(ns, std::memory_order_relaxed);
    // Lock-free running max (CAS loop; contention is rare and bounded).
    std::uint64_t cur = hist_max_[hi].load(std::memory_order_relaxed);
    while (ns > cur && !hist_max_[hi].compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
  }
  void add_span(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns,
                int lane);

  // Comm-plane stall gauge: net count of the job's sender threads currently
  // blocked on a full shm ring (raxh_top's per-job stall state).
  void comm_stall_delta(int d) {
    comm_stalled_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] int comm_stalled() const {
    return comm_stalled_.load(std::memory_order_relaxed);
  }

  // Labels a trace lane (exported as a Chrome thread_name metadata event
  // under the job's pid). Typically "rank R" from the hybrid driver.
  void set_lane_name(int lane, std::string name);

  // Point-in-time views (any thread).
  [[nodiscard]] CounterSnapshot counters() const {
    CounterSnapshot snap;
    for (int i = 0; i < kNumCounters; ++i)
      snap.values[i] = counters_[i].load(std::memory_order_relaxed);
    return snap;
  }
  [[nodiscard]] HistSnapshot hist(Hist h) const {
    HistSnapshot snap;
    const int hi = static_cast<int>(h);
    for (int i = 0; i < kHistBuckets; ++i)
      snap.buckets[i] = hist_buckets_[hi][i].load(std::memory_order_relaxed);
    snap.count = hist_count_[hi].load(std::memory_order_relaxed);
    snap.sum_ns = hist_sum_[hi].load(std::memory_order_relaxed);
    snap.max_ns = hist_max_[hi].load(std::memory_order_relaxed);
    return snap;
  }
  [[nodiscard]] std::uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  // This job's spans (plus lane-name metadata) as a Chrome trace_event
  // fragment with pid=`pid`, mergeable by obs::merge_trace_fragments.
  // Lifecycle spans the serving layer wants on a dedicated lane are passed
  // in as `extra` (name, start_ns, dur_ns, lane).
  struct ExtraSpan {
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    int lane = 0;
  };
  [[nodiscard]] std::string export_trace_fragment(
      int pid, const std::string& process_name,
      const std::vector<ExtraSpan>& extra) const;

 private:
  struct JobSpan {
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    int lane = 0;
  };

  std::atomic<std::uint64_t> counters_[kNumCounters] = {};
  std::atomic<std::uint64_t> hist_buckets_[kNumHists][kHistBuckets] = {};
  std::atomic<std::uint64_t> hist_count_[kNumHists] = {};
  std::atomic<std::uint64_t> hist_sum_[kNumHists] = {};
  std::atomic<std::uint64_t> hist_max_[kNumHists] = {};
  std::atomic<std::uint64_t> dropped_spans_{0};
  std::atomic<int> comm_stalled_{0};

  mutable std::mutex span_mu_;
  std::vector<JobSpan> spans_;  // bounded ring at kJobSpanCapacity
  std::size_t span_next_ = 0;
  bool span_full_ = false;
  std::vector<std::pair<int, std::string>> lane_names_;
};

// ---------------------------------------------------------------------------
// Thread binding
// ---------------------------------------------------------------------------

// Binds the calling thread's telemetry to `job` (nullptr unbinds). While
// bound *and* observability is enabled, every counter/histogram/span this
// thread records is also charged to the job. The binding is thread-local;
// Workforce crews inherit their creator's binding at construction.
void bind_job(std::shared_ptr<JobObs> job);

// The calling thread's current binding (for handing down to spawned
// threads); null when unbound. current_job_lane() is the matching trace
// lane (-1 when none).
[[nodiscard]] std::shared_ptr<JobObs> current_job();
[[nodiscard]] int current_job_lane();

// RAII binding with save/restore, plus an optional lane id for span
// attribution (lanes separate a job's ranks in the exported trace; threads
// without an explicit lane inherit lane -1 and are exported under their
// process-wide obs tid).
class JobScope {
 public:
  explicit JobScope(std::shared_ptr<JobObs> job, int lane = -1);
  ~JobScope();
  JobScope(const JobScope&) = delete;
  JobScope& operator=(const JobScope&) = delete;

 private:
  std::shared_ptr<JobObs> saved_;
  int saved_lane_;
};

namespace detail {
// Hot-path view of the binding, read by the obs.cpp/hist.cpp hooks. Raw
// pointer: the thread-local shared_ptr set by bind_job keeps it alive.
extern thread_local JobObs* t_job_sink;
extern thread_local int t_job_lane;
}  // namespace detail

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

// Escapes a label value per the exposition format: backslash, double quote,
// and newline get backslash-escaped.
[[nodiscard]] std::string prom_escape_label(const std::string& value);

// Builder for one scrape. Each family is announced once with HELP/TYPE; the
// *_total convention for counters is the caller's responsibility (pass the
// suffixed name).
class PromWriter {
 public:
  void gauge(const std::string& name, const std::string& help, double value);
  void counter(const std::string& name, const std::string& help,
               std::uint64_t value);
  // One family, many label sets: {label_name, [(label_value, value)...]}.
  void counter_labeled(
      const std::string& name, const std::string& help,
      const std::string& label_name,
      const std::vector<std::pair<std::string, std::uint64_t>>& series);
  void gauge_labeled(
      const std::string& name, const std::string& help,
      const std::string& label_name,
      const std::vector<std::pair<std::string, double>>& series);
  // Fully general variant for multi-label families (e.g. the comm-plane's
  // {rank,peer,op,dir} edges): each entry's first element is the complete
  // pre-rendered label set — the text between the braces, already escaped.
  void counter_multilabeled(
      const std::string& name, const std::string& help,
      const std::vector<std::pair<std::string, std::uint64_t>>& series);
  void gauge_multilabeled(
      const std::string& name, const std::string& help,
      const std::vector<std::pair<std::string, double>>& series);
  // A log2-ns histogram as a Prometheus histogram in seconds: cumulative
  // `le` buckets at each power-of-two boundary that holds samples, then
  // `+Inf`, `_sum`, `_count`.
  void histogram_ns(const std::string& name, const std::string& help,
                    const HistSnapshot& snap);

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void preamble(const std::string& name, const std::string& help,
                const char* type);
  std::string out_;
};

}  // namespace raxh::obs
