// The paper's five benchmark data sets (Table 3) plus generation of synthetic
// stand-ins at a configurable scale. The real rRNA alignments are not
// redistributable here; per DESIGN.md §2 we substitute simulated alignments
// with the same taxa and pattern dimensions (scaled down where runs must be
// wall-clock bounded).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bio/alignment.h"

namespace raxh {

struct DatasetSpec {
  std::string name;
  std::size_t taxa;
  std::size_t characters;
  std::size_t patterns;
  int recommended_bootstraps;  // WC bootstopping recommendation, Table 3
};

// Table 3 of the paper, in its order (ascending by patterns).
const std::vector<DatasetSpec>& paper_datasets();

// Look up a paper data set by its pattern count (the identifier the paper's
// figures use, e.g. "the 1,846-pattern set"). Aborts if absent.
const DatasetSpec& paper_dataset_by_patterns(std::size_t patterns);

// Generate a synthetic stand-in for `spec` at linear scale `scale` in both
// taxa and characters (scale=1 reproduces the paper dimensions; benchmarks
// use smaller scales). Deterministic in `seed`. The generator targets
// round(scale*patterns) distinct columns; the achieved pattern count after
// compression is within a few percent of the target.
Alignment generate_dataset(const DatasetSpec& spec, double scale,
                           std::uint64_t seed);

}  // namespace raxh
