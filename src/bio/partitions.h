// Partitioned alignments (multi-gene analyses, RAxML's "-q"): a partition
// scheme names disjoint column ranges of one alignment; each partition gets
// its own substitution model over a shared topology.
//
// Scheme text format (RAxML partition-file style, DNA only):
//   DNA, gene1 = 1-500
//   DNA, gene2 = 501-800, 950-1000
// Ranges are 1-based inclusive, may not overlap, and must jointly cover
// every column.
#pragma once

#include <string>
#include <vector>

#include "bio/alignment.h"

namespace raxh {

struct Partition {
  std::string name;
  // 0-based half-open [begin, end) column ranges, in file order.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;

  [[nodiscard]] std::size_t num_sites() const {
    std::size_t n = 0;
    for (const auto& [b, e] : ranges) n += e - b;
    return n;
  }
};

class PartitionScheme {
 public:
  // Parse scheme text for an alignment of `num_sites` columns. Throws
  // std::runtime_error on syntax errors, overlaps, out-of-range or
  // incomplete coverage.
  static PartitionScheme parse(const std::string& text, std::size_t num_sites);

  // Single partition spanning the whole alignment.
  static PartitionScheme single(std::size_t num_sites,
                                std::string name = "all");

  [[nodiscard]] std::size_t size() const { return partitions_.size(); }
  [[nodiscard]] const Partition& partition(std::size_t i) const {
    return partitions_[i];
  }
  [[nodiscard]] const std::vector<Partition>& partitions() const {
    return partitions_;
  }
  [[nodiscard]] std::size_t num_sites() const { return num_sites_; }

  // Extract each partition's columns as its own alignment (taxon set and
  // order preserved).
  [[nodiscard]] std::vector<Alignment> split(const Alignment& alignment) const;

 private:
  std::vector<Partition> partitions_;
  std::size_t num_sites_ = 0;
};

}  // namespace raxh
