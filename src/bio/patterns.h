// Site-pattern compression. Identical alignment columns are merged into one
// "pattern" with an integer weight; the likelihood is computed per pattern and
// weighted. The number of distinct patterns is the parameter the paper uses to
// characterize data-set size (§3), and it is the axis over which the
// fine-grained Pthreads parallelization distributes work.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bio/alignment.h"

namespace raxh {

class PatternAlignment {
 public:
  PatternAlignment() = default;

  // Compress `alignment` (columns with equal content merge, weights add up).
  static PatternAlignment compress(const Alignment& alignment);

  [[nodiscard]] std::size_t num_taxa() const { return names_.size(); }
  [[nodiscard]] std::size_t num_patterns() const { return weights_.size(); }
  [[nodiscard]] std::size_t num_sites() const { return site_to_pattern_.size(); }

  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }

  // Row of taxon t over patterns (length num_patterns()).
  [[nodiscard]] std::span<const DnaState> row(std::size_t taxon) const {
    return {data_.data() + taxon * num_patterns(), num_patterns()};
  }
  [[nodiscard]] DnaState at(std::size_t taxon, std::size_t pattern) const {
    return data_[taxon * num_patterns() + pattern];
  }

  // Original-site multiplicities of each pattern.
  [[nodiscard]] std::span<const int> weights() const { return weights_; }

  // Pattern index of each original site.
  [[nodiscard]] std::span<const std::size_t> site_to_pattern() const {
    return site_to_pattern_;
  }

  [[nodiscard]] std::array<double, 4> empirical_frequencies() const;

  // Sum of pattern weights == number of original sites.
  [[nodiscard]] long total_weight() const;

 private:
  std::vector<std::string> names_;
  std::vector<DnaState> data_;  // taxa-major: [taxon][pattern]
  std::vector<int> weights_;
  std::vector<std::size_t> site_to_pattern_;
};

}  // namespace raxh
