// Bootstrap resampling. A bootstrap replicate draws `num_sites` original
// columns with replacement; because the likelihood works on compressed
// patterns, a replicate is represented as a new per-pattern weight vector
// (some weights grow, some drop to zero). This mirrors RAxML's rapid
// bootstrap, where only the weight vector changes between replicates.
#pragma once

#include <vector>

#include "bio/patterns.h"
#include "util/prng.h"

namespace raxh {

// Per-pattern weights of one bootstrap replicate drawn with `rng`.
// The returned vector sums to patterns.total_weight() (= original site count).
std::vector<int> bootstrap_weights(const PatternAlignment& patterns, Lcg& rng);

// As above but for standard bootstrapping of explicit site lists (used by the
// tests to cross-check the pattern-space implementation).
std::vector<int> bootstrap_weights_sites(const PatternAlignment& patterns,
                                         Lcg& rng,
                                         std::vector<std::size_t>* sampled_sites);

}  // namespace raxh
