#include "bio/patterns.h"

#include <bit>
#include <map>

#include "util/check.h"

namespace raxh {

PatternAlignment PatternAlignment::compress(const Alignment& alignment) {
  PatternAlignment out;
  out.names_ = alignment.names();
  const std::size_t taxa = alignment.num_taxa();
  const std::size_t sites = alignment.num_sites();
  RAXH_EXPECTS(taxa > 0 && sites > 0);

  // Map column content -> pattern index. Columns are small strings of states.
  std::map<std::vector<DnaState>, std::size_t> index;
  out.site_to_pattern_.resize(sites);
  std::vector<std::vector<DnaState>> pattern_columns;

  for (std::size_t s = 0; s < sites; ++s) {
    auto col = alignment.column(s);
    auto [it, inserted] = index.try_emplace(std::move(col), index.size());
    if (inserted) {
      pattern_columns.push_back(it->first);
      out.weights_.push_back(0);
    }
    out.weights_[it->second] += 1;
    out.site_to_pattern_[s] = it->second;
  }

  const std::size_t npat = pattern_columns.size();
  out.data_.resize(taxa * npat);
  for (std::size_t p = 0; p < npat; ++p)
    for (std::size_t t = 0; t < taxa; ++t)
      out.data_[t * npat + p] = pattern_columns[p][t];
  return out;
}

std::array<double, 4> PatternAlignment::empirical_frequencies() const {
  std::array<double, 4> counts = {1.0, 1.0, 1.0, 1.0};
  const std::size_t npat = num_patterns();
  for (std::size_t t = 0; t < num_taxa(); ++t) {
    for (std::size_t p = 0; p < npat; ++p) {
      const DnaState s = data_[t * npat + p];
      if (s == kStateGap) continue;
      const int bits = std::popcount(static_cast<unsigned>(s));
      const double mass = static_cast<double>(weights_[p]) / bits;
      for (int i = 0; i < kNumDnaStates; ++i)
        if (s & state_from_index(i)) counts[static_cast<std::size_t>(i)] += mass;
    }
  }
  double total = 0.0;
  for (double c : counts) total += c;
  std::array<double, 4> freqs{};
  for (std::size_t i = 0; i < 4; ++i) freqs[i] = counts[i] / total;
  return freqs;
}

long PatternAlignment::total_weight() const {
  long total = 0;
  for (int w : weights_) total += w;
  return total;
}

}  // namespace raxh
