#include "bio/io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace raxh {

namespace {

[[noreturn]] void parse_error(const std::string& what) {
  throw std::runtime_error("alignment parse error: " + what);
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) parse_error("cannot open file '" + path + "'");
  return in;
}

std::ofstream create_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) parse_error("cannot create file '" + path + "'");
  return out;
}

bool is_sequence_char(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '-' || c == '?' ||
         c == '.';
}

}  // namespace

Alignment read_phylip(std::istream& in) {
  std::size_t taxa = 0, sites = 0;
  if (!(in >> taxa >> sites) || taxa == 0 || sites == 0)
    parse_error("PHYLIP header must be '<taxa> <sites>'");

  std::vector<std::string> names;
  std::vector<std::vector<DnaState>> rows;
  names.reserve(taxa);
  rows.reserve(taxa);
  in.ignore();  // rest of the header line

  // Relaxed PHYLIP, sequential (wrapped) or interleaved, parsed per LINE:
  //  * while names are missing, a line starts a new taxon when no row is
  //    incomplete or its first token contains a non-sequence character
  //    (caveat: an interleaved taxon literally named e.g. "ACGT" is
  //    indistinguishable from data — rename such taxa);
  //  * data lines extend the least-filled row (lowest index on ties), which
  //    reduces to "continue the current taxon" for sequential files and to
  //    per-block round-robin for interleaved ones.
  auto all_sequence_chars = [](const std::string& s) {
    for (char c : s)
      if (!is_sequence_char(c)) return false;
    return true;
  };
  auto least_filled_row = [&]() -> long {
    long best = -1;
    std::size_t best_size = sites;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].size() < best_size) {
        best_size = rows[r].size();
        best = static_cast<long>(r);
      }
    }
    return best;  // -1 when every row is complete
  };
  auto append_data = [&](std::size_t row, const std::string& token) {
    for (char c : token) {
      if (!is_sequence_char(c))
        parse_error(std::string("unexpected character '") + c +
                    "' in sequence");
      if (rows[row].size() >= sites)
        parse_error("more sequence data than declared for taxon '" +
                    names[row] + "'");
      rows[row].push_back(encode_dna(c));
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;  // blank line (block separator)

    const bool any_incomplete = least_filled_row() >= 0;
    const bool is_name_line =
        names.size() < taxa &&
        (rows.empty() || !any_incomplete || !all_sequence_chars(first));
    if (is_name_line) {
      names.push_back(first);
      rows.emplace_back();
      rows.back().reserve(sites);
      std::string token;
      while (tokens >> token) append_data(rows.size() - 1, token);
      continue;
    }

    const long target = least_filled_row();
    if (target < 0) parse_error("more sequence data than declared");
    append_data(static_cast<std::size_t>(target), first);
    std::string token;
    while (tokens >> token)
      append_data(static_cast<std::size_t>(target), token);
  }

  if (names.size() != taxa)
    parse_error("declared " + std::to_string(taxa) + " taxa, found " +
                std::to_string(names.size()));
  for (std::size_t t = 0; t < taxa; ++t)
    if (rows[t].size() != sites)
      parse_error("taxon '" + names[t] + "' has " +
                  std::to_string(rows[t].size()) + " sites, expected " +
                  std::to_string(sites));
  return Alignment(std::move(names), std::move(rows));
}

Alignment read_phylip_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_phylip(in);
}

void write_phylip(std::ostream& out, const Alignment& alignment) {
  out << alignment.num_taxa() << ' ' << alignment.num_sites() << '\n';
  for (std::size_t t = 0; t < alignment.num_taxa(); ++t) {
    out << alignment.name(t) << ' ';
    for (DnaState s : alignment.row(t)) out << decode_dna(s);
    out << '\n';
  }
}

void write_phylip_file(const std::string& path, const Alignment& alignment) {
  auto out = create_or_throw(path);
  write_phylip(out, alignment);
}

Alignment read_fasta(std::istream& in) {
  std::vector<std::string> names;
  std::vector<std::vector<DnaState>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '>') {
      std::string name = line.substr(1);
      // Name is the first whitespace-delimited token of the header.
      const auto end = name.find_first_of(" \t\r");
      if (end != std::string::npos) name.resize(end);
      if (name.empty()) parse_error("FASTA header with empty name");
      names.push_back(std::move(name));
      rows.emplace_back();
    } else {
      if (rows.empty()) parse_error("FASTA sequence data before first header");
      for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        if (!is_sequence_char(c))
          parse_error(std::string("unexpected character '") + c +
                      "' in sequence");
        rows.back().push_back(encode_dna(c));
      }
    }
  }
  if (names.empty()) parse_error("empty FASTA input");
  for (std::size_t t = 1; t < rows.size(); ++t)
    if (rows[t].size() != rows[0].size())
      parse_error("FASTA sequences have unequal lengths (not an alignment)");
  return Alignment(std::move(names), std::move(rows));
}

Alignment read_fasta_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const Alignment& alignment) {
  constexpr std::size_t kWrap = 70;
  for (std::size_t t = 0; t < alignment.num_taxa(); ++t) {
    out << '>' << alignment.name(t) << '\n';
    const auto row = alignment.row(t);
    for (std::size_t i = 0; i < row.size(); i += kWrap) {
      const std::size_t end = std::min(i + kWrap, row.size());
      for (std::size_t j = i; j < end; ++j) out << decode_dna(row[j]);
      out << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const Alignment& alignment) {
  auto out = create_or_throw(path);
  write_fasta(out, alignment);
}

}  // namespace raxh
