#include "bio/seqsim.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "tree/tree.h"
#include "util/check.h"
#include "util/prng.h"

namespace raxh {

namespace {

// Marsaglia-Tsang sampler for Gamma(shape, 1), shape > 0.
double sample_gamma(Xoshiro256& rng, double shape) {
  if (shape < 1.0) {
    const double u = std::max(rng.next_double(), 1e-300);
    return sample_gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0, v = 0.0;
    do {
      x = rng.next_gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = std::max(rng.next_double(), 1e-300);
    if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v)) return d * v;
  }
}

struct SimNode {
  int parent = -1;
  int left = -1;
  int right = -1;
  double branch_length = 0.0;  // branch to parent
  int tip_row = -1;            // alignment row if this node is a tip
};

// Pure-birth (Yule) topology: repeatedly split a uniformly chosen active
// lineage until `taxa` lineages exist; the surviving lineages become tips.
// Node 0 is the root; children are allocated on demand.
std::vector<SimNode> build_yule_tree(std::size_t taxa, double mean_branch,
                                     Xoshiro256& rng) {
  RAXH_EXPECTS(taxa >= 3);
  std::vector<SimNode> nodes(1);  // root
  std::vector<int> active = {0};

  while (active.size() < taxa) {
    const std::size_t pick = rng.next_below(active.size());
    const int node = active[pick];
    const int left = static_cast<int>(nodes.size());
    const int right = left + 1;
    nodes.emplace_back();
    nodes.emplace_back();
    nodes[static_cast<std::size_t>(left)].parent = node;
    nodes[static_cast<std::size_t>(right)].parent = node;
    nodes[static_cast<std::size_t>(node)].left = left;
    nodes[static_cast<std::size_t>(node)].right = right;
    active[pick] = left;
    active.push_back(right);
  }

  for (std::size_t i = 1; i < nodes.size(); ++i)
    nodes[i].branch_length = mean_branch * rng.next_exponential() + 0.01;

  int row = 0;
  for (auto& n : nodes)
    if (n.left < 0) n.tip_row = row++;
  RAXH_ENSURES(static_cast<std::size_t>(row) == taxa);
  return nodes;
}

void write_newick(const std::vector<SimNode>& nodes, int node,
                  std::ostream& out) {
  const auto& n = nodes[static_cast<std::size_t>(node)];
  if (n.left < 0) {
    out << "taxon" << (n.tip_row + 1);
  } else {
    out << '(';
    write_newick(nodes, n.left, out);
    out << ',';
    write_newick(nodes, n.right, out);
    out << ')';
  }
  if (n.parent >= 0) out << ':' << n.branch_length;
}

// Convert a (unrooted) Tree parsed from Newick into the rooted SimNode form:
// root at tip 0's edge with a zero-length connector (reversibility makes the
// rooting immaterial for the simulated distribution).
std::vector<SimNode> tree_from_newick(const std::string& newick,
                                      std::size_t taxa) {
  std::vector<std::string> names(taxa);
  for (std::size_t t = 0; t < taxa; ++t)
    names[t] = "taxon" + std::to_string(t + 1);
  const Tree tree = Tree::parse_newick(newick, names);

  std::vector<SimNode> nodes(1);  // node 0 = synthetic root
  // Child A: tip 0 with the full length of its edge.
  auto add_subtree = [&](auto&& self, int rec, double branch) -> int {
    // `rec` is a record whose back-side subtree we are adding; here we pass
    // the record LOOKED AT (the node to add), i.e. a tip record or an
    // internal record whose two other ring mates hang below.
    const int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    nodes[static_cast<std::size_t>(id)].branch_length = branch;
    if (tree.is_tip_record(rec)) {
      nodes[static_cast<std::size_t>(id)].tip_row = tree.tip_id(rec);
      return id;
    }
    const int c1_rec = tree.back(tree.next(rec));
    const int c2_rec = tree.back(tree.next(tree.next(rec)));
    const int left = self(self, c1_rec, tree.length(tree.next(rec)));
    const int right =
        self(self, c2_rec, tree.length(tree.next(tree.next(rec))));
    nodes[static_cast<std::size_t>(id)].left = left;
    nodes[static_cast<std::size_t>(id)].right = right;
    nodes[static_cast<std::size_t>(left)].parent = id;
    nodes[static_cast<std::size_t>(right)].parent = id;
    return id;
  };

  const int tip0 = add_subtree(add_subtree, 0, tree.length(0));
  const int rest = add_subtree(add_subtree, tree.back(0), 0.0);
  nodes[0].left = tip0;
  nodes[0].right = rest;
  nodes[static_cast<std::size_t>(tip0)].parent = 0;
  nodes[static_cast<std::size_t>(rest)].parent = 0;
  return nodes;
}

int sample_state(const std::array<double, 16>& p, int from, Xoshiro256& rng) {
  const double u = rng.next_double();
  double acc = 0.0;
  for (int j = 0; j < kStates; ++j) {
    acc += p[static_cast<std::size_t>(from * kStates + j)];
    if (u < acc) return j;
  }
  return kStates - 1;
}

}  // namespace

SimResult simulate_alignment(const SimConfig& cfg) {
  RAXH_EXPECTS(cfg.taxa >= 3);
  RAXH_EXPECTS(cfg.distinct_sites > 0);
  RAXH_EXPECTS(cfg.total_sites >= cfg.distinct_sites);
  RAXH_EXPECTS(cfg.gamma_alpha > 0.0);
  RAXH_EXPECTS(cfg.prop_invariant >= 0.0 && cfg.prop_invariant < 1.0);

  Xoshiro256 rng(cfg.seed);
  const GtrModel model(cfg.model);
  const auto nodes =
      cfg.tree_newick.empty()
          ? build_yule_tree(cfg.taxa, cfg.mean_branch_length, rng)
          : tree_from_newick(cfg.tree_newick, cfg.taxa);
  const std::size_t total_nodes = nodes.size();
  constexpr int kRoot = 0;

  // Preorder traversal order (parents before children) for the evolve pass.
  std::vector<int> preorder;
  preorder.reserve(total_nodes);
  {
    std::vector<int> stack = {kRoot};
    while (!stack.empty()) {
      const int n = stack.back();
      stack.pop_back();
      preorder.push_back(n);
      const auto& nd = nodes[static_cast<std::size_t>(n)];
      if (nd.left >= 0) {
        stack.push_back(nd.left);
        stack.push_back(nd.right);
      }
    }
  }

  std::vector<std::vector<DnaState>> rows(
      cfg.taxa, std::vector<DnaState>(cfg.total_sites));
  std::vector<int> state(total_nodes);
  const auto& freqs = model.freqs();

  // Final column layout: distinct columns first, then random duplicates,
  // shuffled. Recreates the characters > patterns redundancy of real data.
  std::vector<std::size_t> column_source;
  column_source.reserve(cfg.total_sites);
  for (std::size_t s = 0; s < cfg.total_sites; ++s)
    column_source.push_back(s < cfg.distinct_sites
                                ? s
                                : rng.next_below(cfg.distinct_sites));
  std::shuffle(column_source.begin(), column_source.end(), rng);

  // Simulate each distinct column once.
  std::vector<std::vector<DnaState>> distinct(cfg.distinct_sites);
  for (std::size_t s = 0; s < cfg.distinct_sites; ++s) {
    const bool invariant = rng.next_double() < cfg.prop_invariant;
    const double rate =
        invariant ? 0.0 : sample_gamma(rng, cfg.gamma_alpha) / cfg.gamma_alpha;

    // Root state from the stationary distribution.
    {
      const double u = rng.next_double();
      double acc = 0.0;
      int st = kStates - 1;
      for (int j = 0; j < kStates; ++j) {
        acc += freqs[static_cast<std::size_t>(j)];
        if (u < acc) {
          st = j;
          break;
        }
      }
      state[kRoot] = st;
    }

    for (const int n : preorder) {
      if (n == kRoot) continue;
      const auto& nd = nodes[static_cast<std::size_t>(n)];
      if (rate == 0.0) {
        state[static_cast<std::size_t>(n)] =
            state[static_cast<std::size_t>(nd.parent)];
      } else {
        const auto p = model.transition_matrix(nd.branch_length, rate);
        state[static_cast<std::size_t>(n)] =
            sample_state(p, state[static_cast<std::size_t>(nd.parent)], rng);
      }
    }

    auto& col = distinct[s];
    col.resize(cfg.taxa);
    for (std::size_t n = 0; n < total_nodes; ++n) {
      const int row = nodes[n].tip_row;
      if (row >= 0)
        col[static_cast<std::size_t>(row)] =
            state_from_index(state[n]);
    }
  }

  for (std::size_t s = 0; s < cfg.total_sites; ++s) {
    const auto& col = distinct[column_source[s]];
    for (std::size_t t = 0; t < cfg.taxa; ++t) rows[t][s] = col[t];
  }

  std::vector<std::string> names(cfg.taxa);
  for (std::size_t t = 0; t < cfg.taxa; ++t)
    names[t] = "taxon" + std::to_string(t + 1);

  SimResult out{Alignment(std::move(names), std::move(rows)), ""};
  std::ostringstream newick;
  write_newick(nodes, kRoot, newick);
  newick << ';';
  out.true_tree_newick = newick.str();
  return out;
}

}  // namespace raxh
