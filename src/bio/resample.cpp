#include "bio/resample.h"

#include "util/check.h"

namespace raxh {

std::vector<int> bootstrap_weights(const PatternAlignment& patterns, Lcg& rng) {
  return bootstrap_weights_sites(patterns, rng, nullptr);
}

std::vector<int> bootstrap_weights_sites(
    const PatternAlignment& patterns, Lcg& rng,
    std::vector<std::size_t>* sampled_sites) {
  const auto site_to_pattern = patterns.site_to_pattern();
  const auto num_sites = static_cast<std::int32_t>(site_to_pattern.size());
  RAXH_EXPECTS(num_sites > 0);

  std::vector<int> weights(patterns.num_patterns(), 0);
  for (std::int32_t draw = 0; draw < num_sites; ++draw) {
    const auto site = static_cast<std::size_t>(rng.next_below(num_sites));
    weights[site_to_pattern[site]] += 1;
    if (sampled_sites != nullptr) sampled_sites->push_back(site);
  }
  return weights;
}

}  // namespace raxh
