// Alignment readers/writers: relaxed (sequential) PHYLIP, the format RAxML
// consumes, and FASTA. Parse errors throw std::runtime_error with a
// line-numbered message; they are user-input failures, not contract bugs.
#pragma once

#include <iosfwd>
#include <string>

#include "bio/alignment.h"

namespace raxh {

// --- PHYLIP (relaxed sequential / interleaved autodetected) ---
Alignment read_phylip(std::istream& in);
Alignment read_phylip_file(const std::string& path);
void write_phylip(std::ostream& out, const Alignment& alignment);
void write_phylip_file(const std::string& path, const Alignment& alignment);

// --- FASTA ---
Alignment read_fasta(std::istream& in);
Alignment read_fasta_file(const std::string& path);
void write_fasta(std::ostream& out, const Alignment& alignment);
void write_fasta_file(const std::string& path, const Alignment& alignment);

}  // namespace raxh
