// DNA state encoding. Like RAxML, each nucleotide is a 4-bit mask over
// {A,C,G,T}; ambiguity codes set several bits and a gap/unknown sets all four.
// The likelihood kernels consume these masks directly as tip vectors.
#pragma once

#include <array>
#include <cstdint>

namespace raxh {

using DnaState = std::uint8_t;

inline constexpr DnaState kStateA = 1;
inline constexpr DnaState kStateC = 2;
inline constexpr DnaState kStateG = 4;
inline constexpr DnaState kStateT = 8;
inline constexpr DnaState kStateGap = 15;
inline constexpr int kNumDnaStates = 4;

// Encode an IUPAC character ('A', 'c', 'N', '-', ...) to its bit mask.
// Unrecognized characters encode as gap (all states possible).
constexpr DnaState encode_dna(char c) {
  switch (c) {
    case 'A': case 'a': return kStateA;
    case 'C': case 'c': return kStateC;
    case 'G': case 'g': return kStateG;
    case 'T': case 't': case 'U': case 'u': return kStateT;
    case 'R': case 'r': return kStateA | kStateG;
    case 'Y': case 'y': return kStateC | kStateT;
    case 'S': case 's': return kStateC | kStateG;
    case 'W': case 'w': return kStateA | kStateT;
    case 'K': case 'k': return kStateG | kStateT;
    case 'M': case 'm': return kStateA | kStateC;
    case 'B': case 'b': return kStateC | kStateG | kStateT;
    case 'D': case 'd': return kStateA | kStateG | kStateT;
    case 'H': case 'h': return kStateA | kStateC | kStateT;
    case 'V': case 'v': return kStateA | kStateC | kStateG;
    default:  return kStateGap;  // N, -, ?, X, ...
  }
}

// Decode a bit mask back to an IUPAC character (canonical uppercase).
constexpr char decode_dna(DnaState s) {
  constexpr std::array<char, 16> table = {
      '-', 'A', 'C', 'M', 'G', 'R', 'S', 'V',
      'T', 'W', 'Y', 'H', 'K', 'D', 'B', '-'};
  return table[s & 15];
}

// True if the mask represents exactly one nucleotide.
constexpr bool is_unambiguous(DnaState s) {
  return s == kStateA || s == kStateC || s == kStateG || s == kStateT;
}

// Index 0..3 (A,C,G,T) of an unambiguous state.
constexpr int state_index(DnaState s) {
  switch (s) {
    case kStateA: return 0;
    case kStateC: return 1;
    case kStateG: return 2;
    case kStateT: return 3;
    default: return -1;
  }
}

// Mask with bit i set, i in 0..3.
constexpr DnaState state_from_index(int i) {
  return static_cast<DnaState>(1u << i);
}

}  // namespace raxh
