#include "bio/partitions.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace raxh {

namespace {

[[noreturn]] void scheme_error(const std::string& what) {
  throw std::runtime_error("partition scheme: " + what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

PartitionScheme PartitionScheme::parse(const std::string& text,
                                       std::size_t num_sites) {
  PartitionScheme scheme;
  scheme.num_sites_ = num_sites;
  std::vector<bool> covered(num_sites, false);

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;

    // "DNA, name = ranges"
    const auto comma = line.find(',');
    if (comma == std::string::npos) scheme_error("missing ',' in: " + line);
    std::string type = trim(line.substr(0, comma));
    std::transform(type.begin(), type.end(), type.begin(), ::toupper);
    if (type != "DNA")
      scheme_error("unsupported data type '" + type + "' (DNA only)");

    const auto eq = line.find('=', comma);
    if (eq == std::string::npos) scheme_error("missing '=' in: " + line);
    Partition part;
    part.name = trim(line.substr(comma + 1, eq - comma - 1));
    if (part.name.empty()) scheme_error("empty partition name in: " + line);

    // Comma-separated ranges "a-b" or single columns "a" (1-based).
    std::istringstream ranges(line.substr(eq + 1));
    std::string token;
    while (std::getline(ranges, token, ',')) {
      token = trim(token);
      if (token.empty()) scheme_error("empty range in: " + line);
      std::size_t lo = 0, hi = 0;
      const auto dash = token.find('-');
      try {
        if (dash == std::string::npos) {
          lo = hi = std::stoul(token);
        } else {
          lo = std::stoul(trim(token.substr(0, dash)));
          hi = std::stoul(trim(token.substr(dash + 1)));
        }
      } catch (const std::exception&) {
        scheme_error("malformed range '" + token + "'");
      }
      if (lo < 1 || hi < lo || hi > num_sites)
        scheme_error("range " + token + " out of bounds (alignment has " +
                     std::to_string(num_sites) + " sites)");
      for (std::size_t c = lo - 1; c < hi; ++c) {
        if (covered[c])
          scheme_error("column " + std::to_string(c + 1) +
                       " assigned to two partitions");
        covered[c] = true;
      }
      part.ranges.emplace_back(lo - 1, hi);
    }
    if (part.ranges.empty()) scheme_error("partition without ranges: " + line);
    scheme.partitions_.push_back(std::move(part));
  }

  if (scheme.partitions_.empty()) scheme_error("no partitions defined");
  for (std::size_t c = 0; c < num_sites; ++c)
    if (!covered[c])
      scheme_error("column " + std::to_string(c + 1) +
                   " not covered by any partition");
  return scheme;
}

PartitionScheme PartitionScheme::single(std::size_t num_sites,
                                        std::string name) {
  RAXH_EXPECTS(num_sites > 0);
  PartitionScheme scheme;
  scheme.num_sites_ = num_sites;
  Partition part;
  part.name = std::move(name);
  part.ranges.emplace_back(0, num_sites);
  scheme.partitions_.push_back(std::move(part));
  return scheme;
}

std::vector<Alignment> PartitionScheme::split(const Alignment& alignment) const {
  RAXH_EXPECTS(alignment.num_sites() == num_sites_);
  std::vector<Alignment> out;
  out.reserve(partitions_.size());
  for (const auto& part : partitions_) {
    std::vector<std::vector<DnaState>> rows(alignment.num_taxa());
    for (std::size_t t = 0; t < alignment.num_taxa(); ++t) {
      rows[t].reserve(part.num_sites());
      for (const auto& [b, e] : part.ranges)
        for (std::size_t c = b; c < e; ++c) rows[t].push_back(alignment.at(t, c));
    }
    out.emplace_back(alignment.names(), std::move(rows));
  }
  return out;
}

}  // namespace raxh
