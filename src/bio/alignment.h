// Multiple sequence alignment: a (taxa x sites) matrix of encoded DNA states
// plus taxon names. Rows correspond to taxa, columns to character positions
// (paper §3).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bio/dna.h"

namespace raxh {

class Alignment {
 public:
  Alignment() = default;
  Alignment(std::vector<std::string> names,
            std::vector<std::vector<DnaState>> rows);

  [[nodiscard]] std::size_t num_taxa() const { return names_.size(); }
  [[nodiscard]] std::size_t num_sites() const {
    return rows_.empty() ? 0 : rows_.front().size();
  }

  [[nodiscard]] const std::string& name(std::size_t taxon) const {
    return names_[taxon];
  }
  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }

  [[nodiscard]] std::span<const DnaState> row(std::size_t taxon) const {
    return rows_[taxon];
  }
  [[nodiscard]] DnaState at(std::size_t taxon, std::size_t site) const {
    return rows_[taxon][site];
  }

  // Column `site` as a taxa-length vector (used by pattern compression).
  [[nodiscard]] std::vector<DnaState> column(std::size_t site) const;

  // Index of the named taxon, or -1.
  [[nodiscard]] long find_taxon(const std::string& taxon_name) const;

  // Observed base frequencies (A,C,G,T); ambiguous states split their mass
  // uniformly over the compatible bases. Never returns exact zeros (a small
  // pseudocount keeps downstream models well-defined).
  [[nodiscard]] std::array<double, 4> empirical_frequencies() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<DnaState>> rows_;
};

}  // namespace raxh
