// Synthetic alignment generation: sequences evolved under GTR(+Gamma) along a
// random Yule tree. Stands in for the paper's real rRNA data sets (which are
// no longer hosted); the likelihood engine does identical work per pattern
// either way, which is what the performance study depends on (paper §3: work
// is roughly proportional to the number of patterns).
#pragma once

#include <cstdint>
#include <string>

#include "bio/alignment.h"
#include "model/gtr.h"

namespace raxh {

struct SimConfig {
  std::size_t taxa = 16;
  // Number of independently simulated (distinct-by-construction) columns.
  std::size_t distinct_sites = 256;
  // Final alignment length; extra columns are duplicates of simulated ones,
  // which recreates the characters > patterns redundancy of real data.
  std::size_t total_sites = 256;
  std::uint64_t seed = 1;
  // Evolve along this topology instead of a fresh Yule tree. Must be a
  // Newick over taxa named "taxon1".."taxonN" (the simulator's own output
  // format), e.g. a previous SimResult::true_tree_newick — this is how
  // multi-gene data sets sharing one history are produced.
  std::string tree_newick;
  GtrParams model = GtrParams::jukes_cantor();
  double gamma_alpha = 0.8;       // across-site rate heterogeneity shape
  double prop_invariant = 0.15;   // fraction of strictly constant columns
  double mean_branch_length = 0.12;
};

struct SimResult {
  Alignment alignment;
  std::string true_tree_newick;  // the generating topology with branch lengths
};

// Simulate an alignment; deterministic in cfg.seed.
SimResult simulate_alignment(const SimConfig& cfg);

}  // namespace raxh
