#include "bio/datasets.h"

#include <algorithm>
#include <cmath>

#include "bio/patterns.h"
#include "bio/seqsim.h"
#include "util/check.h"

namespace raxh {

const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> specs = {
      {"d354_348", 354, 460, 348, 1200},
      {"d150_1130", 150, 1269, 1130, 650},
      {"d218_1846", 218, 2294, 1846, 550},
      {"d404_7429", 404, 13158, 7429, 700},
      {"d125_19436", 125, 29149, 19436, 50},
  };
  return specs;
}

const DatasetSpec& paper_dataset_by_patterns(std::size_t patterns) {
  for (const auto& spec : paper_datasets())
    if (spec.patterns == patterns) return spec;
  RAXH_EXPECTS(false && "unknown paper data set");
  return paper_datasets().front();  // unreachable
}

Alignment generate_dataset(const DatasetSpec& spec, double scale,
                           std::uint64_t seed) {
  RAXH_EXPECTS(scale > 0.0 && scale <= 1.0);
  SimConfig cfg;
  cfg.taxa = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::lround(spec.taxa * scale)));
  const auto target_patterns = std::max<std::size_t>(
      16, static_cast<std::size_t>(std::lround(spec.patterns * scale)));
  cfg.distinct_sites = target_patterns;
  cfg.total_sites = std::max(
      cfg.distinct_sites,
      static_cast<std::size_t>(std::lround(spec.characters * scale)));
  cfg.seed = seed;
  // Mildly non-uniform GTR, typical of empirical rRNA fits.
  cfg.model.rates = {1.4, 3.9, 1.1, 0.9, 4.5, 1.0};
  cfg.model.freqs = {0.26, 0.23, 0.27, 0.24};
  cfg.gamma_alpha = 0.7;
  cfg.prop_invariant = 0.12;

  // Independently simulated columns can collide (few taxa at small scales),
  // undershooting the target pattern count; inflate and retry once or twice.
  Alignment best = simulate_alignment(cfg).alignment;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto achieved = PatternAlignment::compress(best).num_patterns();
    if (achieved * 10 >= target_patterns * 9) break;  // within 10%
    const double inflate = static_cast<double>(target_patterns) /
                           static_cast<double>(std::max<std::size_t>(achieved, 1));
    cfg.distinct_sites = std::min(
        cfg.total_sites, static_cast<std::size_t>(std::lround(
                             cfg.distinct_sites * inflate * 1.1)));
    best = simulate_alignment(cfg).alignment;
  }
  return best;
}

}  // namespace raxh
