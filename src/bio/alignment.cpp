#include "bio/alignment.h"

#include <bit>

#include "util/check.h"

namespace raxh {

Alignment::Alignment(std::vector<std::string> names,
                     std::vector<std::vector<DnaState>> rows)
    : names_(std::move(names)), rows_(std::move(rows)) {
  RAXH_EXPECTS(names_.size() == rows_.size());
  for (const auto& r : rows_) RAXH_EXPECTS(r.size() == rows_.front().size());
}

std::vector<DnaState> Alignment::column(std::size_t site) const {
  RAXH_EXPECTS(site < num_sites());
  std::vector<DnaState> col(num_taxa());
  for (std::size_t t = 0; t < num_taxa(); ++t) col[t] = rows_[t][site];
  return col;
}

long Alignment::find_taxon(const std::string& taxon_name) const {
  for (std::size_t t = 0; t < names_.size(); ++t)
    if (names_[t] == taxon_name) return static_cast<long>(t);
  return -1;
}

std::array<double, 4> Alignment::empirical_frequencies() const {
  std::array<double, 4> counts = {1.0, 1.0, 1.0, 1.0};  // pseudocounts
  for (const auto& r : rows_) {
    for (DnaState s : r) {
      if (s == kStateGap) continue;  // uninformative; skip entirely
      const int bits = std::popcount(static_cast<unsigned>(s));
      const double mass = 1.0 / bits;
      for (int i = 0; i < kNumDnaStates; ++i)
        if (s & state_from_index(i)) counts[static_cast<std::size_t>(i)] += mass;
    }
  }
  double total = 0.0;
  for (double c : counts) total += c;
  std::array<double, 4> freqs{};
  for (std::size_t i = 0; i < 4; ++i) freqs[i] = counts[i] / total;
  return freqs;
}

}  // namespace raxh
