#include "parallel/workforce.h"

#include "obs/flight.h"
#include "obs/hist.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/log.h"

namespace raxh {

namespace {

// Times one crew-job execution: feeds both the trace (a "wf.job" span) and
// the crew-job latency histogram from a single pair of clock samples.
inline void timed_job(const std::function<void(int, int)>& job, int tid,
                      int nthreads) {
  if (!obs::enabled()) {
    job(tid, nthreads);
    return;
  }
  const std::uint64_t start = obs::now_ns();
  job(tid, nthreads);
  const std::uint64_t dur = obs::now_ns() - start;
  obs::record_span("wf.job", start, dur);
  obs::detail::hist_add(obs::Hist::kCrewJobNs, dur);
}

}  // namespace

Stripe stripe(std::size_t total, int tid, int nthreads) {
  RAXH_EXPECTS(nthreads >= 1);
  RAXH_EXPECTS(tid >= 0 && tid < nthreads);
  const auto t = static_cast<std::size_t>(tid);
  const auto n = static_cast<std::size_t>(nthreads);
  return Stripe{total * t / n, total * (t + 1) / n};
}

Workforce::Workforce(int num_threads) : num_threads_(num_threads) {
  RAXH_EXPECTS(num_threads >= 1);
  resize_reduction(1);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int tid = 1; tid < num_threads; ++tid)
    workers_.emplace_back([this, tid] { worker_loop(tid); });
}

Workforce::~Workforce() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Workforce::run(const std::function<void(int, int)>& job) {
  obs::count(obs::Counter::kWorkforceJobs);
  // Crew jobs fire ~10^5/s on fine-grained kernels, so per-job flight events
  // would blow the recorder's <2% always-on budget; sample every 64th job.
  // The black box still shows a live, churning crew (and its job index),
  // while the forensically dense events — comm ops, phases, faults — stay
  // unsampled.
  const std::uint64_t job_index = job_count_++;
  const bool flight_on = obs::flight::enabled() && (job_index & 63) == 0;
  const std::uint64_t flight_start = flight_on ? obs::now_ns() : 0;
  const auto crew = static_cast<std::uint64_t>(num_threads_);
  if (flight_on)
    obs::flight::record(obs::flight::Kind::kJobBegin, crew, job_index);
  if (num_threads_ == 1) {
    timed_job(job, 0, 1);
    if (flight_on)
      obs::flight::record(obs::flight::Kind::kJobEnd, crew,
                          obs::now_ns() - flight_start);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    running_ = num_threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  timed_job(job, 0, num_threads_);  // master participates

  // The master's wait for the crew is the fine-grained barrier of the
  // master/worker scheme; attribute it (count + latency histogram) so
  // thread-efficiency analyses (Figs. 5-6) can separate imbalance from
  // kernel work.
  const bool timed = obs::enabled();
  const std::uint64_t wait_start = timed ? obs::now_ns() : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
  if (timed) {
    const std::uint64_t waited = obs::now_ns() - wait_start;
    obs::count(obs::Counter::kBarrierWaitNs, waited);
    obs::detail::hist_add(obs::Hist::kBarrierWaitNs, waited);
  }
  if (flight_on)
    obs::flight::record(obs::flight::Kind::kJobEnd, crew,
                        obs::now_ns() - flight_start);
}

void Workforce::worker_loop(int tid) {
  Logger::instance().set_thread(tid);  // attributable interleaved log lines
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int, int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    timed_job(*job, tid, num_threads_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0) done_cv_.notify_one();
    }
  }
}

void Workforce::resize_reduction(std::size_t slots_per_thread) {
  reduction_slots_ = slots_per_thread;
  const std::size_t padded =
      (slots_per_thread + kPadDoubles - 1) / kPadDoubles * kPadDoubles +
      kPadDoubles;
  reduction_.assign(static_cast<std::size_t>(num_threads_) * padded, 0.0);
}

double& Workforce::reduction(int tid, std::size_t slot) {
  RAXH_EXPECTS(slot < reduction_slots_);
  const std::size_t padded =
      (reduction_slots_ + kPadDoubles - 1) / kPadDoubles * kPadDoubles +
      kPadDoubles;
  return reduction_[static_cast<std::size_t>(tid) * padded + slot];
}

double Workforce::sum_reduction(std::size_t slot) const {
  obs::count(obs::Counter::kReductionCalls);
  const std::size_t padded =
      (reduction_slots_ + kPadDoubles - 1) / kPadDoubles * kPadDoubles +
      kPadDoubles;
  double sum = 0.0;
  for (int t = 0; t < num_threads_; ++t)
    sum += reduction_[static_cast<std::size_t>(t) * padded + slot];
  return sum;
}

}  // namespace raxh
