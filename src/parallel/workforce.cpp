#include "parallel/workforce.h"

#include <algorithm>

#include "obs/flight.h"
#include "obs/hist.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/log.h"

namespace raxh {

namespace {

// Times one crew-job execution: feeds both the trace (a "wf.job" span) and
// the crew-job latency histogram from a single pair of clock samples.
inline void timed_job(const std::function<void(int, int)>& job, int tid,
                      int nthreads) {
  if (!obs::enabled()) {
    job(tid, nthreads);
    return;
  }
  const std::uint64_t start = obs::now_ns();
  job(tid, nthreads);
  const std::uint64_t dur = obs::now_ns() - start;
  obs::record_span("wf.job", start, dur);
  obs::detail::hist_add(obs::Hist::kCrewJobNs, dur);
}

// One polite busy-wait iteration: keeps the spinning hyperthread from
// starving its sibling without giving up the time slice.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

Stripe stripe(std::size_t total, int tid, int nthreads) {
  RAXH_EXPECTS(nthreads >= 1);
  RAXH_EXPECTS(tid >= 0 && tid < nthreads);
  const auto t = static_cast<std::size_t>(tid);
  const auto n = static_cast<std::size_t>(nthreads);
  return Stripe{total * t / n, total * (t + 1) / n};
}

std::vector<std::size_t> weighted_partition(
    std::span<const std::uint64_t> costs, int nthreads) {
  RAXH_EXPECTS(nthreads >= 1);
  const std::size_t n = costs.size();
  const auto nt = static_cast<std::uint64_t>(nthreads);
  std::vector<std::size_t> bounds(static_cast<std::size_t>(nthreads) + 1);

  // prefix[i] = summed cost of the first i items.
  std::vector<std::uint64_t> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + costs[i];
  const std::uint64_t total = prefix[n];

  bounds[0] = 0;
  bounds[static_cast<std::size_t>(nthreads)] = n;
  for (int t = 1; t < nthreads; ++t) {
    if (total == 0) {  // degenerate: no cost signal, split by count
      bounds[static_cast<std::size_t>(t)] =
          stripe(n, t, nthreads).begin;
      continue;
    }
    // Largest i with prefix[i] <= total*t/nthreads, compared exactly as
    // prefix[i]*nthreads <= total*t. With all-equal costs w this is
    // floor(n*t/nthreads) — identical to stripe(). Each boundary therefore
    // lands within one item's cost of the ideal cut.
    const std::uint64_t target = total * static_cast<std::uint64_t>(t);
    std::size_t lo = bounds[static_cast<std::size_t>(t) - 1], hi = n;
    while (lo < hi) {  // binary search for the last prefix <= target/nt
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      if (prefix[mid] * nt <= target)
        lo = mid;
      else
        hi = mid - 1;
    }
    bounds[static_cast<std::size_t>(t)] = lo;
  }
  return bounds;
}

Workforce::Workforce(int num_threads)
    : num_threads_(num_threads), owner_(std::this_thread::get_id()) {
  RAXH_EXPECTS(num_threads >= 1);
  // Pause-spinning only pays off when every crew thread can run at once;
  // otherwise (crew > cores, or core count unknown) skip straight to the
  // yield tier so waiters hand their time slice to the thread they wait on.
  const auto cores = static_cast<int>(std::thread::hardware_concurrency());
  spin_pauses_ = (cores > 0 && num_threads <= cores) ? kSpinPauses : 0;
  // On a single-core machine a parked worker can never overlap the master,
  // so waking it per dispatch buys nothing — the master's inline help in
  // await_crew() runs the share instead and the futex wake is saved. An
  // unknown core count (0) conservatively wakes.
  wake_for_dispatch_ = cores != 1;
  resize_reduction(1);
  slots_ = std::vector<WorkerSlot>(static_cast<std::size_t>(num_threads - 1));
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  // Crew threads inherit the creator's job binding (if any): the serving
  // layer binds each rank thread to its job's JobObs, and the kernels the
  // crew runs must count against that same job. One-shot runs are unbound
  // and this is a captured null.
  auto job_binding = obs::current_job();
  const int job_lane = obs::current_job_lane();
  for (int tid = 1; tid < num_threads; ++tid)
    workers_.emplace_back([this, tid, job_binding, job_lane] {
      obs::JobScope scope(job_binding, job_lane);
      worker_loop(tid);
    });
}

Workforce::~Workforce() {
  shutdown_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Workforce::note_job_error() noexcept {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!job_error_) job_error_ = std::current_exception();
}

void Workforce::run(const std::function<void(int, int)>& job) {
  RAXH_EXPECTS(std::this_thread::get_id() == owner_);
  RAXH_EXPECTS(!in_run_);
  obs::count(obs::Counter::kWorkforceJobs);
  // Crew jobs fire ~10^5/s on fine-grained kernels, so per-job flight events
  // would blow the recorder's <2% always-on budget; sample every 64th job.
  // The black box still shows a live, churning crew (and its job index),
  // while the forensically dense events — comm ops, phases, faults — stay
  // unsampled.
  const std::uint64_t job_index = job_count_++;
  const bool flight_on = obs::flight::enabled() && (job_index & 63) == 0;
  const std::uint64_t flight_start = flight_on ? obs::now_ns() : 0;
  const auto crew = static_cast<std::uint64_t>(num_threads_);
  if (flight_on)
    obs::flight::record(obs::flight::Kind::kJobBegin, crew, job_index);

  in_run_ = true;
  struct RunGuard {  // clears the reentrancy flag on every exit path
    bool& flag;
    ~RunGuard() { flag = false; }
  } run_guard{in_run_};

  if (num_threads_ == 1) {
    timed_job(job, 0, 1);
    if (flight_on)
      obs::flight::record(obs::flight::Kind::kJobEnd, crew,
                          obs::now_ns() - flight_start);
    return;
  }

  // Issue: publish the job, then broadcast the new generation. The release
  // store is what makes the job pointer (and all master-written job inputs)
  // visible to a worker's acquire load; seq_cst additionally orders it
  // against the parked-count check below so a concurrently parking worker
  // either sees the new generation under the mutex or is seen parked here.
  job_ = &job;
  const std::uint64_t gen =
      generation_.load(std::memory_order_relaxed) + 1;
  generation_.store(gen, std::memory_order_seq_cst);
  if (wake_for_dispatch_ &&
      start_parked_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
    }
    start_cv_.notify_all();
  }

  try {
    timed_job(job, 0, num_threads_);  // master participates
  } catch (...) {
    note_job_error();  // still drain the barrier below
  }

  // Flight duration semantics: kJobEnd covers dispatch + the master's own
  // job execution on every path (1-thread and crew), and the master's wait
  // for the crew is booked separately as kJobWait — so post-mortem critical
  // paths never double-count imbalance as kernel work.
  const bool timed = obs::enabled();
  const std::uint64_t master_done =
      (timed || flight_on) ? obs::now_ns() : 0;
  if (flight_on)
    obs::flight::record(obs::flight::Kind::kJobEnd, crew,
                        master_done - flight_start);

  // The master's wait for the crew is the fine-grained barrier of the
  // master/worker scheme; attribute it (count + latency histogram) so
  // thread-efficiency analyses (Figs. 5-6) can separate imbalance from
  // kernel work. Shares the master runs inline on behalf of unscheduled
  // workers (the help tier in await_crew) are booked here too: they are
  // time the master could not proceed because the crew had not absorbed
  // its work.
  await_crew(gen);
  job_ = nullptr;
  if (timed || flight_on) {
    const std::uint64_t waited = obs::now_ns() - master_done;
    if (timed) {
      obs::count(obs::Counter::kBarrierWaitNs, waited);
      obs::detail::hist_add(obs::Hist::kBarrierWaitNs, waited);
    }
    if (flight_on)
      obs::flight::record(obs::flight::Kind::kJobWait, crew, waited);
  }

  // Workers' writes to job_error_ happen-before their done_gen stores, which
  // await_crew() acquired — the lock-free read is safe.
  if (job_error_) {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      error = job_error_;
      job_error_ = nullptr;
    }
    std::rethrow_exception(error);
  }
}

void Workforce::await_crew(std::uint64_t gen) {
  const int nworkers = num_threads_ - 1;
  const auto all_done = [&](std::memory_order order) {
    for (int i = 0; i < nworkers; ++i)
      if (slots_[static_cast<std::size_t>(i)].done_gen.load(order) != gen)
        return false;
    return true;
  };
  for (int spins = 0; spins < spin_pauses_; ++spins) {
    if (all_done(std::memory_order_acquire)) return;
    cpu_relax();
  }
  // Help-first: run any share whose worker has not claimed it yet inline.
  // On an oversubscribed or single-core machine the workers may not get
  // scheduled at all inside the spin window; executing their shares here
  // beats paying wakeup latency and context switches for them. On a machine
  // with idle cores the pause tier above gives woken workers time to claim,
  // so this only fires for genuinely absent workers.
  for (int i = 0; i < nworkers; ++i) {
    WorkerSlot& slot = slots_[static_cast<std::size_t>(i)];
    std::uint64_t expect = gen - 1;
    if (slot.claim_gen.compare_exchange_strong(expect, gen,
                                               std::memory_order_acq_rel)) {
      try {
        timed_job(*job_, i + 1, num_threads_);
      } catch (...) {
        note_job_error();
      }
      // The master is the only reader of done_gen; its own store needs no
      // cross-thread ordering.
      slot.done_gen.store(gen, std::memory_order_relaxed);
    }
  }
  for (int yields = 0; yields < kSpinYields; ++yields) {
    if (all_done(std::memory_order_acquire)) return;
    std::this_thread::yield();
  }
  if (all_done(std::memory_order_acquire)) return;
  // Park. A worker finishing while we are between the flag store and the
  // wait sees master_parked_ (seq_cst on both sides) and takes the mutex to
  // notify; a worker finishing before the store is observed by the seq_cst
  // re-check inside the predicate.
  std::unique_lock<std::mutex> lock(park_mutex_);
  master_parked_.store(true, std::memory_order_seq_cst);
  done_cv_.wait(lock, [&] { return all_done(std::memory_order_seq_cst); });
  master_parked_.store(false, std::memory_order_relaxed);
}

void Workforce::worker_loop(int tid) {
  Logger::instance().set_thread(tid);  // attributable interleaved log lines
  WorkerSlot& slot = slots_[static_cast<std::size_t>(tid) - 1];
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for the next generation (or shutdown): bounded spin, then yield,
    // then park.
    std::uint64_t gen;
    int pauses = 0;
    int yields = 0;
    for (;;) {
      gen = generation_.load(std::memory_order_acquire);
      if (gen != seen || shutdown_.load(std::memory_order_acquire)) break;
      if (pauses < spin_pauses_) {
        ++pauses;
        cpu_relax();
        continue;
      }
      if (yields < kSpinYields) {
        ++yields;
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lock(park_mutex_);
      start_parked_.fetch_add(1, std::memory_order_seq_cst);
      start_cv_.wait(lock, [&] {
        return generation_.load(std::memory_order_seq_cst) != seen ||
               shutdown_.load(std::memory_order_seq_cst);
      });
      start_parked_.fetch_sub(1, std::memory_order_relaxed);
      gen = generation_.load(std::memory_order_acquire);
      break;
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen = gen;

    // Claim this generation's share. A failed CAS means the master already
    // ran it inline (help-first) while we were waiting to be scheduled —
    // nothing to do, and the master owns the barrier arrival for it. The
    // monotonic claim word also makes stale-generation execution impossible:
    // a worker holding an old `gen` finds claim_gen already past gen-1.
    std::uint64_t expect = gen - 1;
    if (!slot.claim_gen.compare_exchange_strong(expect, gen,
                                                std::memory_order_acq_rel))
      continue;

    try {
      timed_job(*job_, tid, num_threads_);
    } catch (...) {
      note_job_error();  // barrier is still drained below; crew stays usable
    }

    // Completion: generation-sense-reversing barrier arrival. The store must
    // be seq_cst so it orders against the master_parked_ load — see
    // await_crew().
    slot.done_gen.store(gen, std::memory_order_seq_cst);
    if (master_parked_.load(std::memory_order_seq_cst)) {
      {
        std::lock_guard<std::mutex> lock(park_mutex_);
      }
      done_cv_.notify_one();
    }
  }
}

void Workforce::resize_reduction(std::size_t slots_per_thread) {
  reduction_slots_ = slots_per_thread;
  const std::size_t padded =
      (slots_per_thread + kPadDoubles - 1) / kPadDoubles * kPadDoubles +
      kPadDoubles;
  reduction_.assign(static_cast<std::size_t>(num_threads_) * padded, 0.0);
}

double& Workforce::reduction(int tid, std::size_t slot) {
  RAXH_EXPECTS(slot < reduction_slots_);
  const std::size_t padded =
      (reduction_slots_ + kPadDoubles - 1) / kPadDoubles * kPadDoubles +
      kPadDoubles;
  return reduction_[static_cast<std::size_t>(tid) * padded + slot];
}

double Workforce::sum_reduction(std::size_t slot) const {
  obs::count(obs::Counter::kReductionCalls);
  const std::size_t padded =
      (reduction_slots_ + kPadDoubles - 1) / kPadDoubles * kPadDoubles +
      kPadDoubles;
  double sum = 0.0;
  for (int t = 0; t < num_threads_; ++t)
    sum += reduction_[static_cast<std::size_t>(t) * padded + slot];
  return sum;
}

}  // namespace raxh
