// The fine-grained thread crew: the std::thread analogue of RAxML's Pthreads
// master/worker parallelization. One crew is created per coarse-grained rank;
// the likelihood engine dispatches per-pattern kernel jobs to it.
//
// Design follows RAxML's scheme: the master thread participates in every job,
// workers persist across jobs (no per-job thread spawn), and a barrier
// separates job issue from job completion. Work is split by striping the
// pattern range contiguously across threads (see stripe()).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace raxh {

// Contiguous sub-range [begin, end) of `total` items for thread `tid` of
// `nthreads` (balanced to within one item).
struct Stripe {
  std::size_t begin;
  std::size_t end;
};
Stripe stripe(std::size_t total, int tid, int nthreads);

class Workforce {
 public:
  // `num_threads` >= 1; one of them is the calling (master) thread, so
  // num_threads-1 workers are spawned.
  explicit Workforce(int num_threads);
  ~Workforce();

  Workforce(const Workforce&) = delete;
  Workforce& operator=(const Workforce&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  // Execute job(tid, num_threads) on every thread (master runs tid 0) and
  // wait until all have finished. Must be called from the thread that
  // constructed the crew; jobs must not call run() reentrantly.
  void run(const std::function<void(int tid, int nthreads)>& job);

  // Cache-line-padded per-thread accumulator block for reductions.
  // reduction(i) is thread i's slot; sum_reduction() adds them up.
  void resize_reduction(std::size_t slots_per_thread);
  double& reduction(int tid, std::size_t slot = 0);
  [[nodiscard]] double sum_reduction(std::size_t slot = 0) const;

 private:
  void worker_loop(int tid);

  static constexpr std::size_t kPadDoubles = 8;  // 64-byte lines

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  // bumped per job; workers wait on it
  int running_ = 0;               // workers still executing current job
  bool shutdown_ = false;
  std::uint64_t job_count_ = 0;  // total jobs dispatched (flight sampling)

  std::size_t reduction_slots_ = 1;
  std::vector<double> reduction_;  // [thread][slot] padded
};

}  // namespace raxh
