// The fine-grained thread crew: the std::thread analogue of RAxML's Pthreads
// master/worker parallelization. One crew is created per coarse-grained rank;
// the likelihood engine dispatches per-pattern kernel jobs to it.
//
// Design follows RAxML's scheme: the master thread participates in every job,
// workers persist across jobs (no per-job thread spawn), and a barrier
// separates job issue from job completion. Work is split by striping the
// pattern range contiguously across threads (see stripe()) or, when
// per-pattern costs are known, by a weighted prefix-sum partition
// (weighted_partition()) that balances summed cost instead of pattern count.
//
// Dispatch is lock-free on the fast path. Likelihood jobs run ~5us, so the
// old mutex + two condition-variable handshakes per job dominated small-grain
// thread efficiency (the paper's Figs. 5-6 losses). Instead:
//  * Job issue is an atomic generation broadcast: the master publishes the
//    job pointer, then bumps `generation_` (release); spinning workers pick
//    it up with an acquire load.
//  * Each worker owns a cache-line-padded slot holding a claim word and a
//    completion word. A worker CASes its claim to the new generation before
//    executing; a master that has finished its own share steals any
//    still-unclaimed share and runs it inline (help-first), so a crew whose
//    workers cannot be scheduled — oversubscribed or single-core machines —
//    degrades to fast serial execution instead of blocking on wakeups.
//  * Completion is a generation-sense-reversing barrier: whoever executed a
//    share writes the generation into the slot's done word and the master
//    scans the slots. The strictly increasing 64-bit generation is the
//    "sense" — no reset phase, no ABA.
//  * Waiting is tiered and bounded: pause-spin (skipped when the crew
//    oversubscribes the hardware), a bounded run of yields, then park on the
//    old condition variables; the seq_cst parked-count / parked-flag
//    handshake makes the wakeup race-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace raxh {

// Contiguous sub-range [begin, end) of `total` items for thread `tid` of
// `nthreads` (balanced to within one item).
struct Stripe {
  std::size_t begin;
  std::size_t end;
};
Stripe stripe(std::size_t total, int tid, int nthreads);

// Cost-aware split: boundaries (size nthreads+1, bounds[t]..bounds[t+1] is
// thread t's range) partitioning [0, costs.size()) contiguously so each
// thread's summed cost is balanced to within one item's cost. With all-equal
// costs the boundaries reduce exactly to stripe(); an all-zero cost vector
// falls back to stripe() as well. Deterministic for a fixed nthreads.
std::vector<std::size_t> weighted_partition(std::span<const std::uint64_t> costs,
                                            int nthreads);

class Workforce {
 public:
  // `num_threads` >= 1; one of them is the calling (master) thread, so
  // num_threads-1 workers are spawned.
  explicit Workforce(int num_threads);
  ~Workforce();

  Workforce(const Workforce&) = delete;
  Workforce& operator=(const Workforce&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  // Execute job(tid, num_threads) on every thread (master runs tid 0) and
  // wait until all have finished. Must be called from the thread that
  // constructed the crew; jobs must not call run() reentrantly — both are
  // enforced (RAXH_EXPECTS). If any thread's job throws, the barrier is
  // still drained (every thread finishes, the crew stays usable) and the
  // first captured exception is rethrown on the master.
  void run(const std::function<void(int tid, int nthreads)>& job);

  // Cache-line-padded per-thread accumulator block for reductions.
  // reduction(i) is thread i's slot; sum_reduction() adds them up in fixed
  // tid order, so reductions are deterministic for a fixed thread count.
  void resize_reduction(std::size_t slots_per_thread);
  double& reduction(int tid, std::size_t slot = 0);
  [[nodiscard]] double sum_reduction(std::size_t slot = 0) const;

 private:
  // One worker's dispatch slot, padded so per-job claim/done traffic never
  // shares a cache line between workers. claim_gen is CASed from gen-1 to
  // gen by whoever executes the share (the worker, or the helping master);
  // done_gen is the sense-reversing barrier arrival.
  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> claim_gen{0};
    std::atomic<std::uint64_t> done_gen{0};
  };

  void worker_loop(int tid);
  // Record the first exception thrown by any thread during the current job.
  void note_job_error() noexcept;
  // Master-side completion barrier: spin, then park on done_cv_.
  void await_crew(std::uint64_t gen);

  static constexpr std::size_t kPadDoubles = 8;  // 64-byte lines
  // Tiered waiting: pause-spin (only when the crew fits the hardware — on an
  // oversubscribed machine a pause spin just burns the time slice the peer
  // needs), then a bounded run of sched_yields (cheap cooperative handoff
  // when threads share cores), then park on the condition variable. At
  // ~5us/job a dispatch normally completes well inside the spin window; the
  // park path only triggers between phases or on an idle crew.
  static constexpr int kSpinPauses = 1 << 12;
  static constexpr int kSpinYields = 1 << 7;

  int num_threads_;
  int spin_pauses_;         // 0 when the crew oversubscribes the hardware
  bool wake_for_dispatch_;  // notify parked workers on publish (false on a
                            // single-core machine: inline help is cheaper
                            // than a futex wake that cannot run in parallel)
  std::thread::id owner_;   // run() is owner-thread-only (enforced)
  std::vector<std::thread> workers_;

  // --- lock-free dispatch state ---
  std::atomic<std::uint64_t> generation_{0};  // job broadcast (release store)
  std::atomic<bool> shutdown_{false};
  const std::function<void(int, int)>* job_ = nullptr;  // published by generation_
  std::vector<WorkerSlot> slots_;  // [num_threads_-1] completion slots

  // --- spin-then-park fallback ---
  std::mutex park_mutex_;
  std::condition_variable start_cv_;  // workers park here between jobs
  std::condition_variable done_cv_;   // master parks here awaiting the crew
  std::atomic<int> start_parked_{0};  // workers currently parked
  std::atomic<bool> master_parked_{false};

  // --- per-job exception capture ---
  std::mutex error_mutex_;
  std::exception_ptr job_error_;  // first throw of the current job

  bool in_run_ = false;          // master-only reentrancy guard
  std::uint64_t job_count_ = 0;  // total jobs dispatched (flight sampling)

  std::size_t reduction_slots_ = 1;
  std::vector<double> reduction_;  // [thread][slot] padded
};

}  // namespace raxh
