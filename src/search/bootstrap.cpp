#include "search/bootstrap.h"

#include <utility>

#include "util/check.h"

namespace raxh {

RapidBootstrap::RapidBootstrap(LikelihoodEngine& engine,
                               const PatternAlignment& patterns,
                               std::int64_t bootstrap_seed,
                               std::int64_t parsimony_seed,
                               const std::atomic<bool>* cancel)
    : engine_(&engine),
      patterns_(&patterns),
      bootstrap_rng_(bootstrap_seed),
      parsimony_rng_(parsimony_seed),
      cancel_(cancel) {
  RAXH_EXPECTS(engine.rates().kind() == RateKind::kCat);
}

std::vector<BootstrapReplicate> RapidBootstrap::run(int count) {
  BootstrapSnapshot snapshot;
  return run_resumable(count, snapshot);
}

std::vector<BootstrapReplicate> RapidBootstrap::run_resumable(
    int count, BootstrapSnapshot& snapshot,
    const std::function<void(const BootstrapSnapshot&)>& persist) {
  RAXH_EXPECTS(count >= 1);
  RAXH_EXPECTS(snapshot.next_replicate <= count);
  RAXH_EXPECTS(snapshot.replicate_trees.size() ==
               static_cast<std::size_t>(snapshot.next_replicate));
  RAXH_EXPECTS(snapshot.replicate_lnls.size() ==
               snapshot.replicate_trees.size());

  std::vector<BootstrapReplicate> out;
  out.reserve(static_cast<std::size_t>(count));

  Tree current(patterns_->num_taxa());
  if (snapshot.started()) {
    // Resume: restore PRNG streams and the carried tree; rehydrate finished
    // replicates from the snapshot.
    bootstrap_rng_ = Lcg(snapshot.bootstrap_rng_state);
    parsimony_rng_ = Lcg(snapshot.parsimony_rng_state);
    if (snapshot.has_tree()) current = Tree::import_raw(snapshot.current_tree);
    // Restore the engine's exact CAT state so the continuation is
    // bit-identical to an uninterrupted run.
    if (!snapshot.cat_rates.empty())
      engine_->set_cat_assignment(snapshot.cat_rates,
                                  snapshot.cat_categories);
    for (std::size_t i = 0; i < snapshot.replicate_trees.size(); ++i) {
      out.push_back(
          BootstrapReplicate{Tree::import_raw(snapshot.replicate_trees[i]),
                             snapshot.replicate_lnls[i]});
    }
  }

  for (int rep = snapshot.next_replicate; rep < count; ++rep) {
    // Cancellation unwinds between replicates; the snapshot already holds
    // every finished replicate, so a later resume is bit-identical.
    throw_if_cancelled(cancel_);
    const std::vector<int> weights =
        bootstrap_weights(*patterns_, bootstrap_rng_);
    engine_->set_weights(weights);

    if (rep % kRestartInterval == 0) {
      // Fresh randomized stepwise-addition start under the replicate's
      // weights, then a CAT rate re-fit for the new weighting.
      current = randomized_stepwise_addition(*patterns_, weights,
                                             parsimony_rng_);
      engine_->optimize_cat_rates(current);
    }

    SearchSettings settings = bootstrap_settings();
    settings.cancel = cancel_;
    SprSearch search(*engine_, settings);
    const double lnl = search.run(current);
    out.push_back(BootstrapReplicate{current, lnl});

    snapshot.next_replicate = rep + 1;
    snapshot.bootstrap_rng_state = bootstrap_rng_.state();
    snapshot.parsimony_rng_state = parsimony_rng_.state();
    snapshot.current_tree = current.export_raw();
    snapshot.cat_rates.assign(engine_->rates().rates().begin(),
                              engine_->rates().rates().end());
    snapshot.cat_categories.assign(
        engine_->rates().pattern_categories().begin(),
        engine_->rates().pattern_categories().end());
    snapshot.replicate_trees.push_back(current.export_raw());
    snapshot.replicate_lnls.push_back(lnl);
    if (persist) persist(snapshot);
  }

  engine_->reset_weights();
  return out;
}

std::vector<BootstrapReplicate> standard_bootstrap(
    LikelihoodEngine& engine, const PatternAlignment& patterns, int count,
    std::int64_t bootstrap_seed, std::int64_t parsimony_seed,
    const SearchSettings& settings) {
  RAXH_EXPECTS(count >= 1);
  RAXH_EXPECTS(engine.rates().kind() == RateKind::kCat);
  Lcg bootstrap_rng(bootstrap_seed);
  Lcg parsimony_rng(parsimony_seed);

  std::vector<BootstrapReplicate> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int rep = 0; rep < count; ++rep) {
    const std::vector<int> weights = bootstrap_weights(patterns, bootstrap_rng);
    engine.set_weights(weights);
    Tree tree =
        randomized_stepwise_addition(patterns, weights, parsimony_rng);
    engine.optimize_cat_rates(tree);
    SprSearch search(engine, settings);
    const double lnl = search.run(tree);
    out.push_back(BootstrapReplicate{std::move(tree), lnl});
  }
  engine.reset_weights();
  return out;
}

}  // namespace raxh
