#include "search/nj.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace raxh {

namespace {

constexpr double kSaturatedDistance = 5.0;

double jc_correct(double p_distance) {
  // JC69: d = -3/4 ln(1 - 4p/3); saturates as p -> 3/4.
  if (p_distance >= 0.70) return kSaturatedDistance;
  return std::min(kSaturatedDistance,
                  -0.75 * std::log(1.0 - 4.0 * p_distance / 3.0));
}

}  // namespace

std::vector<double> jc_distance_matrix(const PatternAlignment& patterns) {
  const std::size_t n = patterns.num_taxa();
  const std::size_t npat = patterns.num_patterns();
  const auto weights = patterns.weights();
  std::vector<double> d(n * n, 0.0);

  for (std::size_t a = 0; a < n; ++a) {
    const auto row_a = patterns.row(a);
    for (std::size_t b = a + 1; b < n; ++b) {
      const auto row_b = patterns.row(b);
      long valid = 0, diff = 0;
      for (std::size_t p = 0; p < npat; ++p) {
        const DnaState sa = row_a[p];
        const DnaState sb = row_b[p];
        if (sa == kStateGap || sb == kStateGap) continue;
        valid += weights[p];
        // Incompatible state sets = observed difference.
        if ((sa & sb) == 0) diff += weights[p];
      }
      const double dist =
          valid == 0 ? kSaturatedDistance
                     : jc_correct(static_cast<double>(diff) /
                                  static_cast<double>(valid));
      d[a * n + b] = dist;
      d[b * n + a] = dist;
    }
  }
  return d;
}

Tree neighbor_joining(const std::vector<double>& distances,
                      std::size_t num_taxa) {
  RAXH_EXPECTS(num_taxa >= 3);
  RAXH_EXPECTS(distances.size() == num_taxa * num_taxa);
  const std::size_t n = num_taxa;

  // Active clusters: their pending Newick fragment and row in the (shrinking
  // logical) distance matrix, which we keep full-size and mask.
  struct Cluster {
    std::string newick;  // subtree without the trailing ":length"
    std::size_t row;
  };
  std::vector<Cluster> active;
  for (std::size_t t = 0; t < n; ++t) {
    active.push_back({"@" + std::to_string(t), t});
  }

  // Working distance matrix grows by one row per join.
  const std::size_t capacity = 2 * n;
  std::vector<double> d(capacity * capacity, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d[i * capacity + j] = distances[i * n + j];
  std::size_t next_row = n;

  auto dist = [&](std::size_t i, std::size_t j) -> double& {
    return d[i * capacity + j];
  };

  while (active.size() > 3) {
    const std::size_t m = active.size();
    // Row sums over active clusters.
    std::vector<double> r(m, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j)
        if (i != j) r[i] += dist(active[i].row, active[j].row);

    // Minimize Q(i,j) = (m-2) d(i,j) - r_i - r_j.
    double best_q = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 1;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        const double q = (static_cast<double>(m) - 2.0) *
                             dist(active[i].row, active[j].row) -
                         r[i] - r[j];
        if (q < best_q) {
          best_q = q;
          bi = i;
          bj = j;
        }
      }
    }

    const double dij = dist(active[bi].row, active[bj].row);
    double li = 0.5 * dij + (r[bi] - r[bj]) /
                                (2.0 * (static_cast<double>(m) - 2.0));
    double lj = dij - li;
    li = std::clamp(li, kMinBranchLength, kMaxBranchLength);
    lj = std::clamp(lj, kMinBranchLength, kMaxBranchLength);

    // New cluster's distances: d(u,k) = (d(i,k) + d(j,k) - d(i,j)) / 2.
    RAXH_ASSERT(next_row < capacity);
    for (std::size_t k = 0; k < m; ++k) {
      if (k == bi || k == bj) continue;
      const double duk = 0.5 * (dist(active[bi].row, active[k].row) +
                                dist(active[bj].row, active[k].row) - dij);
      dist(next_row, active[k].row) = duk;
      dist(active[k].row, next_row) = duk;
    }

    std::ostringstream merged;
    merged.precision(10);
    merged << '(' << active[bi].newick << ':' << li << ','
           << active[bj].newick << ':' << lj << ')';
    // Replace cluster bi, erase bj.
    active[bi] = Cluster{merged.str(), next_row};
    active.erase(active.begin() + static_cast<long>(bj));
    ++next_row;
  }

  // Final trifurcation: branch lengths from the three-point formulas.
  const double dab = dist(active[0].row, active[1].row);
  const double dac = dist(active[0].row, active[2].row);
  const double dbc = dist(active[1].row, active[2].row);
  const double la = std::clamp(0.5 * (dab + dac - dbc), kMinBranchLength,
                               kMaxBranchLength);
  const double lb = std::clamp(0.5 * (dab + dbc - dac), kMinBranchLength,
                               kMaxBranchLength);
  const double lc = std::clamp(0.5 * (dac + dbc - dab), kMinBranchLength,
                               kMaxBranchLength);
  std::ostringstream full;
  full.precision(10);
  full << '(' << active[0].newick << ':' << la << ',' << active[1].newick
       << ':' << lb << ',' << active[2].newick << ':' << lc << ");";

  // Tip placeholders "@k" map to synthetic names for the parser.
  std::vector<std::string> placeholder_names(n);
  for (std::size_t t = 0; t < n; ++t)
    placeholder_names[t] = "@" + std::to_string(t);
  return Tree::parse_newick(full.str(), placeholder_names);
}

Tree neighbor_joining_tree(const PatternAlignment& patterns) {
  return neighbor_joining(jc_distance_matrix(patterns), patterns.num_taxa());
}

}  // namespace raxh
