#include "search/parsimony.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace raxh {

namespace {

// Lazily memoized Fitch state sets per directed record ("the subtree on this
// record's side of its edge"). One instance lives per stepwise-addition step.
class FitchSets {
 public:
  FitchSets(const Tree& tree, const PatternAlignment& patterns,
            std::span<const int> weights)
      : tree_(tree),
        patterns_(patterns),
        weights_(weights),
        npat_(patterns.num_patterns()),
        memo_(tree.num_taxa() + 3 * (tree.num_taxa() - 2)),
        ready_(memo_.size(), false) {}

  // State set of the subtree behind `rec`; score increments accumulate.
  std::span<const DnaState> get(int rec) {
    if (tree_.is_tip_record(rec))
      return patterns_.row(static_cast<std::size_t>(rec));
    const auto i = static_cast<std::size_t>(rec);
    if (ready_[i]) return memo_[i];
    const auto [c1, c2] = tree_.children(rec);
    const auto a = get(c1);
    const auto b = get(c2);
    auto& out = memo_[i];
    out.resize(npat_);
    for (std::size_t p = 0; p < npat_; ++p) {
      const DnaState inter = a[p] & b[p];
      if (inter != 0) {
        out[p] = inter;
      } else {
        out[p] = a[p] | b[p];
        score_ += weights_[p];
      }
    }
    ready_[i] = true;
    return out;
  }

  [[nodiscard]] long score() const { return score_; }

 private:
  const Tree& tree_;
  const PatternAlignment& patterns_;
  std::span<const int> weights_;
  std::size_t npat_;
  std::vector<std::vector<DnaState>> memo_;
  std::vector<bool> ready_;
  long score_ = 0;
};

void lcg_shuffle(std::vector<int>& values, Lcg& rng) {
  for (std::size_t i = values.size(); i > 1; --i)
    std::swap(values[i - 1],
              values[static_cast<std::size_t>(rng.next_below(
                  static_cast<std::int32_t>(i)))]);
}

}  // namespace

long parsimony_score(const Tree& tree, const PatternAlignment& patterns,
                     std::span<const int> weights) {
  RAXH_EXPECTS(tree.is_complete());
  RAXH_EXPECTS(weights.size() == patterns.num_patterns());
  FitchSets sets(tree, patterns, weights);
  // Root at tip 0's edge: combine the tip with the rest-of-tree set.
  const auto rest = sets.get(tree.back(0));
  const auto tip = patterns.row(0);
  long score = sets.score();
  for (std::size_t p = 0; p < patterns.num_patterns(); ++p)
    if ((tip[p] & rest[p]) == 0) score += weights[p];
  return score;
}

Tree randomized_stepwise_addition(const PatternAlignment& patterns,
                                  std::span<const int> weights, Lcg& rng) {
  const std::size_t n = patterns.num_taxa();
  RAXH_EXPECTS(n >= 3);
  RAXH_EXPECTS(weights.size() == patterns.num_patterns());
  const std::size_t npat = patterns.num_patterns();

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  lcg_shuffle(order, rng);

  Tree tree(n);
  tree.make_triplet(order[0], order[1], order[2]);

  for (std::size_t k = 3; k < n; ++k) {
    const int tip = order[k];
    const auto tip_row = patterns.row(static_cast<std::size_t>(tip));
    FitchSets sets(tree, patterns, weights);

    long best_cost = std::numeric_limits<long>::max();
    int best_edge = -1;
    for (const int e : tree.edges()) {
      const auto side_a = sets.get(e);
      const auto side_b = sets.get(tree.back(e));
      long cost = 0;
      for (std::size_t p = 0; p < npat; ++p) {
        // Fitch-combine the two edge sides (intersection first), then count a
        // change if the tip is incompatible with the combined set. Using the
        // plain union here cannot tell good placements from bad ones.
        const DnaState inter = side_a[p] & side_b[p];
        const DnaState combined =
            inter != 0 ? inter : static_cast<DnaState>(side_a[p] | side_b[p]);
        if ((tip_row[p] & combined) == 0) cost += weights[p];
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_edge = e;
      }
    }
    RAXH_ASSERT(best_edge >= 0);
    tree.insert_tip(tip, best_edge);
  }
  tree.check_invariants();
  return tree;
}

Tree random_topology(std::size_t num_taxa, Lcg& rng) {
  RAXH_EXPECTS(num_taxa >= 3);
  std::vector<int> order(num_taxa);
  std::iota(order.begin(), order.end(), 0);
  lcg_shuffle(order, rng);

  Tree tree(num_taxa);
  tree.make_triplet(order[0], order[1], order[2]);
  for (std::size_t k = 3; k < num_taxa; ++k) {
    const auto edges = tree.edges();
    const auto pick = static_cast<std::size_t>(
        rng.next_below(static_cast<std::int32_t>(edges.size())));
    tree.insert_tip(order[k], edges[pick]);
  }
  tree.check_invariants();
  return tree;
}

}  // namespace raxh
