// The rapid bootstrap algorithm (Stamatakis, Hoover & Rougemont 2008 — ref
// [12] of the paper): each replicate re-weights the patterns by resampling
// and runs a quick CAT-based SPR search. Every `kRestartInterval` replicates
// the search restarts from a fresh randomized-stepwise-addition tree;
// otherwise it continues from the previous replicate's tree, which is what
// makes the procedure "rapid".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bio/patterns.h"
#include "bio/resample.h"
#include "likelihood/engine.h"
#include "search/parsimony.h"
#include "search/spr.h"
#include "tree/tree.h"
#include "util/prng.h"

namespace raxh {

inline constexpr int kRestartInterval = 10;

struct BootstrapReplicate {
  Tree tree;
  double lnl;  // under the replicate's weights (CAT)
};

// Resumable progress of a bootstrap run: the PRNG states plus the carried
// search tree are everything needed to continue a run bit-identically
// (core/checkpoint.h persists this to disk). Finished replicates are kept as
// raw layouts, not newicks: downstream stages start searches from these
// trees, and a newick round trip changes the record layout enough to steer
// those searches onto a different (equally valid) numeric trajectory.
struct BootstrapSnapshot {
  int next_replicate = 0;
  std::int64_t bootstrap_rng_state = 0;
  std::int64_t parsimony_rng_state = 0;
  Tree::RawTopology current_tree;  // exact record layout of the carried tree
  std::vector<double> cat_rates;       // engine CAT category rates
  std::vector<int> cat_categories;     // engine per-pattern categories
  std::vector<Tree::RawTopology> replicate_trees;
  std::vector<double> replicate_lnls;

  [[nodiscard]] bool started() const { return next_replicate > 0; }
  [[nodiscard]] bool has_tree() const { return current_tree.num_taxa > 0; }
};

class RapidBootstrap {
 public:
  // `engine` must be CAT-based over `patterns`; seeds follow the paper's
  // reproducibility scheme (already rank-shifted by the caller). `cancel`
  // (may be null) is polled before each replicate — and inside each
  // replicate's SPR rounds — unwinding with JobCancelled; a checkpointed run
  // that was cancelled resumes bit-identically from its last persisted
  // replicate.
  RapidBootstrap(LikelihoodEngine& engine, const PatternAlignment& patterns,
                 std::int64_t bootstrap_seed, std::int64_t parsimony_seed,
                 const std::atomic<bool>* cancel = nullptr);

  // Run `count` replicates; restores the original weights afterwards.
  std::vector<BootstrapReplicate> run(int count);

  // Checkpointable variant: resumes from `snapshot` if it has progress and
  // keeps it current after every replicate (call `persist` to flush it, e.g.
  // via save_bootstrap_checkpoint). Returns all `count` replicates,
  // including those restored from the snapshot.
  std::vector<BootstrapReplicate> run_resumable(
      int count, BootstrapSnapshot& snapshot,
      const std::function<void(const BootstrapSnapshot&)>& persist = {});

 private:
  LikelihoodEngine* engine_;
  const PatternAlignment* patterns_;
  Lcg bootstrap_rng_;
  Lcg parsimony_rng_;
  const std::atomic<bool>* cancel_ = nullptr;
};

// Standard (non-rapid) bootstrapping, RAxML's "-b": every replicate starts
// from a fresh randomized stepwise-addition tree and runs a full search at
// `settings` intensity. Slower but replicates are fully independent.
std::vector<BootstrapReplicate> standard_bootstrap(
    LikelihoodEngine& engine, const PatternAlignment& patterns, int count,
    std::int64_t bootstrap_seed, std::int64_t parsimony_seed,
    const SearchSettings& settings = fast_settings());

}  // namespace raxh
