#include "search/spr.h"

#include <algorithm>

#include "util/check.h"

namespace raxh {

SearchSettings bootstrap_settings() {
  SearchSettings s;
  s.spr_radius = 5;
  s.max_rounds = 1;
  s.optimize_model = false;
  s.smooth_passes = 1;
  return s;
}

SearchSettings fast_settings() {
  SearchSettings s;
  s.spr_radius = 5;
  s.max_rounds = 2;
  s.optimize_model = false;
  s.smooth_passes = 1;
  return s;
}

SearchSettings slow_settings() {
  SearchSettings s;
  s.spr_radius = 10;
  s.max_rounds = 4;
  s.optimize_model = true;
  s.smooth_passes = 1;
  return s;
}

SearchSettings thorough_settings() {
  SearchSettings s;
  s.spr_radius = 15;
  s.max_rounds = 8;
  s.optimize_model = true;
  s.epsilon = 0.01;
  s.smooth_passes = 2;
  return s;
}

int determine_spr_radius(Evaluator& evaluator, const Tree& tree,
                         int min_radius, int max_radius, int step) {
  RAXH_EXPECTS(min_radius >= 1);
  RAXH_EXPECTS(max_radius >= min_radius);
  RAXH_EXPECTS(step >= 1);

  Tree baseline = tree;
  const double base_lnl = evaluator.smooth_branches(baseline, 1);

  int best_radius = min_radius;
  double best_gain = -1.0;
  std::vector<std::pair<int, double>> gains;
  for (int radius = min_radius; radius <= max_radius; radius += step) {
    Tree scratch = baseline;
    SearchSettings probe;
    probe.spr_radius = radius;
    probe.max_rounds = 1;
    probe.optimize_model = false;
    SprSearch sweep(evaluator, probe);
    const double gain = sweep.run(scratch) - base_lnl;
    gains.emplace_back(radius, gain);
    if (gain > best_gain) {
      best_gain = gain;
      best_radius = radius;
    }
  }
  // Smallest radius achieving >= 95% of the best gain.
  for (const auto& [radius, gain] : gains) {
    if (best_gain <= 0.0) return min_radius;
    if (gain >= 0.95 * best_gain) return radius;
  }
  return best_radius;
}

std::vector<int> SprSearch::candidate_edges(const Tree& tree,
                                            const Tree::SprMove& move) const {
  // Breadth-first over edges starting at the (merged) q-r edge; distance 1 =
  // the edges adjacent to the original pruning position.
  std::vector<int> out;
  std::vector<std::pair<int, int>> frontier;  // (record, depth)
  std::vector<bool> seen_edge(tree.num_taxa() + 3 * (tree.num_taxa() - 2),
                              false);

  auto canonical = [&](int rec) { return std::min(rec, tree.back(rec)); };
  // The merged edge itself is the no-op regraft; mark seen, don't emit.
  seen_edge[static_cast<std::size_t>(canonical(move.q))] = true;

  auto expand = [&](int rec, int depth) {
    // Edges adjacent to `rec`'s endpoint node.
    if (tree.is_tip_record(rec)) return;
    for (int adj : {tree.next(rec), tree.next(tree.next(rec))})
      frontier.emplace_back(adj, depth);
  };
  expand(move.q, 1);
  expand(move.r, 1);

  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const auto [rec, depth] = frontier[i];
    const int canon = canonical(rec);
    if (seen_edge[static_cast<std::size_t>(canon)]) continue;
    seen_edge[static_cast<std::size_t>(canon)] = true;
    out.push_back(rec);
    if (depth < settings_.spr_radius) expand(tree.back(rec), depth + 1);
  }
  return out;
}

double SprSearch::sweep(Tree& tree, double current_lnl, bool& improved) {
  improved = false;
  // Prunable subtrees: one per directed internal record (the subtree behind
  // it). Snapshot the list; the loop mutates the tree but every iteration
  // restores it or applies an accepted (still valid) topology.
  const std::vector<int> prunable = tree.internal_records();

  for (const int p : prunable) {
    // Skip degenerate prunes: if back(p) is everything but two leaves the
    // regraft set is empty anyway; prune() handles all valid cases.
    Tree::SprMove move = tree.prune(p);
    const std::vector<int> candidates = candidate_edges(tree, move);
    if (candidates.empty()) {
      tree.undo(move);
      continue;
    }

    int best_edge = -1;
    double best_lnl = current_lnl + settings_.accept_epsilon;
    for (const int s : candidates) {
      tree.regraft(move, s);
      ++stats_.moves_tried;
      // Lazy evaluation: assess the insertion with one Newton pass on the
      // subtree branch only (RAxML's lazy SPR analogue), full smoothing
      // happens only for the accepted move.
      evaluator_->optimize_branch(tree, move.p);
      const double lnl = evaluator_->evaluate(tree, move.p);
      if (lnl > best_lnl) {
        best_lnl = lnl;
        best_edge = s;
      }
      tree.undo_regraft(move);
    }

    if (best_edge >= 0) {
      tree.regraft(move, best_edge);
      // Re-optimize the three branches created by the insertion.
      evaluator_->optimize_branch(tree, move.p);
      evaluator_->optimize_branch(tree, tree.next(move.p));
      evaluator_->optimize_branch(tree, tree.next(tree.next(move.p)));
      current_lnl = evaluator_->evaluate(tree, move.p);
      ++stats_.moves_accepted;
      improved = true;
    } else {
      tree.undo(move);
    }
  }
  return current_lnl;
}

double SprSearch::run(Tree& tree) {
  RAXH_EXPECTS(tree.is_complete());
  double lnl = evaluator_->smooth_branches(tree, settings_.smooth_passes);
  stats_.initial_lnl = lnl;

  for (int round = 0; round < settings_.max_rounds; ++round) {
    throw_if_cancelled(settings_.cancel);
    ++stats_.rounds;
    bool improved = false;
    double next = sweep(tree, lnl, improved);
    next = evaluator_->smooth_branches(tree, settings_.smooth_passes);
    if (settings_.optimize_model) {
      next = evaluator_->optimize_model(tree);
    }
    const bool converged = next - lnl < settings_.epsilon;
    lnl = next;
    if (!improved || converged) break;
  }
  stats_.final_lnl = lnl;
  return lnl;
}

}  // namespace raxh
