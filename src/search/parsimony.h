// Fitch parsimony over 4-bit DNA state sets, and randomized stepwise-addition
// starting trees — RAxML's mechanism for generating the distinct starting
// points that the coarse-grained MPI level parallelizes over.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/patterns.h"
#include "tree/tree.h"
#include "util/prng.h"

namespace raxh {

// Weighted Fitch parsimony score of a complete tree (number of state changes,
// counting each pattern `weights[p]` times). Pass the engine's active weight
// vector to score under a bootstrap replicate.
long parsimony_score(const Tree& tree, const PatternAlignment& patterns,
                     std::span<const int> weights);

// Build a starting tree by inserting taxa in random order, each at the
// position of minimum parsimony-cost increase (randomized stepwise
// addition). Deterministic in `rng`'s state; distinct seeds give the distinct
// starting trees the coarse-grained searches diversify over.
Tree randomized_stepwise_addition(const PatternAlignment& patterns,
                                  std::span<const int> weights, Lcg& rng);

// Completely random topology (taxa joined in random order at random edges);
// used by tests as a deliberately poor starting point.
Tree random_topology(std::size_t num_taxa, Lcg& rng);

}  // namespace raxh
