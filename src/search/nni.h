// Nearest-neighbor interchange (NNI): the cheapest topology move — swap two
// subtrees across an internal edge. Complements SPR as a fast local
// refinement pass (RAxML uses NNI-like moves in its fastest search modes);
// also useful in tests as an independent rearrangement primitive.
#pragma once

#include <memory>

#include "likelihood/engine.h"
#include "likelihood/evaluator.h"
#include "tree/tree.h"

namespace raxh {

// Apply one of the two NNIs across the internal edge (edge_rec,
// back(edge_rec)); both endpoints must be internal. `variant` is 1 or 2.
// Applying the same variant again restores the original topology (the swap
// is an involution); branch lengths travel with their subtrees.
void apply_nni(Tree& tree, int edge_rec, int variant);

// True if the edge joins two internal nodes (i.e. supports NNIs).
bool is_internal_edge(const Tree& tree, int edge_rec);

struct NniStats {
  int rounds = 0;
  long moves_tried = 0;
  long moves_accepted = 0;
};

// Hill-climb with NNI sweeps until no move improves the likelihood by more
// than `epsilon` (or `max_rounds` is hit). Returns the final lnL.
class NniSearch {
 public:
  explicit NniSearch(Evaluator& evaluator, double epsilon = 1e-4,
                     int max_rounds = 10)
      : evaluator_(&evaluator), epsilon_(epsilon), max_rounds_(max_rounds) {}

  explicit NniSearch(LikelihoodEngine& engine, double epsilon = 1e-4,
                     int max_rounds = 10)
      : owned_(std::make_unique<EngineEvaluator>(engine)),
        evaluator_(owned_.get()),
        epsilon_(epsilon),
        max_rounds_(max_rounds) {}

  double run(Tree& tree);

  [[nodiscard]] const NniStats& stats() const { return stats_; }

 private:
  std::unique_ptr<EngineEvaluator> owned_;
  Evaluator* evaluator_;
  double epsilon_;
  int max_rounds_;
  NniStats stats_;
};

}  // namespace raxh
