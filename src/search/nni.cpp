#include "search/nni.h"

#include "util/check.h"

namespace raxh {

bool is_internal_edge(const Tree& tree, int edge_rec) {
  return !tree.is_tip_record(edge_rec) &&
         !tree.is_tip_record(tree.back(edge_rec));
}

void apply_nni(Tree& tree, int edge_rec, int variant) {
  RAXH_EXPECTS(variant == 1 || variant == 2);
  RAXH_EXPECTS(is_internal_edge(tree, edge_rec));
  const int p = edge_rec;
  const int q = tree.back(p);

  // Subtrees hanging off the edge: B behind next(p), and C or D behind q's
  // ring mates. Swap B with C (variant 1) or with D (variant 2); branch
  // lengths travel with the moved subtrees.
  const int pn = tree.next(p);
  const int qm = variant == 1 ? tree.next(q) : tree.next(tree.next(q));

  const int subtree_b = tree.back(pn);
  const int subtree_c = tree.back(qm);
  const double len_b = tree.length(pn);
  const double len_c = tree.length(qm);

  // Re-hook: pn <-> C, qm <-> B.
  // (hook() is private to Tree; emulate with prune/regraft-free splicing via
  // the public SPR machinery would be heavier, so Tree grants NNI support
  // through swap_subtrees below.)
  tree.swap_subtrees(pn, qm, len_c, len_b);
  (void)subtree_b;
  (void)subtree_c;
}

double NniSearch::run(Tree& tree) {
  RAXH_EXPECTS(tree.is_complete());
  double lnl = evaluator_->evaluate(tree);

  for (int round = 0; round < max_rounds_; ++round) {
    ++stats_.rounds;
    bool improved = false;
    for (const int e : tree.edges()) {
      if (!is_internal_edge(tree, e)) continue;
      for (int variant : {1, 2}) {
        apply_nni(tree, e, variant);
        ++stats_.moves_tried;
        evaluator_->optimize_branch(tree, e);
        const double candidate = evaluator_->evaluate(tree, e);
        if (candidate > lnl + epsilon_) {
          lnl = candidate;
          ++stats_.moves_accepted;
          improved = true;
        } else {
          apply_nni(tree, e, variant);  // involution: undo
          // The central branch was re-optimized for the candidate; re-fit it
          // for the restored topology so the running lnL stays truthful.
          evaluator_->optimize_branch(tree, e);
        }
      }
    }
    lnl = evaluator_->smooth_branches(tree, 1);
    if (!improved) break;
  }
  return lnl;
}

}  // namespace raxh
