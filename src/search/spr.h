// Lazy-SPR hill climbing, the tree search at the heart of every stage of the
// comprehensive analysis. Three intensity presets mirror the paper's stages:
// rapid-bootstrap/fast searches use a small rearrangement radius and few
// rounds; slow and thorough searches widen the radius, add model
// re-optimization, and iterate to convergence.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "likelihood/engine.h"
#include "likelihood/evaluator.h"
#include "tree/tree.h"
#include "util/cancel.h"

namespace raxh {

struct SearchSettings {
  int spr_radius = 5;         // max edge distance from the pruning point
  int max_rounds = 2;         // full SPR sweeps
  bool optimize_model = false;  // re-optimize model params between rounds
  double epsilon = 0.1;       // minimum lnL gain to keep iterating
  double accept_epsilon = 1e-5;  // minimum gain to accept a single move
  int smooth_passes = 1;      // branch-smoothing passes between rounds
  // Cooperative cancellation (serving layer / JobContext): checked once per
  // SPR round so a long thorough search unwinds with JobCancelled within one
  // sweep of a CANCEL, not only at the next stage boundary. Null = never.
  const std::atomic<bool>* cancel = nullptr;
};

// Presets for the four stages of the comprehensive analysis (paper §2):
// bootstrap and fast searches are quick/local; slow and thorough searches are
// progressively more exhaustive.
SearchSettings bootstrap_settings();
SearchSettings fast_settings();
SearchSettings slow_settings();
SearchSettings thorough_settings();

// RAxML-style automatic rearrangement-radius determination: probe one SPR
// sweep per radius (min, min+step, ..., max) on scratch copies of `tree` and
// return the smallest radius whose lnL gain is within 5% of the best gain —
// larger radii only cost time after that. The input tree is not modified.
int determine_spr_radius(Evaluator& evaluator, const Tree& tree,
                         int min_radius = 5, int max_radius = 25,
                         int step = 5);

// Statistics of one search run (used by tests and the calibration bench).
struct SearchStats {
  int rounds = 0;
  long moves_tried = 0;
  long moves_accepted = 0;
  double initial_lnl = 0.0;
  double final_lnl = 0.0;
};

class SprSearch {
 public:
  // Search against any Evaluator (single engine or partitioned model).
  SprSearch(Evaluator& evaluator, SearchSettings settings)
      : evaluator_(&evaluator), settings_(settings) {}

  // Convenience: wrap a bare LikelihoodEngine.
  SprSearch(LikelihoodEngine& engine, SearchSettings settings)
      : owned_(std::make_unique<EngineEvaluator>(engine)),
        evaluator_(owned_.get()),
        settings_(settings) {}

  // Hill-climb `tree` in place; returns the final log-likelihood.
  double run(Tree& tree);

  [[nodiscard]] const SearchStats& stats() const { return stats_; }

 private:
  // One full sweep over all prunable subtrees; returns the lnL after the
  // sweep and sets `improved` if any move was accepted.
  double sweep(Tree& tree, double current_lnl, bool& improved);

  // Regraft candidate edges within settings_.spr_radius of the pruning
  // point, given the tree with the subtree already pruned.
  [[nodiscard]] std::vector<int> candidate_edges(const Tree& tree,
                                                 const Tree::SprMove& move) const;

  std::unique_ptr<EngineEvaluator> owned_;
  Evaluator* evaluator_;
  SearchSettings settings_;
  SearchStats stats_;
};

}  // namespace raxh
