// Neighbor joining (Saitou & Nei 1987) over pairwise Jukes-Cantor distances:
// an alternative deterministic starting tree (RAxML historically offered
// distance-based starters next to randomized stepwise addition). Useful when
// a reproducible, seed-free starting topology is wanted, and as an
// independent cross-check of the search code in tests.
#pragma once

#include <vector>

#include "bio/patterns.h"
#include "tree/tree.h"

namespace raxh {

// Pairwise Jukes-Cantor distance matrix (row-major, taxa x taxa) from the
// weighted patterns. Sites where either taxon is fully ambiguous are
// skipped; saturated pairs (p-distance >= 0.74) are clamped to a large
// finite distance.
std::vector<double> jc_distance_matrix(const PatternAlignment& patterns);

// Neighbor-joining tree from a distance matrix. Negative branch-length
// estimates are clamped to the tree's minimum branch length.
Tree neighbor_joining(const std::vector<double>& distances,
                      std::size_t num_taxa);

// Convenience: NJ starting tree straight from an alignment.
Tree neighbor_joining_tree(const PatternAlignment& patterns);

}  // namespace raxh
