#include "tree/tree.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace raxh {

Tree::Tree(std::size_t num_taxa) : num_taxa_(num_taxa) {
  RAXH_EXPECTS(num_taxa >= 3);
  const std::size_t internals = num_taxa - 2;
  records_.resize(num_taxa + 3 * internals);
  internal_used_.assign(internals, false);
  // Tips: next == self (degenerate ring of one).
  for (std::size_t t = 0; t < num_taxa; ++t)
    records_[t].next = static_cast<int>(t);
  // Preset internal ring cycles.
  for (std::size_t j = 0; j < internals; ++j) {
    const int base = static_cast<int>(num_taxa + 3 * j);
    records_[idx(base)].next = base + 1;
    records_[idx(base + 1)].next = base + 2;
    records_[idx(base + 2)].next = base;
  }
}

int Tree::node_id(int rec) const {
  RAXH_EXPECTS(rec >= 0 && rec < static_cast<int>(records_.size()));
  if (is_tip_record(rec)) return rec;
  const int n = static_cast<int>(num_taxa_);
  return n + (rec - n) / 3;
}

int Tree::clv_slot(int rec) const {
  RAXH_EXPECTS(!is_tip_record(rec));
  const int n = static_cast<int>(num_taxa_);
  return (rec - n) / 3;
}

void Tree::set_length(int rec, double length) {
  RAXH_EXPECTS(length >= 0.0);
  auto& r = records_[idx(rec)];
  RAXH_EXPECTS(r.back >= 0);
  r.length = length;
  records_[idx(r.back)].length = length;
}

void Tree::hook(int a, int b, double length) {
  records_[idx(a)].back = b;
  records_[idx(b)].back = a;
  records_[idx(a)].length = length;
  records_[idx(b)].length = length;
}

int Tree::allocate_internal() {
  for (std::size_t j = 0; j < internal_used_.size(); ++j) {
    if (!internal_used_[j]) {
      internal_used_[j] = true;
      return static_cast<int>(num_taxa_ + 3 * j);
    }
  }
  RAXH_EXPECTS(false && "no free internal node");
  return -1;
}

void Tree::make_triplet(int tip_a, int tip_b, int tip_c, double length) {
  RAXH_EXPECTS(inserted_tips_ == 0);
  RAXH_EXPECTS(tip_a != tip_b && tip_b != tip_c && tip_a != tip_c);
  const int ring = allocate_internal();
  hook(ring, tip_a, length);
  hook(next(ring), tip_b, length);
  hook(next(next(ring)), tip_c, length);
  inserted_tips_ = 3;
}

int Tree::insert_tip(int tip, int edge_rec, double tip_length) {
  RAXH_EXPECTS(is_tip_record(tip));
  RAXH_EXPECTS(records_[idx(tip)].back == -1);
  const int s = edge_rec;
  const int t = back(s);
  RAXH_EXPECTS(t >= 0);
  const double half = std::max(length(s) / 2.0, kMinBranchLength);
  const int ring = allocate_internal();
  hook(next(ring), s, half);
  hook(next(next(ring)), t, half);
  hook(ring, tip, tip_length);
  ++inserted_tips_;
  return ring;
}

std::vector<int> Tree::edges() const {
  std::vector<int> out;
  for (int rec = 0; rec < static_cast<int>(records_.size()); ++rec) {
    const int b = records_[idx(rec)].back;
    if (b > rec) out.push_back(rec);
  }
  return out;
}

std::vector<int> Tree::internal_records() const {
  std::vector<int> out;
  const int n = static_cast<int>(num_taxa_);
  for (std::size_t j = 0; j < internal_used_.size(); ++j) {
    if (!internal_used_[j]) continue;
    const int base = n + 3 * static_cast<int>(j);
    out.push_back(base);
    out.push_back(base + 1);
    out.push_back(base + 2);
  }
  return out;
}

Tree::Children Tree::children(int rec) const {
  RAXH_EXPECTS(!is_tip_record(rec));
  return Children{back(next(rec)), back(next(next(rec)))};
}

Tree::SprMove Tree::prune(int p) {
  RAXH_EXPECTS(!is_tip_record(p));
  SprMove move;
  move.p = p;
  move.q = back(next(p));
  move.r = back(next(next(p)));
  RAXH_EXPECTS(move.q >= 0 && move.r >= 0);
  move.q_len = length(next(p));
  move.r_len = length(next(next(p)));
  hook(move.q, move.r,
       std::min(move.q_len + move.r_len, kMaxBranchLength));
  // The carried ring's side records dangle until regraft; clearing their
  // back pointers keeps edges()/traversals from seeing phantom edges.
  records_[idx(next(p))].back = -1;
  records_[idx(next(next(p)))].back = -1;
  return move;
}

void Tree::regraft(SprMove& move, int s) {
  RAXH_EXPECTS(move.p >= 0);
  RAXH_EXPECTS(s != move.p);
  const int t = back(s);
  RAXH_EXPECTS(t >= 0);
  // Regrafting into the detached component would disconnect the tree.
  RAXH_EXPECTS(!in_subtree(move.p, s));
  move.s = s;
  move.t = t;
  move.s_len = length(s);
  const double half = std::max(move.s_len / 2.0, kMinBranchLength);
  hook(next(move.p), s, half);
  hook(next(next(move.p)), t, half);
}

void Tree::undo_regraft(SprMove& move) {
  RAXH_EXPECTS(move.p >= 0 && move.s >= 0);
  hook(move.s, move.t, move.s_len);
  records_[idx(next(move.p))].back = -1;
  records_[idx(next(next(move.p)))].back = -1;
  move.s = -1;
  move.t = -1;
}

void Tree::undo(const SprMove& move) {
  RAXH_EXPECTS(move.p >= 0);
  if (move.s >= 0) hook(move.s, move.t, move.s_len);
  hook(next(move.p), move.q, move.q_len);
  hook(next(next(move.p)), move.r, move.r_len);
}

void Tree::swap_subtrees(int rec_a, int rec_b, double new_len_a,
                         double new_len_b) {
  RAXH_EXPECTS(rec_a != rec_b);
  const int a_back = back(rec_a);
  const int b_back = back(rec_b);
  RAXH_EXPECTS(a_back >= 0 && b_back >= 0);
  RAXH_EXPECTS(!in_subtree(rec_a, rec_b) && !in_subtree(rec_b, rec_a));
  hook(rec_a, b_back, new_len_a);
  hook(rec_b, a_back, new_len_b);
}

bool Tree::in_subtree(int p, int rec) const {
  // Collect node ids of the subtree behind p (across the edge p - back(p)).
  std::vector<int> stack = {back(p)};
  std::vector<bool> seen(records_.size(), false);
  while (!stack.empty()) {
    const int r = stack.back();
    stack.pop_back();
    seen[idx(r)] = true;
    if (!is_tip_record(r)) {
      seen[idx(next(r))] = true;
      seen[idx(next(next(r)))] = true;
      const auto [c1, c2] = children(r);
      stack.push_back(c1);
      stack.push_back(c2);
    }
  }
  return seen[idx(rec)];
}

std::vector<int> Tree::postorder(int rec) const {
  std::vector<int> out;
  if (is_tip_record(rec)) return out;
  // Iterative DFS; push children before marking the record done.
  std::vector<std::pair<int, bool>> stack = {{rec, false}};
  while (!stack.empty()) {
    auto [r, expanded] = stack.back();
    stack.pop_back();
    if (is_tip_record(r)) continue;
    if (expanded) {
      out.push_back(r);
    } else {
      stack.emplace_back(r, true);
      const auto [c1, c2] = children(r);
      stack.emplace_back(c1, false);
      stack.emplace_back(c2, false);
    }
  }
  return out;
}

std::vector<int> Tree::full_traversal(int rec) const {
  std::vector<int> out = postorder(rec);
  const std::vector<int> other = postorder(back(rec));
  out.insert(out.end(), other.begin(), other.end());
  return out;
}

namespace {

void append_subtree(const Tree& tree, int rec,
                    const std::vector<std::string>& names, std::ostream& out) {
  const int b = tree.back(rec);
  if (tree.is_tip_record(b)) {
    out << names[static_cast<std::size_t>(tree.tip_id(b))];
  } else {
    out << '(';
    append_subtree(tree, tree.next(b), names, out);
    out << ',';
    append_subtree(tree, tree.next(tree.next(b)), names, out);
    out << ')';
  }
  out << ':' << tree.length(rec);
}

}  // namespace

std::string Tree::to_newick(const std::vector<std::string>& names) const {
  RAXH_EXPECTS(is_complete());
  RAXH_EXPECTS(names.size() == num_taxa_);
  std::ostringstream out;
  out.precision(17);  // round-trips doubles exactly (checkpoint fidelity)
  const int r = back(0);  // internal node adjacent to tip 0
  RAXH_EXPECTS(r >= 0);
  out << '(' << names[0] << ':' << length(0) << ',';
  append_subtree(*this, next(r), names, out);
  out << ',';
  append_subtree(*this, next(next(r)), names, out);
  out << ");";
  return out.str();
}

double Tree::total_length() const {
  double sum = 0.0;
  for (int e : edges()) sum += length(e);
  return sum;
}

Tree::RawTopology Tree::export_raw() const {
  RawTopology raw;
  raw.num_taxa = num_taxa_;
  raw.inserted_tips = inserted_tips_;
  raw.back.reserve(records_.size());
  raw.length.reserve(records_.size());
  for (const auto& r : records_) {
    raw.back.push_back(r.back);
    raw.length.push_back(r.length);
  }
  for (bool used : internal_used_)
    raw.internal_used.push_back(used ? 1 : 0);
  return raw;
}

Tree Tree::import_raw(const RawTopology& raw) {
  Tree tree(raw.num_taxa);
  RAXH_EXPECTS(raw.back.size() == tree.records_.size());
  RAXH_EXPECTS(raw.length.size() == tree.records_.size());
  RAXH_EXPECTS(raw.internal_used.size() == tree.internal_used_.size());
  tree.inserted_tips_ = raw.inserted_tips;
  for (std::size_t i = 0; i < raw.back.size(); ++i) {
    tree.records_[i].back = raw.back[i];
    tree.records_[i].length = raw.length[i];
  }
  for (std::size_t j = 0; j < raw.internal_used.size(); ++j)
    tree.internal_used_[j] = raw.internal_used[j] != 0;
  if (tree.is_complete()) tree.check_invariants();
  return tree;
}

void Tree::check_invariants() const {
  RAXH_ASSERT(is_complete());
  const int n = static_cast<int>(num_taxa_);
  // Ring closure and back symmetry.
  for (int rec : internal_records()) {
    RAXH_ASSERT(next(next(next(rec))) == rec);
    RAXH_ASSERT(back(rec) >= 0);
    RAXH_ASSERT(back(back(rec)) == rec);
    RAXH_ASSERT(length(rec) == length(back(rec)));
  }
  for (int t = 0; t < n; ++t) {
    RAXH_ASSERT(back(t) >= 0);
    RAXH_ASSERT(back(back(t)) == t);
  }
  // Edge count of an unrooted binary tree.
  RAXH_ASSERT(edges().size() == 2 * num_taxa_ - 3);
  // Connectivity: from tip 0, every tip and used internal ring is reachable.
  std::vector<bool> seen(records_.size(), false);
  std::vector<int> stack = {back(0)};
  seen[0] = true;
  std::size_t tips_seen = 1;
  while (!stack.empty()) {
    const int r = stack.back();
    stack.pop_back();
    if (seen[idx(r)]) continue;
    seen[idx(r)] = true;
    if (is_tip_record(r)) {
      ++tips_seen;
      continue;
    }
    seen[idx(next(r))] = true;
    seen[idx(next(next(r)))] = true;
    const auto [c1, c2] = children(r);
    if (!seen[idx(c1)]) stack.push_back(c1);
    if (!seen[idx(c2)]) stack.push_back(c2);
  }
  RAXH_ASSERT(tips_seen == num_taxa_);
}

// --- Newick parsing ---

namespace {

struct PNode {
  std::string name;
  double length = kDefaultBranchLength;
  std::vector<PNode> children;
};

class NewickParser {
 public:
  explicit NewickParser(const std::string& text) : text_(text) {}

  PNode parse() {
    skip_space();
    PNode root = parse_node();
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == ';') ++pos_;
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("newick parse error at position " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  PNode parse_node() {
    skip_space();
    PNode node;
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      for (;;) {
        node.children.push_back(parse_node());
        skip_space();
        if (pos_ >= text_.size()) fail("unterminated subtree");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ')') {
          ++pos_;
          break;
        }
        fail("expected ',' or ')'");
      }
    }
    skip_space();
    // Optional label (inner labels, e.g. support values, are ignored for
    // internal nodes).
    std::string label;
    while (pos_ < text_.size() && text_[pos_] != ':' && text_[pos_] != ',' &&
           text_[pos_] != ')' && text_[pos_] != ';' && text_[pos_] != '(' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      label += text_[pos_++];
    }
    if (node.children.empty()) {
      if (label.empty()) fail("tip without a name");
      node.name = label;
    }
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == ':') {
      ++pos_;
      std::size_t used = 0;
      try {
        node.length = std::stod(text_.substr(pos_), &used);
      } catch (const std::exception&) {
        fail("malformed branch length");
      }
      if (node.length < 0.0) node.length = kMinBranchLength;
      pos_ += used;
    }
    return node;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// Fold multifurcations into binary nodes joined by minimum-length branches.
void binarize(PNode& node) {
  for (auto& c : node.children) binarize(c);
  const std::size_t limit = 2;
  while (node.children.size() > limit + 1) {  // keep at most 3 at the root...
    // ...the caller decides what to do with 3; here reduce to <= 3.
    PNode merged;
    merged.length = kMinBranchLength;
    merged.children.push_back(std::move(node.children[node.children.size() - 2]));
    merged.children.push_back(std::move(node.children[node.children.size() - 1]));
    node.children.pop_back();
    node.children.pop_back();
    node.children.push_back(std::move(merged));
  }
}

void binarize_internal(PNode& node) {
  for (auto& c : node.children) {
    binarize_internal(c);
  }
  while (node.children.size() > 2) {
    PNode merged;
    merged.length = kMinBranchLength;
    merged.children.push_back(std::move(node.children[node.children.size() - 2]));
    merged.children.push_back(std::move(node.children[node.children.size() - 1]));
    node.children.pop_back();
    node.children.pop_back();
    node.children.push_back(std::move(merged));
  }
}

}  // namespace

Tree Tree::parse_newick(const std::string& text,
                        const std::vector<std::string>& names) {
  NewickParser parser(text);
  PNode root = parser.parse();
  if (root.children.empty())
    throw std::runtime_error("newick: single-taxon input is not a tree");

  // Binarize everything below the root; the root itself may keep 3 children.
  for (auto& c : root.children) binarize_internal(c);
  while (root.children.size() > 3) binarize(root);
  // binarize() keeps <=3 at this level; ensure that held.
  if (root.children.size() > 3)
    throw std::runtime_error("newick: could not binarize root");

  std::map<std::string, int> name_index;
  for (std::size_t i = 0; i < names.size(); ++i)
    name_index[names[i]] = static_cast<int>(i);

  // Leaf count must match the taxon set before conversion (a surplus would
  // exhaust the internal-node pool mid-build).
  auto count_leaves = [](auto&& self, const PNode& node) -> std::size_t {
    if (node.children.empty()) return 1;
    std::size_t total = 0;
    for (const auto& c : node.children) total += self(self, c);
    return total;
  };
  const std::size_t leaves = count_leaves(count_leaves, root);
  if (leaves != names.size())
    throw std::runtime_error("newick: tree has " + std::to_string(leaves) +
                             " leaves but the taxon set has " +
                             std::to_string(names.size()));

  Tree tree(names.size());

  // Recursive conversion: returns the record facing the parent.
  std::vector<bool> tip_used(names.size(), false);
  auto convert = [&](auto&& self, const PNode& node) -> int {
    if (node.children.empty()) {
      auto it = name_index.find(node.name);
      if (it == name_index.end())
        throw std::runtime_error("newick: unknown taxon '" + node.name + "'");
      if (tip_used[static_cast<std::size_t>(it->second)])
        throw std::runtime_error("newick: duplicate taxon '" + node.name + "'");
      tip_used[static_cast<std::size_t>(it->second)] = true;
      ++tree.inserted_tips_;
      return it->second;
    }
    RAXH_ASSERT(node.children.size() == 2);
    const int ring = tree.allocate_internal();
    const int c1 = self(self, node.children[0]);
    const int c2 = self(self, node.children[1]);
    tree.hook(tree.next(ring), c1, node.children[0].length);
    tree.hook(tree.next(tree.next(ring)), c2, node.children[1].length);
    return ring;
  };

  if (root.children.size() == 3) {
    const int ring = tree.allocate_internal();
    const int c1 = convert(convert, root.children[0]);
    const int c2 = convert(convert, root.children[1]);
    const int c3 = convert(convert, root.children[2]);
    tree.hook(ring, c1, root.children[0].length);
    tree.hook(tree.next(ring), c2, root.children[1].length);
    tree.hook(tree.next(tree.next(ring)), c3, root.children[2].length);
  } else if (root.children.size() == 2) {
    // Rooted input: merge the two root branches into one edge.
    const int c1 = convert(convert, root.children[0]);
    const int c2 = convert(convert, root.children[1]);
    tree.hook(c1, c2, root.children[0].length + root.children[1].length);
  } else {
    throw std::runtime_error("newick: root must have 2 or 3 children");
  }

  if (!tree.is_complete())
    throw std::runtime_error("newick: tree does not cover all " +
                             std::to_string(names.size()) + " taxa");
  tree.check_invariants();
  return tree;
}

}  // namespace raxh
