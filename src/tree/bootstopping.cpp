#include "tree/bootstopping.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "util/check.h"
#include "util/prng.h"

namespace raxh {

namespace {

// Pearson correlation of two count vectors laid out over the union key set.
double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  RAXH_EXPECTS(a.size() == b.size());
  const auto n = static_cast<double>(a.size());
  if (a.size() < 2) return 1.0;
  const double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  const double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return va == vb ? 1.0 : 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace

BootstopResult frequency_criterion(const std::vector<Tree>& replicates,
                                   const BootstopOptions& options) {
  BootstopResult result;
  if (replicates.size() < 2) return result;

  // Precompute each replicate's bipartition set once.
  std::vector<std::vector<Bipartition>> split_sets;
  split_sets.reserve(replicates.size());
  for (const auto& tree : replicates)
    split_sets.push_back(tree_bipartitions(tree));

  // Union key set with dense indices.
  std::unordered_map<Bipartition, std::size_t, Bipartition::Hash> key_index;
  for (const auto& set : split_sets)
    for (const auto& bip : set) key_index.try_emplace(bip, key_index.size());

  Xoshiro256 rng(options.seed);
  std::vector<std::size_t> order(replicates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  int passed = 0;
  double correlation_sum = 0.0;
  for (int perm = 0; perm < options.permutations; ++perm) {
    std::shuffle(order.begin(), order.end(), rng);
    const std::size_t half = replicates.size() / 2;
    std::vector<double> freq_a(key_index.size(), 0.0);
    std::vector<double> freq_b(key_index.size(), 0.0);
    for (std::size_t i = 0; i < 2 * half; ++i) {
      auto& freq = i < half ? freq_a : freq_b;
      for (const auto& bip : split_sets[order[i]]) freq[key_index[bip]] += 1.0;
    }
    const double corr = pearson(freq_a, freq_b);
    correlation_sum += corr;
    if (corr >= options.correlation_cutoff) ++passed;
  }

  result.mean_correlation = correlation_sum / options.permutations;
  result.pass_fraction =
      static_cast<double>(passed) / options.permutations;
  result.converged = result.pass_fraction >= options.pass_fraction;
  return result;
}

WcResult weighted_rf_criterion(const std::vector<Tree>& replicates,
                               const WcOptions& options) {
  WcResult result;
  if (replicates.size() < 2) return result;
  const std::size_t n = replicates.front().num_taxa();
  RAXH_EXPECTS(n > 3);

  std::vector<std::vector<Bipartition>> split_sets;
  split_sets.reserve(replicates.size());
  for (const auto& tree : replicates)
    split_sets.push_back(tree_bipartitions(tree));

  std::unordered_map<Bipartition, std::size_t, Bipartition::Hash> key_index;
  for (const auto& set : split_sets)
    for (const auto& bip : set) key_index.try_emplace(bip, key_index.size());

  Xoshiro256 rng(options.seed);
  std::vector<std::size_t> order(replicates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  int passed = 0;
  double distance_sum = 0.0;
  for (int perm = 0; perm < options.permutations; ++perm) {
    std::shuffle(order.begin(), order.end(), rng);
    const std::size_t half = replicates.size() / 2;
    std::vector<double> freq_a(key_index.size(), 0.0);
    std::vector<double> freq_b(key_index.size(), 0.0);
    for (std::size_t i = 0; i < 2 * half; ++i) {
      auto& freq = i < half ? freq_a : freq_b;
      for (const auto& bip : split_sets[order[i]])
        freq[key_index[bip]] += 1.0 / static_cast<double>(half);
    }
    // Weighted RF between the halves' frequency spectra, normalized by the
    // maximum possible (every split fully supported on one side only).
    double wrf = 0.0;
    for (std::size_t k = 0; k < key_index.size(); ++k)
      wrf += std::fabs(freq_a[k] - freq_b[k]);
    wrf /= 2.0 * static_cast<double>(n - 3);
    distance_sum += wrf;
    if (wrf <= options.distance_cutoff) ++passed;
  }

  result.mean_distance = distance_sum / options.permutations;
  result.pass_fraction = static_cast<double>(passed) / options.permutations;
  result.converged = result.pass_fraction >= options.pass_fraction;
  return result;
}

}  // namespace raxh
