// Consensus trees and bootstrap-support annotation — what the 100+ bootstrap
// replicates of a comprehensive analysis are ultimately for.
#pragma once

#include <string>
#include <vector>

#include "tree/bipartition.h"
#include "tree/tree.h"

namespace raxh {

// Majority-rule consensus of the trees accumulated in `table`: keeps splits
// occurring in more than `threshold` of trees (0.5 = MR). Returns a Newick
// string (the consensus is generally multifurcating, so it is not a Tree).
// Internal nodes are labelled with integer support percentages.
std::string majority_rule_consensus(const BipartitionTable& table,
                                    const std::vector<std::string>& names,
                                    double threshold = 0.5);

// Extended majority-rule consensus (RAxML's "-J MRE"): start from the
// majority splits, then greedily add the most frequent remaining splits that
// are compatible with everything accepted so far, until the tree is fully
// resolved or no compatible split remains.
std::string extended_majority_consensus(const BipartitionTable& table,
                                        const std::vector<std::string>& names);

// True if the two splits can coexist in one tree (one side of a contains or
// is disjoint from one side of b, in canonical form).
bool compatible(const Bipartition& a, const Bipartition& b);

// The best ML tree annotated with bootstrap support values from `table`
// (RAxML's "-f a" output: BS support drawn on the ML tree). Internal nodes
// carry integer support percentages.
std::string annotate_support(const Tree& tree,
                             const std::vector<std::string>& names,
                             const BipartitionTable& table);

// Per-edge support values of `tree` under `table`, keyed by the canonical
// bipartition, as fractions in [0,1]. Order matches tree_bipartitions(tree).
std::vector<double> edge_supports(const Tree& tree,
                                  const BipartitionTable& table);

}  // namespace raxh
