// Bipartitions (splits) of the taxon set induced by internal tree edges, a
// bipartition hash table for bootstrap bookkeeping, and Robinson-Foulds
// distances. The hash table is the "framework for parallel operations on hash
// tables" groundwork the paper lists as the prerequisite for parallelizing
// the bootstopping test (§2).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tree/tree.h"

namespace raxh {

// A split of the taxon set, canonicalized so the side NOT containing taxon 0
// is stored. Only non-trivial splits (both sides >= 2 taxa) are interesting.
class Bipartition {
 public:
  explicit Bipartition(std::size_t num_taxa);

  void set(int taxon);
  [[nodiscard]] bool test(int taxon) const;
  void unite(const Bipartition& other);  // set-union of the stored sides

  // Flip to the canonical side if taxon 0 is currently included.
  void normalize();

  [[nodiscard]] std::size_t num_taxa() const { return num_taxa_; }
  [[nodiscard]] int popcount() const;
  // Trivial = one side has < 2 taxa (induced by a tip edge).
  [[nodiscard]] bool is_trivial() const;

  // True if every stored taxon of *this is also in `other`.
  [[nodiscard]] bool is_subset_of(const Bipartition& other) const;
  // True if the stored sides share no taxon.
  [[nodiscard]] bool disjoint_with(const Bipartition& other) const;
  // Taxa on the stored side, ascending.
  [[nodiscard]] std::vector<int> members() const;

  bool operator==(const Bipartition& other) const = default;

  struct Hash {
    std::size_t operator()(const Bipartition& b) const;
  };

 private:
  std::size_t num_taxa_;
  std::vector<std::uint64_t> bits_;
};

// All non-trivial bipartitions of a complete tree (size = num_taxa - 3).
std::vector<Bipartition> tree_bipartitions(const Tree& tree);

// Occurrence counts of bipartitions over a collection of trees (e.g. the
// bootstrap replicate set). Thread-compatible: distinct tables can be filled
// concurrently and merged.
class BipartitionTable {
 public:
  void add_tree(const Tree& tree);
  void add(const Bipartition& bipartition, int count = 1);
  void merge(const BipartitionTable& other);

  [[nodiscard]] int count(const Bipartition& bipartition) const;
  [[nodiscard]] int num_trees() const { return num_trees_; }
  [[nodiscard]] std::size_t num_distinct() const { return counts_.size(); }

  // Frequency in [0,1] of a bipartition over the added trees.
  [[nodiscard]] double frequency(const Bipartition& bipartition) const;

  [[nodiscard]] const std::unordered_map<Bipartition, int, Bipartition::Hash>&
  entries() const {
    return counts_;
  }

 private:
  std::unordered_map<Bipartition, int, Bipartition::Hash> counts_;
  int num_trees_ = 0;
};

// Robinson-Foulds distance: size of the symmetric difference of the two
// trees' non-trivial bipartition sets. 0 iff identical topologies.
int rf_distance(const Tree& a, const Tree& b);

// Normalized RF in [0,1]: rf / (2*(n-3)).
double relative_rf_distance(const Tree& a, const Tree& b);

}  // namespace raxh
