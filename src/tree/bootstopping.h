// Bootstopping: decide whether enough bootstrap replicates have been
// computed. Implements the frequency criterion (FC) of Pattengale et al.
// (RECOMB 2009) [13 in the paper]: randomly split the replicate set into two
// halves many times; if the bipartition frequency vectors of the halves
// correlate above a cutoff in (nearly) all permutations, the replicate set
// has converged.
//
// The paper lists the *parallelization* of this test as future work needing
// "a framework for parallel operations on hash tables"; BipartitionTable +
// this module are that framework, and the hybrid runner exercises it in
// tests and the bootstopping example.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/bipartition.h"
#include "tree/tree.h"

namespace raxh {

struct BootstopOptions {
  int permutations = 100;
  double correlation_cutoff = 0.99;  // per-permutation pass threshold
  double pass_fraction = 0.99;       // fraction of permutations that must pass
  std::uint64_t seed = 12345;
};

struct BootstopResult {
  bool converged = false;
  double mean_correlation = 0.0;
  double pass_fraction = 0.0;
};

// FC test over a set of replicate trees (needs >= 2 replicates).
BootstopResult frequency_criterion(const std::vector<Tree>& replicates,
                                   const BootstopOptions& options = {});

struct WcOptions {
  int permutations = 100;
  // A permutation passes when the weighted RF distance between its two
  // halves' split-frequency spectra is at most this fraction (Pattengale et
  // al. use 3%).
  double distance_cutoff = 0.03;
  double pass_fraction = 0.99;
  std::uint64_t seed = 12345;
};

struct WcResult {
  bool converged = false;
  double mean_distance = 0.0;  // mean weighted RF over permutations, in [0,1]
  double pass_fraction = 0.0;
};

// WC ("weighted consensus") criterion of Pattengale et al. — the test whose
// recommendations the paper's Table 3 quotes: permute the replicates, split
// into halves, and compare the halves' bipartition-frequency spectra by a
// normalized weighted Robinson-Foulds distance
//   d = sum_b |f_a(b) - f_b(b)| / (2 * (n - 3))
// over the union of observed splits. Converged when (almost) all
// permutations land under the cutoff.
WcResult weighted_rf_criterion(const std::vector<Tree>& replicates,
                               const WcOptions& options = {});

// Incremental checker: feed replicates as they finish, test periodically.
class BootstopChecker {
 public:
  explicit BootstopChecker(BootstopOptions options = {})
      : options_(options) {}

  void add_tree(const Tree& tree) { replicates_.push_back(tree); }
  [[nodiscard]] std::size_t num_replicates() const {
    return replicates_.size();
  }

  // Run the FC test on the replicates collected so far.
  [[nodiscard]] BootstopResult check() const {
    return frequency_criterion(replicates_, options_);
  }

 private:
  BootstopOptions options_;
  std::vector<Tree> replicates_;
};

}  // namespace raxh
