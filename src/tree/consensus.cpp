#include "tree/consensus.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "util/check.h"

namespace raxh {

namespace {

struct ConsensusNode {
  std::vector<int> child_nodes;  // indices into the node vector
  std::vector<int> child_taxa;   // tip children
  int support_percent = -1;      // -1 for the root
};

struct Cluster {
  Bipartition bip;
  int support_percent;
};

// Nest pairwise-compatible clusters into a multifurcating tree and print it
// as Newick with support labels.
std::string clusters_to_newick(std::vector<Cluster> clusters,
                               const std::vector<std::string>& names) {
  const std::size_t n = names.size();
  // Smallest first, so a cluster's parent is the first larger superset.
  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.bip.popcount() < b.bip.popcount();
            });

  std::vector<ConsensusNode> nodes(clusters.size() + 1);
  const int root = static_cast<int>(clusters.size());

  for (std::size_t i = 0; i < clusters.size(); ++i) {
    nodes[i].support_percent = clusters[i].support_percent;
    int parent = root;
    for (std::size_t j = i + 1; j < clusters.size(); ++j) {
      if (clusters[i].bip.is_subset_of(clusters[j].bip)) {
        parent = static_cast<int>(j);
        break;
      }
    }
    nodes[static_cast<std::size_t>(parent)].child_nodes.push_back(
        static_cast<int>(i));
  }

  // Assign each taxon to the smallest cluster containing it; taxon 0 (never
  // stored by canonicalization) belongs to the root.
  nodes[static_cast<std::size_t>(root)].child_taxa.push_back(0);
  for (int t = 1; t < static_cast<int>(n); ++t) {
    int owner = root;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].bip.test(t)) {
        owner = static_cast<int>(i);
        break;  // smallest, because clusters are sorted ascending
      }
    }
    nodes[static_cast<std::size_t>(owner)].child_taxa.push_back(t);
  }

  std::ostringstream out;
  auto print = [&](auto&& self, int node) -> void {
    const auto& cn = nodes[static_cast<std::size_t>(node)];
    out << '(';
    bool first = true;
    for (int taxon : cn.child_taxa) {
      if (!first) out << ',';
      first = false;
      out << names[static_cast<std::size_t>(taxon)];
    }
    for (int child : cn.child_nodes) {
      if (!first) out << ',';
      first = false;
      self(self, child);
    }
    out << ')';
    if (cn.support_percent >= 0) out << cn.support_percent;
  };
  print(print, root);
  out << ';';
  return out.str();
}

}  // namespace

bool compatible(const Bipartition& a, const Bipartition& b) {
  // Canonical sides exclude taxon 0, so the complements always intersect
  // (both contain taxon 0); the splits coexist iff the stored sides are
  // disjoint or nested.
  return a.disjoint_with(b) || a.is_subset_of(b) || b.is_subset_of(a);
}

std::string majority_rule_consensus(const BipartitionTable& table,
                                    const std::vector<std::string>& names,
                                    double threshold) {
  RAXH_EXPECTS(table.num_trees() > 0);
  RAXH_EXPECTS(threshold >= 0.5 && threshold < 1.0);

  // Splits above threshold; for threshold >= 0.5 they are pairwise
  // compatible, so they nest into a tree directly.
  std::vector<Cluster> clusters;
  for (const auto& [bip, count] : table.entries()) {
    const double freq = static_cast<double>(count) / table.num_trees();
    if (freq > threshold)
      clusters.push_back(
          {bip, static_cast<int>(std::lround(freq * 100.0))});
  }
  return clusters_to_newick(std::move(clusters), names);
}

std::string extended_majority_consensus(const BipartitionTable& table,
                                        const std::vector<std::string>& names) {
  RAXH_EXPECTS(table.num_trees() > 0);
  const std::size_t n = names.size();

  // All splits in descending frequency (deterministic tie-break on size and
  // member set so results do not depend on hash order).
  std::vector<std::pair<Bipartition, int>> ranked(table.entries().begin(),
                                                  table.entries().end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              if (a.first.popcount() != b.first.popcount())
                return a.first.popcount() < b.first.popcount();
              return a.first.members() < b.first.members();
            });

  std::vector<Cluster> accepted;
  const std::size_t fully_resolved = n - 3;
  for (const auto& [bip, count] : ranked) {
    if (accepted.size() >= fully_resolved) break;
    const double freq = static_cast<double>(count) / table.num_trees();
    const bool majority = 2 * count > table.num_trees();
    bool ok = true;
    if (!majority) {
      for (const auto& c : accepted) {
        if (!compatible(bip, c.bip)) {
          ok = false;
          break;
        }
      }
    }
    if (ok)
      accepted.push_back({bip, static_cast<int>(std::lround(freq * 100.0))});
  }
  return clusters_to_newick(std::move(accepted), names);
}

std::vector<double> edge_supports(const Tree& tree,
                                  const BipartitionTable& table) {
  std::vector<double> out;
  for (const auto& bip : tree_bipartitions(tree))
    out.push_back(table.frequency(bip));
  return out;
}

namespace {

// Writes the subtree across `rec`'s edge, collecting its taxa into `side`,
// and labels internal nodes with bootstrap support.
void append_supported(const Tree& tree, int rec,
                      const std::vector<std::string>& names,
                      const BipartitionTable& table, Bipartition& side,
                      std::ostream& out) {
  const int b = tree.back(rec);
  if (tree.is_tip_record(b)) {
    out << names[static_cast<std::size_t>(tree.tip_id(b))];
    side.set(tree.tip_id(b));
  } else {
    Bipartition mine(tree.num_taxa());
    out << '(';
    append_supported(tree, tree.next(b), names, table, mine, out);
    out << ',';
    append_supported(tree, tree.next(tree.next(b)), names, table, mine, out);
    out << ')';
    if (!mine.is_trivial()) {
      Bipartition canonical = mine;
      canonical.normalize();
      out << static_cast<int>(std::lround(table.frequency(canonical) * 100.0));
    }
    side.unite(mine);
  }
  out << ':' << tree.length(rec);
}

}  // namespace

std::string annotate_support(const Tree& tree,
                             const std::vector<std::string>& names,
                             const BipartitionTable& table) {
  RAXH_EXPECTS(tree.is_complete());
  RAXH_EXPECTS(names.size() == tree.num_taxa());
  RAXH_EXPECTS(table.num_trees() > 0);
  std::ostringstream out;
  out.precision(10);
  const int r = tree.back(0);
  out << '(' << names[0] << ':' << tree.length(0) << ',';
  Bipartition side(tree.num_taxa());
  append_supported(tree, tree.next(r), names, table, side, out);
  out << ',';
  append_supported(tree, tree.next(tree.next(r)), names, table, side, out);
  out << ");";
  return out.str();
}

}  // namespace raxh
