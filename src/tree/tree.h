// Unrooted binary phylogenetic tree in the node-ring representation RAxML
// uses: every internal node is a ring of three directed records; every edge
// joins two records via their `back` links. Tips are single records with ids
// [0, num_taxa).
//
// Directed records are what the likelihood engine keys its conditional
// likelihood vectors on: the CLV "at record r" summarizes the subtree on r's
// node-side and is valid when evaluating the edge (r, back(r)).
//
// The class supports incremental construction (stepwise addition), SPR
// prune/regraft with exact undo, Newick I/O, and traversal helpers. All
// mutators keep the two directed records of an edge length-synchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace raxh {

// Default branch length for freshly created edges (RAxML's default z maps to
// roughly this in substitutions/site units).
inline constexpr double kDefaultBranchLength = 0.1;
inline constexpr double kMinBranchLength = 1e-6;
inline constexpr double kMaxBranchLength = 30.0;

class Tree {
 public:
  // A tree over `num_taxa` taxa with no edges yet; build with make_triplet()
  // + insert_tip(), or use parse_newick().
  explicit Tree(std::size_t num_taxa);

  // --- construction ---

  // Initialize as the unique 3-taxon topology over tips {a, b, c}.
  void make_triplet(int tip_a, int tip_b, int tip_c,
                    double length = kDefaultBranchLength);

  // Splice `tip` into the edge (edge_rec, back(edge_rec)): a fresh internal
  // node subdivides the edge and the tip hangs off it. The original edge
  // length is split evenly; the tip edge gets `tip_length`.
  // Returns the ring record whose back is the tip.
  int insert_tip(int tip, int edge_rec,
                 double tip_length = kDefaultBranchLength);

  // Parse a Newick string; taxon labels must occur in `names` (their index
  // becomes the tip id). Accepts binary trees rooted with a bifurcation or
  // trifurcation at the outermost level. Throws std::runtime_error on
  // malformed input.
  static Tree parse_newick(const std::string& text,
                           const std::vector<std::string>& names);

  // --- structure queries ---

  [[nodiscard]] std::size_t num_taxa() const { return num_taxa_; }
  // True once all taxa have been inserted.
  [[nodiscard]] bool is_complete() const {
    return inserted_tips_ == num_taxa_;
  }
  [[nodiscard]] std::size_t num_inserted_tips() const { return inserted_tips_; }

  [[nodiscard]] int back(int rec) const { return records_[idx(rec)].back; }
  [[nodiscard]] int next(int rec) const { return records_[idx(rec)].next; }
  [[nodiscard]] bool is_tip_record(int rec) const {
    return rec < static_cast<int>(num_taxa_);
  }
  // Tip id of a tip record (== the record id).
  [[nodiscard]] int tip_id(int rec) const { return rec; }
  // Owning node id: tips 0..n-1, internal nodes n..2n-3 (all three ring
  // records of an internal node share the id).
  [[nodiscard]] int node_id(int rec) const;
  // The internal node's CLV slot, 0..n-3. Requires an internal record.
  [[nodiscard]] int clv_slot(int rec) const;

  [[nodiscard]] double length(int rec) const { return records_[idx(rec)].length; }
  void set_length(int rec, double length);  // updates both directions

  // All edges, once each, as the record with the smaller id.
  [[nodiscard]] std::vector<int> edges() const;
  // Internal records in use (3 per active internal node).
  [[nodiscard]] std::vector<int> internal_records() const;

  // Records of the two subtree children of internal record r: the records
  // across the other two ring members. (c1, c2) = (back(next(r)),
  // back(next(next(r)))).
  struct Children {
    int rec1;
    int rec2;
  };
  [[nodiscard]] Children children(int rec) const;

  // --- SPR ---

  // Everything needed to undo a prune+regraft.
  struct SprMove {
    int p = -1;       // internal record carried with the pruned subtree
    int q = -1, r = -1;    // former neighbor records, rejoined by the prune
    double q_len = 0, r_len = 0;
    int s = -1, t = -1;    // regraft edge records
    double s_len = 0;
    bool valid() const { return p >= 0; }
  };

  // Prune the subtree behind internal record p (the subtree rooted at
  // back(p), carried together with p's node), reconnecting p's two former
  // neighbors. Returns partial move info; complete with regraft().
  SprMove prune(int p);

  // Regraft a pruned subtree (from prune()) into edge (s, back(s)).
  // s must not lie in the pruned subtree. Updates and returns the move.
  void regraft(SprMove& move, int s);

  // Undo only the regraft half of `move` (the subtree dangles again, ready
  // for the next regraft candidate). Clears move.s/move.t.
  void undo_regraft(SprMove& move);

  // Restore the topology and branch lengths from before `move`.
  void undo(const SprMove& move);

  // True if record `rec`'s edge lies strictly inside the subtree behind
  // record p (used to exclude regraft targets during SPR enumeration).
  [[nodiscard]] bool in_subtree(int p, int rec) const;

  // Exchange the subtrees behind rec_a and rec_b (NNI primitive): after the
  // call, back(rec_a) is the old back(rec_b) with length new_len_a, and vice
  // versa. Neither record may lie in the other's subtree.
  void swap_subtrees(int rec_a, int rec_b, double new_len_a,
                     double new_len_b);

  // --- traversal ---

  // Records in a bottom-up (children before parent) order covering the
  // subtree behind `rec`; tips omitted. Computing CLVs in this order makes
  // CLV(rec) computable last.
  [[nodiscard]] std::vector<int> postorder(int rec) const;

  // Full-tree postorder for evaluating at edge (rec, back(rec)): bottom-up
  // records of both subtree sides.
  [[nodiscard]] std::vector<int> full_traversal(int rec) const;

  // --- output ---

  // Newick with branch lengths, unrooted (trifurcation at the node adjacent
  // to tip 0). Requires a complete tree.
  [[nodiscard]] std::string to_newick(const std::vector<std::string>& names) const;

  // Sum of all branch lengths.
  [[nodiscard]] double total_length() const;

  // Raw structural serialization: captures the exact record layout (not just
  // the topology), so search trajectories that iterate records resume
  // bit-identically after a checkpoint round trip. Newick round trips do NOT
  // preserve layout; use this for state persistence.
  struct RawTopology {
    std::size_t num_taxa = 0;
    std::size_t inserted_tips = 0;
    std::vector<int> back;       // per record
    std::vector<double> length;  // per record
    std::vector<std::uint8_t> internal_used;
  };
  [[nodiscard]] RawTopology export_raw() const;
  static Tree import_raw(const RawTopology& raw);

  // Structural invariants (rings closed, back links symmetric, lengths
  // synchronized, correct node/edge counts). Aborts on violation; used by
  // tests and after complex rearrangements in debug paths.
  void check_invariants() const;

 private:
  struct Record {
    int back = -1;
    int next = -1;
    double length = 0.0;
  };

  static std::size_t idx(int rec) { return static_cast<std::size_t>(rec); }

  // Connect records a and b as an edge with the given length.
  void hook(int a, int b, double length);

  int allocate_internal();  // ring of 3 records; returns the first record

  std::size_t num_taxa_ = 0;
  std::size_t inserted_tips_ = 0;
  std::vector<Record> records_;
  std::vector<bool> internal_used_;  // per internal node (ring)
};

}  // namespace raxh
