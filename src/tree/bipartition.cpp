#include "tree/bipartition.h"

#include <bit>

#include "util/check.h"

namespace raxh {

Bipartition::Bipartition(std::size_t num_taxa)
    : num_taxa_(num_taxa), bits_((num_taxa + 63) / 64, 0) {
  RAXH_EXPECTS(num_taxa >= 4);
}

void Bipartition::set(int taxon) {
  RAXH_EXPECTS(taxon >= 0 && static_cast<std::size_t>(taxon) < num_taxa_);
  bits_[static_cast<std::size_t>(taxon) / 64] |=
      (std::uint64_t{1} << (static_cast<std::size_t>(taxon) % 64));
}

bool Bipartition::test(int taxon) const {
  RAXH_EXPECTS(taxon >= 0 && static_cast<std::size_t>(taxon) < num_taxa_);
  return (bits_[static_cast<std::size_t>(taxon) / 64] >>
          (static_cast<std::size_t>(taxon) % 64)) &
         1;
}

void Bipartition::unite(const Bipartition& other) {
  RAXH_EXPECTS(num_taxa_ == other.num_taxa_);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

void Bipartition::normalize() {
  if (!test(0)) return;
  for (auto& word : bits_) word = ~word;
  // Clear padding bits past num_taxa_.
  const std::size_t tail = num_taxa_ % 64;
  if (tail != 0) bits_.back() &= (std::uint64_t{1} << tail) - 1;
}

int Bipartition::popcount() const {
  int count = 0;
  for (auto word : bits_) count += std::popcount(word);
  return count;
}

bool Bipartition::is_trivial() const {
  const int pc = popcount();
  return pc < 2 || pc > static_cast<int>(num_taxa_) - 2;
}

bool Bipartition::is_subset_of(const Bipartition& other) const {
  RAXH_EXPECTS(num_taxa_ == other.num_taxa_);
  for (std::size_t i = 0; i < bits_.size(); ++i)
    if ((bits_[i] & ~other.bits_[i]) != 0) return false;
  return true;
}

bool Bipartition::disjoint_with(const Bipartition& other) const {
  RAXH_EXPECTS(num_taxa_ == other.num_taxa_);
  for (std::size_t i = 0; i < bits_.size(); ++i)
    if ((bits_[i] & other.bits_[i]) != 0) return false;
  return true;
}

std::vector<int> Bipartition::members() const {
  std::vector<int> out;
  for (std::size_t t = 0; t < num_taxa_; ++t)
    if (test(static_cast<int>(t))) out.push_back(static_cast<int>(t));
  return out;
}

std::size_t Bipartition::Hash::operator()(const Bipartition& b) const {
  // FNV-1a over the words.
  std::uint64_t h = 14695981039346656037ULL;
  for (auto word : b.bits_) {
    h ^= word;
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

std::vector<Bipartition> tree_bipartitions(const Tree& tree) {
  RAXH_EXPECTS(tree.is_complete());
  const std::size_t n = tree.num_taxa();
  std::vector<Bipartition> out;
  if (n < 4) return out;

  // Postorder from tip 0's edge covers, for every internal edge, exactly the
  // direction pointing away from tip 0.
  const std::vector<int> order = tree.postorder(tree.back(0));
  std::unordered_map<int, Bipartition> behind;  // record -> taxa behind it
  behind.reserve(order.size());

  for (int rec : order) {
    Bipartition bip(n);
    const auto [c1, c2] = tree.children(rec);
    for (int c : {c1, c2}) {
      if (tree.is_tip_record(c)) {
        bip.set(tree.tip_id(c));
      } else {
        const auto it = behind.find(c);
        RAXH_ASSERT(it != behind.end());
        bip.unite(it->second);
      }
    }
    // Edge (rec, back(rec)) is internal iff back(rec) is not a tip.
    if (!tree.is_tip_record(tree.back(rec)) && !bip.is_trivial()) {
      Bipartition canonical = bip;
      canonical.normalize();
      out.push_back(std::move(canonical));
    }
    behind.emplace(rec, std::move(bip));
  }
  return out;
}

void BipartitionTable::add_tree(const Tree& tree) {
  for (auto& bip : tree_bipartitions(tree)) add(bip);
  ++num_trees_;
}

void BipartitionTable::add(const Bipartition& bipartition, int count) {
  counts_[bipartition] += count;
}

void BipartitionTable::merge(const BipartitionTable& other) {
  for (const auto& [bip, count] : other.counts_) counts_[bip] += count;
  num_trees_ += other.num_trees_;
}

int BipartitionTable::count(const Bipartition& bipartition) const {
  const auto it = counts_.find(bipartition);
  return it == counts_.end() ? 0 : it->second;
}

double BipartitionTable::frequency(const Bipartition& bipartition) const {
  RAXH_EXPECTS(num_trees_ > 0);
  return static_cast<double>(count(bipartition)) / num_trees_;
}

int rf_distance(const Tree& a, const Tree& b) {
  RAXH_EXPECTS(a.num_taxa() == b.num_taxa());
  const auto ba = tree_bipartitions(a);
  const auto bb = tree_bipartitions(b);
  std::unordered_map<Bipartition, int, Bipartition::Hash> set_a;
  for (const auto& bip : ba) set_a[bip] = 1;
  int shared = 0;
  for (const auto& bip : bb)
    if (set_a.count(bip) != 0) ++shared;
  return static_cast<int>(ba.size()) + static_cast<int>(bb.size()) -
         2 * shared;
}

double relative_rf_distance(const Tree& a, const Tree& b) {
  const std::size_t n = a.num_taxa();
  RAXH_EXPECTS(n > 3);
  return static_cast<double>(rf_distance(a, b)) /
         (2.0 * static_cast<double>(n - 3));
}

}  // namespace raxh
