// AVX-512 kernel-family member: compiled with -mavx512f -mavx512vl so a
// blocked v8df plane is a single 512-bit register. CMake defines
// RAXH_HAVE_KERNEL_AVX512 and adds the flags only when the compiler accepts
// them; runtime CPUID gating lives in kernels.cpp.
#include "likelihood/kernels.h"

#if defined(RAXH_HAVE_KERNEL_AVX512) && defined(__GNUC__)
#define RAXH_KERNEL_IMPL_NAMESPACE isa_avx512
#define RAXH_KERNEL_OPS_ACCESSOR ops_avx512
#include "likelihood/kernels_impl.inl"
#else
namespace raxh::kern::detail {
const KernelOps* ops_avx512() { return nullptr; }
}  // namespace raxh::kern::detail
#endif
