// Brent's derivative-free 1-D optimization, used for GTR exchangeabilities
// and the GAMMA shape parameter (as in RAxML's brentGeneric).
#pragma once

#include <functional>

namespace raxh {

struct BrentResult {
  double x;   // arg max
  double fx;  // maximum value
};

// Maximize f on [lo, hi] to absolute x-tolerance `tol`.
BrentResult brent_maximize(const std::function<double(double)>& f, double lo,
                           double hi, double tol = 1e-4, int max_iter = 64);

}  // namespace raxh
