#include "likelihood/repeats.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace raxh {

namespace {

std::atomic<int> g_repeats{-1};  // -1 = read RAXH_REPEATS on first use

int init_repeats() {
  int on = 1;
  if (const char* env = std::getenv("RAXH_REPEATS");
      env != nullptr && *env != '\0') {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) on = 0;
  }
  int expected = -1;
  g_repeats.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  return g_repeats.load(std::memory_order_relaxed);
}

}  // namespace

bool repeats_enabled() {
  const int v = g_repeats.load(std::memory_order_relaxed);
  return (v >= 0 ? v : init_repeats()) != 0;
}

void set_repeats_enabled(bool enabled) {
  g_repeats.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace {
std::atomic<int> g_fold{-1};

int init_fold() {
  int on = 0;
  if (const char* env = std::getenv("RAXH_REPEAT_COSTS");
      env != nullptr && *env != '\0') {
    if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) on = 1;
  }
  int expected = -1;
  g_fold.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  return g_fold.load(std::memory_order_relaxed);
}
}  // namespace

bool repeat_cost_folding() {
  const int v = g_fold.load(std::memory_order_relaxed);
  return (v >= 0 ? v : init_fold()) != 0;
}

void set_repeat_cost_folding(bool enabled) {
  g_fold.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::uint32_t RepeatCombiner::combine(const ClassSource& a,
                                      const ClassSource& b, std::size_t npat,
                                      std::vector<std::uint32_t>* class_of,
                                      std::vector<std::uint32_t>* reps) {
  class_of->resize(npat);
  reps->clear();
  const std::uint64_t nb = b.num_classes;
  const std::uint64_t pairs = static_cast<std::uint64_t>(a.num_classes) * nb;
  std::uint32_t next = 0;
  if (pairs <= kDirectMax) {
    if (stamp_.size() < pairs) {
      stamp_.resize(pairs, 0);
      table_.resize(pairs);
    }
    ++epoch_;
    for (std::size_t p = 0; p < npat; ++p) {
      const std::uint64_t key = a.at(p) * nb + b.at(p);
      if (stamp_[key] != epoch_) {
        stamp_[key] = epoch_;
        table_[key] = next++;
        reps->push_back(static_cast<std::uint32_t>(p));
      }
      (*class_of)[p] = table_[key];
    }
    return next;
  }
  map_.clear();
  map_.reserve(npat);
  for (std::size_t p = 0; p < npat; ++p) {
    const std::uint64_t key = a.at(p) * nb + b.at(p);
    const auto [it, inserted] = map_.try_emplace(key, next);
    if (inserted) {
      ++next;
      reps->push_back(static_cast<std::uint32_t>(p));
    }
    (*class_of)[p] = it->second;
  }
  return next;
}

}  // namespace raxh
