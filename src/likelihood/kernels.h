// Raw per-pattern-range likelihood kernels (the "newview / evaluate /
// derivative" trio of RAxML). All functions operate on a contiguous pattern
// range [begin, end), which is the unit the thread crew stripes across
// workers. No kernel allocates or synchronizes; the engine owns buffers and
// dispatch.
//
// Conventions:
//  * CLVs come in two storage layouts (ClvLayout below). Pattern-major AoS:
//    clv[((p * clv_cats) + c) * 4 + state]. Blocked SoA: patterns are grouped
//    into blocks of kBlockLanes, states/categories are planes within a block
//    and the pattern is the fastest (lane) dimension:
//    clv[(p / L) * clv_cats * 4 * L + (c * 4 + state) * L + p % L] — one
//    contiguous, 64-byte-aligned vector load covers L patterns of one
//    (category, state) plane. Either way values are scaled by
//    2^(-256 * ... ) — more precisely by kScaleFactor^scale[p] — to dodge
//    underflow.
//  * Tip data are 4-bit IUPAC masks; tip "CLV" entries are 0/1 indicators.
//  * `RateLayout` abstracts GAMMA (all categories per pattern) vs CAT (one
//    category per pattern, chosen by pattern_cat) and carries the CLV layout.
//  * The three newview kernels accept an optional `pattern_ids` list: when
//    non-null, [begin, end) indexes into it and only the listed patterns are
//    computed. This is the site-repeat hook — the engine computes one
//    representative per repeat class and copies the rest (engine.cpp).
//
// Kernel family: one scalar reference implementation plus SIMD members
// (generic baseline, AVX2, AVX-512, NEON) built from a single shared source
// (kernels_impl.inl) compiled per-ISA. Every member keeps the scalar
// operation order per lane and is compiled without FMA contraction, so all
// members produce BITWISE-identical results on a given host — asserted by
// tests/test_simd.cpp and tests/test_kernel_family.cpp. The active member is
// selected by CPUID at startup (best supported wins) and can be overridden
// with set_kernel_isa(), the RAXH_KERNELS environment variable, or the
// `--kernels=` CLI flag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "bio/dna.h"

namespace raxh::kern {

inline constexpr double kScaleThreshold = 1.0 / 1.329227995784916e+36 /
                                          1.329227995784916e+36 /
                                          1.329227995784916e+36 /
                                          1.329227995784916e+36;  // 2^-480
inline constexpr double kScaleFactor = 1.329227995784916e+36 *
                                       1.329227995784916e+36 *
                                       1.329227995784916e+36 *
                                       1.329227995784916e+36;  // 2^480
// log(kScaleFactor): each scale count contributes -480*ln2 to the true lnL.
inline constexpr double kLogScaleFactor = 332.7106466687737;

// ---------------------------------------------------------------------------
// Kernel family selection
// ---------------------------------------------------------------------------

// Implementation members, ordered worst-to-best so best_kernel_isa() can
// pick the highest supported one.
enum class KernelIsa : int {
  kScalar = 0,  // reference loops; always available, any layout
  kGeneric,     // GCC vector extensions at the build's baseline arch
  kNeon,        // aarch64 Advanced SIMD
  kAvx2,        // x86-64 with 256-bit vectors
  kAvx512,      // x86-64 with 512-bit vectors (F+VL)
  kCount
};
inline constexpr int kNumKernelIsas = static_cast<int>(KernelIsa::kCount);

// Stable lowercase name ("scalar", "generic", "neon", "avx2", "avx512").
[[nodiscard]] const char* kernel_isa_name(KernelIsa isa);

// True if the member's translation unit was built into this binary.
[[nodiscard]] bool kernel_isa_compiled(KernelIsa isa);
// True if compiled AND this machine can execute it (CPUID / arch check).
[[nodiscard]] bool kernel_isa_supported(KernelIsa isa);
// Best supported member on this machine (>= kScalar, usually better).
[[nodiscard]] KernelIsa best_kernel_isa();

// Select the active member. Returns false — and leaves the active member
// UNCHANGED — if `isa` is not supported on this machine, so callers cannot
// end up believing a mode is active that reads back as something else
// (kernel_isa() always reports the effective member). Process-wide; not
// meant to be toggled concurrently with running kernels.
bool set_kernel_isa(KernelIsa isa);

// The effective active member. First call applies the RAXH_KERNELS
// environment override (falling back to best_kernel_isa() when unset,
// unparseable, or unsupported — with a one-time [WRN] in the latter cases).
[[nodiscard]] KernelIsa kernel_isa();

// Parse "scalar" | "generic" | "neon" | "avx2" | "avx512" | "auto"
// (case-sensitive). "auto" yields best_kernel_isa(). Returns false on
// unknown names.
bool parse_kernel_isa(std::string_view name, KernelIsa* out);

// Space-separated list of members with availability markers, e.g.
// "scalar generic avx2 (avx512: unsupported on this cpu)" — for --help and
// error messages.
[[nodiscard]] std::string kernel_isa_list();

// `"kernel":{...}` JSON fragment reporting the effective member, the default
// CLV layout, and the fallback count — embedded in --metrics-out documents
// and BENCH_*.json summaries so a bench can never unknowingly report numbers
// from a different kernel than it claims.
[[nodiscard]] std::string to_json_section();

// Number of times a SIMD member had to fall back to the scalar reference
// because layout.ncat_model exceeded kMaxCatMatrices (mirrors the
// obs::Counter::kKernelFallback counter, but is available with obs disabled).
[[nodiscard]] std::uint64_t fallback_count();

// Upper bound on per-category P matrices the SIMD members stage on the
// stack; layouts with more categories fall back to the scalar reference.
// The fallback is LOUD: a one-time [WRN] plus the kKernelFallback obs
// counter, so benches can't unknowingly measure the wrong kernel.
inline constexpr int kMaxCatMatrices = 32;

// ---------------------------------------------------------------------------
// CLV storage layout
// ---------------------------------------------------------------------------

// Lane count of the blocked layout: 8 doubles = one cache line = one AVX-512
// register. Blocked CLV rows are padded to a multiple of this.
inline constexpr int kBlockLanes = 8;

enum class ClvLayout : int {
  kPatternMajor = 0,  // AoS: [(p * clv_cats + c) * 4 + s]
  kBlocked,           // SoA: [(p/L * clv_cats*4 + c*4+s) * L + p%L], L = 8
};
[[nodiscard]] const char* clv_layout_name(ClvLayout layout);

struct RateLayout {
  int ncat_model = 1;   // number of per-category P matrices / rates
  int clv_cats = 1;     // categories stored per pattern (GAMMA: ncat, CAT: 1)
  const int* pattern_cat = nullptr;  // CAT: pattern -> model category
  const double* cat_weights = nullptr;  // GAMMA: per-category weights

  ClvLayout clv_layout = ClvLayout::kPatternMajor;
  // Blocked only: CLV row length in patterns (num_patterns rounded up to a
  // multiple of kBlockLanes). The engine zero-weights the padding lanes.
  std::size_t padded_patterns = 0;

  // Model category of storage category c for pattern p.
  [[nodiscard]] int model_cat(std::size_t p, int c) const {
    return pattern_cat != nullptr ? pattern_cat[p] : c;
  }
  [[nodiscard]] double weight(int c) const {
    return cat_weights != nullptr ? cat_weights[c] : 1.0;
  }

  // Index of (pattern, category, state) in a CLV/sumtable under this layout.
  [[nodiscard]] std::size_t clv_index(std::size_t p, int c, int s) const {
    if (clv_layout == ClvLayout::kPatternMajor)
      return (p * static_cast<std::size_t>(clv_cats) + c) * 4 + s;
    const std::size_t blk = p / kBlockLanes;
    const std::size_t lane = p % kBlockLanes;
    return (blk * static_cast<std::size_t>(clv_cats) * 4 +
            static_cast<std::size_t>(c) * 4 + s) *
               kBlockLanes +
           lane;
  }
  // Doubles per CLV slot for `npatterns` patterns under this layout.
  [[nodiscard]] std::size_t clv_stride(std::size_t npatterns) const {
    const std::size_t rows = clv_layout == ClvLayout::kBlocked
                                 ? padded_rows(npatterns)
                                 : npatterns;
    return rows * static_cast<std::size_t>(clv_cats) * 4;
  }
  [[nodiscard]] static std::size_t padded_rows(std::size_t npatterns) {
    return (npatterns + kBlockLanes - 1) / kBlockLanes * kBlockLanes;
  }
};

// Precomputed P * tip-indicator products: lookup[cat*64 + mask*4 + i] =
// sum_{j in mask} P_cat[i][j]. Built once per (edge length, model) by the
// engine; kernels index it by the tip's 4-bit mask.
void build_tip_lookup(const double* pmats, int ncat, double* lookup);

// --- newview: fill the CLV at a node from its two children ---
//
// When `pattern_ids` is non-null, [begin, end) indexes into it (site-repeat
// representative lists); otherwise [begin, end) are pattern indices.

void newview_tip_tip(const RateLayout& layout, std::size_t begin,
                     std::size_t end, const DnaState* tip_left,
                     const DnaState* tip_right, const double* lookup_left,
                     const double* lookup_right, double* clv, int* scale,
                     const std::uint32_t* pattern_ids = nullptr);

void newview_tip_inner(const RateLayout& layout, std::size_t begin,
                       std::size_t end, const DnaState* tip_left,
                       const double* lookup_left, const double* clv_right,
                       const int* scale_right, const double* pmat_right,
                       double* clv, int* scale,
                       const std::uint32_t* pattern_ids = nullptr);

void newview_inner_inner(const RateLayout& layout, std::size_t begin,
                         std::size_t end, const double* clv_left,
                         const int* scale_left, const double* pmat_left,
                         const double* clv_right, const int* scale_right,
                         const double* pmat_right, double* clv, int* scale,
                         const std::uint32_t* pattern_ids = nullptr);

// --- evaluate: log-likelihood across an edge ---

// x side is a tip (mask + lookup built from the edge P matrices); y side is a
// CLV. Returns the weighted lnL of the range; if per_pattern != nullptr also
// writes each pattern's unweighted lnL (under the blocked layout the buffer
// must cover padded_patterns entries).
double evaluate_tip_inner(const RateLayout& layout, std::size_t begin,
                          std::size_t end, const double* freqs,
                          const DnaState* tip_x, const double* lookup_x,
                          const double* clv_y, const int* scale_y,
                          const int* weights, double* per_pattern);

// Both sides are CLVs; the edge P matrices multiply the y side.
double evaluate_inner_inner(const RateLayout& layout, std::size_t begin,
                            std::size_t end, const double* freqs,
                            const double* clv_x, const int* scale_x,
                            const double* pmat, const double* clv_y,
                            const int* scale_y, const int* weights,
                            double* per_pattern);

// --- Newton-Raphson support across an edge ---

// sumtable[p][c][k] = (sum_i pi_i x_i V_ik) * (sum_j Vinv_kj y_j): the edge
// likelihood becomes L(t) = sum_k sumtable_k * exp(lambda_k * r_c * t),
// making the branch-length derivatives analytic. The sumtable uses the same
// storage layout as the CLVs.
void edge_sumtable_tip_inner(const RateLayout& layout, std::size_t begin,
                             std::size_t end, const double* freqs,
                             const double* vmat, const double* vinv,
                             const DnaState* tip_x, const double* clv_y,
                             double* sumtable);

void edge_sumtable_inner_inner(const RateLayout& layout, std::size_t begin,
                               std::size_t end, const double* freqs,
                               const double* vmat, const double* vinv,
                               const double* clv_x, const double* clv_y,
                               double* sumtable);

// First and second derivative of the range's weighted lnL with respect to
// the branch length t, plus the lnL value itself. `scale_sum` carries the
// combined per-pattern scale counts of the two CLVs the sumtable was built
// from (nullptr = all zero); with it the lnl field is the true
// scale-corrected log-likelihood, directly comparable against evaluate_*.
// (Historically the field silently ignored scaling — a footgun for
// Brent-vs-NR optimizer cross-checks on deep trees.)
struct Derivatives {
  double lnl = 0.0;
  double d1 = 0.0;
  double d2 = 0.0;
};
Derivatives nr_derivatives(const RateLayout& layout, std::size_t begin,
                           std::size_t end, const double* sumtable,
                           const double* eigenvalues, const double* cat_rates,
                           double t, const int* weights,
                           const int* scale_sum = nullptr);

// ---------------------------------------------------------------------------
// Implementation plumbing (kernels.cpp + per-ISA translation units)
// ---------------------------------------------------------------------------

namespace detail {

// Per-member table of the full trio. Signatures mirror the free functions.
struct KernelOps {
  void (*newview_tip_tip)(const RateLayout&, std::size_t, std::size_t,
                          const DnaState*, const DnaState*, const double*,
                          const double*, double*, int*, const std::uint32_t*);
  void (*newview_tip_inner)(const RateLayout&, std::size_t, std::size_t,
                            const DnaState*, const double*, const double*,
                            const int*, const double*, double*, int*,
                            const std::uint32_t*);
  void (*newview_inner_inner)(const RateLayout&, std::size_t, std::size_t,
                              const double*, const int*, const double*,
                              const double*, const int*, const double*,
                              double*, int*, const std::uint32_t*);
  double (*evaluate_tip_inner)(const RateLayout&, std::size_t, std::size_t,
                               const double*, const DnaState*, const double*,
                               const double*, const int*, const int*,
                               double*);
  double (*evaluate_inner_inner)(const RateLayout&, std::size_t, std::size_t,
                                 const double*, const double*, const int*,
                                 const double*, const double*, const int*,
                                 const int*, double*);
  void (*edge_sumtable_tip_inner)(const RateLayout&, std::size_t, std::size_t,
                                  const double*, const double*, const double*,
                                  const DnaState*, const double*, double*);
  void (*edge_sumtable_inner_inner)(const RateLayout&, std::size_t,
                                    std::size_t, const double*, const double*,
                                    const double*, const double*,
                                    const double*, double*);
  Derivatives (*nr_derivatives)(const RateLayout&, std::size_t, std::size_t,
                                const double*, const double*, const double*,
                                double, const int*, const int*);
};

// The scalar reference table (kernels.cpp); always available. SIMD members
// delegate awkward subranges to it — unaligned block edges, scattered
// repeat-id lists under the blocked layout — which is bitwise-safe because
// every member keeps the scalar per-lane operation order.
[[nodiscard]] const KernelOps* ops_scalar();

// Implemented in the per-ISA TUs; returns nullptr when not compiled in.
[[nodiscard]] const KernelOps* ops_generic();
[[nodiscard]] const KernelOps* ops_avx2();
[[nodiscard]] const KernelOps* ops_avx512();
[[nodiscard]] const KernelOps* ops_neon();

}  // namespace detail

}  // namespace raxh::kern
