// Raw per-pattern-range likelihood kernels (the "newview / evaluate /
// derivative" trio of RAxML). All functions operate on a contiguous pattern
// range [begin, end), which is the unit the thread crew stripes across
// workers. No kernel allocates or synchronizes; the engine owns buffers and
// dispatch.
//
// Conventions:
//  * CLVs are pattern-major: clv[((p * clv_cats) + c) * 4 + state], scaled by
//    2^(256 * scale[p]) to dodge underflow.
//  * Tip data are 4-bit IUPAC masks; tip "CLV" entries are 0/1 indicators.
//  * `RateLayout` abstracts GAMMA (all categories per pattern) vs CAT (one
//    category per pattern, chosen by pattern_cat).
#pragma once

#include <cstddef>

#include "bio/dna.h"

namespace raxh::kern {

inline constexpr double kScaleThreshold = 1.0 / 1.329227995784916e+36 /
                                          1.329227995784916e+36 /
                                          1.329227995784916e+36 /
                                          1.329227995784916e+36;  // 2^-480
inline constexpr double kScaleFactor = 1.329227995784916e+36 *
                                       1.329227995784916e+36 *
                                       1.329227995784916e+36 *
                                       1.329227995784916e+36;  // 2^480
// log(kScaleFactor): each scale count contributes -480*ln2 to the true lnL.
inline constexpr double kLogScaleFactor = 332.7106466687737;

// Kernel implementation selection. kVector uses GCC vector extensions over
// the 4-state dimension (the analogue of the paper's SSE3/SSE4.2 builds,
// which bought ~10% on 2009 hardware); it computes BITWISE-identical results
// to kScalar (same operation order per lane) — asserted by the tests and
// measured by bench_ablation_simd. Process-wide; not meant to be toggled
// concurrently with running kernels.
enum class KernelMode { kScalar, kVector };

// Upper bound on per-category P matrices the vector paths stage on the
// stack; layouts with more categories fall back to the scalar path.
inline constexpr int kMaxCatMatrices = 32;
void set_kernel_mode(KernelMode mode);
KernelMode kernel_mode();

struct RateLayout {
  int ncat_model = 1;   // number of per-category P matrices / rates
  int clv_cats = 1;     // categories stored per pattern (GAMMA: ncat, CAT: 1)
  const int* pattern_cat = nullptr;  // CAT: pattern -> model category
  const double* cat_weights = nullptr;  // GAMMA: per-category weights

  // Model category of storage category c for pattern p.
  [[nodiscard]] int model_cat(std::size_t p, int c) const {
    return pattern_cat != nullptr ? pattern_cat[p] : c;
  }
  [[nodiscard]] double weight(int c) const {
    return cat_weights != nullptr ? cat_weights[c] : 1.0;
  }
};

// Precomputed P * tip-indicator products: lookup[cat*64 + mask*4 + i] =
// sum_{j in mask} P_cat[i][j]. Built once per (edge length, model) by the
// engine; kernels index it by the tip's 4-bit mask.
void build_tip_lookup(const double* pmats, int ncat, double* lookup);

// --- newview: fill the CLV at a node from its two children ---

void newview_tip_tip(const RateLayout& layout, std::size_t begin,
                     std::size_t end, const DnaState* tip_left,
                     const DnaState* tip_right, const double* lookup_left,
                     const double* lookup_right, double* clv, int* scale);

void newview_tip_inner(const RateLayout& layout, std::size_t begin,
                       std::size_t end, const DnaState* tip_left,
                       const double* lookup_left, const double* clv_right,
                       const int* scale_right, const double* pmat_right,
                       double* clv, int* scale);

void newview_inner_inner(const RateLayout& layout, std::size_t begin,
                         std::size_t end, const double* clv_left,
                         const int* scale_left, const double* pmat_left,
                         const double* clv_right, const int* scale_right,
                         const double* pmat_right, double* clv, int* scale);

// --- evaluate: log-likelihood across an edge ---

// x side is a tip (mask + lookup built from the edge P matrices); y side is a
// CLV. Returns the weighted lnL of the range; if per_pattern != nullptr also
// writes each pattern's unweighted lnL.
double evaluate_tip_inner(const RateLayout& layout, std::size_t begin,
                          std::size_t end, const double* freqs,
                          const DnaState* tip_x, const double* lookup_x,
                          const double* clv_y, const int* scale_y,
                          const int* weights, double* per_pattern);

// Both sides are CLVs; the edge P matrices multiply the y side.
double evaluate_inner_inner(const RateLayout& layout, std::size_t begin,
                            std::size_t end, const double* freqs,
                            const double* clv_x, const int* scale_x,
                            const double* pmat, const double* clv_y,
                            const int* scale_y, const int* weights,
                            double* per_pattern);

// --- Newton-Raphson support across an edge ---

// sumtable[p][c][k] = (sum_i pi_i x_i V_ik) * (sum_j Vinv_kj y_j): the edge
// likelihood becomes L(t) = sum_k sumtable_k * exp(lambda_k * r_c * t),
// making the branch-length derivatives analytic.
void edge_sumtable_tip_inner(const RateLayout& layout, std::size_t begin,
                             std::size_t end, const double* freqs,
                             const double* vmat, const double* vinv,
                             const DnaState* tip_x, const double* clv_y,
                             double* sumtable);

void edge_sumtable_inner_inner(const RateLayout& layout, std::size_t begin,
                               std::size_t end, const double* freqs,
                               const double* vmat, const double* vinv,
                               const double* clv_x, const double* clv_y,
                               double* sumtable);

// First and second derivative of the range's weighted lnL with respect to the
// branch length t, plus the (scale-ignoring) lnL value itself.
struct Derivatives {
  double lnl = 0.0;
  double d1 = 0.0;
  double d2 = 0.0;
};
Derivatives nr_derivatives(const RateLayout& layout, std::size_t begin,
                           std::size_t end, const double* sumtable,
                           const double* eigenvalues, const double* cat_rates,
                           double t, const int* weights);

}  // namespace raxh::kern
