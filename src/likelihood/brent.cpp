#include "likelihood/brent.h"

#include <cmath>

#include "util/check.h"

namespace raxh {

BrentResult brent_maximize(const std::function<double(double)>& f, double lo,
                           double hi, double tol, int max_iter) {
  RAXH_EXPECTS(lo < hi);
  RAXH_EXPECTS(tol > 0.0);
  constexpr double kGolden = 0.3819660112501051;

  auto neg = [&](double x) { return -f(x); };

  double a = lo, b = hi;
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = neg(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  for (int iter = 0; iter < max_iter; ++iter) {
    const double m = 0.5 * (a + b);
    const double tol1 = tol * std::fabs(x) + 1e-12;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - m) <= tol2 - 0.5 * (b - a)) break;

    bool parabolic = false;
    if (std::fabs(e) > tol1) {
      // Attempt parabolic interpolation through (v,fv), (w,fw), (x,fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (m > x) ? tol1 : -tol1;
        parabolic = true;
      }
    }
    if (!parabolic) {
      e = (x < m) ? b - x : a - x;
      d = kGolden * e;
    }

    const double u =
        (std::fabs(d) >= tol1) ? x + d : x + ((d > 0.0) ? tol1 : -tol1);
    const double fu = neg(u);

    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  return BrentResult{x, -fx};
}

}  // namespace raxh
