// The evaluator abstraction the search algorithms climb against: a single
// GTR engine (EngineEvaluator) or a partitioned multi-gene model
// (PartitionedEngine). Keeps SprSearch/NniSearch independent of how the
// likelihood is composed.
#pragma once

#include "tree/tree.h"

namespace raxh {

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  // Log-likelihood at the edge (rec, back(rec)).
  virtual double evaluate(const Tree& tree, int rec) = 0;
  double evaluate(const Tree& tree) { return evaluate(tree, 0); }

  // Newton-Raphson on one branch; returns the optimized length.
  virtual double optimize_branch(Tree& tree, int rec) = 0;

  // Optimize every branch `passes` times; returns the final lnL.
  virtual double smooth_branches(Tree& tree, int passes) = 0;

  // One full model-parameter optimization round; returns the final lnL.
  virtual double optimize_model(Tree& tree) = 0;
};

class LikelihoodEngine;

// Evaluator view over a single LikelihoodEngine. Non-owning.
class EngineEvaluator final : public Evaluator {
 public:
  explicit EngineEvaluator(LikelihoodEngine& engine) : engine_(&engine) {}

  double evaluate(const Tree& tree, int rec) override;
  double optimize_branch(Tree& tree, int rec) override;
  double smooth_branches(Tree& tree, int passes) override;
  double optimize_model(Tree& tree) override;

  [[nodiscard]] LikelihoodEngine& engine() const { return *engine_; }

 private:
  LikelihoodEngine* engine_;
};

}  // namespace raxh
