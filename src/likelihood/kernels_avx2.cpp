// AVX2 kernel-family member: same source as every member (kernels_impl.inl),
// compiled with -mavx2 so the v4df/v8df arithmetic lowers to 256-bit ops.
// CMake defines RAXH_HAVE_KERNEL_AVX2 and adds the flags only when the
// compiler accepts them; runtime CPUID gating lives in kernels.cpp.
#include "likelihood/kernels.h"

#if defined(RAXH_HAVE_KERNEL_AVX2) && defined(__GNUC__)
#define RAXH_KERNEL_IMPL_NAMESPACE isa_avx2
#define RAXH_KERNEL_OPS_ACCESSOR ops_avx2
#include "likelihood/kernels_impl.inl"
#else
namespace raxh::kern::detail {
const KernelOps* ops_avx2() { return nullptr; }
}  // namespace raxh::kern::detail
#endif
