// Kernel family core: the scalar reference implementation (any layout, any
// category count — the member every other one must match bitwise), CPUID
// member selection, and the dispatch layer behind the public kernels.h
// functions. SIMD members live in kernels_impl.inl, compiled once per ISA
// (kernels_generic.cpp / kernels_avx2.cpp / kernels_avx512.cpp /
// kernels_neon.cpp).
#include "likelihood/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "obs/obs.h"
#include "util/log.h"

namespace raxh::kern {

namespace {

constexpr double kMinLikelihood = 1e-300;

// -------------------------------------------------------------------------
// Scalar reference kernels. Layout-generic through RateLayout::clv_index;
// for the pattern-major layout the index math constant-folds to the classic
// [(p*cc + c)*4 + s] addressing, so this is exactly the historical scalar
// path there.
// -------------------------------------------------------------------------

// x[i] = sum_{j in mask} P[i][j] for a full 4x4 row-major P.
inline void pdotmask(const double* p, DnaState mask, double* x) {
  x[0] = x[1] = x[2] = x[3] = 0.0;
  for (int j = 0; j < 4; ++j) {
    if ((mask >> j) & 1) {
      x[0] += p[0 * 4 + j];
      x[1] += p[1 * 4 + j];
      x[2] += p[2 * 4 + j];
      x[3] += p[3 * 4 + j];
    }
  }
}

inline void pdotvec(const double* p, const double* y, double* x) {
  for (int i = 0; i < 4; ++i) {
    x[i] = p[i * 4 + 0] * y[0] + p[i * 4 + 1] * y[1] + p[i * 4 + 2] * y[2] +
           p[i * 4 + 3] * y[3];
  }
}

// Rescale the clv_cats*4 values of pattern p if they all dropped below the
// threshold; returns 1 if a scaling event happened. The all-zero early-out
// (vmax == 0.0) keeps fully-masked/contradictory patterns from spinning the
// scale counter forever.
inline int maybe_rescale_at(const RateLayout& l, double* clv, std::size_t p) {
  const int cc = l.clv_cats;
  double vmax = 0.0;
  for (int c = 0; c < cc; ++c) {
    for (int s = 0; s < 4; ++s) {
      const double v = clv[l.clv_index(p, c, s)];
      const double a = v < 0.0 ? -v : v;
      if (a > vmax) vmax = a;
    }
  }
  if (vmax >= kScaleThreshold || vmax == 0.0) return 0;
  for (int c = 0; c < cc; ++c)
    for (int s = 0; s < 4; ++s) clv[l.clv_index(p, c, s)] *= kScaleFactor;
  return 1;
}

void scalar_newview_tip_tip(const RateLayout& l, std::size_t begin,
                            std::size_t end, const DnaState* tip_left,
                            const DnaState* tip_right,
                            const double* lookup_left,
                            const double* lookup_right, double* clv,
                            int* scale, const std::uint32_t* ids) {
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t p = ids != nullptr ? ids[k] : k;
    for (int c = 0; c < l.clv_cats; ++c) {
      const int mc = l.model_cat(p, c);
      const double* tl = lookup_left + mc * 64 + tip_left[p] * 4;
      const double* tr = lookup_right + mc * 64 + tip_right[p] * 4;
      for (int i = 0; i < 4; ++i)
        clv[l.clv_index(p, c, i)] = tl[i] * tr[i];
    }
    scale[p] = maybe_rescale_at(l, clv, p);
  }
}

void scalar_newview_tip_inner(const RateLayout& l, std::size_t begin,
                              std::size_t end, const DnaState* tip_left,
                              const double* lookup_left,
                              const double* clv_right, const int* scale_right,
                              const double* pmat_right, double* clv,
                              int* scale, const std::uint32_t* ids) {
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t p = ids != nullptr ? ids[k] : k;
    for (int c = 0; c < l.clv_cats; ++c) {
      const int mc = l.model_cat(p, c);
      const double* tl = lookup_left + mc * 64 + tip_left[p] * 4;
      double yr[4];
      for (int s = 0; s < 4; ++s) yr[s] = clv_right[l.clv_index(p, c, s)];
      double xr[4];
      pdotvec(pmat_right + mc * 16, yr, xr);
      for (int i = 0; i < 4; ++i)
        clv[l.clv_index(p, c, i)] = tl[i] * xr[i];
    }
    scale[p] = scale_right[p] + maybe_rescale_at(l, clv, p);
  }
}

void scalar_newview_inner_inner(const RateLayout& l, std::size_t begin,
                                std::size_t end, const double* clv_left,
                                const int* scale_left, const double* pmat_left,
                                const double* clv_right,
                                const int* scale_right,
                                const double* pmat_right, double* clv,
                                int* scale, const std::uint32_t* ids) {
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t p = ids != nullptr ? ids[k] : k;
    for (int c = 0; c < l.clv_cats; ++c) {
      const int mc = l.model_cat(p, c);
      double yl[4], yr[4];
      for (int s = 0; s < 4; ++s) {
        yl[s] = clv_left[l.clv_index(p, c, s)];
        yr[s] = clv_right[l.clv_index(p, c, s)];
      }
      double xl[4], xr[4];
      pdotvec(pmat_left + mc * 16, yl, xl);
      pdotvec(pmat_right + mc * 16, yr, xr);
      for (int i = 0; i < 4; ++i)
        clv[l.clv_index(p, c, i)] = xl[i] * xr[i];
    }
    scale[p] = scale_left[p] + scale_right[p] + maybe_rescale_at(l, clv, p);
  }
}

double scalar_evaluate_tip_inner(const RateLayout& l, std::size_t begin,
                                 std::size_t end, const double* freqs,
                                 const DnaState* tip_x, const double* lookup_x,
                                 const double* clv_y, const int* scale_y,
                                 const int* weights, double* per_pattern) {
  double lnl = 0.0;
  for (std::size_t p = begin; p < end; ++p) {
    double total = 0.0;
    for (int c = 0; c < l.clv_cats; ++c) {
      const int mc = l.model_cat(p, c);
      // lookup_x rows are P(t) * tip-indicator, i.e. sum_j P_ij x_j; the edge
      // likelihood sums pi_i * y_i * (P x)_i.
      const double* tx = lookup_x + mc * 64 + tip_x[p] * 4;
      double cat = 0.0;
      for (int i = 0; i < 4; ++i)
        cat += freqs[i] * tx[i] * clv_y[l.clv_index(p, c, i)];
      total += l.weight(c) * cat;
    }
    if (total < kMinLikelihood) total = kMinLikelihood;
    const double site_lnl = std::log(total) - scale_y[p] * kLogScaleFactor;
    lnl += weights[p] * site_lnl;
    if (per_pattern != nullptr) per_pattern[p] = site_lnl;
  }
  return lnl;
}

double scalar_evaluate_inner_inner(const RateLayout& l, std::size_t begin,
                                   std::size_t end, const double* freqs,
                                   const double* clv_x, const int* scale_x,
                                   const double* pmat, const double* clv_y,
                                   const int* scale_y, const int* weights,
                                   double* per_pattern) {
  double lnl = 0.0;
  for (std::size_t p = begin; p < end; ++p) {
    double total = 0.0;
    for (int c = 0; c < l.clv_cats; ++c) {
      const int mc = l.model_cat(p, c);
      double yy[4];
      for (int s = 0; s < 4; ++s) yy[s] = clv_y[l.clv_index(p, c, s)];
      double py[4];
      pdotvec(pmat + mc * 16, yy, py);
      double cat = 0.0;
      for (int i = 0; i < 4; ++i)
        cat += freqs[i] * clv_x[l.clv_index(p, c, i)] * py[i];
      total += l.weight(c) * cat;
    }
    if (total < kMinLikelihood) total = kMinLikelihood;
    const double site_lnl =
        std::log(total) - (scale_x[p] + scale_y[p]) * kLogScaleFactor;
    lnl += weights[p] * site_lnl;
    if (per_pattern != nullptr) per_pattern[p] = site_lnl;
  }
  return lnl;
}

void scalar_edge_sumtable_tip_inner(const RateLayout& l, std::size_t begin,
                                    std::size_t end, const double* freqs,
                                    const double* vmat, const double* vinv,
                                    const DnaState* tip_x, const double* clv_y,
                                    double* sumtable) {
  for (std::size_t p = begin; p < end; ++p) {
    double x[4];
    for (int i = 0; i < 4; ++i) x[i] = (tip_x[p] >> i) & 1 ? 1.0 : 0.0;
    for (int c = 0; c < l.clv_cats; ++c) {
      for (int k = 0; k < 4; ++k) {
        double u = 0.0, w = 0.0;
        for (int i = 0; i < 4; ++i) {
          u += freqs[i] * x[i] * vmat[i * 4 + k];
          w += vinv[k * 4 + i] * clv_y[l.clv_index(p, c, i)];
        }
        sumtable[l.clv_index(p, c, k)] = u * w;
      }
    }
  }
}

void scalar_edge_sumtable_inner_inner(const RateLayout& l, std::size_t begin,
                                      std::size_t end, const double* freqs,
                                      const double* vmat, const double* vinv,
                                      const double* clv_x, const double* clv_y,
                                      double* sumtable) {
  for (std::size_t p = begin; p < end; ++p) {
    for (int c = 0; c < l.clv_cats; ++c) {
      for (int k = 0; k < 4; ++k) {
        double u = 0.0, w = 0.0;
        for (int i = 0; i < 4; ++i) {
          u += freqs[i] * clv_x[l.clv_index(p, c, i)] * vmat[i * 4 + k];
          w += vinv[k * 4 + i] * clv_y[l.clv_index(p, c, i)];
        }
        sumtable[l.clv_index(p, c, k)] = u * w;
      }
    }
  }
}

Derivatives scalar_nr_derivatives(const RateLayout& l, std::size_t begin,
                                  std::size_t end, const double* sumtable,
                                  const double* eigenvalues,
                                  const double* cat_rates, double t,
                                  const int* weights, const int* scale_sum) {
  Derivatives out;
  for (std::size_t p = begin; p < end; ++p) {
    double a = 0.0, a1 = 0.0, a2 = 0.0;
    for (int c = 0; c < l.clv_cats; ++c) {
      const int mc = l.model_cat(p, c);
      const double r = cat_rates[mc];
      const double wc = l.weight(c);
      for (int k = 0; k < 4; ++k) {
        const double lr = eigenvalues[k] * r;
        const double term = sumtable[l.clv_index(p, c, k)] * std::exp(lr * t);
        a += wc * term;
        a1 += wc * lr * term;
        a2 += wc * lr * lr * term;
      }
    }
    if (a < kMinLikelihood) a = kMinLikelihood;
    const double w = weights[p];
    // The scale factor cancels out of a1/a and a2/a, so only lnl needs the
    // correction (see the Derivatives doc comment).
    const double scaled =
        scale_sum != nullptr ? scale_sum[p] * kLogScaleFactor : 0.0;
    out.lnl += w * (std::log(a) - scaled);
    const double inv = 1.0 / a;
    out.d1 += w * a1 * inv;
    out.d2 += w * (a2 * inv - (a1 * inv) * (a1 * inv));
  }
  return out;
}

constexpr detail::KernelOps kScalarOps = {
    scalar_newview_tip_tip,        scalar_newview_tip_inner,
    scalar_newview_inner_inner,    scalar_evaluate_tip_inner,
    scalar_evaluate_inner_inner,   scalar_edge_sumtable_tip_inner,
    scalar_edge_sumtable_inner_inner, scalar_nr_derivatives,
};

}  // namespace

namespace detail {
const KernelOps* ops_scalar() { return &kScalarOps; }
}  // namespace detail

namespace {

// -------------------------------------------------------------------------
// Member selection
// -------------------------------------------------------------------------

const detail::KernelOps* ops_for(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kGeneric: return detail::ops_generic();
    case KernelIsa::kNeon: return detail::ops_neon();
    case KernelIsa::kAvx2: return detail::ops_avx2();
    case KernelIsa::kAvx512: return detail::ops_avx512();
    default: return &kScalarOps;
  }
}

bool cpu_can_run(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
    case KernelIsa::kGeneric:
      return true;  // compiled at the build's baseline arch
    case KernelIsa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
    case KernelIsa::kAvx2:
#if defined(__x86_64__) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelIsa::kAvx512:
#if defined(__x86_64__) && defined(__GNUC__)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
    default:
      return false;
  }
}

// Active member; -1 = not yet initialized (first kernel_isa() call applies
// the RAXH_KERNELS environment override or the CPUID pick).
std::atomic<int> g_isa{-1};
std::atomic<std::uint64_t> g_fallbacks{0};

KernelIsa init_isa() {
  KernelIsa pick = best_kernel_isa();
  if (const char* env = std::getenv("RAXH_KERNELS");
      env != nullptr && *env != '\0') {
    KernelIsa parsed;
    if (!parse_kernel_isa(env, &parsed)) {
      log_warn("kernels: RAXH_KERNELS=%s is not a known member (%s); using %s",
               env, kernel_isa_list().c_str(), kernel_isa_name(pick));
    } else if (!kernel_isa_supported(parsed)) {
      log_warn("kernels: RAXH_KERNELS=%s is unsupported on this machine; "
               "using %s",
               env, kernel_isa_name(pick));
    } else {
      pick = parsed;
    }
  }
  int expected = -1;
  g_isa.compare_exchange_strong(expected, static_cast<int>(pick),
                                std::memory_order_relaxed);
  return static_cast<KernelIsa>(g_isa.load(std::memory_order_relaxed));
}

// One-time loud fallback note (satellite bugfix: the pre-family vector path
// silently fell back to scalar past kMaxCatMatrices, so benches could
// unknowingly measure the wrong kernel).
void note_fallback(const RateLayout& l) {
  g_fallbacks.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::Counter::kKernelFallback);
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    log_warn(
        "kernels: layout (ncat_model=%d, %s%s) unsupported by the %s member; "
        "falling back to the scalar reference for such calls (max staged "
        "category matrices: %d). This warning fires once; the "
        "kernel_fallbacks counter keeps counting.",
        l.ncat_model, clv_layout_name(l.clv_layout),
        l.pattern_cat != nullptr ? ", per-pattern categories" : "",
        kernel_isa_name(kernel_isa()), kMaxCatMatrices);
  }
}

// The ops table a call with layout `l` must use: the active member, unless
// the layout exceeds what SIMD members support — then the scalar reference,
// loudly.
inline const detail::KernelOps& active_ops(const RateLayout& l) {
  const KernelIsa isa = kernel_isa();
  if (isa == KernelIsa::kScalar) return kScalarOps;
  const bool simd_ok =
      l.ncat_model <= kMaxCatMatrices &&
      !(l.clv_layout == ClvLayout::kBlocked && l.pattern_cat != nullptr);
  if (!simd_ok) {
    note_fallback(l);
    return kScalarOps;
  }
  return *ops_for(isa);
}

}  // namespace

const char* kernel_isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kGeneric: return "generic";
    case KernelIsa::kNeon: return "neon";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx512: return "avx512";
    default: return "?";
  }
}

const char* clv_layout_name(ClvLayout layout) {
  return layout == ClvLayout::kBlocked ? "blocked" : "pattern-major";
}

bool kernel_isa_compiled(KernelIsa isa) {
  if (isa == KernelIsa::kScalar) return true;
  if (isa == KernelIsa::kCount) return false;
  return ops_for(isa) != nullptr;
}

bool kernel_isa_supported(KernelIsa isa) {
  return kernel_isa_compiled(isa) && cpu_can_run(isa);
}

KernelIsa best_kernel_isa() {
  for (int i = kNumKernelIsas - 1; i > 0; --i) {
    const auto isa = static_cast<KernelIsa>(i);
    if (kernel_isa_supported(isa)) return isa;
  }
  return KernelIsa::kScalar;
}

bool set_kernel_isa(KernelIsa isa) {
  if (!kernel_isa_supported(isa)) return false;
  g_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

KernelIsa kernel_isa() {
  const int cur = g_isa.load(std::memory_order_relaxed);
  if (cur >= 0) return static_cast<KernelIsa>(cur);
  return init_isa();
}

bool parse_kernel_isa(std::string_view name, KernelIsa* out) {
  if (name == "auto") {
    *out = best_kernel_isa();
    return true;
  }
  for (int i = 0; i < kNumKernelIsas; ++i) {
    const auto isa = static_cast<KernelIsa>(i);
    if (name == kernel_isa_name(isa)) {
      *out = isa;
      return true;
    }
  }
  return false;
}

std::string kernel_isa_list() {
  std::string out;
  for (int i = 0; i < kNumKernelIsas; ++i) {
    const auto isa = static_cast<KernelIsa>(i);
    if (!out.empty()) out += ' ';
    if (kernel_isa_supported(isa)) {
      out += kernel_isa_name(isa);
    } else {
      out += '(';
      out += kernel_isa_name(isa);
      out += kernel_isa_compiled(isa) ? ": unsupported on this cpu)"
                                      : ": not compiled in)";
    }
  }
  return out;
}

std::uint64_t fallback_count() {
  return g_fallbacks.load(std::memory_order_relaxed);
}

std::string to_json_section() {
  std::string out = "\"kernel\":{\"isa\":\"";
  out += kernel_isa_name(kernel_isa());
  out += "\",\"best\":\"";
  out += kernel_isa_name(best_kernel_isa());
  out += "\",\"fallbacks\":";
  out += std::to_string(fallback_count());
  out += '}';
  return out;
}

void build_tip_lookup(const double* pmats, int ncat, double* lookup) {
  for (int c = 0; c < ncat; ++c) {
    const double* p = pmats + c * 16;
    for (int mask = 0; mask < 16; ++mask) {
      pdotmask(p, static_cast<DnaState>(mask), lookup + c * 64 + mask * 4);
    }
  }
}

// -------------------------------------------------------------------------
// Public dispatch
// -------------------------------------------------------------------------

void newview_tip_tip(const RateLayout& layout, std::size_t begin,
                     std::size_t end, const DnaState* tip_left,
                     const DnaState* tip_right, const double* lookup_left,
                     const double* lookup_right, double* clv, int* scale,
                     const std::uint32_t* pattern_ids) {
  active_ops(layout).newview_tip_tip(layout, begin, end, tip_left, tip_right,
                                     lookup_left, lookup_right, clv, scale,
                                     pattern_ids);
}

void newview_tip_inner(const RateLayout& layout, std::size_t begin,
                       std::size_t end, const DnaState* tip_left,
                       const double* lookup_left, const double* clv_right,
                       const int* scale_right, const double* pmat_right,
                       double* clv, int* scale,
                       const std::uint32_t* pattern_ids) {
  active_ops(layout).newview_tip_inner(layout, begin, end, tip_left,
                                       lookup_left, clv_right, scale_right,
                                       pmat_right, clv, scale, pattern_ids);
}

void newview_inner_inner(const RateLayout& layout, std::size_t begin,
                         std::size_t end, const double* clv_left,
                         const int* scale_left, const double* pmat_left,
                         const double* clv_right, const int* scale_right,
                         const double* pmat_right, double* clv, int* scale,
                         const std::uint32_t* pattern_ids) {
  active_ops(layout).newview_inner_inner(
      layout, begin, end, clv_left, scale_left, pmat_left, clv_right,
      scale_right, pmat_right, clv, scale, pattern_ids);
}

double evaluate_tip_inner(const RateLayout& layout, std::size_t begin,
                          std::size_t end, const double* freqs,
                          const DnaState* tip_x, const double* lookup_x,
                          const double* clv_y, const int* scale_y,
                          const int* weights, double* per_pattern) {
  return active_ops(layout).evaluate_tip_inner(layout, begin, end, freqs,
                                               tip_x, lookup_x, clv_y, scale_y,
                                               weights, per_pattern);
}

double evaluate_inner_inner(const RateLayout& layout, std::size_t begin,
                            std::size_t end, const double* freqs,
                            const double* clv_x, const int* scale_x,
                            const double* pmat, const double* clv_y,
                            const int* scale_y, const int* weights,
                            double* per_pattern) {
  return active_ops(layout).evaluate_inner_inner(layout, begin, end, freqs,
                                                 clv_x, scale_x, pmat, clv_y,
                                                 scale_y, weights,
                                                 per_pattern);
}

void edge_sumtable_tip_inner(const RateLayout& layout, std::size_t begin,
                             std::size_t end, const double* freqs,
                             const double* vmat, const double* vinv,
                             const DnaState* tip_x, const double* clv_y,
                             double* sumtable) {
  active_ops(layout).edge_sumtable_tip_inner(layout, begin, end, freqs, vmat,
                                             vinv, tip_x, clv_y, sumtable);
}

void edge_sumtable_inner_inner(const RateLayout& layout, std::size_t begin,
                               std::size_t end, const double* freqs,
                               const double* vmat, const double* vinv,
                               const double* clv_x, const double* clv_y,
                               double* sumtable) {
  active_ops(layout).edge_sumtable_inner_inner(layout, begin, end, freqs,
                                               vmat, vinv, clv_x, clv_y,
                                               sumtable);
}

Derivatives nr_derivatives(const RateLayout& layout, std::size_t begin,
                           std::size_t end, const double* sumtable,
                           const double* eigenvalues, const double* cat_rates,
                           double t, const int* weights,
                           const int* scale_sum) {
  return active_ops(layout).nr_derivatives(layout, begin, end, sumtable,
                                           eigenvalues, cat_rates, t, weights,
                                           scale_sum);
}

}  // namespace raxh::kern
