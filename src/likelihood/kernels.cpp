#include "likelihood/kernels.h"

#include <atomic>
#include <cmath>
#include <cstring>

namespace raxh::kern {

namespace {

constexpr double kMinLikelihood = 1e-300;

std::atomic<KernelMode> g_kernel_mode{KernelMode::kScalar};

#if defined(__GNUC__)
// GCC notes that passing/returning 256-bit vectors changes ABI without AVX;
// every such function here is internal to this TU and inlined, so the note
// is irrelevant.
#pragma GCC diagnostic ignored "-Wpsabi"

// 4-wide double vector over the state dimension; aligned(8) permits loads
// from arbitrarily-aligned CLV storage.
typedef double v4df __attribute__((vector_size(32), aligned(8)));

inline v4df load4(const double* p) {
  v4df v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void store4(double* p, v4df v) { std::memcpy(p, &v, sizeof(v)); }
inline v4df splat(double x) { return v4df{x, x, x, x}; }

// Transpose one row-major 4x4 P matrix so its columns are contiguous.
inline void transpose16(const double* p, double* pt) {
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) pt[j * 4 + i] = p[i * 4 + j];
}

// x[i] = sum_j P[i][j] y[j] via P's columns: same add order as the scalar
// j-loop, so results are bitwise identical per lane.
inline v4df pdotvec_v(const double* pt, const double* y) {
  const v4df c0 = load4(pt + 0);
  const v4df c1 = load4(pt + 4);
  const v4df c2 = load4(pt + 8);
  const v4df c3 = load4(pt + 12);
  return ((c0 * splat(y[0]) + c1 * splat(y[1])) + c2 * splat(y[2])) +
         c3 * splat(y[3]);
}
#endif  // __GNUC__

// Rescale the clv_cats*4 values of pattern p if they all dropped below the
// threshold; returns 1 if a scaling event happened.
inline int maybe_rescale(double* v, int n) {
  double vmax = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = v[i] < 0.0 ? -v[i] : v[i];
    if (a > vmax) vmax = a;
  }
  if (vmax >= kScaleThreshold || vmax == 0.0) return 0;
  for (int i = 0; i < n; ++i) v[i] *= kScaleFactor;
  return 1;
}

// x[i] = sum_{j in mask} P[i][j] for a full 4x4 row-major P.
inline void pdotmask(const double* p, DnaState mask, double* x) {
  x[0] = x[1] = x[2] = x[3] = 0.0;
  for (int j = 0; j < 4; ++j) {
    if ((mask >> j) & 1) {
      x[0] += p[0 * 4 + j];
      x[1] += p[1 * 4 + j];
      x[2] += p[2 * 4 + j];
      x[3] += p[3 * 4 + j];
    }
  }
}

inline void pdotvec(const double* p, const double* y, double* x) {
  for (int i = 0; i < 4; ++i) {
    x[i] = p[i * 4 + 0] * y[0] + p[i * 4 + 1] * y[1] + p[i * 4 + 2] * y[2] +
           p[i * 4 + 3] * y[3];
  }
}

}  // namespace

void set_kernel_mode(KernelMode mode) {
  g_kernel_mode.store(mode, std::memory_order_relaxed);
}

KernelMode kernel_mode() {
#if defined(__GNUC__)
  return g_kernel_mode.load(std::memory_order_relaxed);
#else
  return KernelMode::kScalar;  // vector path needs GCC/Clang extensions
#endif
}

void build_tip_lookup(const double* pmats, int ncat, double* lookup) {
  for (int c = 0; c < ncat; ++c) {
    const double* p = pmats + c * 16;
    for (int mask = 0; mask < 16; ++mask) {
      pdotmask(p, static_cast<DnaState>(mask), lookup + c * 64 + mask * 4);
    }
  }
}

void newview_tip_tip(const RateLayout& layout, std::size_t begin,
                     std::size_t end, const DnaState* tip_left,
                     const DnaState* tip_right, const double* lookup_left,
                     const double* lookup_right, double* clv, int* scale) {
  const int cc = layout.clv_cats;
  for (std::size_t p = begin; p < end; ++p) {
    double* out = clv + (p * static_cast<std::size_t>(cc)) * 4;
    for (int c = 0; c < cc; ++c) {
      const int mc = layout.model_cat(p, c);
      const double* tl = lookup_left + mc * 64 + tip_left[p] * 4;
      const double* tr = lookup_right + mc * 64 + tip_right[p] * 4;
      for (int i = 0; i < 4; ++i) out[c * 4 + i] = tl[i] * tr[i];
    }
    scale[p] = maybe_rescale(out, cc * 4);
  }
}

void newview_tip_inner(const RateLayout& layout, std::size_t begin,
                       std::size_t end, const DnaState* tip_left,
                       const double* lookup_left, const double* clv_right,
                       const int* scale_right, const double* pmat_right,
                       double* clv, int* scale) {
  const int cc = layout.clv_cats;
#if defined(__GNUC__)
  if (kernel_mode() == KernelMode::kVector &&
      layout.ncat_model <= kMaxCatMatrices) {
    double pt_right[kMaxCatMatrices * 16];
    for (int c = 0; c < layout.ncat_model; ++c)
      transpose16(pmat_right + c * 16, pt_right + c * 16);
    for (std::size_t p = begin; p < end; ++p) {
      double* out = clv + (p * static_cast<std::size_t>(cc)) * 4;
      const double* in_r = clv_right + (p * static_cast<std::size_t>(cc)) * 4;
      for (int c = 0; c < cc; ++c) {
        const int mc = layout.model_cat(p, c);
        const v4df tl = load4(lookup_left + mc * 64 + tip_left[p] * 4);
        const v4df xr = pdotvec_v(pt_right + mc * 16, in_r + c * 4);
        store4(out + c * 4, tl * xr);
      }
      scale[p] = scale_right[p] + maybe_rescale(out, cc * 4);
    }
    return;
  }
#endif
  for (std::size_t p = begin; p < end; ++p) {
    double* out = clv + (p * static_cast<std::size_t>(cc)) * 4;
    const double* in_r = clv_right + (p * static_cast<std::size_t>(cc)) * 4;
    for (int c = 0; c < cc; ++c) {
      const int mc = layout.model_cat(p, c);
      const double* tl = lookup_left + mc * 64 + tip_left[p] * 4;
      double xr[4];
      pdotvec(pmat_right + mc * 16, in_r + c * 4, xr);
      for (int i = 0; i < 4; ++i) out[c * 4 + i] = tl[i] * xr[i];
    }
    scale[p] = scale_right[p] + maybe_rescale(out, cc * 4);
  }
}

void newview_inner_inner(const RateLayout& layout, std::size_t begin,
                         std::size_t end, const double* clv_left,
                         const int* scale_left, const double* pmat_left,
                         const double* clv_right, const int* scale_right,
                         const double* pmat_right, double* clv, int* scale) {
  const int cc = layout.clv_cats;
#if defined(__GNUC__)
  if (kernel_mode() == KernelMode::kVector &&
      layout.ncat_model <= kMaxCatMatrices) {
    double pt_left[kMaxCatMatrices * 16];
    double pt_right[kMaxCatMatrices * 16];
    for (int c = 0; c < layout.ncat_model; ++c) {
      transpose16(pmat_left + c * 16, pt_left + c * 16);
      transpose16(pmat_right + c * 16, pt_right + c * 16);
    }
    for (std::size_t p = begin; p < end; ++p) {
      double* out = clv + (p * static_cast<std::size_t>(cc)) * 4;
      const double* in_l = clv_left + (p * static_cast<std::size_t>(cc)) * 4;
      const double* in_r = clv_right + (p * static_cast<std::size_t>(cc)) * 4;
      for (int c = 0; c < cc; ++c) {
        const int mc = layout.model_cat(p, c);
        const v4df xl = pdotvec_v(pt_left + mc * 16, in_l + c * 4);
        const v4df xr = pdotvec_v(pt_right + mc * 16, in_r + c * 4);
        store4(out + c * 4, xl * xr);
      }
      scale[p] = scale_left[p] + scale_right[p] + maybe_rescale(out, cc * 4);
    }
    return;
  }
#endif
  for (std::size_t p = begin; p < end; ++p) {
    double* out = clv + (p * static_cast<std::size_t>(cc)) * 4;
    const double* in_l = clv_left + (p * static_cast<std::size_t>(cc)) * 4;
    const double* in_r = clv_right + (p * static_cast<std::size_t>(cc)) * 4;
    for (int c = 0; c < cc; ++c) {
      const int mc = layout.model_cat(p, c);
      double xl[4], xr[4];
      pdotvec(pmat_left + mc * 16, in_l + c * 4, xl);
      pdotvec(pmat_right + mc * 16, in_r + c * 4, xr);
      for (int i = 0; i < 4; ++i) out[c * 4 + i] = xl[i] * xr[i];
    }
    scale[p] = scale_left[p] + scale_right[p] + maybe_rescale(out, cc * 4);
  }
}

double evaluate_tip_inner(const RateLayout& layout, std::size_t begin,
                          std::size_t end, const double* freqs,
                          const DnaState* tip_x, const double* lookup_x,
                          const double* clv_y, const int* scale_y,
                          const int* weights, double* per_pattern) {
  const int cc = layout.clv_cats;
  double lnl = 0.0;
  for (std::size_t p = begin; p < end; ++p) {
    const double* y = clv_y + (p * static_cast<std::size_t>(cc)) * 4;
    double total = 0.0;
    for (int c = 0; c < cc; ++c) {
      const int mc = layout.model_cat(p, c);
      // lookup_x rows are P(t) * tip-indicator, i.e. sum_j P_ij x_j; the edge
      // likelihood sums pi_i * y_i * (P x)_i.
      const double* tx = lookup_x + mc * 64 + tip_x[p] * 4;
      double cat = 0.0;
      for (int i = 0; i < 4; ++i) cat += freqs[i] * tx[i] * y[c * 4 + i];
      total += layout.weight(c) * cat;
    }
    if (total < kMinLikelihood) total = kMinLikelihood;
    const double site_lnl = std::log(total) - scale_y[p] * kLogScaleFactor;
    lnl += weights[p] * site_lnl;
    if (per_pattern != nullptr) per_pattern[p] = site_lnl;
  }
  return lnl;
}

double evaluate_inner_inner(const RateLayout& layout, std::size_t begin,
                            std::size_t end, const double* freqs,
                            const double* clv_x, const int* scale_x,
                            const double* pmat, const double* clv_y,
                            const int* scale_y, const int* weights,
                            double* per_pattern) {
  const int cc = layout.clv_cats;
#if defined(__GNUC__)
  if (kernel_mode() == KernelMode::kVector &&
      layout.ncat_model <= kMaxCatMatrices) {
    double pt[kMaxCatMatrices * 16];
    for (int c = 0; c < layout.ncat_model; ++c)
      transpose16(pmat + c * 16, pt + c * 16);
    const v4df fv = load4(freqs);
    double lnl = 0.0;
    for (std::size_t p = begin; p < end; ++p) {
      const double* x = clv_x + (p * static_cast<std::size_t>(cc)) * 4;
      const double* y = clv_y + (p * static_cast<std::size_t>(cc)) * 4;
      double total = 0.0;
      for (int c = 0; c < cc; ++c) {
        const int mc = layout.model_cat(p, c);
        const v4df py = pdotvec_v(pt + mc * 16, y + c * 4);
        const v4df terms = fv * load4(x + c * 4) * py;
        // Same add order as the scalar i-loop.
        const double cat = ((terms[0] + terms[1]) + terms[2]) + terms[3];
        total += layout.weight(c) * cat;
      }
      if (total < kMinLikelihood) total = kMinLikelihood;
      const double site_lnl =
          std::log(total) - (scale_x[p] + scale_y[p]) * kLogScaleFactor;
      lnl += weights[p] * site_lnl;
      if (per_pattern != nullptr) per_pattern[p] = site_lnl;
    }
    return lnl;
  }
#endif
  double lnl = 0.0;
  for (std::size_t p = begin; p < end; ++p) {
    const double* x = clv_x + (p * static_cast<std::size_t>(cc)) * 4;
    const double* y = clv_y + (p * static_cast<std::size_t>(cc)) * 4;
    double total = 0.0;
    for (int c = 0; c < cc; ++c) {
      const int mc = layout.model_cat(p, c);
      double py[4];
      pdotvec(pmat + mc * 16, y + c * 4, py);
      double cat = 0.0;
      for (int i = 0; i < 4; ++i) cat += freqs[i] * x[c * 4 + i] * py[i];
      total += layout.weight(c) * cat;
    }
    if (total < kMinLikelihood) total = kMinLikelihood;
    const double site_lnl =
        std::log(total) - (scale_x[p] + scale_y[p]) * kLogScaleFactor;
    lnl += weights[p] * site_lnl;
    if (per_pattern != nullptr) per_pattern[p] = site_lnl;
  }
  return lnl;
}

void edge_sumtable_tip_inner(const RateLayout& layout, std::size_t begin,
                             std::size_t end, const double* freqs,
                             const double* vmat, const double* vinv,
                             const DnaState* tip_x, const double* clv_y,
                             double* sumtable) {
  const int cc = layout.clv_cats;
  for (std::size_t p = begin; p < end; ++p) {
    const double* y = clv_y + (p * static_cast<std::size_t>(cc)) * 4;
    double* st = sumtable + (p * static_cast<std::size_t>(cc)) * 4;
    double x[4];
    for (int i = 0; i < 4; ++i) x[i] = (tip_x[p] >> i) & 1 ? 1.0 : 0.0;
    for (int c = 0; c < cc; ++c) {
      for (int k = 0; k < 4; ++k) {
        double u = 0.0, w = 0.0;
        for (int i = 0; i < 4; ++i) {
          u += freqs[i] * x[i] * vmat[i * 4 + k];
          w += vinv[k * 4 + i] * y[c * 4 + i];
        }
        st[c * 4 + k] = u * w;
      }
    }
  }
}

void edge_sumtable_inner_inner(const RateLayout& layout, std::size_t begin,
                               std::size_t end, const double* freqs,
                               const double* vmat, const double* vinv,
                               const double* clv_x, const double* clv_y,
                               double* sumtable) {
  const int cc = layout.clv_cats;
  for (std::size_t p = begin; p < end; ++p) {
    const double* x = clv_x + (p * static_cast<std::size_t>(cc)) * 4;
    const double* y = clv_y + (p * static_cast<std::size_t>(cc)) * 4;
    double* st = sumtable + (p * static_cast<std::size_t>(cc)) * 4;
    for (int c = 0; c < cc; ++c) {
      for (int k = 0; k < 4; ++k) {
        double u = 0.0, w = 0.0;
        for (int i = 0; i < 4; ++i) {
          u += freqs[i] * x[c * 4 + i] * vmat[i * 4 + k];
          w += vinv[k * 4 + i] * y[c * 4 + i];
        }
        st[c * 4 + k] = u * w;
      }
    }
  }
}

Derivatives nr_derivatives(const RateLayout& layout, std::size_t begin,
                           std::size_t end, const double* sumtable,
                           const double* eigenvalues, const double* cat_rates,
                           double t, const int* weights) {
  const int cc = layout.clv_cats;
  Derivatives out;
  for (std::size_t p = begin; p < end; ++p) {
    const double* st = sumtable + (p * static_cast<std::size_t>(cc)) * 4;
    double a = 0.0, a1 = 0.0, a2 = 0.0;
    for (int c = 0; c < cc; ++c) {
      const int mc = layout.model_cat(p, c);
      const double r = cat_rates[mc];
      const double wc = layout.weight(c);
      for (int k = 0; k < 4; ++k) {
        const double lr = eigenvalues[k] * r;
        const double term = st[c * 4 + k] * std::exp(lr * t);
        a += wc * term;
        a1 += wc * lr * term;
        a2 += wc * lr * lr * term;
      }
    }
    if (a < kMinLikelihood) a = kMinLikelihood;
    const double w = weights[p];
    out.lnl += w * std::log(a);
    const double inv = 1.0 / a;
    out.d1 += w * a1 * inv;
    out.d2 += w * (a2 * inv - (a1 * inv) * (a1 * inv));
  }
  return out;
}

}  // namespace raxh::kern
