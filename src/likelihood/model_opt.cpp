// Model-parameter optimization for LikelihoodEngine: GTR exchangeabilities
// (Brent per rate, GT fixed as reference), GAMMA shape (Brent), and the CAT
// per-pattern rate re-estimation + clustering of RAxML's
// optimizeRateCategories.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "likelihood/brent.h"
#include "likelihood/engine.h"
#include "util/check.h"

namespace raxh {

namespace {

constexpr double kRateLo = 1e-2;
constexpr double kRateHi = 100.0;
constexpr double kAlphaLo = 0.02;
constexpr double kAlphaHi = 100.0;

// CAT per-pattern rate search grid (log-spaced, RAxML's bounds are similar).
std::vector<double> cat_rate_grid() {
  std::vector<double> grid;
  const double lo = 1.0 / 32.0, hi = 32.0;
  const int steps = 28;
  for (int i = 0; i <= steps; ++i)
    grid.push_back(lo * std::pow(hi / lo, static_cast<double>(i) / steps));
  return grid;
}

}  // namespace

double LikelihoodEngine::optimize_gtr(Tree& tree, double epsilon) {
  double lnl = evaluate(tree);
  // One Brent sweep over the five free exchangeabilities (GT == 1 reference).
  for (int round = 0; round < 3; ++round) {
    const double before = lnl;
    for (std::size_t r = 0; r < 5; ++r) {
      GtrParams params = gtr();
      const auto result = brent_maximize(
          [&](double value) {
            params.rates[r] = value;
            set_gtr(params);
            return evaluate(tree);
          },
          kRateLo, kRateHi, 1e-3);
      params.rates[r] = result.x;
      set_gtr(params);
      lnl = result.fx;
    }
    if (lnl - before < epsilon) break;
  }
  return lnl;
}

double LikelihoodEngine::optimize_alpha(Tree& tree, double epsilon) {
  RAXH_EXPECTS(rates_.kind() == RateKind::kGamma);
  const auto result = brent_maximize(
      [&](double alpha) {
        set_alpha(alpha);
        return evaluate(tree);
      },
      kAlphaLo, kAlphaHi, epsilon);
  set_alpha(result.x);
  return result.fx;
}

double LikelihoodEngine::optimize_cat_rates(Tree& tree) {
  RAXH_EXPECTS(rates_.kind() == RateKind::kCat);
  const std::size_t npat = patterns_->num_patterns();

  // Patterns are independent, so pattern p's lnL when the *global* rate is r
  // equals its lnL when only p's rate is r. Probe the whole grid with
  // single-category models and take the per-pattern argmax.
  const std::vector<double> grid = cat_rate_grid();
  std::vector<double> best_rate(npat, 1.0);
  std::vector<double> best_lnl(npat, -std::numeric_limits<double>::infinity());

  const RateModel saved = rates_;
  std::vector<double> per_pattern(npat);
  for (const double r : grid) {
    rates_.set_categories({r}, std::vector<int>(npat, 0));
    ++model_epoch_;
    // The probe collapses every pattern into category 0; CAT repeat classes
    // fold in the per-pattern category, so they must be rebuilt too.
    ++cat_epoch_;
    per_pattern_lnl(tree, per_pattern);
    for (std::size_t p = 0; p < npat; ++p) {
      if (per_pattern[p] > best_lnl[p]) {
        best_lnl[p] = per_pattern[p];
        best_rate[p] = r;
      }
    }
  }
  rates_ = saved;

  rates_.assign_categories_from_rates(best_rate, weights_);
  const auto ncat = static_cast<std::size_t>(rates_.num_categories());
  pmat_a_.resize(ncat * 16);
  pmat_b_.resize(ncat * 16);
  lookup_a_.resize(ncat * 64);
  lookup_b_.resize(ncat * 64);
  ++model_epoch_;
  // Same as set_cat_assignment: the reassignment invalidates every CAT
  // repeat class array, not just the CLVs.
  ++cat_epoch_;
  return evaluate(tree);
}

}  // namespace raxh
