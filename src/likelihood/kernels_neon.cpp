// NEON kernel-family member: aarch64 Advanced SIMD. The shared vector-
// extension source lowers v4df/v8df to 128-bit q-register pairs; no extra
// flags needed since Advanced SIMD is part of the aarch64 baseline.
#include "likelihood/kernels.h"

#if defined(__aarch64__) && defined(__GNUC__) && \
    !defined(RAXH_DISABLE_SIMD_KERNELS)
#define RAXH_KERNEL_IMPL_NAMESPACE isa_neon
#define RAXH_KERNEL_OPS_ACCESSOR ops_neon
#include "likelihood/kernels_impl.inl"
#else
namespace raxh::kern::detail {
const KernelOps* ops_neon() { return nullptr; }
}  // namespace raxh::kern::detail
#endif
