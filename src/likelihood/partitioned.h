// Partitioned likelihood: one LikelihoodEngine per partition over a SHARED
// topology with joint branch lengths. The total lnL is the sum over
// partitions; branch-length optimization sums the Newton-Raphson derivatives
// across partitions (a branch has one length, but every partition's data
// weighs in); model parameters are optimized per partition independently.
#pragma once

#include <memory>
#include <vector>

#include "bio/partitions.h"
#include "bio/patterns.h"
#include "likelihood/engine.h"
#include "likelihood/evaluator.h"
#include "util/prng.h"

namespace raxh {

class PartitionedEngine final : public Evaluator {
 public:
  enum class RateScheme { kCat, kGamma };

  // Build from an alignment + scheme. Each partition gets its own GTR with
  // empirical frequencies and its own rate model. `crew` (optional) is
  // shared across partitions.
  PartitionedEngine(const Alignment& alignment, const PartitionScheme& scheme,
                    RateScheme rates = RateScheme::kCat,
                    Workforce* crew = nullptr);

  [[nodiscard]] std::size_t num_partitions() const { return engines_.size(); }
  [[nodiscard]] std::size_t num_taxa() const {
    return patterns_.front().num_taxa();
  }
  [[nodiscard]] const PatternAlignment& patterns(std::size_t i) const {
    return patterns_[i];
  }
  [[nodiscard]] LikelihoodEngine& engine(std::size_t i) {
    return *engines_[i];
  }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return patterns_.front().names();
  }

  // --- Evaluator interface ---
  double evaluate(const Tree& tree, int rec) override;
  using Evaluator::evaluate;
  double optimize_branch(Tree& tree, int rec) override;
  double smooth_branches(Tree& tree, int passes) override;
  // Per-partition GTR + rate-model optimization; returns total lnL.
  double optimize_model(Tree& tree) override;

  // Per-partition lnL at the canonical edge (diagnostics, tests).
  [[nodiscard]] std::vector<double> per_partition_lnl(const Tree& tree);

  // Bootstrap support: resample within each partition (columns never cross
  // partitions, as in RAxML's partitioned bootstrapping).
  void set_bootstrap_weights(Lcg& rng);
  void reset_weights();

 private:
  std::vector<PatternAlignment> patterns_;  // owned; engines point into these
  std::vector<std::unique_ptr<LikelihoodEngine>> engines_;
  RateScheme rate_scheme_;
};

}  // namespace raxh
