// Generic kernel-family member: GCC vector extensions compiled at the
// build's baseline architecture (SSE2 on x86-64, Advanced SIMD on aarch64).
// Always available wherever the compiler supports vector extensions.
#include "likelihood/kernels.h"

#if defined(__GNUC__) && !defined(RAXH_DISABLE_SIMD_KERNELS)
#define RAXH_KERNEL_IMPL_NAMESPACE isa_generic
#define RAXH_KERNEL_OPS_ACCESSOR ops_generic
#include "likelihood/kernels_impl.inl"
#else
namespace raxh::kern::detail {
const KernelOps* ops_generic() { return nullptr; }
}  // namespace raxh::kern::detail
#endif
