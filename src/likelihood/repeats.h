// Site-repeat detection (Kobert-style per-node repeat classes) for the
// likelihood engine. Two patterns are in the same repeat class at a node
// when the pattern columns restricted to the node's subtree are identical —
// then their CLVs (values AND scale counts) are identical, so newview can
// compute one representative per class and copy the rest.
//
// Classes are built bottom-up: a tip's class is its 4-bit IUPAC mask (plus
// the pattern's rate category under CAT, where the per-pattern P matrix
// differs), and an inner node's class is the pair (left child class, right
// child class) renumbered densely. Classes depend only on subtree topology
// and tip data — NOT on branch lengths or model parameters — so they survive
// the branch-length smoothing that dominates a search; the engine tracks
// their validity separately from CLV validity (engine.cpp).
//
// Copying a CLV is exact, so repeats on/off is bitwise-invisible to every
// evaluate/derivative result; golden trees do not move.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bio/dna.h"

namespace raxh {

// Process-wide repeat toggle: on by default, RAXH_REPEATS=off (or
// set_repeats_enabled(false), or the CLI's --repeats=off) disables. Read
// once per engine newview; cheap.
[[nodiscard]] bool repeats_enabled();
void set_repeats_enabled(bool enabled);

// Opt-in (default OFF): fold per-pattern repeat copy rates into the
// engine's weighted_partition() cost vector so crews balance *computed*
// work, charging frequently-copied patterns ~0. Changing the partition
// bounds changes the crew reduction split — and with it the last bits of
// multi-threaded lnL sums — so this must stay off for golden-tree
// reproduction runs. RAXH_REPEAT_COSTS=on enables.
[[nodiscard]] bool repeat_cost_folding();
void set_repeat_cost_folding(bool enabled);

// A node's per-pattern repeat classes viewed as an input to the combine
// step: either an inner node's dense class array, or a tip row (classes
// derived on the fly from the IUPAC mask and, under CAT, the pattern's
// category).
struct ClassSource {
  const std::uint32_t* classes = nullptr;  // inner node: dense class ids
  const DnaState* tips = nullptr;          // tip: IUPAC masks
  const int* pattern_cat = nullptr;        // CAT only (tip sources)
  std::uint32_t num_classes = 0;

  [[nodiscard]] std::uint32_t at(std::size_t p) const {
    if (classes != nullptr) return classes[p];
    const std::uint32_t cat =
        pattern_cat != nullptr ? static_cast<std::uint32_t>(pattern_cat[p]) : 0;
    return static_cast<std::uint32_t>(tips[p]) + 16 * cat;
  }
  [[nodiscard]] static ClassSource tip(const DnaState* row,
                                       const int* pcat, int ncat) {
    ClassSource s;
    s.tips = row;
    s.pattern_cat = pcat;
    s.num_classes = 16 * static_cast<std::uint32_t>(pcat != nullptr ? ncat : 1);
    return s;
  }
  [[nodiscard]] static ClassSource inner(const std::uint32_t* classes,
                                         std::uint32_t num_classes) {
    ClassSource s;
    s.classes = classes;
    s.num_classes = num_classes;
    return s;
  }
};

// Pair-renumbering scratch, reusable across newviews so the direct lookup
// table is allocated once. Not thread-safe; the engine combines on the
// master thread (an O(npat) pass, small next to the kernels it saves).
class RepeatCombiner {
 public:
  // Densely renumber the pairs (a.at(p), b.at(p)) over [0, npat): fills
  // class_of[p] with the pattern's class id and reps[k] with the first
  // (lowest-index) pattern of class k; returns the class count.
  std::uint32_t combine(const ClassSource& a, const ClassSource& b,
                        std::size_t npat,
                        std::vector<std::uint32_t>* class_of,
                        std::vector<std::uint32_t>* reps);

 private:
  // Direct table for small pair spaces (a.num_classes * b.num_classes <=
  // kDirectMax), stamped per call so it never needs clearing; hash map
  // beyond that.
  static constexpr std::uint64_t kDirectMax = std::uint64_t{1} << 20;
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint32_t> table_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> map_;
};

// Per-CLV-slot repeat state owned by the engine. `version` identifies the
// class-array content so parents can validate against it (analogous to the
// CLV SlotMeta version).
struct SlotRepeats {
  int oriented_rec = -1;
  int child_rec1 = -1, child_rec2 = -1;
  std::uint64_t child_ver1 = 0, child_ver2 = 0;  // child repeat versions
  std::uint64_t cat_epoch = 0;   // CAT assignment the classes were built for
  std::uint64_t version = 0;     // 0 = never built
  std::uint32_t num_classes = 0;
  bool active = false;  // worth using (enough duplication)
  std::vector<std::uint32_t> class_of;
  std::vector<std::uint32_t> reps;
};

// A repeat map is only worth applying when enough patterns are copies;
// computing representatives through a scattered id list costs slightly more
// per pattern than a straight range.
inline constexpr double kRepeatActivationRatio = 0.9;

}  // namespace raxh
