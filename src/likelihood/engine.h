// The phylogenetic likelihood engine: conditional likelihood vectors over a
// Tree, lazily recomputed and striped across the thread crew. This is the
// substrate both the serial and the fine-grained parallel code paths of the
// reproduction share — with a crew of T threads it is RAxML's Pthreads mode,
// with T=1 it is the serial code.
//
// CLV validity is *self-checking*: each internal node slot remembers which
// directed record it is oriented to, which children (and branch lengths, and
// content versions) it was computed from, and the model epoch. ensure-time
// validation recomputes exactly the stale subset, so callers never issue
// explicit invalidations after SPR moves or branch-length changes.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bio/patterns.h"
#include "likelihood/kernels.h"
#include "likelihood/repeats.h"
#include "model/gtr.h"
#include "model/rates.h"
#include "parallel/workforce.h"
#include "tree/tree.h"
#include "util/aligned.h"

namespace raxh {

class LikelihoodEngine {
 public:
  // `patterns` must outlive the engine. `crew` may be nullptr (serial) and
  // must outlive the engine if given.
  LikelihoodEngine(const PatternAlignment& patterns, const GtrParams& gtr,
                   RateModel rates, Workforce* crew = nullptr);

  [[nodiscard]] std::size_t num_patterns() const {
    return patterns_->num_patterns();
  }
  [[nodiscard]] const RateModel& rates() const { return rates_; }
  [[nodiscard]] const GtrParams& gtr() const { return model_.params(); }
  [[nodiscard]] Workforce* crew() const { return crew_; }

  // --- weights (bootstrap replicates swap these) ---
  void set_weights(std::span<const int> weights);
  void reset_weights();  // back to the alignment's pattern multiplicities
  [[nodiscard]] std::span<const int> weights() const { return weights_; }

  // --- model mutation (each bumps the model epoch; CLVs revalidate lazily) ---
  void set_gtr(const GtrParams& params);
  void set_alpha(double alpha);  // GAMMA only
  void set_cat_assignment(std::vector<double> category_rates,
                          std::vector<int> pattern_categories);  // CAT only

  // --- evaluation ---

  // Log-likelihood at the edge (rec, back(rec)).
  double evaluate(const Tree& tree, int rec);
  // Log-likelihood at the canonical edge (tip 0's edge).
  double evaluate(const Tree& tree) { return evaluate(tree, 0); }
  // Per-pattern site log-likelihoods at the canonical edge.
  void per_pattern_lnl(const Tree& tree, std::span<double> out);

  // --- optimization ---

  // Newton-Raphson on one branch; leaves the optimized length in the tree
  // and returns it.
  double optimize_branch(Tree& tree, int rec);
  // Optimize every branch `passes` times; returns final lnL.
  double smooth_branches(Tree& tree, int passes = 1);
  // Cycle Brent over the five free GTR exchangeabilities; returns final lnL.
  double optimize_gtr(Tree& tree, double epsilon = 0.1);
  // Brent on the GAMMA shape; returns final lnL. GAMMA only.
  double optimize_alpha(Tree& tree, double epsilon = 0.01);
  // Re-estimate per-pattern rates over a log-spaced grid, recluster into
  // categories (RAxML's optimizeRateCategories). CAT only. Returns final lnL.
  double optimize_cat_rates(Tree& tree);
  // Full round-robin (branches + model) until the lnL gain per round drops
  // below epsilon. Returns final lnL.
  double optimize_all(Tree& tree, double epsilon = 0.1, int max_rounds = 10);

  // --- low-level branch-optimization API ---
  // Used by PartitionedEngine to sum Newton-Raphson derivatives across
  // partitions: prepare_branch builds the edge sumtable, branch_derivatives
  // evaluates (lnl, d1, d2) at a candidate branch length. The prepared state
  // stays valid until the next engine operation that touches the scratch
  // buffers (any evaluate/newview), so call them back-to-back.
  void prepare_branch(const Tree& tree, int rec);
  kern::Derivatives branch_derivatives(double t);

  // Force full recomputation (tests / defensive use).
  void invalidate_all() { ++model_epoch_; }

  // Number of newview kernel invocations so far (calibration + tests).
  [[nodiscard]] std::uint64_t newview_count() const { return newview_count_; }

  // CLV storage layout chosen at construction: blocked SoA for GAMMA /
  // uniform rates (vector loads across pattern lanes), pattern-major for CAT
  // (per-pattern categories break lane uniformity). RAXH_CLV_LAYOUT=
  // pattern-major|blocked overrides (blocked is ignored for CAT).
  [[nodiscard]] kern::ClvLayout clv_layout() const { return clv_layout_; }

  // Site-repeat bookkeeping for the most recent newview of `rec`'s slot
  // (tests + benches): number of repeat classes, or 0 when repeats were not
  // applied there.
  [[nodiscard]] std::uint32_t repeat_classes(const Tree& tree, int rec) const;

  // Sum over patterns of the combined scale counts at edge `rec`'s CLV
  // endpoints (tips contribute zero; ensures the CLVs first). Tests use this
  // to prove a deep tree actually rescales before relying on scale-corrected
  // NR-vs-evaluate comparisons.
  [[nodiscard]] std::uint64_t edge_scale_total(const Tree& tree, int rec);

 private:
  struct SlotMeta {
    int oriented_rec = -1;
    std::uint64_t model_epoch = 0;
    int child_rec1 = -1, child_rec2 = -1;
    double child_len1 = -1.0, child_len2 = -1.0;
    std::uint64_t child_ver1 = 0, child_ver2 = 0;
    std::uint64_t version = 0;  // bumped on every recompute
  };

  [[nodiscard]] int clv_cats() const;
  [[nodiscard]] kern::RateLayout layout() const;
  [[nodiscard]] double* clv(int slot);
  [[nodiscard]] int* scale(int slot);
  [[nodiscard]] std::uint64_t content_version(const Tree& tree, int rec) const;

  // Make CLV(rec) valid (recursing into children); no-op for tips.
  void ensure_clv(const Tree& tree, int rec);
  void compute_clv(const Tree& tree, int rec);

  // --- site repeats (repeats.h) ---
  // Repeat-class version of rec's node (tips: derived from the CAT epoch).
  [[nodiscard]] std::uint64_t repeat_version(const Tree& tree, int rec) const;
  // Make the repeat classes of inner node rec valid, recursing into
  // children. Classes depend on subtree topology + tip data only, so they
  // survive branch-length and model changes (CAT category reassignment
  // excepted).
  void ensure_repeat_classes(const Tree& tree, int rec);
  [[nodiscard]] ClassSource class_source(const Tree& tree, int rec) const;

  // Fill pmats (ncat_model * 16) for branch length t.
  void fill_pmats(double t, std::vector<double>& pmats) const;

  // Partitioned dispatch helper: runs fn(begin, end, tid) over patterns,
  // splitting by the cost-aware partition (see refresh_partition()).
  template <typename Fn>
  void dispatch(Fn&& fn);
  // Partitioned dispatch with double-sum reduction of fn's return value
  // (summed in fixed tid order — deterministic for a fixed thread count).
  template <typename Fn>
  double dispatch_sum(Fn&& fn);
  // Plain striped dispatch over [0, n) — used for the repeat-representative
  // domain, which has its own index space.
  template <typename Fn>
  void dispatch_range(std::size_t n, Fn&& fn);

  // Rebuild the per-pattern cost vector (pattern weight x stored CLV
  // categories — GAMMA patterns carry ncat categories, CAT/uniform one) and
  // the weighted prefix-sum partition of the pattern range across the crew.
  // Cached per weights epoch; weights are the only per-pattern cost input
  // that changes after construction (bootstrap replicates swap them).
  void refresh_partition();

  double evaluate_edge(const Tree& tree, int rec, double* per_pattern);
  void build_sumtable(const Tree& tree, int rec);

  const PatternAlignment* patterns_;
  GtrModel model_;
  RateModel rates_;
  Workforce* crew_;

  std::vector<int> weights_;
  std::uint64_t weights_epoch_ = 0;  // bumped whenever weights_ changes
  std::vector<double> cat_weights_;  // GAMMA: 1/ncat each

  // Cost-aware crew partition: part_bounds_[t]..part_bounds_[t+1] is thread
  // t's pattern range; rebuilt when weights_epoch_ moves past part_epoch_.
  std::vector<std::size_t> part_bounds_;
  std::uint64_t part_epoch_ = ~std::uint64_t{0};

  kern::ClvLayout clv_layout_ = kern::ClvLayout::kPatternMajor;
  std::size_t clv_stride_ = 0;  // doubles per slot (padded under blocked)
  AlignedVector<double> clvs_;  // 64-byte aligned for the SIMD members
  std::vector<int> scales_;
  std::vector<SlotMeta> slots_;
  std::uint64_t model_epoch_ = 1;
  std::uint64_t version_counter_ = 1;
  std::uint64_t newview_count_ = 0;

  // Site-repeat state: per-slot classes plus combine scratch; copy-hit
  // tallies feed the opt-in repeat-aware partition costs.
  std::vector<SlotRepeats> slot_repeats_;
  RepeatCombiner combiner_;
  std::uint64_t repeat_version_counter_ = 0;
  std::uint64_t cat_epoch_ = 0;  // bumped by set_cat_assignment
  std::uint64_t repeat_newviews_ = 0;     // repeat-active newviews so far
  std::uint64_t part_fold_newviews_ = 0;  // ... at the last partition build
  std::vector<std::uint32_t> repeat_copy_hits_;  // per-pattern copies

  // Scratch (master-filled, crew-read).
  std::vector<double> pmat_a_, pmat_b_;
  std::vector<double> lookup_a_, lookup_b_;
  AlignedVector<double> sumtable_;
  std::vector<int> sum_scale_;  // combined scale counts of the sumtable edge
  std::vector<double> per_pattern_scratch_;
};

// Safeguarded Newton-Raphson on a branch length: `derivatives(t)` supplies
// (lnl, d1, d2); returns the converged length in [kMin, kMax]BranchLength.
double newton_branch_length(
    const std::function<kern::Derivatives(double)>& derivatives, double t0);

}  // namespace raxh
