// Shared source of the SIMD kernel-family members. Each per-ISA translation
// unit (kernels_generic.cpp, kernels_avx2.cpp, kernels_avx512.cpp,
// kernels_neon.cpp) defines
//
//   #define RAXH_KERNEL_IMPL_NAMESPACE isa_avx2   // unique per TU
//   #define RAXH_KERNEL_OPS_ACCESSOR ops_avx2     // detail:: accessor name
//
// and includes this file; CMake adds the ISA's -m flags to that TU only, so
// GCC emits the same C++ with different instruction selection. All members
// are compiled with -ffp-contract=off and keep the scalar reference's
// per-lane operation order (see the comments on each kernel), which makes
// every member bitwise-identical to scalar — the property the golden-tree
// and daemon bit-identity tests rely on.
//
// Two vector shapes are used:
//  * pattern-major layout: v4df across the 4 states of one (pattern,
//    category), exactly the old KernelMode::kVector path;
//  * blocked layout: v8df across the kBlockLanes patterns of one
//    (category, state) plane — each lane is an independent pattern, so
//    per-lane order is trivially the scalar order.
//
// Subranges the vector shapes can't cover — partial blocks at range edges,
// scattered repeat-id lists under the blocked layout — delegate to
// detail::ops_scalar(), which is bitwise-equivalent by construction.

#include <cmath>
#include <cstring>

#include "likelihood/kernels.h"

#if !defined(RAXH_KERNEL_IMPL_NAMESPACE) || !defined(RAXH_KERNEL_OPS_ACCESSOR)
#error "include kernels_impl.inl only from a per-ISA TU with the macros set"
#endif

// GCC notes that passing/returning wide vectors changes ABI without the
// matching -m flags; every such function here is internal and inlined, so
// the note is irrelevant. No push/pop: GCC emits the note when the inline
// functions are materialized at end of TU, after any pop would run.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace raxh::kern::detail {
namespace RAXH_KERNEL_IMPL_NAMESPACE {

constexpr double kMinLikelihood = 1e-300;
constexpr int kL = kBlockLanes;

// aligned(8) permits loads from arbitrarily-aligned storage; the engine's
// CLV buffers are 64-byte aligned, but tests may pass plain vectors.
typedef double v4df __attribute__((vector_size(32), aligned(8)));
typedef double v8df __attribute__((vector_size(64), aligned(8)));

inline v4df load4(const double* p) {
  v4df v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void store4(double* p, v4df v) { std::memcpy(p, &v, sizeof(v)); }
inline v4df splat4(double x) { return v4df{x, x, x, x}; }

inline v8df load8(const double* p) {
  v8df v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void store8(double* p, v8df v) { std::memcpy(p, &v, sizeof(v)); }
inline v8df splat8(double x) { return v8df{x, x, x, x, x, x, x, x}; }

// Transpose one row-major 4x4 matrix so its columns are contiguous.
inline void transpose16(const double* p, double* pt) {
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) pt[j * 4 + i] = p[i * 4 + j];
}

// x[i] = sum_j P[i][j] y[j] via P's columns: same add order as the scalar
// j-loop (((c0*y0 + c1*y1) + c2*y2) + c3*y3), so results are bitwise
// identical per lane.
inline v4df pdotvec_v(const double* pt, const double* y) {
  const v4df c0 = load4(pt + 0);
  const v4df c1 = load4(pt + 4);
  const v4df c2 = load4(pt + 8);
  const v4df c3 = load4(pt + 12);
  return ((c0 * splat4(y[0]) + c1 * splat4(y[1])) + c2 * splat4(y[2])) +
         c3 * splat4(y[3]);
}

// Same product over pattern lanes: y[j] is the (category, state j) plane.
inline v8df pdotvec_b(const double* pm, const v8df y[4], int i) {
  return ((splat8(pm[i * 4 + 0]) * y[0] + splat8(pm[i * 4 + 1]) * y[1]) +
          splat8(pm[i * 4 + 2]) * y[2]) +
         splat8(pm[i * 4 + 3]) * y[3];
}

// Rescale pattern p's contiguous cc*4 values if all dropped below the
// threshold (pattern-major layout); same code as the scalar reference.
inline int maybe_rescale_pm(double* v, int n) {
  double vmax = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = v[i] < 0.0 ? -v[i] : v[i];
    if (a > vmax) vmax = a;
  }
  if (vmax >= kScaleThreshold || vmax == 0.0) return 0;
  for (int i = 0; i < n; ++i) v[i] *= kScaleFactor;
  return 1;
}

// Per-lane rescale of one full block (cc*4 planes of kL lanes starting at
// `base`); writes 0/1 scale events to ev[kL]. max is order-insensitive and
// scaling multiplies by an exact power of two, so lanes match the scalar
// per-pattern path bitwise.
inline void maybe_rescale_block(double* base, int cc, int* ev) {
  const int planes = cc * 4;
  v8df vmax = splat8(0.0);
  for (int pl = 0; pl < planes; ++pl) {
    const v8df v = load8(base + pl * kL);
    const v8df a = v < splat8(0.0) ? -v : v;
    vmax = a > vmax ? a : vmax;
  }
  bool any = false;
  v8df factor = splat8(1.0);
  for (int lane = 0; lane < kL; ++lane) {
    const double m = vmax[lane];
    const int e = (m >= kScaleThreshold || m == 0.0) ? 0 : 1;
    ev[lane] = e;
    if (e) {
      any = true;
      factor[lane] = kScaleFactor;
    }
  }
  if (!any) return;
  for (int pl = 0; pl < planes; ++pl)
    store8(base + pl * kL, load8(base + pl * kL) * factor);
}

// Full blocks strictly inside [begin, end): callers vector-process
// [blk_begin, blk_end) blocks and delegate the ragged head/tail pattern
// ranges to the scalar reference.
struct BlockSpan {
  std::size_t head_end;    // first block-aligned pattern >= begin
  std::size_t tail_begin;  // last block-aligned pattern <= end
};
inline BlockSpan block_span(std::size_t begin, std::size_t end) {
  std::size_t head_end = (begin + kL - 1) / kL * kL;
  std::size_t tail_begin = end / kL * kL;
  if (head_end > end) head_end = end;
  if (tail_begin < head_end) tail_begin = head_end;
  return {head_end, tail_begin};
}

// ---------------------------------------------------------------------------
// newview
// ---------------------------------------------------------------------------

void nv_tip_tip(const RateLayout& l, std::size_t begin, std::size_t end,
                const DnaState* tip_left, const DnaState* tip_right,
                const double* lookup_left, const double* lookup_right,
                double* clv, int* scale, const std::uint32_t* ids) {
  const int cc = l.clv_cats;
  if (l.clv_layout == ClvLayout::kPatternMajor) {
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t p = ids != nullptr ? ids[k] : k;
      double* out = clv + (p * static_cast<std::size_t>(cc)) * 4;
      for (int c = 0; c < cc; ++c) {
        const int mc = l.model_cat(p, c);
        const v4df tl = load4(lookup_left + mc * 64 + tip_left[p] * 4);
        const v4df tr = load4(lookup_right + mc * 64 + tip_right[p] * 4);
        store4(out + c * 4, tl * tr);
      }
      scale[p] = maybe_rescale_pm(out, cc * 4);
    }
    return;
  }
  if (ids != nullptr) {  // scattered lanes: scalar order, same bits
    ops_scalar()->newview_tip_tip(l, begin, end, tip_left, tip_right,
                                  lookup_left, lookup_right, clv, scale, ids);
    return;
  }
  const BlockSpan bs = block_span(begin, end);
  if (begin < bs.head_end)
    ops_scalar()->newview_tip_tip(l, begin, bs.head_end, tip_left, tip_right,
                                  lookup_left, lookup_right, clv, scale,
                                  nullptr);
  for (std::size_t p0 = bs.head_end; p0 < bs.tail_begin; p0 += kL) {
    double* base = clv + (p0 / kL) * static_cast<std::size_t>(cc) * 4 * kL;
    for (int c = 0; c < cc; ++c) {
      for (int i = 0; i < 4; ++i) {
        double* plane = base + (c * 4 + i) * kL;
        for (int lane = 0; lane < kL; ++lane) {
          const std::size_t p = p0 + lane;
          plane[lane] = lookup_left[c * 64 + tip_left[p] * 4 + i] *
                        lookup_right[c * 64 + tip_right[p] * 4 + i];
        }
      }
    }
    int ev[kL];
    maybe_rescale_block(base, cc, ev);
    for (int lane = 0; lane < kL; ++lane) scale[p0 + lane] = ev[lane];
  }
  if (bs.tail_begin < end)
    ops_scalar()->newview_tip_tip(l, bs.tail_begin, end, tip_left, tip_right,
                                  lookup_left, lookup_right, clv, scale,
                                  nullptr);
}

void nv_tip_inner(const RateLayout& l, std::size_t begin, std::size_t end,
                  const DnaState* tip_left, const double* lookup_left,
                  const double* clv_right, const int* scale_right,
                  const double* pmat_right, double* clv, int* scale,
                  const std::uint32_t* ids) {
  const int cc = l.clv_cats;
  if (l.clv_layout == ClvLayout::kPatternMajor) {
    double pt_right[kMaxCatMatrices * 16];
    for (int c = 0; c < l.ncat_model; ++c)
      transpose16(pmat_right + c * 16, pt_right + c * 16);
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t p = ids != nullptr ? ids[k] : k;
      double* out = clv + (p * static_cast<std::size_t>(cc)) * 4;
      const double* in_r = clv_right + (p * static_cast<std::size_t>(cc)) * 4;
      for (int c = 0; c < cc; ++c) {
        const int mc = l.model_cat(p, c);
        const v4df tl = load4(lookup_left + mc * 64 + tip_left[p] * 4);
        const v4df xr = pdotvec_v(pt_right + mc * 16, in_r + c * 4);
        store4(out + c * 4, tl * xr);
      }
      scale[p] = scale_right[p] + maybe_rescale_pm(out, cc * 4);
    }
    return;
  }
  if (ids != nullptr) {
    ops_scalar()->newview_tip_inner(l, begin, end, tip_left, lookup_left,
                                    clv_right, scale_right, pmat_right, clv,
                                    scale, ids);
    return;
  }
  const BlockSpan bs = block_span(begin, end);
  if (begin < bs.head_end)
    ops_scalar()->newview_tip_inner(l, begin, bs.head_end, tip_left,
                                    lookup_left, clv_right, scale_right,
                                    pmat_right, clv, scale, nullptr);
  const std::size_t blk_doubles = static_cast<std::size_t>(cc) * 4 * kL;
  for (std::size_t p0 = bs.head_end; p0 < bs.tail_begin; p0 += kL) {
    double* base = clv + (p0 / kL) * blk_doubles;
    const double* base_r = clv_right + (p0 / kL) * blk_doubles;
    for (int c = 0; c < cc; ++c) {
      // blocked is rejected for CAT at dispatch, so model_cat(p, c) == c.
      v8df y[4];
      for (int j = 0; j < 4; ++j) y[j] = load8(base_r + (c * 4 + j) * kL);
      const double* pm = pmat_right + c * 16;
      for (int i = 0; i < 4; ++i) {
        v8df tl;
        for (int lane = 0; lane < kL; ++lane)
          tl[lane] = lookup_left[c * 64 + tip_left[p0 + lane] * 4 + i];
        store8(base + (c * 4 + i) * kL, tl * pdotvec_b(pm, y, i));
      }
    }
    int ev[kL];
    maybe_rescale_block(base, cc, ev);
    for (int lane = 0; lane < kL; ++lane)
      scale[p0 + lane] = scale_right[p0 + lane] + ev[lane];
  }
  if (bs.tail_begin < end)
    ops_scalar()->newview_tip_inner(l, bs.tail_begin, end, tip_left,
                                    lookup_left, clv_right, scale_right,
                                    pmat_right, clv, scale, nullptr);
}

void nv_inner_inner(const RateLayout& l, std::size_t begin, std::size_t end,
                    const double* clv_left, const int* scale_left,
                    const double* pmat_left, const double* clv_right,
                    const int* scale_right, const double* pmat_right,
                    double* clv, int* scale, const std::uint32_t* ids) {
  const int cc = l.clv_cats;
  if (l.clv_layout == ClvLayout::kPatternMajor) {
    double pt_left[kMaxCatMatrices * 16];
    double pt_right[kMaxCatMatrices * 16];
    for (int c = 0; c < l.ncat_model; ++c) {
      transpose16(pmat_left + c * 16, pt_left + c * 16);
      transpose16(pmat_right + c * 16, pt_right + c * 16);
    }
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t p = ids != nullptr ? ids[k] : k;
      double* out = clv + (p * static_cast<std::size_t>(cc)) * 4;
      const double* in_l = clv_left + (p * static_cast<std::size_t>(cc)) * 4;
      const double* in_r = clv_right + (p * static_cast<std::size_t>(cc)) * 4;
      for (int c = 0; c < cc; ++c) {
        const int mc = l.model_cat(p, c);
        const v4df xl = pdotvec_v(pt_left + mc * 16, in_l + c * 4);
        const v4df xr = pdotvec_v(pt_right + mc * 16, in_r + c * 4);
        store4(out + c * 4, xl * xr);
      }
      scale[p] = scale_left[p] + scale_right[p] + maybe_rescale_pm(out, cc * 4);
    }
    return;
  }
  if (ids != nullptr) {
    ops_scalar()->newview_inner_inner(l, begin, end, clv_left, scale_left,
                                      pmat_left, clv_right, scale_right,
                                      pmat_right, clv, scale, ids);
    return;
  }
  const BlockSpan bs = block_span(begin, end);
  if (begin < bs.head_end)
    ops_scalar()->newview_inner_inner(l, begin, bs.head_end, clv_left,
                                      scale_left, pmat_left, clv_right,
                                      scale_right, pmat_right, clv, scale,
                                      nullptr);
  const std::size_t blk_doubles = static_cast<std::size_t>(cc) * 4 * kL;
  for (std::size_t p0 = bs.head_end; p0 < bs.tail_begin; p0 += kL) {
    double* base = clv + (p0 / kL) * blk_doubles;
    const double* base_l = clv_left + (p0 / kL) * blk_doubles;
    const double* base_r = clv_right + (p0 / kL) * blk_doubles;
    for (int c = 0; c < cc; ++c) {
      v8df yl[4], yr[4];
      for (int j = 0; j < 4; ++j) {
        yl[j] = load8(base_l + (c * 4 + j) * kL);
        yr[j] = load8(base_r + (c * 4 + j) * kL);
      }
      const double* pl = pmat_left + c * 16;
      const double* pr = pmat_right + c * 16;
      for (int i = 0; i < 4; ++i)
        store8(base + (c * 4 + i) * kL,
               pdotvec_b(pl, yl, i) * pdotvec_b(pr, yr, i));
    }
    int ev[kL];
    maybe_rescale_block(base, cc, ev);
    for (int lane = 0; lane < kL; ++lane)
      scale[p0 + lane] =
          scale_left[p0 + lane] + scale_right[p0 + lane] + ev[lane];
  }
  if (bs.tail_begin < end)
    ops_scalar()->newview_inner_inner(l, bs.tail_begin, end, clv_left,
                                      scale_left, pmat_left, clv_right,
                                      scale_right, pmat_right, clv, scale,
                                      nullptr);
}

// ---------------------------------------------------------------------------
// evaluate
//
// The range lnL is a left fold in ascending pattern order in the scalar
// reference; block lanes are therefore accumulated lane-by-lane (cheap next
// to the per-category vector work) so the fold order is preserved bitwise.
// ---------------------------------------------------------------------------

double ev_tip_inner(const RateLayout& l, std::size_t begin, std::size_t end,
                    const double* freqs, const DnaState* tip_x,
                    const double* lookup_x, const double* clv_y,
                    const int* scale_y, const int* weights,
                    double* per_pattern) {
  const int cc = l.clv_cats;
  double lnl = 0.0;
  if (l.clv_layout == ClvLayout::kPatternMajor) {
    const v4df fv = load4(freqs);
    for (std::size_t p = begin; p < end; ++p) {
      const double* y = clv_y + (p * static_cast<std::size_t>(cc)) * 4;
      double total = 0.0;
      for (int c = 0; c < cc; ++c) {
        const int mc = l.model_cat(p, c);
        const v4df tx = load4(lookup_x + mc * 64 + tip_x[p] * 4);
        const v4df terms = fv * tx * load4(y + c * 4);
        // Same add order as the scalar i-loop.
        const double cat = ((terms[0] + terms[1]) + terms[2]) + terms[3];
        total += l.weight(c) * cat;
      }
      if (total < kMinLikelihood) total = kMinLikelihood;
      const double site_lnl = std::log(total) - scale_y[p] * kLogScaleFactor;
      lnl += weights[p] * site_lnl;
      if (per_pattern != nullptr) per_pattern[p] = site_lnl;
    }
    return lnl;
  }
  const BlockSpan bs = block_span(begin, end);
  // Ragged head/tail patterns must fold into the SAME running accumulator as
  // the block middle: a delegated partial sum (summed from 0.0, then added)
  // re-associates the range fold and breaks bitwise parity with the scalar
  // reference. Inline the scalar per-pattern body instead.
  const auto fold_scalar_order = [&](std::size_t from, std::size_t to) {
    for (std::size_t p = from; p < to; ++p) {
      double total = 0.0;
      for (int c = 0; c < cc; ++c) {
        const int mc = l.model_cat(p, c);
        const double* tx = lookup_x + mc * 64 + tip_x[p] * 4;
        double cat = 0.0;
        for (int i = 0; i < 4; ++i)
          cat += freqs[i] * tx[i] * clv_y[l.clv_index(p, c, i)];
        total += l.weight(c) * cat;
      }
      if (total < kMinLikelihood) total = kMinLikelihood;
      const double site_lnl = std::log(total) - scale_y[p] * kLogScaleFactor;
      lnl += weights[p] * site_lnl;
      if (per_pattern != nullptr) per_pattern[p] = site_lnl;
    }
  };
  fold_scalar_order(begin, bs.head_end);
  const std::size_t blk_doubles = static_cast<std::size_t>(cc) * 4 * kL;
  for (std::size_t p0 = bs.head_end; p0 < bs.tail_begin; p0 += kL) {
    const double* base_y = clv_y + (p0 / kL) * blk_doubles;
    v8df total = splat8(0.0);
    for (int c = 0; c < cc; ++c) {
      v8df cat = splat8(0.0);
      for (int i = 0; i < 4; ++i) {
        v8df tx;
        for (int lane = 0; lane < kL; ++lane)
          tx[lane] = lookup_x[c * 64 + tip_x[p0 + lane] * 4 + i];
        cat = cat + splat8(freqs[i]) * tx * load8(base_y + (c * 4 + i) * kL);
      }
      total = total + splat8(l.weight(c)) * cat;
    }
    for (int lane = 0; lane < kL; ++lane) {
      const std::size_t p = p0 + lane;
      double t = total[lane];
      if (t < kMinLikelihood) t = kMinLikelihood;
      const double site_lnl = std::log(t) - scale_y[p] * kLogScaleFactor;
      lnl += weights[p] * site_lnl;
      if (per_pattern != nullptr) per_pattern[p] = site_lnl;
    }
  }
  fold_scalar_order(bs.tail_begin, end);
  return lnl;
}

double ev_inner_inner(const RateLayout& l, std::size_t begin, std::size_t end,
                      const double* freqs, const double* clv_x,
                      const int* scale_x, const double* pmat,
                      const double* clv_y, const int* scale_y,
                      const int* weights, double* per_pattern) {
  const int cc = l.clv_cats;
  double lnl = 0.0;
  if (l.clv_layout == ClvLayout::kPatternMajor) {
    double pt[kMaxCatMatrices * 16];
    for (int c = 0; c < l.ncat_model; ++c)
      transpose16(pmat + c * 16, pt + c * 16);
    const v4df fv = load4(freqs);
    for (std::size_t p = begin; p < end; ++p) {
      const double* x = clv_x + (p * static_cast<std::size_t>(cc)) * 4;
      const double* y = clv_y + (p * static_cast<std::size_t>(cc)) * 4;
      double total = 0.0;
      for (int c = 0; c < cc; ++c) {
        const int mc = l.model_cat(p, c);
        const v4df py = pdotvec_v(pt + mc * 16, y + c * 4);
        const v4df terms = fv * load4(x + c * 4) * py;
        const double cat = ((terms[0] + terms[1]) + terms[2]) + terms[3];
        total += l.weight(c) * cat;
      }
      if (total < kMinLikelihood) total = kMinLikelihood;
      const double site_lnl =
          std::log(total) - (scale_x[p] + scale_y[p]) * kLogScaleFactor;
      lnl += weights[p] * site_lnl;
      if (per_pattern != nullptr) per_pattern[p] = site_lnl;
    }
    return lnl;
  }
  const BlockSpan bs = block_span(begin, end);
  // Same running-accumulator requirement as ev_tip_inner: inline the scalar
  // per-pattern body for the ragged edges rather than adding a partial sum.
  const auto fold_scalar_order = [&](std::size_t from, std::size_t to) {
    for (std::size_t p = from; p < to; ++p) {
      double total = 0.0;
      for (int c = 0; c < cc; ++c) {
        const int mc = l.model_cat(p, c);
        double yy[4];
        for (int s = 0; s < 4; ++s) yy[s] = clv_y[l.clv_index(p, c, s)];
        const double* pm = pmat + mc * 16;
        double py[4];
        for (int i = 0; i < 4; ++i) {
          py[i] = pm[i * 4 + 0] * yy[0] + pm[i * 4 + 1] * yy[1] +
                  pm[i * 4 + 2] * yy[2] + pm[i * 4 + 3] * yy[3];
        }
        double cat = 0.0;
        for (int i = 0; i < 4; ++i)
          cat += freqs[i] * clv_x[l.clv_index(p, c, i)] * py[i];
        total += l.weight(c) * cat;
      }
      if (total < kMinLikelihood) total = kMinLikelihood;
      const double site_lnl =
          std::log(total) - (scale_x[p] + scale_y[p]) * kLogScaleFactor;
      lnl += weights[p] * site_lnl;
      if (per_pattern != nullptr) per_pattern[p] = site_lnl;
    }
  };
  fold_scalar_order(begin, bs.head_end);
  const std::size_t blk_doubles = static_cast<std::size_t>(cc) * 4 * kL;
  for (std::size_t p0 = bs.head_end; p0 < bs.tail_begin; p0 += kL) {
    const double* base_x = clv_x + (p0 / kL) * blk_doubles;
    const double* base_y = clv_y + (p0 / kL) * blk_doubles;
    v8df total = splat8(0.0);
    for (int c = 0; c < cc; ++c) {
      v8df y[4];
      for (int j = 0; j < 4; ++j) y[j] = load8(base_y + (c * 4 + j) * kL);
      const double* pm = pmat + c * 16;
      v8df cat = splat8(0.0);
      for (int i = 0; i < 4; ++i) {
        cat = cat + splat8(freqs[i]) * load8(base_x + (c * 4 + i) * kL) *
                        pdotvec_b(pm, y, i);
      }
      total = total + splat8(l.weight(c)) * cat;
    }
    for (int lane = 0; lane < kL; ++lane) {
      const std::size_t p = p0 + lane;
      double t = total[lane];
      if (t < kMinLikelihood) t = kMinLikelihood;
      const double site_lnl =
          std::log(t) - (scale_x[p] + scale_y[p]) * kLogScaleFactor;
      lnl += weights[p] * site_lnl;
      if (per_pattern != nullptr) per_pattern[p] = site_lnl;
    }
  }
  fold_scalar_order(bs.tail_begin, end);
  return lnl;
}

// ---------------------------------------------------------------------------
// sumtable + derivatives
// ---------------------------------------------------------------------------

void st_tip_inner(const RateLayout& l, std::size_t begin, std::size_t end,
                  const double* freqs, const double* vmat, const double* vinv,
                  const DnaState* tip_x, const double* clv_y,
                  double* sumtable) {
  const int cc = l.clv_cats;
  if (l.clv_layout == ClvLayout::kPatternMajor) {
    // u_k = sum_i (freqs[i]*x[i]) * vmat[i][k]: vmat rows are contiguous in
    // k. w_k = sum_i vinv[k][i] * y[i]: pdotvec over vinv's columns.
    double vinv_t[16];
    transpose16(vinv, vinv_t);
    const v4df r0 = load4(vmat + 0);
    const v4df r1 = load4(vmat + 4);
    const v4df r2 = load4(vmat + 8);
    const v4df r3 = load4(vmat + 12);
    for (std::size_t p = begin; p < end; ++p) {
      const double* y = clv_y + (p * static_cast<std::size_t>(cc)) * 4;
      double* st = sumtable + (p * static_cast<std::size_t>(cc)) * 4;
      double fx[4];
      for (int i = 0; i < 4; ++i)
        fx[i] = freqs[i] * (((tip_x[p] >> i) & 1) ? 1.0 : 0.0);
      // Same add order as the scalar i-loop.
      const v4df u = ((splat4(fx[0]) * r0 + splat4(fx[1]) * r1) +
                      splat4(fx[2]) * r2) +
                     splat4(fx[3]) * r3;
      for (int c = 0; c < cc; ++c) {
        const v4df w = pdotvec_v(vinv_t, y + c * 4);
        store4(st + c * 4, u * w);
      }
    }
    return;
  }
  const BlockSpan bs = block_span(begin, end);
  if (begin < bs.head_end)
    ops_scalar()->edge_sumtable_tip_inner(l, begin, bs.head_end, freqs, vmat,
                                          vinv, tip_x, clv_y, sumtable);
  const std::size_t blk_doubles = static_cast<std::size_t>(cc) * 4 * kL;
  for (std::size_t p0 = bs.head_end; p0 < bs.tail_begin; p0 += kL) {
    const double* base_y = clv_y + (p0 / kL) * blk_doubles;
    double* base_st = sumtable + (p0 / kL) * blk_doubles;
    v8df fx[4];
    for (int i = 0; i < 4; ++i) {
      v8df xi;
      for (int lane = 0; lane < kL; ++lane)
        xi[lane] = ((tip_x[p0 + lane] >> i) & 1) ? 1.0 : 0.0;
      fx[i] = splat8(freqs[i]) * xi;
    }
    v8df u[4];
    for (int k = 0; k < 4; ++k)
      u[k] = ((fx[0] * splat8(vmat[0 * 4 + k]) +
               fx[1] * splat8(vmat[1 * 4 + k])) +
              fx[2] * splat8(vmat[2 * 4 + k])) +
             fx[3] * splat8(vmat[3 * 4 + k]);
    for (int c = 0; c < cc; ++c) {
      v8df y[4];
      for (int j = 0; j < 4; ++j) y[j] = load8(base_y + (c * 4 + j) * kL);
      for (int k = 0; k < 4; ++k) {
        const v8df w = ((splat8(vinv[k * 4 + 0]) * y[0] +
                         splat8(vinv[k * 4 + 1]) * y[1]) +
                        splat8(vinv[k * 4 + 2]) * y[2]) +
                       splat8(vinv[k * 4 + 3]) * y[3];
        store8(base_st + (c * 4 + k) * kL, u[k] * w);
      }
    }
  }
  if (bs.tail_begin < end)
    ops_scalar()->edge_sumtable_tip_inner(l, bs.tail_begin, end, freqs, vmat,
                                          vinv, tip_x, clv_y, sumtable);
}

void st_inner_inner(const RateLayout& l, std::size_t begin, std::size_t end,
                    const double* freqs, const double* vmat,
                    const double* vinv, const double* clv_x,
                    const double* clv_y, double* sumtable) {
  const int cc = l.clv_cats;
  if (l.clv_layout == ClvLayout::kPatternMajor) {
    double vinv_t[16];
    transpose16(vinv, vinv_t);
    const v4df r0 = load4(vmat + 0);
    const v4df r1 = load4(vmat + 4);
    const v4df r2 = load4(vmat + 8);
    const v4df r3 = load4(vmat + 12);
    for (std::size_t p = begin; p < end; ++p) {
      const double* x = clv_x + (p * static_cast<std::size_t>(cc)) * 4;
      const double* y = clv_y + (p * static_cast<std::size_t>(cc)) * 4;
      double* st = sumtable + (p * static_cast<std::size_t>(cc)) * 4;
      for (int c = 0; c < cc; ++c) {
        const double fx0 = freqs[0] * x[c * 4 + 0];
        const double fx1 = freqs[1] * x[c * 4 + 1];
        const double fx2 = freqs[2] * x[c * 4 + 2];
        const double fx3 = freqs[3] * x[c * 4 + 3];
        const v4df u = ((splat4(fx0) * r0 + splat4(fx1) * r1) +
                        splat4(fx2) * r2) +
                       splat4(fx3) * r3;
        const v4df w = pdotvec_v(vinv_t, y + c * 4);
        store4(st + c * 4, u * w);
      }
    }
    return;
  }
  const BlockSpan bs = block_span(begin, end);
  if (begin < bs.head_end)
    ops_scalar()->edge_sumtable_inner_inner(l, begin, bs.head_end, freqs,
                                            vmat, vinv, clv_x, clv_y,
                                            sumtable);
  const std::size_t blk_doubles = static_cast<std::size_t>(cc) * 4 * kL;
  for (std::size_t p0 = bs.head_end; p0 < bs.tail_begin; p0 += kL) {
    const double* base_x = clv_x + (p0 / kL) * blk_doubles;
    const double* base_y = clv_y + (p0 / kL) * blk_doubles;
    double* base_st = sumtable + (p0 / kL) * blk_doubles;
    for (int c = 0; c < cc; ++c) {
      v8df fx[4], y[4];
      for (int i = 0; i < 4; ++i) {
        fx[i] = splat8(freqs[i]) * load8(base_x + (c * 4 + i) * kL);
        y[i] = load8(base_y + (c * 4 + i) * kL);
      }
      for (int k = 0; k < 4; ++k) {
        const v8df u = ((fx[0] * splat8(vmat[0 * 4 + k]) +
                         fx[1] * splat8(vmat[1 * 4 + k])) +
                        fx[2] * splat8(vmat[2 * 4 + k])) +
                       fx[3] * splat8(vmat[3 * 4 + k]);
        const v8df w = ((splat8(vinv[k * 4 + 0]) * y[0] +
                         splat8(vinv[k * 4 + 1]) * y[1]) +
                        splat8(vinv[k * 4 + 2]) * y[2]) +
                       splat8(vinv[k * 4 + 3]) * y[3];
        store8(base_st + (c * 4 + k) * kL, u * w);
      }
    }
  }
  if (bs.tail_begin < end)
    ops_scalar()->edge_sumtable_inner_inner(l, bs.tail_begin, end, freqs,
                                            vmat, vinv, clv_x, clv_y,
                                            sumtable);
}

Derivatives nr_derivs(const RateLayout& l, std::size_t begin, std::size_t end,
                      const double* sumtable, const double* eigenvalues,
                      const double* cat_rates, double t, const int* weights,
                      const int* scale_sum) {
  const int cc = l.clv_cats;
  // Hoist the exponentials: exp(lr * t) depends only on (model category, k),
  // and exp of the identical double argument yields the identical double, so
  // this is bitwise-equal to the scalar reference's per-pattern recompute —
  // and removes the exp calls that dominate its runtime.
  double lr_tab[kMaxCatMatrices * 4];
  double ex_tab[kMaxCatMatrices * 4];
  for (int mc = 0; mc < l.ncat_model; ++mc) {
    const double r = cat_rates[mc];
    for (int k = 0; k < 4; ++k) {
      const double lr = eigenvalues[k] * r;
      lr_tab[mc * 4 + k] = lr;
      ex_tab[mc * 4 + k] = std::exp(lr * t);
    }
  }
  Derivatives out;
  if (l.clv_layout == ClvLayout::kPatternMajor) {
    // The a/a1/a2 accumulators are sequential over (c, k) in the scalar
    // reference, so this stays a scalar loop — the win here is the hoisted
    // exp table.
    for (std::size_t p = begin; p < end; ++p) {
      const double* st = sumtable + (p * static_cast<std::size_t>(cc)) * 4;
      double a = 0.0, a1 = 0.0, a2 = 0.0;
      for (int c = 0; c < cc; ++c) {
        const int mc = l.model_cat(p, c);
        const double wc = l.weight(c);
        for (int k = 0; k < 4; ++k) {
          const double lr = lr_tab[mc * 4 + k];
          const double term = st[c * 4 + k] * ex_tab[mc * 4 + k];
          a += wc * term;
          a1 += wc * lr * term;
          a2 += wc * lr * lr * term;
        }
      }
      if (a < kMinLikelihood) a = kMinLikelihood;
      const double w = weights[p];
      const double scaled =
          scale_sum != nullptr ? scale_sum[p] * kLogScaleFactor : 0.0;
      out.lnl += w * (std::log(a) - scaled);
      const double inv = 1.0 / a;
      out.d1 += w * a1 * inv;
      out.d2 += w * (a2 * inv - (a1 * inv) * (a1 * inv));
    }
    return out;
  }
  const BlockSpan bs = block_span(begin, end);
  // As in the evaluates, the ragged edges continue the same running
  // out.lnl/d1/d2 accumulators in scalar per-pattern op order — adding a
  // delegated partial Derivatives would re-associate the folds. The hoisted
  // lr/exp tables are bitwise-equal to the scalar recompute, so reuse them.
  const auto fold_scalar_order = [&](std::size_t from, std::size_t to) {
    for (std::size_t p = from; p < to; ++p) {
      double a = 0.0, a1 = 0.0, a2 = 0.0;
      for (int c = 0; c < cc; ++c) {
        const int mc = l.model_cat(p, c);
        const double wc = l.weight(c);
        for (int k = 0; k < 4; ++k) {
          const double lr = lr_tab[mc * 4 + k];
          const double term =
              sumtable[l.clv_index(p, c, k)] * ex_tab[mc * 4 + k];
          a += wc * term;
          a1 += wc * lr * term;
          a2 += wc * lr * lr * term;
        }
      }
      if (a < kMinLikelihood) a = kMinLikelihood;
      const double w = weights[p];
      const double scaled =
          scale_sum != nullptr ? scale_sum[p] * kLogScaleFactor : 0.0;
      out.lnl += w * (std::log(a) - scaled);
      const double inv = 1.0 / a;
      out.d1 += w * a1 * inv;
      out.d2 += w * (a2 * inv - (a1 * inv) * (a1 * inv));
    }
  };
  fold_scalar_order(begin, bs.head_end);
  const std::size_t blk_doubles = static_cast<std::size_t>(cc) * 4 * kL;
  for (std::size_t p0 = bs.head_end; p0 < bs.tail_begin; p0 += kL) {
    const double* base_st = sumtable + (p0 / kL) * blk_doubles;
    v8df a = splat8(0.0), a1 = splat8(0.0), a2 = splat8(0.0);
    for (int c = 0; c < cc; ++c) {
      const double wc = l.weight(c);
      for (int k = 0; k < 4; ++k) {
        const double lr = lr_tab[c * 4 + k];
        const v8df term =
            load8(base_st + (c * 4 + k) * kL) * splat8(ex_tab[c * 4 + k]);
        a = a + splat8(wc) * term;
        a1 = a1 + splat8(wc * lr) * term;
        a2 = a2 + splat8(wc * lr * lr) * term;
      }
    }
    for (int lane = 0; lane < kL; ++lane) {
      const std::size_t p = p0 + lane;
      double av = a[lane];
      if (av < kMinLikelihood) av = kMinLikelihood;
      const double w = weights[p];
      const double scaled =
          scale_sum != nullptr ? scale_sum[p] * kLogScaleFactor : 0.0;
      out.lnl += w * (std::log(av) - scaled);
      const double inv = 1.0 / av;
      out.d1 += w * a1[lane] * inv;
      out.d2 += w * (a2[lane] * inv - (a1[lane] * inv) * (a1[lane] * inv));
    }
  }
  fold_scalar_order(bs.tail_begin, end);
  return out;
}

const KernelOps kOps = {
    nv_tip_tip,   nv_tip_inner,   nv_inner_inner, ev_tip_inner,
    ev_inner_inner, st_tip_inner, st_inner_inner, nr_derivs,
};

}  // namespace RAXH_KERNEL_IMPL_NAMESPACE

const KernelOps* RAXH_KERNEL_OPS_ACCESSOR() {
  return &RAXH_KERNEL_IMPL_NAMESPACE::kOps;
}

}  // namespace raxh::kern::detail

#undef RAXH_KERNEL_IMPL_NAMESPACE
#undef RAXH_KERNEL_OPS_ACCESSOR
