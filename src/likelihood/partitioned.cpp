#include "likelihood/partitioned.h"

#include "bio/resample.h"
#include "util/check.h"

namespace raxh {

// --- EngineEvaluator (declared in evaluator.h) ---

double EngineEvaluator::evaluate(const Tree& tree, int rec) {
  return engine_->evaluate(tree, rec);
}

double EngineEvaluator::optimize_branch(Tree& tree, int rec) {
  return engine_->optimize_branch(tree, rec);
}

double EngineEvaluator::smooth_branches(Tree& tree, int passes) {
  return engine_->smooth_branches(tree, passes);
}

double EngineEvaluator::optimize_model(Tree& tree) {
  double lnl = engine_->optimize_gtr(tree);
  switch (engine_->rates().kind()) {
    case RateKind::kGamma:
      lnl = engine_->optimize_alpha(tree);
      break;
    case RateKind::kCat:
      lnl = engine_->optimize_cat_rates(tree);
      lnl = engine_->smooth_branches(tree, 1);
      break;
    case RateKind::kUniform:
      break;
  }
  return lnl;
}

// --- PartitionedEngine ---

PartitionedEngine::PartitionedEngine(const Alignment& alignment,
                                     const PartitionScheme& scheme,
                                     RateScheme rates, Workforce* crew)
    : rate_scheme_(rates) {
  RAXH_EXPECTS(scheme.size() >= 1);
  const auto parts = scheme.split(alignment);
  patterns_.reserve(parts.size());
  for (const auto& part : parts)
    patterns_.push_back(PatternAlignment::compress(part));
  engines_.reserve(patterns_.size());
  for (const auto& patterns : patterns_) {
    GtrParams gtr;
    gtr.freqs = patterns.empirical_frequencies();
    RateModel model = rates == RateScheme::kGamma
                          ? RateModel::gamma(0.5)
                          : RateModel::cat(patterns.num_patterns());
    engines_.push_back(std::make_unique<LikelihoodEngine>(
        patterns, gtr, std::move(model), crew));
  }
}

double PartitionedEngine::evaluate(const Tree& tree, int rec) {
  double total = 0.0;
  for (auto& engine : engines_) total += engine->evaluate(tree, rec);
  return total;
}

double PartitionedEngine::optimize_branch(Tree& tree, int rec) {
  // Joint branch length: each partition contributes derivatives. The
  // prepared sumtables stay valid through the Newton iteration because
  // branch_derivatives does not touch the engines' CLV/scratch state.
  for (auto& engine : engines_) engine->prepare_branch(tree, rec);
  const double t = newton_branch_length(
      [this](double candidate) {
        kern::Derivatives sum;
        for (auto& engine : engines_) {
          const auto d = engine->branch_derivatives(candidate);
          sum.lnl += d.lnl;
          sum.d1 += d.d1;
          sum.d2 += d.d2;
        }
        return sum;
      },
      tree.length(rec));
  tree.set_length(rec, t);
  return t;
}

double PartitionedEngine::smooth_branches(Tree& tree, int passes) {
  RAXH_EXPECTS(passes >= 1);
  for (int pass = 0; pass < passes; ++pass)
    for (const int e : tree.edges()) optimize_branch(tree, e);
  return evaluate(tree);
}

double PartitionedEngine::optimize_model(Tree& tree) {
  for (auto& engine : engines_) {
    engine->optimize_gtr(tree);
    if (rate_scheme_ == RateScheme::kGamma) {
      engine->optimize_alpha(tree);
    } else {
      engine->optimize_cat_rates(tree);
    }
  }
  return smooth_branches(tree, 1);
}

std::vector<double> PartitionedEngine::per_partition_lnl(const Tree& tree) {
  std::vector<double> out;
  out.reserve(engines_.size());
  for (auto& engine : engines_) out.push_back(engine->evaluate(tree));
  return out;
}

void PartitionedEngine::set_bootstrap_weights(Lcg& rng) {
  for (std::size_t i = 0; i < engines_.size(); ++i)
    engines_[i]->set_weights(bootstrap_weights(patterns_[i], rng));
}

void PartitionedEngine::reset_weights() {
  for (auto& engine : engines_) engine->reset_weights();
}

}  // namespace raxh
