#include "likelihood/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/obs.h"
#include "util/check.h"

namespace raxh {

namespace {

// Blocked SoA is the default wherever every pattern stores the same
// categories (GAMMA / uniform); CAT's per-pattern category selects a
// different P matrix per lane, which the blocked kernels don't support.
kern::ClvLayout choose_layout(RateKind kind, std::size_t npat) {
  kern::ClvLayout layout = (kind != RateKind::kCat && npat >= kern::kBlockLanes)
                               ? kern::ClvLayout::kBlocked
                               : kern::ClvLayout::kPatternMajor;
  if (const char* env = std::getenv("RAXH_CLV_LAYOUT");
      env != nullptr && *env != '\0') {
    if (std::strcmp(env, "pattern-major") == 0)
      layout = kern::ClvLayout::kPatternMajor;
    else if (std::strcmp(env, "blocked") == 0 && kind != RateKind::kCat)
      layout = kern::ClvLayout::kBlocked;
  }
  return layout;
}

}  // namespace

LikelihoodEngine::LikelihoodEngine(const PatternAlignment& patterns,
                                   const GtrParams& gtr, RateModel rates,
                                   Workforce* crew)
    : patterns_(&patterns),
      model_(gtr),
      rates_(std::move(rates)),
      crew_(crew) {
  const std::size_t npat = patterns_->num_patterns();
  RAXH_EXPECTS(npat > 0);
  if (rates_.kind() == RateKind::kCat)
    RAXH_EXPECTS(rates_.pattern_categories().size() == npat);

  reset_weights();

  const std::size_t slots = patterns_->num_taxa() - 2;
  clv_layout_ = choose_layout(rates_.kind(), npat);
  clv_stride_ = layout().clv_stride(npat);
  clvs_.resize(slots * clv_stride_);
  scales_.resize(slots * npat);
  slots_.resize(slots);
  slot_repeats_.resize(slots);
  repeat_copy_hits_.assign(npat, 0);

  if (rates_.kind() == RateKind::kGamma) {
    cat_weights_.assign(static_cast<std::size_t>(rates_.num_categories()),
                        1.0 / rates_.num_categories());
  }

  const auto ncat = static_cast<std::size_t>(rates_.num_categories());
  pmat_a_.resize(ncat * 16);
  pmat_b_.resize(ncat * 16);
  lookup_a_.resize(ncat * 64);
  lookup_b_.resize(ncat * 64);
  sumtable_.resize(clv_stride_);
  sum_scale_.resize(npat);
  per_pattern_scratch_.resize(npat);
}

int LikelihoodEngine::clv_cats() const {
  return rates_.kind() == RateKind::kGamma ? rates_.num_categories() : 1;
}

kern::RateLayout LikelihoodEngine::layout() const {
  kern::RateLayout l;
  l.ncat_model = rates_.num_categories();
  l.clv_cats = clv_cats();
  if (rates_.kind() == RateKind::kCat)
    l.pattern_cat = rates_.pattern_categories().data();
  if (rates_.kind() == RateKind::kGamma) l.cat_weights = cat_weights_.data();
  l.clv_layout = clv_layout_;
  l.padded_patterns = clv_layout_ == kern::ClvLayout::kBlocked
                          ? kern::RateLayout::padded_rows(
                                patterns_->num_patterns())
                          : patterns_->num_patterns();
  return l;
}

double* LikelihoodEngine::clv(int slot) {
  return clvs_.data() + static_cast<std::size_t>(slot) * clv_stride_;
}

int* LikelihoodEngine::scale(int slot) {
  return scales_.data() +
         static_cast<std::size_t>(slot) * patterns_->num_patterns();
}

void LikelihoodEngine::set_weights(std::span<const int> weights) {
  RAXH_EXPECTS(weights.size() == patterns_->num_patterns());
  weights_.assign(weights.begin(), weights.end());
  // Weights only enter weighted sums, not CLVs; no model-epoch bump needed.
  // They do drive the cost-aware crew partition, though.
  ++weights_epoch_;
}

void LikelihoodEngine::reset_weights() {
  const auto w = patterns_->weights();
  weights_.assign(w.begin(), w.end());
  ++weights_epoch_;
}

void LikelihoodEngine::set_gtr(const GtrParams& params) {
  model_ = GtrModel(params);
  ++model_epoch_;
}

void LikelihoodEngine::set_alpha(double alpha) {
  RAXH_EXPECTS(rates_.kind() == RateKind::kGamma);
  rates_.set_alpha(alpha);
  ++model_epoch_;
}

void LikelihoodEngine::set_cat_assignment(std::vector<double> category_rates,
                                          std::vector<int> pattern_categories) {
  RAXH_EXPECTS(rates_.kind() == RateKind::kCat);
  rates_.set_categories(std::move(category_rates),
                        std::move(pattern_categories));
  // The number of model categories may have changed; resize P scratch.
  const auto ncat = static_cast<std::size_t>(rates_.num_categories());
  pmat_a_.resize(ncat * 16);
  pmat_b_.resize(ncat * 16);
  lookup_a_.resize(ncat * 64);
  lookup_b_.resize(ncat * 64);
  ++model_epoch_;
  // Under CAT, repeat classes fold in the per-pattern category, so the
  // reassignment invalidates every class array.
  ++cat_epoch_;
}

std::uint64_t LikelihoodEngine::content_version(const Tree& tree,
                                                int rec) const {
  if (tree.is_tip_record(rec)) return 0;  // tips never change content
  return slots_[static_cast<std::size_t>(tree.clv_slot(rec))].version;
}

void LikelihoodEngine::fill_pmats(double t, std::vector<double>& pmats) const {
  const int ncat = rates_.num_categories();
  for (int c = 0; c < ncat; ++c) {
    const auto p = model_.transition_matrix(t, rates_.rate(c));
    std::copy(p.begin(), p.end(),
              pmats.begin() + static_cast<std::size_t>(c) * 16);
  }
}

void LikelihoodEngine::refresh_partition() {
  const auto nthreads = static_cast<std::size_t>(crew_->num_threads());
  const bool fold = repeat_cost_folding() && repeat_newviews_ > 0;
  // With cost folding on, also rebuild once the copy-rate statistics have
  // moved substantially since the last build.
  const bool stats_fresh =
      !fold || repeat_newviews_ < 2 * part_fold_newviews_ + 64;
  if (part_epoch_ == weights_epoch_ && part_bounds_.size() == nthreads + 1 &&
      stats_fresh)
    return;
  const std::size_t npat = patterns_->num_patterns();
  // Per-pattern kernel cost: a GAMMA pattern stores/evaluates ncat rate
  // categories, a CAT or uniform pattern one; the pattern weight scales the
  // weighted-sum work. Uniform weights therefore reduce exactly to stripe().
  const auto cats = static_cast<std::uint64_t>(clv_cats());
  std::vector<std::uint64_t> costs(npat);
  for (std::size_t p = 0; p < npat; ++p)
    costs[p] = static_cast<std::uint64_t>(weights_[p]) * cats;
  if (fold) {
    // Repeat-aware costs (opt-in, see repeats.h): charge a pattern only for
    // the fraction of newviews that actually computed it rather than
    // copying it from its class representative. Scaled by 16 so partial
    // rates survive integer math; never drops to zero (evaluate still
    // touches every pattern).
    for (std::size_t p = 0; p < npat; ++p) {
      const std::uint64_t hits =
          std::min<std::uint64_t>(repeat_copy_hits_[p], repeat_newviews_);
      const std::uint64_t computed16 =
          16 - (16 * hits) / repeat_newviews_;
      costs[p] = std::max<std::uint64_t>(1, costs[p] * computed16 / 16);
    }
  }
  part_bounds_ = weighted_partition(costs, crew_->num_threads());
  part_epoch_ = weights_epoch_;
  part_fold_newviews_ = repeat_newviews_;
}

template <typename Fn>
void LikelihoodEngine::dispatch(Fn&& fn) {
  const std::size_t npat = patterns_->num_patterns();
  if (crew_ == nullptr || crew_->num_threads() == 1) {
    obs::count(obs::Counter::kPatternsEvaluated, npat);
    fn(std::size_t{0}, npat, 0);
    return;
  }
  refresh_partition();
  crew_->run([&](int tid, int) {
    const std::size_t begin = part_bounds_[static_cast<std::size_t>(tid)];
    const std::size_t end = part_bounds_[static_cast<std::size_t>(tid) + 1];
    obs::count(obs::Counter::kPatternsEvaluated, end - begin);
    fn(begin, end, tid);
  });
}

template <typename Fn>
double LikelihoodEngine::dispatch_sum(Fn&& fn) {
  const std::size_t npat = patterns_->num_patterns();
  if (crew_ == nullptr || crew_->num_threads() == 1) {
    obs::count(obs::Counter::kPatternsEvaluated, npat);
    obs::count(obs::Counter::kReductionCalls);
    return fn(std::size_t{0}, npat, 0);
  }
  refresh_partition();
  crew_->run([&](int tid, int) {
    const std::size_t begin = part_bounds_[static_cast<std::size_t>(tid)];
    const std::size_t end = part_bounds_[static_cast<std::size_t>(tid) + 1];
    obs::count(obs::Counter::kPatternsEvaluated, end - begin);
    crew_->reduction(tid) = fn(begin, end, tid);
  });
  return crew_->sum_reduction();
}

template <typename Fn>
void LikelihoodEngine::dispatch_range(std::size_t n, Fn&& fn) {
  if (crew_ == nullptr || crew_->num_threads() == 1) {
    obs::count(obs::Counter::kPatternsEvaluated, n);
    fn(std::size_t{0}, n, 0);
    return;
  }
  crew_->run([&](int tid, int) {
    const Stripe s = stripe(n, tid, crew_->num_threads());
    obs::count(obs::Counter::kPatternsEvaluated, s.end - s.begin);
    fn(s.begin, s.end, tid);
  });
}

std::uint64_t LikelihoodEngine::repeat_version(const Tree& tree,
                                               int rec) const {
  if (tree.is_tip_record(rec)) {
    // Tip classes derive from the (immutable) tip row plus, under CAT, the
    // current category assignment.
    return rates_.kind() == RateKind::kCat ? cat_epoch_ + 1 : 1;
  }
  return slot_repeats_[static_cast<std::size_t>(tree.clv_slot(rec))].version;
}

ClassSource LikelihoodEngine::class_source(const Tree& tree, int rec) const {
  if (tree.is_tip_record(rec)) {
    const auto row = patterns_->row(static_cast<std::size_t>(rec));
    const int* pcat = rates_.kind() == RateKind::kCat
                          ? rates_.pattern_categories().data()
                          : nullptr;
    return ClassSource::tip(row.data(), pcat, rates_.num_categories());
  }
  const auto& sr =
      slot_repeats_[static_cast<std::size_t>(tree.clv_slot(rec))];
  return ClassSource::inner(sr.class_of.data(), sr.num_classes);
}

void LikelihoodEngine::ensure_repeat_classes(const Tree& tree, int rec) {
  if (tree.is_tip_record(rec)) return;
  const auto [c1, c2] = tree.children(rec);
  ensure_repeat_classes(tree, c1);
  ensure_repeat_classes(tree, c2);

  auto& sr = slot_repeats_[static_cast<std::size_t>(tree.clv_slot(rec))];
  const std::uint64_t v1 = repeat_version(tree, c1);
  const std::uint64_t v2 = repeat_version(tree, c2);
  if (sr.version != 0 && sr.oriented_rec == rec && sr.child_rec1 == c1 &&
      sr.child_rec2 == c2 && sr.child_ver1 == v1 && sr.child_ver2 == v2 &&
      sr.cat_epoch == cat_epoch_)
    return;

  const std::size_t npat = patterns_->num_patterns();
  sr.num_classes = combiner_.combine(class_source(tree, c1),
                                     class_source(tree, c2), npat,
                                     &sr.class_of, &sr.reps);
  sr.active =
      sr.num_classes <= static_cast<std::uint32_t>(kRepeatActivationRatio *
                                                   static_cast<double>(npat));
  sr.oriented_rec = rec;
  sr.child_rec1 = c1;
  sr.child_rec2 = c2;
  sr.child_ver1 = v1;
  sr.child_ver2 = v2;
  sr.cat_epoch = cat_epoch_;
  sr.version = ++repeat_version_counter_;
}

std::uint32_t LikelihoodEngine::repeat_classes(const Tree& tree,
                                               int rec) const {
  if (tree.is_tip_record(rec)) return 0;
  const auto& sr =
      slot_repeats_[static_cast<std::size_t>(tree.clv_slot(rec))];
  return sr.oriented_rec == rec && sr.active ? sr.num_classes : 0;
}

std::uint64_t LikelihoodEngine::edge_scale_total(const Tree& tree, int rec) {
  int x = rec;
  int y = tree.back(rec);
  RAXH_EXPECTS(y >= 0);
  if (tree.is_tip_record(y)) std::swap(x, y);
  ensure_clv(tree, y);
  if (!tree.is_tip_record(x)) ensure_clv(tree, x);
  const std::size_t npat = patterns_->num_patterns();
  std::uint64_t total = 0;
  const int* sy = scale(tree.clv_slot(y));
  for (std::size_t p = 0; p < npat; ++p)
    total += static_cast<std::uint64_t>(sy[p]);
  if (!tree.is_tip_record(x)) {
    const int* sx = scale(tree.clv_slot(x));
    for (std::size_t p = 0; p < npat; ++p)
      total += static_cast<std::uint64_t>(sx[p]);
  }
  return total;
}

void LikelihoodEngine::ensure_clv(const Tree& tree, int rec) {
  if (tree.is_tip_record(rec)) return;
  const auto [c1, c2] = tree.children(rec);
  ensure_clv(tree, c1);
  ensure_clv(tree, c2);

  auto& meta = slots_[static_cast<std::size_t>(tree.clv_slot(rec))];
  const double len1 = tree.length(tree.next(rec));
  const double len2 = tree.length(tree.next(tree.next(rec)));
  const bool valid = meta.oriented_rec == rec &&
                     meta.model_epoch == model_epoch_ &&
                     meta.child_rec1 == c1 && meta.child_rec2 == c2 &&
                     meta.child_len1 == len1 && meta.child_len2 == len2 &&
                     meta.child_ver1 == content_version(tree, c1) &&
                     meta.child_ver2 == content_version(tree, c2);
  if (valid) return;
  compute_clv(tree, rec);
}

void LikelihoodEngine::compute_clv(const Tree& tree, int rec) {
  const auto [c1, c2] = tree.children(rec);
  const double len1 = tree.length(tree.next(rec));
  const double len2 = tree.length(tree.next(tree.next(rec)));
  const int slot = tree.clv_slot(rec);
  const auto lay = layout();
  const int ncat = rates_.num_categories();

  fill_pmats(len1, pmat_a_);
  fill_pmats(len2, pmat_b_);

  const bool tip1 = tree.is_tip_record(c1);
  const bool tip2 = tree.is_tip_record(c2);
  if (tip1) kern::build_tip_lookup(pmat_a_.data(), ncat, lookup_a_.data());
  if (tip2) kern::build_tip_lookup(pmat_b_.data(), ncat, lookup_b_.data());

  double* out = clv(slot);
  int* out_scale = scale(slot);

  // Site repeats: when this node's repeat map is worth applying, phase A
  // computes only the class representatives (the kernels take the rep list
  // as `pattern_ids`) and phase B copies every other pattern's CLV + scale
  // count from its representative. Copies are exact, so results are
  // bitwise-identical to the plain full-range newview.
  const std::size_t npat = patterns_->num_patterns();
  const std::uint32_t* ids = nullptr;
  std::size_t nreps = 0;
  const SlotRepeats* sr = nullptr;
  if (repeats_enabled()) {
    ensure_repeat_classes(tree, rec);
    auto& srm = slot_repeats_[static_cast<std::size_t>(slot)];
    if (srm.active) {
      sr = &srm;
      ids = srm.reps.data();
      nreps = srm.reps.size();
    }
  }

  auto run_newview = [&](auto&& nv) {
    if (ids == nullptr) {
      dispatch([&](std::size_t b, std::size_t e, int) { nv(b, e); });
      return;
    }
    dispatch_range(nreps, [&](std::size_t b, std::size_t e, int) { nv(b, e); });
    dispatch([&](std::size_t b, std::size_t e, int) {
      const std::uint32_t* cls = sr->class_of.data();
      const std::uint32_t* reps = sr->reps.data();
      const std::size_t row = static_cast<std::size_t>(lay.clv_cats) * 4;
      for (std::size_t p = b; p < e; ++p) {
        const std::size_t rp = reps[cls[p]];
        if (rp == p) continue;
        if (lay.clv_layout == kern::ClvLayout::kPatternMajor) {
          std::memcpy(out + p * row, out + rp * row, row * sizeof(double));
        } else {
          for (int c = 0; c < lay.clv_cats; ++c)
            for (int s = 0; s < 4; ++s)
              out[lay.clv_index(p, c, s)] = out[lay.clv_index(rp, c, s)];
        }
        out_scale[p] = out_scale[rp];
        ++repeat_copy_hits_[p];
      }
    });
    obs::count(obs::Counter::kRepeatPatternsComputed, nreps);
    obs::count(obs::Counter::kRepeatPatternsCopied, npat - nreps);
    ++repeat_newviews_;
  };

  if (tip1 && tip2) {
    const auto row1 = patterns_->row(static_cast<std::size_t>(c1));
    const auto row2 = patterns_->row(static_cast<std::size_t>(c2));
    run_newview([&](std::size_t b, std::size_t e) {
      kern::newview_tip_tip(lay, b, e, row1.data(), row2.data(),
                            lookup_a_.data(), lookup_b_.data(), out,
                            out_scale, ids);
    });
  } else if (tip1 || tip2) {
    const int tip_rec = tip1 ? c1 : c2;
    const int inner_rec = tip1 ? c2 : c1;
    const auto tip_row = patterns_->row(static_cast<std::size_t>(tip_rec));
    const double* tip_lookup = tip1 ? lookup_a_.data() : lookup_b_.data();
    const double* inner_pmat = tip1 ? pmat_b_.data() : pmat_a_.data();
    const int inner_slot = tree.clv_slot(inner_rec);
    run_newview([&](std::size_t b, std::size_t e) {
      kern::newview_tip_inner(lay, b, e, tip_row.data(), tip_lookup,
                              clv(inner_slot), scale(inner_slot), inner_pmat,
                              out, out_scale, ids);
    });
  } else {
    const int slot1 = tree.clv_slot(c1);
    const int slot2 = tree.clv_slot(c2);
    run_newview([&](std::size_t b, std::size_t e) {
      kern::newview_inner_inner(lay, b, e, clv(slot1), scale(slot1),
                                pmat_a_.data(), clv(slot2), scale(slot2),
                                pmat_b_.data(), out, out_scale, ids);
    });
  }

  auto& meta = slots_[static_cast<std::size_t>(slot)];
  meta.oriented_rec = rec;
  meta.model_epoch = model_epoch_;
  meta.child_rec1 = c1;
  meta.child_rec2 = c2;
  meta.child_len1 = len1;
  meta.child_len2 = len2;
  meta.child_ver1 = content_version(tree, c1);
  meta.child_ver2 = content_version(tree, c2);
  meta.version = ++version_counter_;
  ++newview_count_;
  obs::count(obs::Counter::kNewviewCalls);
}

double LikelihoodEngine::evaluate_edge(const Tree& tree, int rec,
                                       double* per_pattern) {
  obs::count(obs::Counter::kEvaluateCalls);
  // Orient so that x is a tip whenever the edge touches one.
  int x = rec;
  int y = tree.back(rec);
  RAXH_EXPECTS(y >= 0);
  if (tree.is_tip_record(y)) std::swap(x, y);
  RAXH_EXPECTS(!tree.is_tip_record(y));  // no tip-tip edges in trees with n>=3

  // Ensure both CLVs before touching the P-matrix scratch: CLV computation
  // reuses pmat_a_/lookup_a_ internally.
  ensure_clv(tree, y);
  if (!tree.is_tip_record(x)) ensure_clv(tree, x);

  const auto lay = layout();
  const int ncat = rates_.num_categories();
  const double t = tree.length(rec);
  fill_pmats(t, pmat_a_);
  const double* freqs = model_.freqs().data();
  const int slot_y = tree.clv_slot(y);

  if (tree.is_tip_record(x)) {
    const auto tip_row = patterns_->row(static_cast<std::size_t>(x));
    kern::build_tip_lookup(pmat_a_.data(), ncat, lookup_a_.data());
    return dispatch_sum([&](std::size_t b, std::size_t e, int) {
      return kern::evaluate_tip_inner(lay, b, e, freqs, tip_row.data(),
                                      lookup_a_.data(), clv(slot_y),
                                      scale(slot_y), weights_.data(),
                                      per_pattern);
    });
  }

  const int slot_x = tree.clv_slot(x);
  return dispatch_sum([&](std::size_t b, std::size_t e, int) {
    return kern::evaluate_inner_inner(lay, b, e, freqs, clv(slot_x),
                                      scale(slot_x), pmat_a_.data(),
                                      clv(slot_y), scale(slot_y),
                                      weights_.data(), per_pattern);
  });
}

double LikelihoodEngine::evaluate(const Tree& tree, int rec) {
  return evaluate_edge(tree, rec, nullptr);
}

void LikelihoodEngine::per_pattern_lnl(const Tree& tree,
                                       std::span<double> out) {
  RAXH_EXPECTS(out.size() == patterns_->num_patterns());
  evaluate_edge(tree, 0, out.data());
}

void LikelihoodEngine::build_sumtable(const Tree& tree, int rec) {
  int x = rec;
  int y = tree.back(rec);
  if (tree.is_tip_record(y)) std::swap(x, y);
  ensure_clv(tree, y);
  const auto lay = layout();
  const double* freqs = model_.freqs().data();
  const double* vmat = model_.right_vectors().data();
  const double* vinv = model_.left_vectors().data();
  const int slot_y = tree.clv_slot(y);

  if (tree.is_tip_record(x)) {
    const auto tip_row = patterns_->row(static_cast<std::size_t>(x));
    dispatch([&](std::size_t b, std::size_t e, int) {
      kern::edge_sumtable_tip_inner(lay, b, e, freqs, vmat, vinv,
                                    tip_row.data(), clv(slot_y),
                                    sumtable_.data());
      const int* sy = scale(slot_y);
      for (std::size_t p = b; p < e; ++p) sum_scale_[p] = sy[p];
    });
  } else {
    ensure_clv(tree, x);
    const int slot_x = tree.clv_slot(x);
    dispatch([&](std::size_t b, std::size_t e, int) {
      kern::edge_sumtable_inner_inner(lay, b, e, freqs, vmat, vinv,
                                      clv(slot_x), clv(slot_y),
                                      sumtable_.data());
      const int* sx = scale(slot_x);
      const int* sy = scale(slot_y);
      for (std::size_t p = b; p < e; ++p) sum_scale_[p] = sx[p] + sy[p];
    });
  }
}

void LikelihoodEngine::prepare_branch(const Tree& tree, int rec) {
  build_sumtable(tree, rec);
}

kern::Derivatives LikelihoodEngine::branch_derivatives(double t) {
  obs::count(obs::Counter::kDerivativeCalls);
  const auto lay = layout();
  const double* eigenvalues = model_.eigenvalues().data();
  const double* cat_rates = rates_.rates().data();
  if (crew_ == nullptr || crew_->num_threads() == 1) {
    obs::count(obs::Counter::kPatternsEvaluated, patterns_->num_patterns());
    return kern::nr_derivatives(lay, 0, patterns_->num_patterns(),
                                sumtable_.data(), eigenvalues, cat_rates, t,
                                weights_.data(), sum_scale_.data());
  }
  refresh_partition();
  crew_->resize_reduction(3);
  crew_->run([&](int tid, int) {
    const std::size_t b = part_bounds_[static_cast<std::size_t>(tid)];
    const std::size_t e = part_bounds_[static_cast<std::size_t>(tid) + 1];
    obs::count(obs::Counter::kPatternsEvaluated, e - b);
    const auto part = kern::nr_derivatives(lay, b, e, sumtable_.data(),
                                           eigenvalues, cat_rates, t,
                                           weights_.data(), sum_scale_.data());
    crew_->reduction(tid, 0) = part.lnl;
    crew_->reduction(tid, 1) = part.d1;
    crew_->reduction(tid, 2) = part.d2;
  });
  kern::Derivatives d;
  d.lnl = crew_->sum_reduction(0);
  d.d1 = crew_->sum_reduction(1);
  d.d2 = crew_->sum_reduction(2);
  crew_->resize_reduction(1);
  return d;
}

double newton_branch_length(
    const std::function<kern::Derivatives(double)>& derivatives, double t0) {
  double t = std::clamp(t0, kMinBranchLength, kMaxBranchLength);
  for (int iter = 0; iter < 32; ++iter) {
    const kern::Derivatives d = derivatives(t);
    double proposal;
    if (d.d2 < 0.0) {
      proposal = t - d.d1 / d.d2;
      // Damp wild Newton steps to a factor-of-4 move.
      proposal = std::clamp(proposal, t / 4.0, t * 4.0);
    } else {
      proposal = d.d1 > 0.0 ? t * 2.0 : t / 2.0;
    }
    proposal = std::clamp(proposal, kMinBranchLength, kMaxBranchLength);
    const double delta = std::fabs(proposal - t);
    t = proposal;
    if (delta < 1e-9) break;
  }
  return t;
}

double LikelihoodEngine::optimize_branch(Tree& tree, int rec) {
  prepare_branch(tree, rec);
  const double t = newton_branch_length(
      [this](double candidate) { return branch_derivatives(candidate); },
      tree.length(rec));
  tree.set_length(rec, t);
  return t;
}

double LikelihoodEngine::smooth_branches(Tree& tree, int passes) {
  RAXH_EXPECTS(passes >= 1);
  for (int pass = 0; pass < passes; ++pass)
    for (int e : tree.edges()) optimize_branch(tree, e);
  return evaluate(tree);
}

double LikelihoodEngine::optimize_all(Tree& tree, double epsilon,
                                      int max_rounds) {
  double lnl = evaluate(tree);
  for (int round = 0; round < max_rounds; ++round) {
    smooth_branches(tree, 1);
    double next = optimize_gtr(tree, epsilon);
    if (rates_.kind() == RateKind::kGamma) {
      next = optimize_alpha(tree);
    } else if (rates_.kind() == RateKind::kCat) {
      next = optimize_cat_rates(tree);
    }
    next = smooth_branches(tree, 1);
    if (next - lnl < epsilon) return next;
    lnl = next;
  }
  return lnl;
}

}  // namespace raxh
