#include "likelihood/engine.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "util/check.h"

namespace raxh {

LikelihoodEngine::LikelihoodEngine(const PatternAlignment& patterns,
                                   const GtrParams& gtr, RateModel rates,
                                   Workforce* crew)
    : patterns_(&patterns),
      model_(gtr),
      rates_(std::move(rates)),
      crew_(crew) {
  const std::size_t npat = patterns_->num_patterns();
  RAXH_EXPECTS(npat > 0);
  if (rates_.kind() == RateKind::kCat)
    RAXH_EXPECTS(rates_.pattern_categories().size() == npat);

  reset_weights();

  const std::size_t slots = patterns_->num_taxa() - 2;
  clv_stride_ = npat * static_cast<std::size_t>(clv_cats()) * 4;
  clvs_.resize(slots * clv_stride_);
  scales_.resize(slots * npat);
  slots_.resize(slots);

  if (rates_.kind() == RateKind::kGamma) {
    cat_weights_.assign(static_cast<std::size_t>(rates_.num_categories()),
                        1.0 / rates_.num_categories());
  }

  const auto ncat = static_cast<std::size_t>(rates_.num_categories());
  pmat_a_.resize(ncat * 16);
  pmat_b_.resize(ncat * 16);
  lookup_a_.resize(ncat * 64);
  lookup_b_.resize(ncat * 64);
  sumtable_.resize(clv_stride_);
  per_pattern_scratch_.resize(npat);
}

int LikelihoodEngine::clv_cats() const {
  return rates_.kind() == RateKind::kGamma ? rates_.num_categories() : 1;
}

kern::RateLayout LikelihoodEngine::layout() const {
  kern::RateLayout l;
  l.ncat_model = rates_.num_categories();
  l.clv_cats = clv_cats();
  if (rates_.kind() == RateKind::kCat)
    l.pattern_cat = rates_.pattern_categories().data();
  if (rates_.kind() == RateKind::kGamma) l.cat_weights = cat_weights_.data();
  return l;
}

double* LikelihoodEngine::clv(int slot) {
  return clvs_.data() + static_cast<std::size_t>(slot) * clv_stride_;
}

int* LikelihoodEngine::scale(int slot) {
  return scales_.data() +
         static_cast<std::size_t>(slot) * patterns_->num_patterns();
}

void LikelihoodEngine::set_weights(std::span<const int> weights) {
  RAXH_EXPECTS(weights.size() == patterns_->num_patterns());
  weights_.assign(weights.begin(), weights.end());
  // Weights only enter weighted sums, not CLVs; no model-epoch bump needed.
  // They do drive the cost-aware crew partition, though.
  ++weights_epoch_;
}

void LikelihoodEngine::reset_weights() {
  const auto w = patterns_->weights();
  weights_.assign(w.begin(), w.end());
  ++weights_epoch_;
}

void LikelihoodEngine::set_gtr(const GtrParams& params) {
  model_ = GtrModel(params);
  ++model_epoch_;
}

void LikelihoodEngine::set_alpha(double alpha) {
  RAXH_EXPECTS(rates_.kind() == RateKind::kGamma);
  rates_.set_alpha(alpha);
  ++model_epoch_;
}

void LikelihoodEngine::set_cat_assignment(std::vector<double> category_rates,
                                          std::vector<int> pattern_categories) {
  RAXH_EXPECTS(rates_.kind() == RateKind::kCat);
  rates_.set_categories(std::move(category_rates),
                        std::move(pattern_categories));
  // The number of model categories may have changed; resize P scratch.
  const auto ncat = static_cast<std::size_t>(rates_.num_categories());
  pmat_a_.resize(ncat * 16);
  pmat_b_.resize(ncat * 16);
  lookup_a_.resize(ncat * 64);
  lookup_b_.resize(ncat * 64);
  ++model_epoch_;
}

std::uint64_t LikelihoodEngine::content_version(const Tree& tree,
                                                int rec) const {
  if (tree.is_tip_record(rec)) return 0;  // tips never change content
  return slots_[static_cast<std::size_t>(tree.clv_slot(rec))].version;
}

void LikelihoodEngine::fill_pmats(double t, std::vector<double>& pmats) const {
  const int ncat = rates_.num_categories();
  for (int c = 0; c < ncat; ++c) {
    const auto p = model_.transition_matrix(t, rates_.rate(c));
    std::copy(p.begin(), p.end(),
              pmats.begin() + static_cast<std::size_t>(c) * 16);
  }
}

void LikelihoodEngine::refresh_partition() {
  const auto nthreads = static_cast<std::size_t>(crew_->num_threads());
  if (part_epoch_ == weights_epoch_ && part_bounds_.size() == nthreads + 1)
    return;
  const std::size_t npat = patterns_->num_patterns();
  // Per-pattern kernel cost: a GAMMA pattern stores/evaluates ncat rate
  // categories, a CAT or uniform pattern one; the pattern weight scales the
  // weighted-sum work. Uniform weights therefore reduce exactly to stripe().
  const auto cats = static_cast<std::uint64_t>(clv_cats());
  std::vector<std::uint64_t> costs(npat);
  for (std::size_t p = 0; p < npat; ++p)
    costs[p] = static_cast<std::uint64_t>(weights_[p]) * cats;
  part_bounds_ = weighted_partition(costs, crew_->num_threads());
  part_epoch_ = weights_epoch_;
}

template <typename Fn>
void LikelihoodEngine::dispatch(Fn&& fn) {
  const std::size_t npat = patterns_->num_patterns();
  if (crew_ == nullptr || crew_->num_threads() == 1) {
    obs::count(obs::Counter::kPatternsEvaluated, npat);
    fn(std::size_t{0}, npat, 0);
    return;
  }
  refresh_partition();
  crew_->run([&](int tid, int) {
    const std::size_t begin = part_bounds_[static_cast<std::size_t>(tid)];
    const std::size_t end = part_bounds_[static_cast<std::size_t>(tid) + 1];
    obs::count(obs::Counter::kPatternsEvaluated, end - begin);
    fn(begin, end, tid);
  });
}

template <typename Fn>
double LikelihoodEngine::dispatch_sum(Fn&& fn) {
  const std::size_t npat = patterns_->num_patterns();
  if (crew_ == nullptr || crew_->num_threads() == 1) {
    obs::count(obs::Counter::kPatternsEvaluated, npat);
    obs::count(obs::Counter::kReductionCalls);
    return fn(std::size_t{0}, npat, 0);
  }
  refresh_partition();
  crew_->run([&](int tid, int) {
    const std::size_t begin = part_bounds_[static_cast<std::size_t>(tid)];
    const std::size_t end = part_bounds_[static_cast<std::size_t>(tid) + 1];
    obs::count(obs::Counter::kPatternsEvaluated, end - begin);
    crew_->reduction(tid) = fn(begin, end, tid);
  });
  return crew_->sum_reduction();
}

void LikelihoodEngine::ensure_clv(const Tree& tree, int rec) {
  if (tree.is_tip_record(rec)) return;
  const auto [c1, c2] = tree.children(rec);
  ensure_clv(tree, c1);
  ensure_clv(tree, c2);

  auto& meta = slots_[static_cast<std::size_t>(tree.clv_slot(rec))];
  const double len1 = tree.length(tree.next(rec));
  const double len2 = tree.length(tree.next(tree.next(rec)));
  const bool valid = meta.oriented_rec == rec &&
                     meta.model_epoch == model_epoch_ &&
                     meta.child_rec1 == c1 && meta.child_rec2 == c2 &&
                     meta.child_len1 == len1 && meta.child_len2 == len2 &&
                     meta.child_ver1 == content_version(tree, c1) &&
                     meta.child_ver2 == content_version(tree, c2);
  if (valid) return;
  compute_clv(tree, rec);
}

void LikelihoodEngine::compute_clv(const Tree& tree, int rec) {
  const auto [c1, c2] = tree.children(rec);
  const double len1 = tree.length(tree.next(rec));
  const double len2 = tree.length(tree.next(tree.next(rec)));
  const int slot = tree.clv_slot(rec);
  const auto lay = layout();
  const int ncat = rates_.num_categories();

  fill_pmats(len1, pmat_a_);
  fill_pmats(len2, pmat_b_);

  const bool tip1 = tree.is_tip_record(c1);
  const bool tip2 = tree.is_tip_record(c2);
  if (tip1) kern::build_tip_lookup(pmat_a_.data(), ncat, lookup_a_.data());
  if (tip2) kern::build_tip_lookup(pmat_b_.data(), ncat, lookup_b_.data());

  double* out = clv(slot);
  int* out_scale = scale(slot);

  if (tip1 && tip2) {
    const auto row1 = patterns_->row(static_cast<std::size_t>(c1));
    const auto row2 = patterns_->row(static_cast<std::size_t>(c2));
    dispatch([&](std::size_t b, std::size_t e, int) {
      kern::newview_tip_tip(lay, b, e, row1.data(), row2.data(),
                            lookup_a_.data(), lookup_b_.data(), out,
                            out_scale);
    });
  } else if (tip1 || tip2) {
    const int tip_rec = tip1 ? c1 : c2;
    const int inner_rec = tip1 ? c2 : c1;
    const auto tip_row = patterns_->row(static_cast<std::size_t>(tip_rec));
    const double* tip_lookup = tip1 ? lookup_a_.data() : lookup_b_.data();
    const double* inner_pmat = tip1 ? pmat_b_.data() : pmat_a_.data();
    const int inner_slot = tree.clv_slot(inner_rec);
    dispatch([&](std::size_t b, std::size_t e, int) {
      kern::newview_tip_inner(lay, b, e, tip_row.data(), tip_lookup,
                              clv(inner_slot), scale(inner_slot), inner_pmat,
                              out, out_scale);
    });
  } else {
    const int slot1 = tree.clv_slot(c1);
    const int slot2 = tree.clv_slot(c2);
    dispatch([&](std::size_t b, std::size_t e, int) {
      kern::newview_inner_inner(lay, b, e, clv(slot1), scale(slot1),
                                pmat_a_.data(), clv(slot2), scale(slot2),
                                pmat_b_.data(), out, out_scale);
    });
  }

  auto& meta = slots_[static_cast<std::size_t>(slot)];
  meta.oriented_rec = rec;
  meta.model_epoch = model_epoch_;
  meta.child_rec1 = c1;
  meta.child_rec2 = c2;
  meta.child_len1 = len1;
  meta.child_len2 = len2;
  meta.child_ver1 = content_version(tree, c1);
  meta.child_ver2 = content_version(tree, c2);
  meta.version = ++version_counter_;
  ++newview_count_;
  obs::count(obs::Counter::kNewviewCalls);
}

double LikelihoodEngine::evaluate_edge(const Tree& tree, int rec,
                                       double* per_pattern) {
  obs::count(obs::Counter::kEvaluateCalls);
  // Orient so that x is a tip whenever the edge touches one.
  int x = rec;
  int y = tree.back(rec);
  RAXH_EXPECTS(y >= 0);
  if (tree.is_tip_record(y)) std::swap(x, y);
  RAXH_EXPECTS(!tree.is_tip_record(y));  // no tip-tip edges in trees with n>=3

  // Ensure both CLVs before touching the P-matrix scratch: CLV computation
  // reuses pmat_a_/lookup_a_ internally.
  ensure_clv(tree, y);
  if (!tree.is_tip_record(x)) ensure_clv(tree, x);

  const auto lay = layout();
  const int ncat = rates_.num_categories();
  const double t = tree.length(rec);
  fill_pmats(t, pmat_a_);
  const double* freqs = model_.freqs().data();
  const int slot_y = tree.clv_slot(y);

  if (tree.is_tip_record(x)) {
    const auto tip_row = patterns_->row(static_cast<std::size_t>(x));
    kern::build_tip_lookup(pmat_a_.data(), ncat, lookup_a_.data());
    return dispatch_sum([&](std::size_t b, std::size_t e, int) {
      return kern::evaluate_tip_inner(lay, b, e, freqs, tip_row.data(),
                                      lookup_a_.data(), clv(slot_y),
                                      scale(slot_y), weights_.data(),
                                      per_pattern);
    });
  }

  const int slot_x = tree.clv_slot(x);
  return dispatch_sum([&](std::size_t b, std::size_t e, int) {
    return kern::evaluate_inner_inner(lay, b, e, freqs, clv(slot_x),
                                      scale(slot_x), pmat_a_.data(),
                                      clv(slot_y), scale(slot_y),
                                      weights_.data(), per_pattern);
  });
}

double LikelihoodEngine::evaluate(const Tree& tree, int rec) {
  return evaluate_edge(tree, rec, nullptr);
}

void LikelihoodEngine::per_pattern_lnl(const Tree& tree,
                                       std::span<double> out) {
  RAXH_EXPECTS(out.size() == patterns_->num_patterns());
  evaluate_edge(tree, 0, out.data());
}

void LikelihoodEngine::build_sumtable(const Tree& tree, int rec) {
  int x = rec;
  int y = tree.back(rec);
  if (tree.is_tip_record(y)) std::swap(x, y);
  ensure_clv(tree, y);
  const auto lay = layout();
  const double* freqs = model_.freqs().data();
  const double* vmat = model_.right_vectors().data();
  const double* vinv = model_.left_vectors().data();
  const int slot_y = tree.clv_slot(y);

  if (tree.is_tip_record(x)) {
    const auto tip_row = patterns_->row(static_cast<std::size_t>(x));
    dispatch([&](std::size_t b, std::size_t e, int) {
      kern::edge_sumtable_tip_inner(lay, b, e, freqs, vmat, vinv,
                                    tip_row.data(), clv(slot_y),
                                    sumtable_.data());
    });
  } else {
    ensure_clv(tree, x);
    const int slot_x = tree.clv_slot(x);
    dispatch([&](std::size_t b, std::size_t e, int) {
      kern::edge_sumtable_inner_inner(lay, b, e, freqs, vmat, vinv,
                                      clv(slot_x), clv(slot_y),
                                      sumtable_.data());
    });
  }
}

void LikelihoodEngine::prepare_branch(const Tree& tree, int rec) {
  build_sumtable(tree, rec);
}

kern::Derivatives LikelihoodEngine::branch_derivatives(double t) {
  obs::count(obs::Counter::kDerivativeCalls);
  const auto lay = layout();
  const double* eigenvalues = model_.eigenvalues().data();
  const double* cat_rates = rates_.rates().data();
  if (crew_ == nullptr || crew_->num_threads() == 1) {
    obs::count(obs::Counter::kPatternsEvaluated, patterns_->num_patterns());
    return kern::nr_derivatives(lay, 0, patterns_->num_patterns(),
                                sumtable_.data(), eigenvalues, cat_rates, t,
                                weights_.data());
  }
  refresh_partition();
  crew_->resize_reduction(3);
  crew_->run([&](int tid, int) {
    const std::size_t b = part_bounds_[static_cast<std::size_t>(tid)];
    const std::size_t e = part_bounds_[static_cast<std::size_t>(tid) + 1];
    obs::count(obs::Counter::kPatternsEvaluated, e - b);
    const auto part = kern::nr_derivatives(lay, b, e, sumtable_.data(),
                                           eigenvalues, cat_rates, t,
                                           weights_.data());
    crew_->reduction(tid, 0) = part.lnl;
    crew_->reduction(tid, 1) = part.d1;
    crew_->reduction(tid, 2) = part.d2;
  });
  kern::Derivatives d;
  d.lnl = crew_->sum_reduction(0);
  d.d1 = crew_->sum_reduction(1);
  d.d2 = crew_->sum_reduction(2);
  crew_->resize_reduction(1);
  return d;
}

double newton_branch_length(
    const std::function<kern::Derivatives(double)>& derivatives, double t0) {
  double t = std::clamp(t0, kMinBranchLength, kMaxBranchLength);
  for (int iter = 0; iter < 32; ++iter) {
    const kern::Derivatives d = derivatives(t);
    double proposal;
    if (d.d2 < 0.0) {
      proposal = t - d.d1 / d.d2;
      // Damp wild Newton steps to a factor-of-4 move.
      proposal = std::clamp(proposal, t / 4.0, t * 4.0);
    } else {
      proposal = d.d1 > 0.0 ? t * 2.0 : t / 2.0;
    }
    proposal = std::clamp(proposal, kMinBranchLength, kMaxBranchLength);
    const double delta = std::fabs(proposal - t);
    t = proposal;
    if (delta < 1e-9) break;
  }
  return t;
}

double LikelihoodEngine::optimize_branch(Tree& tree, int rec) {
  prepare_branch(tree, rec);
  const double t = newton_branch_length(
      [this](double candidate) { return branch_derivatives(candidate); },
      tree.length(rec));
  tree.set_length(rec, t);
  return t;
}

double LikelihoodEngine::smooth_branches(Tree& tree, int passes) {
  RAXH_EXPECTS(passes >= 1);
  for (int pass = 0; pass < passes; ++pass)
    for (int e : tree.edges()) optimize_branch(tree, e);
  return evaluate(tree);
}

double LikelihoodEngine::optimize_all(Tree& tree, double epsilon,
                                      int max_rounds) {
  double lnl = evaluate(tree);
  for (int round = 0; round < max_rounds; ++round) {
    smooth_branches(tree, 1);
    double next = optimize_gtr(tree, epsilon);
    if (rates_.kind() == RateKind::kGamma) {
      next = optimize_alpha(tree);
    } else if (rates_.kind() == RateKind::kCat) {
      next = optimize_cat_rates(tree);
    }
    next = smooth_branches(tree, 1);
    if (next - lnl < epsilon) return next;
    lnl = next;
  }
  return lnl;
}

}  // namespace raxh
