#include "model/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace raxh {

SymmetricEigen jacobi_eigen(const std::vector<double>& a, std::size_t n) {
  RAXH_EXPECTS(a.size() == n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      RAXH_EXPECTS(std::fabs(a[i * n + j] - a[j * n + i]) < 1e-9);

  std::vector<double> m = a;          // working copy, becomes diagonal
  std::vector<double> v(n * n, 0.0);  // accumulated rotations
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diag_norm = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += m[i * n + j] * m[i * n + j];
    return s;
  };

  for (int sweep = 0; sweep < 100 && off_diag_norm() > 1e-24; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m[p * n + p];
        const double aqq = m[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m[k * n + p];
          const double mkq = m[k * n + q];
          m[k * n + p] = c * mkp - s * mkq;
          m[k * n + q] = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m[p * n + k];
          const double mqk = m[q * n + k];
          m[p * n + k] = c * mpk - s * mqk;
          m[q * n + k] = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return m[x * n + x] < m[y * n + y];
  });

  SymmetricEigen out;
  out.values.resize(n);
  out.vectors.resize(n * n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = m[order[j] * n + order[j]];
    for (std::size_t i = 0; i < n; ++i)
      out.vectors[i * n + j] = v[i * n + order[j]];
  }
  return out;
}

}  // namespace raxh
