// Rate heterogeneity across sites.
//
// Two schemes, matching RAxML's -m GTRGAMMA / -m GTRCAT:
//  * GAMMA — every pattern is evaluated under `ncat` discrete Gamma(alpha)
//    rates and the per-pattern likelihood is the category average.
//  * CAT   — every pattern is assigned ONE rate category out of up to
//    `kMaxCatCategories`; per-pattern rates are estimated during the search
//    and clustered into categories. CAT is ~4x cheaper per pattern than
//    4-category GAMMA and is what the paper's benchmark runs use.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace raxh {

inline constexpr int kGammaCategories = 4;
inline constexpr int kMaxCatCategories = 25;  // RAxML default for -m GTRCAT

enum class RateKind {
  kUniform,  // single rate 1.0 (no heterogeneity)
  kGamma,    // discrete gamma, all categories per pattern
  kCat,      // one category per pattern
};

class RateModel {
 public:
  // Uniform-rate model (single category, rate 1).
  static RateModel uniform();

  // Discrete GAMMA with `ncat` categories and shape `alpha`.
  static RateModel gamma(double alpha, int ncat = kGammaCategories);

  // CAT with all patterns initially in one rate-1 category.
  static RateModel cat(std::size_t num_patterns);

  [[nodiscard]] RateKind kind() const { return kind_; }
  [[nodiscard]] int num_categories() const {
    return static_cast<int>(rates_.size());
  }
  [[nodiscard]] std::span<const double> rates() const { return rates_; }
  [[nodiscard]] double rate(int category) const {
    return rates_[static_cast<std::size_t>(category)];
  }
  [[nodiscard]] double alpha() const { return alpha_; }

  // CAT only: category of each pattern.
  [[nodiscard]] std::span<const int> pattern_categories() const {
    return pattern_category_;
  }
  [[nodiscard]] int pattern_category(std::size_t pattern) const {
    return kind_ == RateKind::kCat
               ? pattern_category_[pattern]
               : 0;
  }

  // Replace the GAMMA shape (recomputes category rates). GAMMA only.
  void set_alpha(double alpha);

  // Replace the CAT categorization. `rates[categories[p]]` is pattern p's
  // rate. Rates must be positive; weighted mean should be ~1 (the caller
  // normalizes). CAT only.
  void set_categories(std::vector<double> category_rates,
                      std::vector<int> categories);

  // Cluster per-pattern rates (weighted by pattern weights) into at most
  // `max_categories` categories and install them, normalized so the
  // weight-averaged rate is 1. CAT only.
  void assign_categories_from_rates(std::span<const double> pattern_rates,
                                    std::span<const int> pattern_weights,
                                    int max_categories = kMaxCatCategories);

 private:
  RateModel() = default;

  RateKind kind_ = RateKind::kUniform;
  double alpha_ = 1.0;                  // GAMMA shape
  std::vector<double> rates_;           // category rates
  std::vector<int> pattern_category_;   // CAT: pattern -> category
};

}  // namespace raxh
