#include "model/gtr.h"

#include <cmath>

#include "model/eigen.h"
#include "util/check.h"

namespace raxh {

namespace {

// Rate index for the unordered state pair {i, j}, i != j, in AC,AG,AT,CG,CT,GT
// order.
int pair_rate_index(int i, int j) {
  if (i > j) std::swap(i, j);
  if (i == 0) return j - 1;        // AC, AG, AT -> 0,1,2
  if (i == 1) return 2 + j - 1;    // CG, CT      -> 3,4
  return 5;                        // GT          -> 5
}

}  // namespace

GtrModel::GtrModel(const GtrParams& params) : params_(params) {
  for (double r : params_.rates) RAXH_EXPECTS(r > 0.0);
  double fsum = 0.0;
  for (double f : params_.freqs) {
    RAXH_EXPECTS(f > 0.0);
    fsum += f;
  }
  RAXH_EXPECTS(std::fabs(fsum - 1.0) < 1e-6);

  const auto& pi = params_.freqs;

  // Unnormalized Q.
  for (int i = 0; i < kStates; ++i) {
    double rowsum = 0.0;
    for (int j = 0; j < kStates; ++j) {
      if (i == j) continue;
      const double qij =
          params_.rates[static_cast<std::size_t>(pair_rate_index(i, j))] *
          pi[static_cast<std::size_t>(j)];
      q_[static_cast<std::size_t>(i * kStates + j)] = qij;
      rowsum += qij;
    }
    q_[static_cast<std::size_t>(i * kStates + i)] = -rowsum;
  }

  // Normalize: expected rate sum_i pi_i * (-Q_ii) == 1.
  double mu = 0.0;
  for (int i = 0; i < kStates; ++i)
    mu -= pi[static_cast<std::size_t>(i)] *
          q_[static_cast<std::size_t>(i * kStates + i)];
  RAXH_ASSERT(mu > 0.0);
  for (double& x : q_) x /= mu;

  // Symmetrize: S = D Q D^-1 with D = diag(sqrt(pi)).
  std::array<double, 4> d{}, dinv{};
  for (int i = 0; i < kStates; ++i) {
    d[static_cast<std::size_t>(i)] = std::sqrt(pi[static_cast<std::size_t>(i)]);
    dinv[static_cast<std::size_t>(i)] = 1.0 / d[static_cast<std::size_t>(i)];
  }
  std::vector<double> s(16);
  for (int i = 0; i < kStates; ++i)
    for (int j = 0; j < kStates; ++j)
      s[static_cast<std::size_t>(i * kStates + j)] =
          d[static_cast<std::size_t>(i)] *
          q_[static_cast<std::size_t>(i * kStates + j)] *
          dinv[static_cast<std::size_t>(j)];

  const SymmetricEigen eig = jacobi_eigen(s, kStates);
  for (int i = 0; i < kStates; ++i)
    eigenvalues_[static_cast<std::size_t>(i)] =
        eig.values[static_cast<std::size_t>(i)];

  // V = D^-1 U (right eigenvectors as columns), V^-1 = U^T D.
  for (int i = 0; i < kStates; ++i) {
    for (int j = 0; j < kStates; ++j) {
      v_[static_cast<std::size_t>(i * kStates + j)] =
          dinv[static_cast<std::size_t>(i)] *
          eig.vectors[static_cast<std::size_t>(i * kStates + j)];
      vinv_[static_cast<std::size_t>(i * kStates + j)] =
          eig.vectors[static_cast<std::size_t>(j * kStates + i)] *
          d[static_cast<std::size_t>(j)];
    }
  }
}

std::array<double, 16> GtrModel::transition_matrix(double t, double rate) const {
  RAXH_EXPECTS(t >= 0.0);
  RAXH_EXPECTS(rate >= 0.0);
  std::array<double, 4> expl{};
  for (int k = 0; k < kStates; ++k)
    expl[static_cast<std::size_t>(k)] =
        std::exp(eigenvalues_[static_cast<std::size_t>(k)] * t * rate);

  std::array<double, 16> p{};
  for (int i = 0; i < kStates; ++i) {
    for (int j = 0; j < kStates; ++j) {
      double sum = 0.0;
      for (int k = 0; k < kStates; ++k)
        sum += v_[static_cast<std::size_t>(i * kStates + k)] *
               expl[static_cast<std::size_t>(k)] *
               vinv_[static_cast<std::size_t>(k * kStates + j)];
      // Round-off can push tiny probabilities slightly negative.
      p[static_cast<std::size_t>(i * kStates + j)] = sum < 0.0 ? 0.0 : sum;
    }
  }
  return p;
}

}  // namespace raxh
