// Cyclic Jacobi eigendecomposition for small dense symmetric matrices.
// Sufficient for the 4x4 symmetrized GTR rate matrix; no external linear
// algebra dependency.
#pragma once

#include <cstddef>
#include <vector>

namespace raxh {

struct SymmetricEigen {
  // Column j of `vectors` is the eigenvector for `values[j]`.
  std::vector<double> values;   // n
  std::vector<double> vectors;  // n*n, row-major
};

// Decompose the symmetric n x n row-major matrix `a`. Requires symmetry up to
// round-off (asserted). Eigenvalues are returned in ascending order.
SymmetricEigen jacobi_eigen(const std::vector<double>& a, std::size_t n);

}  // namespace raxh
