// General Time Reversible (GTR) nucleotide substitution model, the model the
// paper's benchmark runs use (-m GTRCAT / GTRGAMMA).
//
// Q is built from six exchangeability rates and four stationary frequencies,
// normalized to one expected substitution per unit time, and decomposed via
// the pi-symmetrization Q = D^-1 S D (D = diag(sqrt(pi)), S symmetric), so
// that P(t) = V exp(Lambda t) V^-1 with V = D^-1 U.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace raxh {

inline constexpr int kStates = 4;

// Exchangeability order: AC, AG, AT, CG, CT, GT (GT is the reference rate,
// conventionally fixed to 1 during optimization).
struct GtrParams {
  std::array<double, 6> rates = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  std::array<double, 4> freqs = {0.25, 0.25, 0.25, 0.25};

  // Jukes-Cantor corner of the GTR space.
  static GtrParams jukes_cantor() { return GtrParams{}; }
};

class GtrModel {
 public:
  explicit GtrModel(const GtrParams& params);

  [[nodiscard]] const GtrParams& params() const { return params_; }
  [[nodiscard]] const std::array<double, 4>& freqs() const {
    return params_.freqs;
  }

  // Eigenvalues of the normalized Q (ascending; one of them is ~0).
  [[nodiscard]] const std::array<double, 4>& eigenvalues() const {
    return eigenvalues_;
  }

  // P(t*rate): row-major 4x4 transition probability matrix.
  // t >= 0; rate scales branch length (rate-heterogeneity category).
  [[nodiscard]] std::array<double, 16> transition_matrix(double t,
                                                         double rate = 1.0) const;

  // Right/left eigenvector matrices: Q = V diag(lambda) V^-1, row-major.
  [[nodiscard]] const std::array<double, 16>& right_vectors() const {
    return v_;
  }
  [[nodiscard]] const std::array<double, 16>& left_vectors() const {
    return vinv_;
  }

  // The normalized rate matrix itself (row-major), for tests and simulation.
  [[nodiscard]] const std::array<double, 16>& rate_matrix() const { return q_; }

 private:
  GtrParams params_;
  std::array<double, 16> q_{};
  std::array<double, 4> eigenvalues_{};
  std::array<double, 16> v_{};     // right eigenvectors (columns)
  std::array<double, 16> vinv_{};  // left eigenvectors (rows)
};

}  // namespace raxh
