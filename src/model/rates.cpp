#include "model/rates.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/math_ext.h"

namespace raxh {

RateModel RateModel::uniform() {
  RateModel m;
  m.kind_ = RateKind::kUniform;
  m.rates_ = {1.0};
  return m;
}

RateModel RateModel::gamma(double alpha, int ncat) {
  RAXH_EXPECTS(alpha > 0.0);
  RAXH_EXPECTS(ncat >= 1);
  RateModel m;
  m.kind_ = RateKind::kGamma;
  m.alpha_ = alpha;
  m.rates_ = discrete_gamma_rates(alpha, ncat);
  return m;
}

RateModel RateModel::cat(std::size_t num_patterns) {
  RAXH_EXPECTS(num_patterns > 0);
  RateModel m;
  m.kind_ = RateKind::kCat;
  m.rates_ = {1.0};
  m.pattern_category_.assign(num_patterns, 0);
  return m;
}

void RateModel::set_alpha(double alpha) {
  RAXH_EXPECTS(kind_ == RateKind::kGamma);
  RAXH_EXPECTS(alpha > 0.0);
  alpha_ = alpha;
  rates_ = discrete_gamma_rates(alpha, static_cast<int>(rates_.size()));
}

void RateModel::set_categories(std::vector<double> category_rates,
                               std::vector<int> categories) {
  RAXH_EXPECTS(kind_ == RateKind::kCat);
  RAXH_EXPECTS(!category_rates.empty());
  RAXH_EXPECTS(categories.size() == pattern_category_.size());
  for (double r : category_rates) RAXH_EXPECTS(r > 0.0);
  for (int c : categories)
    RAXH_EXPECTS(c >= 0 && c < static_cast<int>(category_rates.size()));
  rates_ = std::move(category_rates);
  pattern_category_ = std::move(categories);
}

void RateModel::assign_categories_from_rates(
    std::span<const double> pattern_rates, std::span<const int> pattern_weights,
    int max_categories) {
  RAXH_EXPECTS(kind_ == RateKind::kCat);
  RAXH_EXPECTS(pattern_rates.size() == pattern_category_.size());
  RAXH_EXPECTS(pattern_weights.size() == pattern_rates.size());
  RAXH_EXPECTS(max_categories >= 1);

  const std::size_t npat = pattern_rates.size();

  // Sort patterns by estimated rate.
  std::vector<std::size_t> order(npat);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pattern_rates[a] < pattern_rates[b];
  });

  long total_weight = 0;
  for (int w : pattern_weights) total_weight += w;
  RAXH_EXPECTS(total_weight > 0);

  // Quantile clustering: walk patterns in rate order, open a new category
  // every total/K sites of cumulative weight.
  const int ncat = std::min<int>(max_categories, static_cast<int>(npat));
  std::vector<int> categories(npat, 0);
  std::vector<double> cat_rate_sum(static_cast<std::size_t>(ncat), 0.0);
  std::vector<long> cat_weight(static_cast<std::size_t>(ncat), 0);

  long cumulative = 0;
  for (std::size_t rank = 0; rank < npat; ++rank) {
    const std::size_t p = order[rank];
    int cat = static_cast<int>((cumulative * ncat) / total_weight);
    cat = std::min(cat, ncat - 1);
    categories[p] = cat;
    cat_rate_sum[static_cast<std::size_t>(cat)] +=
        pattern_rates[p] * pattern_weights[p];
    cat_weight[static_cast<std::size_t>(cat)] += pattern_weights[p];
    cumulative += pattern_weights[p];
  }

  std::vector<double> cat_rates(static_cast<std::size_t>(ncat), 1.0);
  for (int c = 0; c < ncat; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    cat_rates[cs] = cat_weight[cs] > 0
                        ? cat_rate_sum[cs] / static_cast<double>(cat_weight[cs])
                        : 1.0;
    cat_rates[cs] = std::max(cat_rates[cs], 1e-4);
  }

  // Normalize so the site-weighted mean rate is exactly 1 (keeps branch
  // lengths in expected-substitutions units).
  double mean = 0.0;
  for (std::size_t p = 0; p < npat; ++p)
    mean += cat_rates[static_cast<std::size_t>(categories[p])] *
            pattern_weights[p];
  mean /= static_cast<double>(total_weight);
  RAXH_ASSERT(mean > 0.0);
  for (double& r : cat_rates) r /= mean;

  rates_ = std::move(cat_rates);
  pattern_category_ = std::move(categories);
}

}  // namespace raxh
