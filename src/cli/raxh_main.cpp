// raxh — the command-line front end, mirroring RAxML's main modes:
//
//   -f a   comprehensive analysis: rapid bootstraps + full ML search (default)
//   -f d   multi-start ML searches from randomized stepwise-addition trees
//   -f b   bootstrap-only run (replicates + majority-rule consensus)
//   -f x   adaptive bootstrap: rounds of replicates until the FC
//          bootstopping test converges (-N caps the total)
//   -f e   evaluate/optimize a fixed topology (-t tree file required)
//
// Common options:
//   -s <file>    PHYLIP alignment (required)
//   -q <file>    partition scheme (only with -f e for now; see examples)
//   -n <name>    output basename                      [raxh]
//   -N <int>     bootstraps / searches                [100 / 10]
//   -p <seed>    parsimony seed                       [12345]
//   -x <seed>    rapid-bootstrap seed                 [12345]
//   -np <int>    coarse-grained ranks (forked)        [1]
//   -T <int>     fine-grained threads per rank        [1]
//   -t <file>    input tree (for -f e)
//   -m <model>   GTRCAT | GTRGAMMA (search model)     [GTRCAT-style default]
//   --kernels=NAME  likelihood kernel family member: auto (default; best
//                   CPUID-supported member) | scalar | generic | neon |
//                   avx2 | avx512. RAXH_KERNELS sets the same override.
//   --repeats=on|off  site-repeat detection in newview  [on; bitwise-
//                   invisible to results, off for A/B benching]
//   -simd <on|off|auto>  legacy alias: off = --kernels=scalar, on/auto =
//                   best member (the default)
//
// minimpi runtime (src/minimpi/):
//   --collectives=ALG     star | tree: collective routing. tree (default)
//                         runs Barrier/Bcast/Allreduce/Gather over binomial
//                         trees (latency grows with log ranks); star keeps
//                         the rank-0-centered pattern for A/B benching.
//   --transport=KIND      socketpair | shm: rank-to-rank transport for the
//                         forked mesh. shm moves frames through same-host
//                         shared-memory rings (socketpairs stay as the
//                         liveness channel); socketpair (default) frames
//                         over the full socket mesh.
//
// Observability (src/obs/):
//   --trace-out=FILE      merged Chrome trace_event JSON (all ranks/threads;
//                         load in chrome://tracing or ui.perfetto.dev)
//   --metrics-out=FILE    per-rank counter/phase/latency-histogram/comm
//                         metrics JSON array
//   --report-components   print the Figs. 3/4-style per-rank component
//                         breakdown (stage wall times) after the run
//   --heartbeat-out=DIR   live telemetry (-f a): each rank appends ndjson
//                         heartbeats to DIR/rank<r>.ndjson while it runs;
//                         rank 0 tails the directory and logs a one-line
//                         status with ETA and straggler flags
//   --straggler-factor=X  flag a rank when its progress rate lags the
//                         median by more than X (default 2.0)
//   --log-level=LVL       error | warn | info | debug       [info]
//
// Flight recorder (always on; src/obs/flight.*):
//   --blackbox=off        disable the in-memory flight recorder
//   --blackbox-dir=DIR    where crash/failure black boxes land
//                         [<name>_blackbox]
//   --blackbox-dump       also dump every rank's black box at the end of a
//                         successful run (for offline raxh_blackbox analysis)
// Fatal signals (SIGSEGV/SIGBUS/SIGABRT), std::terminate, injected rank
// deaths, and peer-failure detection all dump DIR/rank<r>.blackbox
// automatically; decode with tools/raxh_blackbox.
//
// Fault tolerance (-f a only):
//   --fault-tolerant      survive rank death: rank 0 detects dead peers and
//                         re-grants their logical work shares to survivors;
//                         the result is bit-identical to a fault-free run
//   --checkpoint-dir=DIR  persist per-logical-rank bootstrap checkpoints to
//                         DIR and resume from them (restart or re-grant)
//   --fault-plan=SPEC     deterministic fault injection for testing, e.g.
//                         "die@1,7;torn@2,12;delay@0,3,15" (kind@rank,op[,ms];
//                         also read from RAXH_FAULT_PLAN). Implies
//                         --fault-tolerant.
//
// Telemetry output paths are validated (and directories created) at startup
// so a long run cannot silently lose its telemetry at the end.
//
// Exit status 0 on success; messages go to stdout, errors to stderr.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "bio/io.h"
#include "bio/patterns.h"
#include "serve/client.h"
#include "likelihood/kernels.h"
#include "likelihood/repeats.h"
#include "core/analyses.h"
#include "core/evaluate_mode.h"
#include "core/hybrid.h"
#include "minimpi/comm.h"
#include "minimpi/fault.h"
#include "obs/comm_obs.h"
#include "obs/flight.h"
#include "obs/live.h"
#include "obs/obs.h"
#include "obs/phase.h"
#include "tree/consensus.h"
#include "util/cli.h"
#include "util/fscheck.h"
#include "util/log.h"
#include "util/timer.h"

namespace {

using namespace raxh;

void usage(const char* prog) {
  std::printf(
      "usage: %s -s alignment.phy [-f a|d|b|e] [-N n] [-p seed] [-x seed]\n"
      "          [-np ranks] [-T threads] [-n name] [-t tree] [-m model]\n"
      "          [--trace-out=FILE] [--metrics-out=FILE] "
      "[--report-components]\n"
      "          [--heartbeat-out=DIR] [--straggler-factor=X]\n"
      "          [--fault-tolerant] [--checkpoint-dir=DIR] "
      "[--fault-plan=SPEC]\n"
      "          [--log-level=error|warn|info|debug] [--blackbox=off]\n"
      "          [--blackbox-dir=DIR] [--blackbox-dump]\n"
      "          [--collectives=star|tree] [--transport=socketpair|shm]\n"
      "          [--kernels=auto|scalar|generic|neon|avx2|avx512]\n"
      "          [--repeats=on|off] [-simd on|off|auto]\n"
      "          [--connect=SOCKET|host:port]  (run -f a on a raxhd daemon)\n"
      "modes: a=comprehensive (default), d=multi-start ML, b=bootstrap only,\n"
      "       x=adaptive bootstrap (FC bootstopping), e=evaluate topology\n",
      prog);
}

// --- minimpi flags (--collectives=star|tree / --transport=socketpair|shm) ---

bool comm_options_from_cli(const CliParser& cli, mpi::CommOptions* out) {
  const std::string algo = cli.value_or("-collectives", "tree");
  if (algo == "star") {
    out->collectives = mpi::CollectiveAlgo::kStar;
  } else if (algo == "tree") {
    out->collectives = mpi::CollectiveAlgo::kTree;
  } else {
    std::fprintf(stderr, "error: --collectives=%s: expected star or tree\n",
                 algo.c_str());
    return false;
  }
  const std::string transport = cli.value_or("-transport", "socketpair");
  if (transport == "shm") {
    out->transport = mpi::Transport::kShm;
  } else if (transport == "socketpair") {
    out->transport = mpi::Transport::kSocketpair;
  } else {
    std::fprintf(stderr,
                 "error: --transport=%s: expected socketpair or shm\n",
                 transport.c_str());
    return false;
  }
  return true;
}

// --- observability flags (--trace-out / --metrics-out / --report-components
//     / --heartbeat-out / --straggler-factor)

struct ObsOptions {
  std::string trace_out;
  std::string metrics_out;
  std::string heartbeat_out;
  double straggler_factor = 2.0;
  bool report_components = false;

  [[nodiscard]] bool any() const {
    return !trace_out.empty() || !metrics_out.empty() ||
           !heartbeat_out.empty() || report_components;
  }
};

ObsOptions obs_from_cli(const CliParser& cli) {
  ObsOptions o;
  o.trace_out = cli.value_or("-trace-out", "");
  o.metrics_out = cli.value_or("-metrics-out", "");
  o.heartbeat_out = cli.value_or("-heartbeat-out", "");
  const std::string factor = cli.value_or("-straggler-factor", "");
  if (!factor.empty()) o.straggler_factor = std::strtod(factor.c_str(), nullptr);
  o.report_components = cli.has("-report-components");
  return o;
}

bool validate_obs_paths(const ObsOptions& o) {
  // util/fscheck.h probes: paths must prove writable before any work starts.
  const std::pair<const char*, const std::string*> files[] = {
      {"--trace-out", &o.trace_out}, {"--metrics-out", &o.metrics_out}};
  for (const auto& [flag, path] : files) {
    if (path->empty()) continue;
    if (!file_path_writable(*path)) {
      std::fprintf(stderr, "error: %s=%s: directory is not writable\n", flag,
                   path->c_str());
      return false;
    }
  }
  if (!o.heartbeat_out.empty() && !dir_accepts_files(o.heartbeat_out)) {
    std::fprintf(stderr,
                 "error: --heartbeat-out=%s: cannot create or write the "
                 "heartbeat directory\n",
                 o.heartbeat_out.c_str());
    return false;
  }
  if (o.straggler_factor <= 1.0) {
    std::fprintf(stderr,
                 "error: --straggler-factor must be > 1.0 (got %g)\n",
                 o.straggler_factor);
    return false;
  }
  return true;
}

// --blackbox-dump: persist every rank's flight ring at the end of a clean
// run so raxh_blackbox can analyze fault-free runs too. Called inside the
// per-rank lambda, before the telemetry merge.
void end_of_run_dump(const CliParser& cli, int rank) {
  if (cli.has("-blackbox-dump"))
    obs::flight::dump_now(rank, "end of run");
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

// Collective: merges every rank's observability output on rank 0. Metric and
// phase snapshots are taken before the gathers so the export's own comm
// traffic does not pollute the reported numbers.
void finalize_obs(mpi::Comm& comm, const ObsOptions& options) {
  if (!options.any()) return;
  std::string metrics;
  if (!options.metrics_out.empty())
    metrics = obs::export_metrics_fragment(
        comm.rank(), comm.stats().to_json() + "," +
                         obs::comm::to_json_section(comm.rank()) + "," +
                         kern::to_json_section());
  const std::string phases = options.report_components
                                 ? obs::serialize_phases(obs::run_phases())
                                 : std::string();

  if (!options.trace_out.empty()) {
    const auto fragments =
        comm.gather_strings(obs::export_trace_fragment(comm.rank()), 0);
    if (comm.rank() == 0 &&
        write_text_file(options.trace_out,
                        obs::merge_trace_fragments(fragments))) {
      std::printf("wrote trace to %s (open in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  options.trace_out.c_str());
    }
  }
  if (!options.metrics_out.empty()) {
    const auto fragments = comm.gather_strings(metrics, 0);
    if (comm.rank() == 0 &&
        write_text_file(options.metrics_out,
                        obs::merge_metrics_fragments(fragments))) {
      std::printf("wrote metrics to %s\n", options.metrics_out.c_str());
    }
  }
  if (options.report_components) {
    const auto fragments = comm.gather_strings(phases, 0);
    if (comm.rank() == 0) {
      std::vector<std::vector<std::pair<std::string, double>>> rows;
      std::vector<std::string> labels;
      for (std::size_t r = 0; r < fragments.size(); ++r) {
        rows.push_back(obs::deserialize_phases(fragments[r]));
        labels.push_back(std::to_string(r));
      }
      std::printf("\ncomponent breakdown (seconds):\n%s",
                  obs::format_component_table(rows, labels, "rank").c_str());
    }
  }
}

// --connect <socket-or-host:port>: hand the comprehensive analysis to a
// running raxhd daemon instead of executing in-process. The daemon runs the
// same run_hybrid_comprehensive with the same seed chain, so the trees it
// returns are bit-identical to what the one-shot path below would write.
int run_connected(const std::string& target, const std::string& alignment_path,
                  const CliParser& cli) {
  std::ifstream in(alignment_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", alignment_path.c_str());
    return 2;
  }
  serve::JobRequest request;
  request.alignment.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
  request.name = cli.value_or("n", "raxh");
  request.model = cli.value_or("m", "GTRCAT");
  request.bootstraps = static_cast<int>(cli.int_or("N", 100));
  request.parsimony_seed = cli.int_or("p", 12345);
  request.bootstrap_seed = cli.int_or("x", 12345);
  request.nranks = static_cast<int>(cli.int_or("np", 1));
  request.num_threads = static_cast<int>(cli.int_or("T", 1));
  request.checkpoint = cli.has("-checkpoint-dir");

  serve::Client client = serve::Client::connect(target);
  const std::string id = client.submit(request);
  std::printf("submitted job %s to %s\n", id.c_str(), target.c_str());
  std::string last_phase;
  const serve::JobStatus final_status =
      client.stream(id, [&](const serve::JobStatus& s) {
        if (s.phase != last_phase && !s.phase.empty()) {
          std::printf("job %s: %s (%.0f%%)\n", id.c_str(), s.phase.c_str(),
                      s.fraction * 100.0);
          last_phase = s.phase;
        }
      });
  if (final_status.state != serve::JobState::kDone) {
    std::fprintf(stderr, "error: job %s %s%s%s\n", id.c_str(),
                 serve::job_state_name(final_status.state),
                 final_status.error.empty() ? "" : ": ",
                 final_status.error.c_str());
    return 1;
  }
  const serve::JobResult result = client.result(id);
  const std::string name = request.name;
  std::printf("winner: rank %d, final GAMMA lnL %.6f%s\n", result.winner_rank,
              result.best_lnl, final_status.cache_hit ? " (cached alignment)"
                                                      : "");
  std::ofstream(name + "_bestTree.tre") << result.best_tree_newick << '\n';
  std::ofstream(name + "_bipartitions.tre")
      << result.support_tree_newick << '\n';
  std::printf("wrote %s_bestTree.tre, %s_bipartitions.tre (%d replicates)\n",
              name.c_str(), name.c_str(), result.total_bootstrap_trees);
  return 0;
}

int run_comprehensive(const PatternAlignment& patterns, const CliParser& cli) {
  HybridOptions options;
  options.analysis.specified_bootstraps =
      static_cast<int>(cli.int_or("N", 100));
  options.analysis.parsimony_seed = cli.int_or("p", 12345);
  options.analysis.bootstrap_seed = cli.int_or("x", 12345);
  options.analysis.num_threads = static_cast<int>(cli.int_or("T", 1));
  options.compute_support = true;
  options.run_bootstopping = true;
  options.analysis.checkpoint_dir = cli.value_or("-checkpoint-dir", "");
  options.fault_tolerant = cli.has("-fault-tolerant");
  const int ranks = static_cast<int>(cli.int_or("np", 1));
  const std::string name = cli.value_or("n", "raxh");

  // Fault injection (testing): --fault-plan wins over RAXH_FAULT_PLAN. A
  // plan with lethal actions and no recovery would just crash the job, so
  // lethal plans imply --fault-tolerant. Delay-only plans stay on the
  // regular collective driver: they model slow edges, not rank death, and
  // the tree collectives they slow down are what raxh_comm and the
  // kCollEdge postmortem attribute.
  std::string plan_spec = cli.value_or("-fault-plan", "");
  if (plan_spec.empty())
    if (const char* env = std::getenv("RAXH_FAULT_PLAN")) plan_spec = env;
  mpi::FaultPlan plan;
  if (!plan_spec.empty()) {
    try {
      plan = mpi::FaultPlan::parse(plan_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad fault plan: %s\n", e.what());
      return 1;
    }
    for (const mpi::FaultAction& action : plan.actions)
      if (action.lethal()) options.fault_tolerant = true;
    std::printf("fault plan active: %s\n", plan.to_spec().c_str());
  }
  if (!options.analysis.checkpoint_dir.empty() &&
      !dir_accepts_files(options.analysis.checkpoint_dir)) {
    std::fprintf(stderr,
                 "error: --checkpoint-dir=%s: cannot create or write the "
                 "checkpoint directory\n",
                 options.analysis.checkpoint_dir.c_str());
    return 1;
  }

  const ObsOptions obs_opts = obs_from_cli(cli);
  WallTimer wall;
  mpi::CommOptions copts;
  if (!comm_options_from_cli(cli, &copts)) return 1;
  mpi::run_process_ranks(ranks, [&](mpi::Comm& inner_comm) {
    // With a fault plan, every rank talks through the injecting decorator;
    // its op counter drives the plan deterministically on both backends.
    std::unique_ptr<mpi::FaultyComm> faulty;
    if (!plan.empty())
      faulty = std::make_unique<mpi::FaultyComm>(inner_comm, plan);
    mpi::Comm& comm = faulty ? *faulty : inner_comm;
    // Live telemetry threads must be born after the fork (forked ranks share
    // no address space, and threads do not survive fork): one heartbeat
    // writer per rank, plus the tailing aggregator on rank 0.
    std::unique_ptr<obs::HeartbeatWriter> heartbeat;
    std::unique_ptr<obs::HeartbeatAggregator> aggregator;
    if (!obs_opts.heartbeat_out.empty()) {
      obs::HeartbeatOptions hb;
      hb.dir = obs_opts.heartbeat_out;
      hb.rank = comm.rank();
      heartbeat = std::make_unique<obs::HeartbeatWriter>(hb);
      if (comm.rank() == 0) {
        obs::AggregatorOptions agg;
        agg.dir = obs_opts.heartbeat_out;
        agg.nranks = comm.size();
        agg.straggler_factor = obs_opts.straggler_factor;
        aggregator = std::make_unique<obs::HeartbeatAggregator>(agg);
      }
    }
    const auto result = run_hybrid_comprehensive(comm, patterns, options);
    // Flush the final "done" beat before the aggregator's closing scan.
    if (heartbeat) heartbeat->stop();
    if (aggregator) aggregator->stop();
    if (comm.rank() == 0) {
      if (!result.failed_ranks.empty()) {
        std::printf("survived %zu rank failure(s):",
                    result.failed_ranks.size());
        for (const int r : result.failed_ranks) std::printf(" %d", r);
        std::printf(" (work re-granted; result identical to fault-free)\n");
      }
      if (result.resumed_replicates > 0)
        std::printf("resumed %d bootstrap replicate(s) from checkpoints\n",
                    result.resumed_replicates);
      std::printf("winner: rank %d, final GAMMA lnL %.6f\n",
                  result.winner_rank, result.best_lnl);
      std::ofstream(name + "_bestTree.tre") << result.best_tree_newick << '\n';
      std::ofstream(name + "_bipartitions.tre")
          << result.support_tree_newick << '\n';
      std::printf(
          "wrote %s_bestTree.tre, %s_bipartitions.tre (%d replicates)\n",
          name.c_str(), name.c_str(), result.total_bootstrap_trees);
      if (result.bootstop.mean_correlation != 0.0)
        std::printf("bootstopping (FC): %s (mean corr %.4f)\n",
                    result.bootstop.converged ? "converged" : "not converged",
                    result.bootstop.mean_correlation);
    }
    end_of_run_dump(cli, comm.rank());
    // The telemetry merge is built on full collectives; with dead ranks in
    // the communicator it cannot complete, so skip it rather than hang.
    // `failed_ranks` came from the FINISH message, so live ranks agree.
    if (result.failed_ranks.empty()) {
      finalize_obs(comm, obs_opts);
    } else if (comm.rank() == 0 && obs_opts.any()) {
      std::printf("skipping telemetry merge (rank failures occurred)\n");
    }
  }, copts);
  std::printf("wall time: %.2f s\n", wall.seconds());
  return 0;
}

int run_multistart(const PatternAlignment& patterns, const CliParser& cli) {
  MultistartOptions options;
  options.searches = static_cast<int>(cli.int_or("N", 10));
  options.parsimony_seed = cli.int_or("p", 12345);
  options.num_threads = static_cast<int>(cli.int_or("T", 1));
  const int ranks = static_cast<int>(cli.int_or("np", 1));
  const std::string name = cli.value_or("n", "raxh");

  const ObsOptions obs_opts = obs_from_cli(cli);
  mpi::CommOptions copts;
  if (!comm_options_from_cli(cli, &copts)) return 1;
  mpi::run_process_ranks(ranks, [&](mpi::Comm& comm) {
    const auto result = [&] {
      obs::ScopedPhase phase("search");
      return run_multistart_ml(comm, patterns, options);
    }();
    if (comm.rank() == 0) {
      std::printf("best of %d searches: lnL %.6f (rank %d)\n",
                  options.searches, result.best_lnl, result.winner_rank);
      std::printf("all searches:");
      for (double l : result.all_lnls) std::printf(" %.4f", l);
      std::printf("\n");
      std::ofstream(name + "_bestTree.tre") << result.best_tree_newick << '\n';
      std::printf("wrote %s_bestTree.tre\n", name.c_str());
    }
    end_of_run_dump(cli, comm.rank());
    finalize_obs(comm, obs_opts);
  }, copts);
  return 0;
}

int run_bootstrap_only(const PatternAlignment& patterns, const CliParser& cli) {
  BootstrapRunOptions options;
  options.replicates = static_cast<int>(cli.int_or("N", 100));
  options.parsimony_seed = cli.int_or("p", 12345);
  options.bootstrap_seed = cli.int_or("x", 12345);
  options.num_threads = static_cast<int>(cli.int_or("T", 1));
  const int ranks = static_cast<int>(cli.int_or("np", 1));
  const std::string name = cli.value_or("n", "raxh");

  const ObsOptions obs_opts = obs_from_cli(cli);
  mpi::CommOptions copts;
  if (!comm_options_from_cli(cli, &copts)) return 1;
  mpi::run_process_ranks(ranks, [&](mpi::Comm& comm) {
    const auto result = [&] {
      obs::ScopedPhase phase("replicates");
      return run_bootstrap_analysis(comm, patterns, options);
    }();
    if (comm.rank() == 0) {
      std::ofstream trees(name + "_bootstrap.tre");
      for (const auto& nwk : result.replicate_newicks) trees << nwk << '\n';
      std::ofstream(name + "_consensus.tre") << result.consensus_newick
                                             << '\n';
      std::printf("wrote %zu replicates to %s_bootstrap.tre and the "
                  "majority-rule consensus to %s_consensus.tre\n",
                  result.replicate_newicks.size(), name.c_str(), name.c_str());
    }
    end_of_run_dump(cli, comm.rank());
    finalize_obs(comm, obs_opts);
  }, copts);
  return 0;
}

int run_adaptive(const PatternAlignment& patterns, const CliParser& cli) {
  AdaptiveBootstrapOptions options;
  options.max_replicates = std::max(2, static_cast<int>(cli.int_or("N", 200)));
  options.min_replicates = std::min(options.min_replicates,
                                    options.max_replicates);
  options.parsimony_seed = cli.int_or("p", 12345);
  options.bootstrap_seed = cli.int_or("x", 12345);
  options.num_threads = static_cast<int>(cli.int_or("T", 1));
  const int ranks = static_cast<int>(cli.int_or("np", 1));
  const std::string name = cli.value_or("n", "raxh");

  const ObsOptions obs_opts = obs_from_cli(cli);
  mpi::CommOptions copts;
  if (!comm_options_from_cli(cli, &copts)) return 1;
  mpi::run_process_ranks(ranks, [&](mpi::Comm& comm) {
    const auto result = [&] {
      obs::ScopedPhase phase("replicates");
      return run_adaptive_bootstrap(comm, patterns, options);
    }();
    if (comm.rank() == 0) {
      std::printf("%s after %d replicates (%d rounds, mean FC correlation "
                  "%.4f)\n",
                  result.converged ? "bootstopping CONVERGED"
                                   : "cap reached without convergence",
                  result.total_replicates, result.rounds,
                  result.final_correlation);
      std::ofstream trees(name + "_bootstrap.tre");
      for (const auto& nwk : result.replicate_newicks) trees << nwk << '\n';
      std::printf("wrote %zu replicates to %s_bootstrap.tre\n",
                  result.replicate_newicks.size(), name.c_str());
    }
    end_of_run_dump(cli, comm.rank());
    finalize_obs(comm, obs_opts);
  }, copts);
  return 0;
}

int run_evaluate(const PatternAlignment& patterns, const CliParser& cli) {
  // Also dumps per-site log likelihoods (<name>_sitelh.txt), RAxML's "-f g"
  // style sitewise output, expanded from patterns to original site order.
  const auto tree_path = cli.value("t");
  if (!tree_path) {
    std::fprintf(stderr, "error: -f e requires -t <treefile>\n");
    return 2;
  }
  std::ifstream in(*tree_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", tree_path->c_str());
    return 2;
  }
  std::string newick((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());

  EvaluateOptions options;
  options.use_gamma = cli.value_or("m", "GTRGAMMA") != "GTRCAT";
  options.num_threads = static_cast<int>(cli.int_or("T", 1));
  const auto result = [&] {
    obs::ScopedPhase phase("evaluate");
    return evaluate_fixed_topology(patterns, newick, options);
  }();
  std::printf("lnL %.6f", result.lnl);
  if (options.use_gamma) std::printf("  alpha %.4f", result.alpha);
  std::printf("\nGTR rates (AC AG AT CG CT GT):");
  for (double r : result.gtr_rates) std::printf(" %.4f", r);
  std::printf("\nbase frequencies:");
  for (double f : result.frequencies) std::printf(" %.4f", f);
  std::printf("\n");
  const std::string name = cli.value_or("n", "raxh");
  std::ofstream(name + "_evaluated.tre")
      << result.optimized_tree_newick << '\n';
  {
    std::ofstream sitelh(name + "_sitelh.txt");
    sitelh.precision(10);
    const auto s2p = patterns.site_to_pattern();
    for (std::size_t site = 0; site < s2p.size(); ++site)
      sitelh << site + 1 << ' ' << result.per_pattern_lnl[s2p[site]] << '\n';
  }
  std::printf("wrote %s_evaluated.tre and %s_sitelh.txt\n", name.c_str(),
              name.c_str());
  end_of_run_dump(cli, 0);

  // -f e runs without a communicator: export this process's fragments alone.
  const ObsOptions obs_opts = obs_from_cli(cli);
  if (!obs_opts.trace_out.empty() &&
      write_text_file(
          obs_opts.trace_out,
          obs::merge_trace_fragments({obs::export_trace_fragment(0)})))
    std::printf("wrote trace to %s\n", obs_opts.trace_out.c_str());
  if (!obs_opts.metrics_out.empty() &&
      write_text_file(
          obs_opts.metrics_out,
          obs::merge_metrics_fragments(
              {obs::export_metrics_fragment(0, kern::to_json_section())})))
    std::printf("wrote metrics to %s\n", obs_opts.metrics_out.c_str());
  if (obs_opts.report_components) {
    std::printf("\ncomponent breakdown (seconds):\n%s",
                obs::format_component_table(
                    {obs::run_phases().phases()}, {std::string("0")}, "rank")
                    .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliParser cli(argc, argv);
  const auto alignment_path = cli.value("s");
  if (!alignment_path || cli.has("h") || cli.has("-help")) {
    usage(argv[0]);
    return alignment_path ? 0 : 2;
  }

  {
    const std::string lvl = cli.value_or("-log-level", "");
    if (!lvl.empty()) {
      const auto parsed = parse_log_level(lvl);
      if (!parsed) {
        std::fprintf(stderr,
                     "error: --log-level=%s: expected error, warn, info, or "
                     "debug\n",
                     lvl.c_str());
        return 2;
      }
      Logger::instance().set_level(*parsed);
    }
  }

  // Daemon mode: ship the job to a raxhd instance instead of running here.
  // Only -f a is served; the local obs/flight machinery stays untouched.
  {
    const std::string target = cli.value_or("-connect", "");
    if (!target.empty()) {
      const std::string mode = cli.value_or("f", "a");
      if (mode != "a") {
        std::fprintf(stderr,
                     "error: --connect only supports -f a (comprehensive)\n");
        return 2;
      }
      try {
        return run_connected(target, *alignment_path, cli);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    }
  }

  {
    const ObsOptions obs_opts = obs_from_cli(cli);
    if (obs_opts.any()) {
      if (!validate_obs_paths(obs_opts)) return 2;
      obs::set_enabled(true);
    }
  }

  // Flight recorder: configured before any fork so every rank inherits the
  // dump directory and the crash handlers.
  if (cli.value_or("-blackbox", "") == "off") {
    obs::flight::set_enabled(false);
  } else {
    obs::flight::set_dump_dir(
        cli.value_or("-blackbox-dir", cli.value_or("n", "raxh") + "_blackbox")
            .c_str());
    obs::flight::install_crash_handlers();
  }

  try {
    const PatternAlignment patterns = [&] {
      obs::ScopedPhase setup_phase("setup");
      const Alignment alignment = read_phylip_file(*alignment_path);
      return PatternAlignment::compress(alignment);
    }();
    std::printf("raxh: %zu taxa, %zu sites, %zu patterns\n",
                patterns.num_taxa(), patterns.num_sites(),
                patterns.num_patterns());

    // Kernel selection: --kernels=NAME picks a family member explicitly;
    // -simd on|off|auto is kept for compatibility (off = scalar reference,
    // on/auto = best supported member, which is also the default).
    {
      const std::string kernels = cli.value_or("-kernels", "");
      const std::string simd = cli.value_or("simd", "auto");
      if (!kernels.empty()) {
        kern::KernelIsa isa{};
        if (!kern::parse_kernel_isa(kernels, &isa)) {
          std::fprintf(stderr,
                       "error: --kernels=%s: expected auto or one of: %s\n",
                       kernels.c_str(), kern::kernel_isa_list().c_str());
          return 2;
        }
        if (!kern::set_kernel_isa(isa)) {
          std::fprintf(stderr,
                       "error: --kernels=%s is not supported on this machine "
                       "(available: %s)\n",
                       kernels.c_str(), kern::kernel_isa_list().c_str());
          return 2;
        }
      } else if (simd == "off") {
        kern::set_kernel_isa(kern::KernelIsa::kScalar);
      }
      const std::string repeats = cli.value_or("-repeats", "");
      if (!repeats.empty()) {
        if (repeats != "on" && repeats != "off") {
          std::fprintf(stderr, "error: --repeats=%s: expected on or off\n",
                       repeats.c_str());
          return 2;
        }
        set_repeats_enabled(repeats == "on");
      }
      std::printf("raxh: %s kernels, site repeats %s\n",
                  kern::kernel_isa_name(kern::kernel_isa()),
                  repeats_enabled() ? "on" : "off");
    }

    const std::string mode = cli.value_or("f", "a");
    if (mode == "a") return run_comprehensive(patterns, cli);
    if (mode == "d") return run_multistart(patterns, cli);
    if (mode == "b") return run_bootstrap_only(patterns, cli);
    if (mode == "x") return run_adaptive(patterns, cli);
    if (mode == "e") return run_evaluate(patterns, cli);
    std::fprintf(stderr, "error: unknown mode -f %s\n", mode.c_str());
    usage(argv[0]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
