// raxhd — the long-lived analysis daemon. Accepts concurrent comprehensive
// analyses over a unix-domain socket (and optionally loopback TCP), runs
// them on a shared pool of thread-backed minimpi ranks, and serves results
// bit-identical to one-shot `raxh -f a` runs with the same seeds.
//
//   --socket=PATH          unix-domain listener            [/tmp/raxhd.sock]
//   --tcp-port=N           loopback TCP listener; 0 = off  [0]
//   --jobs=N               concurrent executor slots       [4]
//   --cache-mb=N           alignment cache budget in MiB   [64]
//   --lookahead=N          admission pipeline depth        [2]
//   --artifact-dir=DIR     per-job checkpoints land here, namespaced by
//                          job id (jobs submitted with checkpoint=true)
//   --max-ranks=N          per-job rank cap                [16]
//   --max-threads=N        per-job threads-per-rank cap    [16]
//   --stream-interval-ms=N STREAM event cadence            [100]
//   --log-level=LVL        error | warn | info | debug     [info]
//
// Observability (the same exposition is always available in-band via the
// kMetrics protocol op / `raxhd_client metrics`):
//   --metrics-http-port=N  loopback HTTP GET /metrics; 0 = off, -1 =
//                          ephemeral (port is logged)              [0]
//   --trace-out=FILE       at shutdown, write one merged Chrome trace with
//                          every job's lifecycle + rank/crew spans
//   --metrics-out=FILE     at shutdown, write a final Prometheus scrape
// All output paths are probed at startup and the daemon refuses to start if
// one is unwritable — a week of uptime must not end in silent data loss.
//
// Shutdown: SIGTERM/SIGINT, or a SHUTDOWN frame (raxhd_client shutdown).
// Either way the daemon cancels outstanding jobs cooperatively, drains
// connections, unlinks the socket, and exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/fscheck.h"
#include "util/log.h"

namespace {

using namespace raxh;

// Signal handlers may only touch lock-free state; the server polls this
// atomic in run_until_shutdown(). One global is the price of signal-safety.
serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

void usage(const char* prog) {
  std::printf(
      "usage: %s [--socket=PATH] [--tcp-port=N] [--jobs=N] [--cache-mb=N]\n"
      "          [--lookahead=N] [--artifact-dir=DIR] [--max-ranks=N]\n"
      "          [--max-threads=N] [--stream-interval-ms=N]\n"
      "          [--metrics-http-port=N] [--trace-out=FILE]\n"
      "          [--metrics-out=FILE]\n"
      "          [--log-level=error|warn|info|debug]\n"
      "Long-lived analysis daemon; submit jobs with raxhd_client or\n"
      "`raxh --connect`.\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  const CliParser cli(argc, argv);
  if (cli.has("h") || cli.has("-help")) {
    usage(argv[0]);
    return 0;
  }

  {
    const std::string lvl = cli.value_or("-log-level", "");
    if (!lvl.empty()) {
      const auto parsed = parse_log_level(lvl);
      if (!parsed) {
        std::fprintf(stderr,
                     "error: --log-level=%s: expected error, warn, info, or "
                     "debug\n",
                     lvl.c_str());
        return 2;
      }
      Logger::instance().set_level(*parsed);
    }
  }

  serve::ServerOptions options;
  options.socket_path = cli.value_or("-socket", "/tmp/raxhd.sock");
  options.tcp_port = static_cast<int>(cli.int_or("-tcp-port", 0));
  options.stream_interval_ms =
      static_cast<int>(cli.int_or("-stream-interval-ms", 100));
  options.service.max_concurrent_jobs = static_cast<int>(cli.int_or("-jobs", 4));
  options.service.cache_bytes =
      static_cast<std::size_t>(cli.int_or("-cache-mb", 64)) << 20;
  options.service.admission_lookahead =
      static_cast<int>(cli.int_or("-lookahead", 2));
  options.service.artifact_dir = cli.value_or("-artifact-dir", "");
  options.service.max_ranks_per_job =
      static_cast<int>(cli.int_or("-max-ranks", 16));
  options.service.max_threads_per_rank =
      static_cast<int>(cli.int_or("-max-threads", 16));
  options.metrics_http_port =
      static_cast<int>(cli.int_or("-metrics-http-port", 0));
  const std::string trace_out = cli.value_or("-trace-out", "");
  const std::string metrics_out = cli.value_or("-metrics-out", "");

  if (options.service.max_concurrent_jobs < 1 ||
      options.service.admission_lookahead < 1 ||
      options.stream_interval_ms < 1) {
    std::fprintf(stderr,
                 "error: --jobs, --lookahead, and --stream-interval-ms must "
                 "be positive\n");
    return 2;
  }

  // Fail fast on unwritable output locations — the one-shot CLI has probed
  // its telemetry paths since day one; a daemon with a week of uptime has
  // even more to lose at shutdown.
  {
    const std::pair<const char*, const std::string*> files[] = {
        {"--trace-out", &trace_out}, {"--metrics-out", &metrics_out}};
    for (const auto& [flag, path] : files) {
      if (path->empty()) continue;
      if (!file_path_writable(*path)) {
        std::fprintf(stderr, "error: %s=%s: directory is not writable\n",
                     flag, path->c_str());
        return 2;
      }
    }
    if (!options.service.artifact_dir.empty() &&
        !dir_accepts_files(options.service.artifact_dir)) {
      std::fprintf(stderr,
                   "error: --artifact-dir=%s: cannot create or write the "
                   "artifact directory\n",
                   options.service.artifact_dir.c_str());
      return 2;
    }
  }

  // The cache hit/miss and job counters are the daemon's service-level
  // telemetry; they cost nothing measurable, so they are always on here.
  obs::set_enabled(true);

  try {
    serve::Server server(options);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);  // dropped clients surface as write errors
    server.start();
    server.run_until_shutdown();
    g_server = nullptr;
    // Final telemetry exports, after the drain so every job's terminal
    // state and spans are in. Paths were probed at startup.
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      out << server.service().export_job_trace();
      if (out)
        std::printf("raxhd: job trace written to %s\n", trace_out.c_str());
      else
        std::fprintf(stderr, "raxhd: cannot write %s\n", trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      out << server.render_metrics_now();
      if (out)
        std::printf("raxhd: metrics written to %s\n", metrics_out.c_str());
      else
        std::fprintf(stderr, "raxhd: cannot write %s\n", metrics_out.c_str());
    }
    const auto stats = server.service().cache_stats();
    std::printf("raxhd: exiting (cache: %llu hits, %llu misses, %llu "
                "evictions, %zu bytes in %zu entries)\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions), stats.bytes,
                stats.entries);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "raxhd: fatal: %s\n", e.what());
    return 1;
  }
}
