// raxhd — the long-lived analysis daemon. Accepts concurrent comprehensive
// analyses over a unix-domain socket (and optionally loopback TCP), runs
// them on a shared pool of thread-backed minimpi ranks, and serves results
// bit-identical to one-shot `raxh -f a` runs with the same seeds.
//
//   --socket=PATH          unix-domain listener            [/tmp/raxhd.sock]
//   --tcp-port=N           loopback TCP listener; 0 = off  [0]
//   --jobs=N               concurrent executor slots       [4]
//   --cache-mb=N           alignment cache budget in MiB   [64]
//   --lookahead=N          admission pipeline depth        [2]
//   --artifact-dir=DIR     per-job checkpoints land here, namespaced by
//                          job id (jobs submitted with checkpoint=true)
//   --max-ranks=N          per-job rank cap                [16]
//   --max-threads=N        per-job threads-per-rank cap    [16]
//   --stream-interval-ms=N STREAM event cadence            [100]
//   --log-level=LVL        error | warn | info | debug     [info]
//
// Shutdown: SIGTERM/SIGINT, or a SHUTDOWN frame (raxhd_client shutdown).
// Either way the daemon cancels outstanding jobs cooperatively, drains
// connections, unlinks the socket, and exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/obs.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/log.h"

namespace {

using namespace raxh;

// Signal handlers may only touch lock-free state; the server polls this
// atomic in run_until_shutdown(). One global is the price of signal-safety.
serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

void usage(const char* prog) {
  std::printf(
      "usage: %s [--socket=PATH] [--tcp-port=N] [--jobs=N] [--cache-mb=N]\n"
      "          [--lookahead=N] [--artifact-dir=DIR] [--max-ranks=N]\n"
      "          [--max-threads=N] [--stream-interval-ms=N]\n"
      "          [--log-level=error|warn|info|debug]\n"
      "Long-lived analysis daemon; submit jobs with raxhd_client or\n"
      "`raxh --connect`.\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  const CliParser cli(argc, argv);
  if (cli.has("h") || cli.has("-help")) {
    usage(argv[0]);
    return 0;
  }

  {
    const std::string lvl = cli.value_or("-log-level", "");
    if (!lvl.empty()) {
      const auto parsed = parse_log_level(lvl);
      if (!parsed) {
        std::fprintf(stderr,
                     "error: --log-level=%s: expected error, warn, info, or "
                     "debug\n",
                     lvl.c_str());
        return 2;
      }
      Logger::instance().set_level(*parsed);
    }
  }

  serve::ServerOptions options;
  options.socket_path = cli.value_or("-socket", "/tmp/raxhd.sock");
  options.tcp_port = static_cast<int>(cli.int_or("-tcp-port", 0));
  options.stream_interval_ms =
      static_cast<int>(cli.int_or("-stream-interval-ms", 100));
  options.service.max_concurrent_jobs = static_cast<int>(cli.int_or("-jobs", 4));
  options.service.cache_bytes =
      static_cast<std::size_t>(cli.int_or("-cache-mb", 64)) << 20;
  options.service.admission_lookahead =
      static_cast<int>(cli.int_or("-lookahead", 2));
  options.service.artifact_dir = cli.value_or("-artifact-dir", "");
  options.service.max_ranks_per_job =
      static_cast<int>(cli.int_or("-max-ranks", 16));
  options.service.max_threads_per_rank =
      static_cast<int>(cli.int_or("-max-threads", 16));

  if (options.service.max_concurrent_jobs < 1 ||
      options.service.admission_lookahead < 1 ||
      options.stream_interval_ms < 1) {
    std::fprintf(stderr,
                 "error: --jobs, --lookahead, and --stream-interval-ms must "
                 "be positive\n");
    return 2;
  }

  // The cache hit/miss and job counters are the daemon's service-level
  // telemetry; they cost nothing measurable, so they are always on here.
  obs::set_enabled(true);

  try {
    serve::Server server(options);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);  // dropped clients surface as write errors
    server.start();
    server.run_until_shutdown();
    g_server = nullptr;
    const auto stats = server.service().cache_stats();
    std::printf("raxhd: exiting (cache: %llu hits, %llu misses, %llu "
                "evictions, %zu bytes in %zu entries)\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions), stats.bytes,
                stats.entries);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "raxhd: fatal: %s\n", e.what());
    return 1;
  }
}
