// Regenerates Fig. 8: best speed per core on all four computers for the
// 19,436-pattern set, normalized to Abe's single-core speed. The paper's
// shapes: superlinear 1->4-core region on Abe/Ranger/Triton (cache warming),
// ideal scaling to 8 on Dash, fastest-at-low-counts Dash overtaken by
// Triton PDAF at high core counts.
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "simsched/sweeps.h"

int main() {
  using namespace raxh::sim;
  raxh::bench::print_header(
      "FIG 8 - best speed per core on all four computers, 19,436 patterns",
      "Pfeiffer & Stamatakis 2010, Fig. 8");

  const std::size_t patterns = 19436;
  // Abe's serial speed is the normalization reference, as in the paper.
  const PerfModel abe(machine_by_name("Abe"), paper_shape(patterns));
  const double abe_serial_speed = 1.0 / abe.serial_time(100);

  const std::vector<int> core_counts = {1, 2, 4, 8, 16, 32, 64, 80};
  std::printf("%5s", "cores");
  for (const auto& m : paper_machines()) std::printf(" %12s", m.name.c_str());
  std::printf("\n");

  std::ostringstream csv;
  csv << "cores";
  for (const auto& m : paper_machines()) csv << ',' << m.name;
  csv << '\n';

  std::vector<std::vector<double>> speed_per_core(paper_machines().size());
  for (int cores : core_counts) {
    std::printf("%5d", cores);
    csv << cores;
    for (std::size_t mi = 0; mi < paper_machines().size(); ++mi) {
      const auto& m = paper_machines()[mi];
      const PerfModel model(m, paper_shape(patterns));
      const auto best = best_run(model, cores, 100);
      // Speed normalized to Abe serial, divided by cores.
      const double value =
          (1.0 / best.seconds) / abe_serial_speed / cores;
      speed_per_core[mi].push_back(value);
      std::printf(" %12.3f", value);
      csv << ',' << value;
    }
    std::printf("\n");
    csv << '\n';
  }
  raxh::bench::write_output("fig8_machines.csv", csv.str());

  // Shape checks.
  auto at = [&](const char* name, int cores) {
    for (std::size_t mi = 0; mi < paper_machines().size(); ++mi)
      if (paper_machines()[mi].name == name)
        for (std::size_t ci = 0; ci < core_counts.size(); ++ci)
          if (core_counts[ci] == cores) return speed_per_core[mi][ci];
    return 0.0;
  };
  std::printf("\nshape checks:\n");
  std::printf("  superlinear 1->4 cores on Abe/Ranger/Triton: %s/%s/%s "
              "(paper: yes for all three)\n",
              at("Abe", 4) > at("Abe", 1) ? "yes" : "no",
              at("Ranger", 4) > at("Ranger", 1) ? "yes" : "no",
              at("Triton PDAF", 4) > at("Triton PDAF", 1) ? "yes" : "no");
  std::printf("  Dash linear (no superlinear bump) to 8 cores: %s\n",
              at("Dash", 4) <= at("Dash", 1) * 1.02 ? "yes" : "no");
  std::printf("  Dash fastest at low core counts (8c): %s; Triton faster at "
              "64+: %s\n",
              at("Dash", 8) > at("Triton PDAF", 8) ? "yes" : "no",
              at("Triton PDAF", 64) > at("Dash", 64) ? "yes" : "no");
  std::printf("  (16 cores is the crossover neighbourhood: model %.3f Dash "
              "vs %.3f Triton; the paper has Dash ahead until 16c — see "
              "EXPERIMENTS.md)\n",
              at("Dash", 16), at("Triton PDAF", 16));
  raxh::bench::write_summary(
      "fig8_machines", "triton_over_dash_per_core_speed_64c",
      at("Triton PDAF", 64) / at("Dash", 64), "ratio",
      "\"paper_expectation\":\">1 (Triton ahead at 64+ cores)\"");
  return 0;
}
