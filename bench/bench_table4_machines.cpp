// Regenerates Table 4 ("benchmark computers") together with the calibrated
// performance-model parameters each machine carries in this reproduction.
#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "simsched/machines.h"

int main() {
  using namespace raxh::sim;
  raxh::bench::print_header(
      "TABLE 4 - benchmark computers",
      "Pfeiffer & Stamatakis 2010, Table 4 + model parameters (DESIGN.md)");

  std::printf("%-12s %-28s %6s %10s | %10s %10s %10s %9s\n", "computer",
              "processor", "GHz", "cores/node", "core speed", "mem cont.",
              "cache boost", "sync cost");
  std::ostringstream csv;
  csv << "name,processor,clock_ghz,cores_per_node,core_speed,mem_contention,"
         "cache_boost,sync_cost\n";
  for (const auto& m : paper_machines()) {
    std::printf("%-12s %-28s %6.2f %10d | %10.3f %10.3f %10.2f %9.1f\n",
                m.name.c_str(), m.processor.c_str(), m.clock_ghz,
                m.cores_per_node, m.core_speed, m.mem_contention,
                m.cache_boost, m.sync_cost);
    csv << m.name << ',' << m.processor << ',' << m.clock_ghz << ','
        << m.cores_per_node << ',' << m.core_speed << ',' << m.mem_contention
        << ',' << m.cache_boost << ',' << m.sync_cost << '\n';
  }
  raxh::bench::write_output("table4_machines.csv", csv.str());
  raxh::bench::write_summary(
      "table4_machines", "machines_parameterized",
      static_cast<double>(paper_machines().size()), "machines");
  std::printf(
      "core speeds calibrated from the paper's serial anchors (Dash/Triton)\n"
      "and processor-generation ratios; see EXPERIMENTS.md.\n");
  return 0;
}
