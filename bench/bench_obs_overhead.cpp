// What does observability cost the likelihood hot path? Three modes, with
// likelihood-kernel throughput measured interleaved (this machine drifts
// ~10% run-to-run, so never compare single shots):
//
//   off        observability disabled — what every production run pays
//   heartbeat  obs enabled + a HeartbeatWriter publishing live progress
//   trace      obs enabled (counters, spans, latency histograms), no writer
//
// The CI-enforced budget is on the *disabled* mode: instrumentation must
// cost a disabled run < 2% of kernel throughput. Measuring that directly is
// hopeless (the effect is far below machine noise), so the check is
// deterministic instead: microbench the disabled gate (one relaxed atomic
// load + branch), count the instrumented events one evaluation triggers,
// and bound the cost as gate_ns * events * safety / eval_ns. The safety
// factor covers gate sites that fire without bumping a counter (span and
// histogram guards, the per-job timing gate, phase scopes).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bio/patterns.h"
#include "bio/seqsim.h"
#include "likelihood/engine.h"
#include "obs/live.h"
#include "obs/obs.h"
#include "parallel/workforce.h"
#include "tree/tree.h"

namespace {

using namespace raxh;

constexpr int kRounds = 5;
constexpr int kEvalsPerRound = 30;
constexpr double kDisabledBudget = 0.02;
constexpr double kGateSafetyFactor = 8.0;

struct Fixture {
  Fixture() : crew(2) {
    SimConfig cfg;
    cfg.taxa = 24;
    cfg.distinct_sites = 512;
    cfg.total_sites = 512;
    cfg.seed = 99;
    sim = simulate_alignment(cfg);
    patterns = PatternAlignment::compress(sim.alignment);
    GtrParams gtr;
    gtr.freqs = patterns.empirical_frequencies();
    engine = std::make_unique<LikelihoodEngine>(
        patterns, gtr, RateModel::cat(patterns.num_patterns()), &crew);
    tree = std::make_unique<Tree>(
        Tree::parse_newick(sim.true_tree_newick, patterns.names()));
  }

  // Seconds per full (invalidate + newview sweep + evaluate) evaluation.
  double time_round(bool live_updates) {
    volatile double sink = 0.0;
    const std::uint64_t start = obs::now_ns();
    for (int i = 0; i < kEvalsPerRound; ++i) {
      engine->invalidate_all();
      sink = engine->evaluate(*tree);
      if (live_updates) {
        obs::live_unit_done();
        obs::live_report_lnl(sink);
      }
    }
    return static_cast<double>(obs::now_ns() - start) * 1e-9 / kEvalsPerRound;
  }

  Workforce crew;
  SimResult sim;
  PatternAlignment patterns;
  std::unique_ptr<LikelihoodEngine> engine;
  std::unique_ptr<Tree> tree;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// ns per instrumentation-point gate with observability disabled: the relaxed
// atomic load + branch every obs::count / Span / hist_record call pays.
double measure_gate_ns() {
  obs::set_enabled(false);
  constexpr std::uint64_t kCalls = 1 << 24;
  const std::uint64_t start = obs::now_ns();
  for (std::uint64_t i = 0; i < kCalls; ++i)
    obs::count(obs::Counter::kNewviewCalls);
  return static_cast<double>(obs::now_ns() - start) /
         static_cast<double>(kCalls);
}

// Counter-visible instrumented events in one full evaluation (enables obs
// to count them, then restores the disabled state).
std::uint64_t measure_events_per_eval(Fixture& f) {
  obs::set_enabled(true);
  obs::reset();
  f.engine->invalidate_all();
  f.engine->evaluate(*f.tree);
  const obs::CounterSnapshot snap = obs::counters_snapshot();
  obs::set_enabled(false);
  obs::reset();
  return snap[obs::Counter::kNewviewCalls] +
         snap[obs::Counter::kEvaluateCalls] +
         snap[obs::Counter::kDerivativeCalls] +
         snap[obs::Counter::kReductionCalls] +
         snap[obs::Counter::kWorkforceJobs];
}

}  // namespace

int main() {
  bench::print_header(
      "OBS OVERHEAD - telemetry cost on the likelihood kernels",
      "repo budget: observability must cost a disabled run < 2%");

  Fixture f;
  f.time_round(false);  // warm-up: faults pages, settles the crew

  std::vector<double> off_s, heartbeat_s, trace_s;
  for (int round = 0; round < kRounds; ++round) {
    obs::set_enabled(false);
    off_s.push_back(f.time_round(false));

    obs::set_enabled(true);
    obs::reset();
    obs::live_begin_run(0, {{"bench", kRounds * kEvalsPerRound, 1.0}});
    {
      obs::HeartbeatWriter writer(
          obs::HeartbeatOptions{"bench_out/obs_heartbeat", 0, 50});
      heartbeat_s.push_back(f.time_round(true));
    }

    obs::reset();
    trace_s.push_back(f.time_round(false));
    obs::set_enabled(false);
    obs::reset();
  }

  const double off = median(off_s);
  const double heartbeat = median(heartbeat_s);
  const double trace = median(trace_s);
  const double heartbeat_overhead = heartbeat / off - 1.0;
  const double trace_overhead = trace / off - 1.0;

  const double gate_ns = measure_gate_ns();
  const auto events = measure_events_per_eval(f);
  const double disabled_bound =
      gate_ns * static_cast<double>(events) * kGateSafetyFactor / (off * 1e9);

  std::printf("\nkernel throughput (median of %d interleaved rounds, "
              "%d evals/round, 512 patterns, 2 threads):\n",
              kRounds, kEvalsPerRound);
  std::printf("  %-22s %8.1f us/eval\n", "obs off", off * 1e6);
  std::printf("  %-22s %8.1f us/eval  (%+.1f%%)\n", "obs on + heartbeats",
              heartbeat * 1e6, heartbeat_overhead * 100.0);
  std::printf("  %-22s %8.1f us/eval  (%+.1f%%)\n", "obs on (trace)",
              trace * 1e6, trace_overhead * 100.0);
  std::printf("\ndisabled-cost bound (deterministic):\n");
  std::printf("  gate cost            %10.2f ns/site\n", gate_ns);
  std::printf("  events per eval      %10llu  (x%.0f safety factor)\n",
              static_cast<unsigned long long>(events), kGateSafetyFactor);
  std::printf("  bound                %10.4f%%  (budget %.0f%%)\n",
              disabled_bound * 100.0, kDisabledBudget * 100.0);

  char extra[512];
  std::snprintf(
      extra, sizeof(extra),
      "\"budget\":%.2f,\"eval_us_off\":%.1f,\"eval_us_heartbeat\":%.1f,"
      "\"eval_us_trace\":%.1f,\"heartbeat_overhead\":%.4f,"
      "\"trace_overhead\":%.4f,\"gate_ns\":%.2f,"
      "\"instrumented_events_per_eval\":%llu,\"safety_factor\":%.0f",
      kDisabledBudget, off * 1e6, heartbeat * 1e6, trace * 1e6,
      heartbeat_overhead, trace_overhead, gate_ns,
      static_cast<unsigned long long>(events), kGateSafetyFactor);
  bench::write_summary("obs_overhead", "disabled_cost_bound", disabled_bound,
                       "fraction", extra);

  if (disabled_bound >= kDisabledBudget) {
    std::printf("\nFAILED: disabled-mode instrumentation cost exceeds the "
                "%.0f%% budget\n",
                kDisabledBudget * 100.0);
    return EXIT_FAILURE;
  }
  std::printf("\ndisabled-mode cost within budget\n");
  return EXIT_SUCCESS;
}
