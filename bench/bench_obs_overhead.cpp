// What does observability cost the likelihood hot path? Three modes, with
// likelihood-kernel throughput measured interleaved (this machine drifts
// ~10% run-to-run, so never compare single shots):
//
//   off        obs + flight recorder disabled — the bare kernels
//   flight     flight recorder only — what every production run pays
//              (the recorder is on by default)
//   heartbeat  obs enabled + a HeartbeatWriter publishing live progress
//   trace      obs enabled (counters, spans, latency histograms), no writer
//   attrib     obs enabled + a JobObs sink bound (daemon per-job
//              attribution: every counter/histogram/span mirrors into the
//              job block, as raxhd charges it to the submitting tenant)
//
// The CI-enforced budget is on the *always-on* modes: disabled obs
// instrumentation and the enabled flight recorder must each cost < 2% of
// kernel throughput. The comm plane (obs/comm_obs.h) is gated the same
// way: a disabled-observability minimpi ping-pong must pay < 2% for the
// per-edge matrix / ring gauge / overlap gate sites it now carries.
// Measuring that directly is hopeless (the effect is far
// below machine noise), so the checks are deterministic instead: microbench
// the per-event cost (one relaxed atomic load + branch for the disabled obs
// gate; a clock sample + four relaxed stores for a flight record), count
// the events one evaluation triggers, and bound the cost as
// per_event_ns * events * safety / eval_ns. The safety factor covers gate
// sites that fire without bumping a counter (span and histogram guards, the
// per-job timing gate, phase scopes).
//
// Also reported (not gated): the time to dump a full flight ring to disk —
// the crash path's cost, paid once at death.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bio/patterns.h"
#include "bio/seqsim.h"
#include "likelihood/engine.h"
#include "minimpi/comm.h"
#include "obs/flight.h"
#include "obs/hist.h"
#include "obs/live.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "parallel/workforce.h"
#include "tree/tree.h"

namespace {

using namespace raxh;

constexpr int kRounds = 5;
constexpr int kEvalsPerRound = 30;
constexpr double kDisabledBudget = 0.02;
constexpr double kGateSafetyFactor = 8.0;

struct Fixture {
  Fixture() : crew(2) {
    SimConfig cfg;
    cfg.taxa = 24;
    cfg.distinct_sites = 512;
    cfg.total_sites = 512;
    cfg.seed = 99;
    sim = simulate_alignment(cfg);
    patterns = PatternAlignment::compress(sim.alignment);
    GtrParams gtr;
    gtr.freqs = patterns.empirical_frequencies();
    engine = std::make_unique<LikelihoodEngine>(
        patterns, gtr, RateModel::cat(patterns.num_patterns()), &crew);
    tree = std::make_unique<Tree>(
        Tree::parse_newick(sim.true_tree_newick, patterns.names()));
  }

  // Seconds per full (invalidate + newview sweep + evaluate) evaluation.
  double time_round(bool live_updates) {
    volatile double sink = 0.0;
    const std::uint64_t start = obs::now_ns();
    for (int i = 0; i < kEvalsPerRound; ++i) {
      engine->invalidate_all();
      sink = engine->evaluate(*tree);
      if (live_updates) {
        obs::live_unit_done();
        obs::live_report_lnl(sink);
      }
    }
    return static_cast<double>(obs::now_ns() - start) * 1e-9 / kEvalsPerRound;
  }

  Workforce crew;
  SimResult sim;
  PatternAlignment patterns;
  std::unique_ptr<LikelihoodEngine> engine;
  std::unique_ptr<Tree> tree;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// ns per instrumentation-point gate with observability disabled: the relaxed
// atomic load + branch every obs::count / Span / hist_record call pays.
// When `bound_sink` is set, a JobObs attribution block is bound to the
// thread first — the daemon's worst case for a disabled run. The enabled
// check precedes the sink check, so the two must measure the same.
double measure_gate_ns(bool bound_sink = false) {
  obs::set_enabled(false);
  std::shared_ptr<obs::JobObs> job =
      bound_sink ? std::make_shared<obs::JobObs>() : nullptr;
  obs::JobScope scope(job);
  constexpr std::uint64_t kCalls = 1 << 24;
  const std::uint64_t start = obs::now_ns();
  for (std::uint64_t i = 0; i < kCalls; ++i)
    obs::count(obs::Counter::kNewviewCalls);
  return static_cast<double>(obs::now_ns() - start) /
         static_cast<double>(kCalls);
}

// ns the attribution mirror adds to one enabled obs::count: bound-sink
// cost minus unbound cost (one extra relaxed fetch_add into the job block).
double measure_attribution_event_ns() {
  obs::set_enabled(true);
  constexpr std::uint64_t kCalls = 1 << 22;
  const std::uint64_t t0 = obs::now_ns();
  for (std::uint64_t i = 0; i < kCalls; ++i)
    obs::count(obs::Counter::kNewviewCalls);
  const double unbound = static_cast<double>(obs::now_ns() - t0);
  auto job = std::make_shared<obs::JobObs>();
  obs::JobScope scope(job);
  const std::uint64_t t1 = obs::now_ns();
  for (std::uint64_t i = 0; i < kCalls; ++i)
    obs::count(obs::Counter::kNewviewCalls);
  const double bound = static_cast<double>(obs::now_ns() - t1);
  obs::set_enabled(false);
  obs::reset();
  const double delta = (bound - unbound) / static_cast<double>(kCalls);
  return delta > 0.0 ? delta : 0.0;
}

// ns per flight-recorder event: enabled records a clock sample + four
// relaxed stores into the thread's ring; disabled is the gate alone.
double measure_flight_ns(bool enabled) {
  obs::flight::set_enabled(enabled);
  constexpr std::uint64_t kCalls = 1 << 22;
  const std::uint64_t start = obs::now_ns();
  for (std::uint64_t i = 0; i < kCalls; ++i)
    obs::flight::record(obs::flight::Kind::kNote, 1, i);
  return static_cast<double>(obs::now_ns() - start) /
         static_cast<double>(kCalls);
}

// Flight events per evaluation (sampled crew job dispatch/join), averaged
// over enough evaluations to smooth the 1-in-64 job sampling; rounded up.
std::uint64_t measure_flight_events_per_eval(Fixture& f) {
  obs::flight::set_enabled(true);
  constexpr std::uint64_t kEvals = 64;
  const std::uint64_t before = obs::flight::events_recorded();
  for (std::uint64_t i = 0; i < kEvals; ++i) {
    f.engine->invalidate_all();
    f.engine->evaluate(*f.tree);
  }
  const std::uint64_t recorded = obs::flight::events_recorded() - before;
  return (recorded + kEvals - 1) / kEvals;
}

// ms to dump every (full) ring to disk — the one-shot crash-path cost.
double measure_dump_ms() {
  obs::flight::set_enabled(true);
  for (std::size_t i = 0; i < obs::flight::kRingCapacity; ++i)
    obs::flight::record(obs::flight::Kind::kNote, 1, i);
  obs::flight::set_dump_dir("bench_out/obs_blackbox");
  const std::uint64_t start = obs::now_ns();
  if (!obs::flight::dump_now(0, "bench dump")) return -1.0;
  return static_cast<double>(obs::now_ns() - start) / 1e6;
}

// Atomic-load gate sites the comm plane adds to one 4-op ping-pong round
// trip (send + recv on each rank, all serialized on the critical path) with
// observability disabled. Thread channels pay the obs_block() gate in send
// and in recv: 4. Shm rings additionally pay the send_frame ring-depth gate
// on each send: 6. The stall-scope flag checks are plain tests of stack
// values, covered by the safety factor.
constexpr double kCommGatesChannel = 4.0;
constexpr double kCommGatesShm = 6.0;

// The kernel bound's x8 factor models cache amplification of a gate inside
// a hot SIMD loop. The comm gates instead sit next to 4 KiB memcpys and a
// cross-thread handoff measured in microseconds, so x4 covers the
// microbenchmark underestimating in-context cost without that term.
constexpr double kCommGateSafetyFactor = 4.0;

// ns per minimpi ping-pong round trip with the comm plane cold (obs and
// flight recorder disabled): 2 thread-backed ranks over the given
// transport, 4 KiB payloads — the small-message regime where per-op gate
// costs matter most relative to transport work.
double measure_comm_rt_ns(const mpi::CommOptions& options) {
  obs::set_enabled(false);
  obs::flight::set_enabled(false);
  constexpr int kWarm = 64;
  constexpr int kIters = 2048;
  constexpr int kTag = 7;
  std::atomic<double> round_trip_ns{0.0};
  mpi::run_thread_ranks(
      2,
      [&](mpi::Comm& comm) {
        const mpi::Bytes payload(4096, 0x5a);
        if (comm.rank() == 0) {
          for (int i = 0; i < kWarm; ++i) {
            comm.send(1, kTag, payload);
            comm.recv(1, kTag);
          }
          const std::uint64_t start = obs::now_ns();
          for (int i = 0; i < kIters; ++i) {
            comm.send(1, kTag, payload);
            comm.recv(1, kTag);
          }
          round_trip_ns.store(
              static_cast<double>(obs::now_ns() - start) / kIters,
              std::memory_order_relaxed);
        } else {
          for (int i = 0; i < kWarm + kIters; ++i) {
            const mpi::Bytes got = comm.recv(0, kTag);
            comm.send(0, kTag, got);
          }
        }
      },
      options);
  return round_trip_ns.load(std::memory_order_relaxed);
}

// Counter-visible instrumented events in one full evaluation (enables obs
// to count them, then restores the disabled state).
std::uint64_t measure_events_per_eval(Fixture& f) {
  obs::set_enabled(true);
  obs::reset();
  f.engine->invalidate_all();
  f.engine->evaluate(*f.tree);
  const obs::CounterSnapshot snap = obs::counters_snapshot();
  obs::set_enabled(false);
  obs::reset();
  return snap[obs::Counter::kNewviewCalls] +
         snap[obs::Counter::kEvaluateCalls] +
         snap[obs::Counter::kDerivativeCalls] +
         snap[obs::Counter::kReductionCalls] +
         snap[obs::Counter::kWorkforceJobs];
}

}  // namespace

int main() {
  bench::print_header(
      "OBS OVERHEAD - telemetry cost on the likelihood kernels",
      "repo budget: observability must cost a disabled run < 2%");

  Fixture f;
  f.time_round(false);  // warm-up: faults pages, settles the crew

  // A second fixture whose crew was constructed under a job binding: its
  // workers inherited the sink, so the attrib mode mirrors from every
  // thread, exactly as a daemon executor does.
  auto attrib_job = std::make_shared<obs::JobObs>();
  std::unique_ptr<Fixture> f_attrib;
  {
    obs::JobScope scope(attrib_job, 0);
    f_attrib = std::make_unique<Fixture>();
  }
  f_attrib->time_round(false);  // warm-up

  std::vector<double> off_s, flight_s, heartbeat_s, trace_s, attrib_s;
  for (int round = 0; round < kRounds; ++round) {
    obs::set_enabled(false);
    obs::flight::set_enabled(false);
    off_s.push_back(f.time_round(false));

    obs::flight::set_enabled(true);
    flight_s.push_back(f.time_round(false));

    obs::set_enabled(true);
    obs::reset();
    obs::live_begin_run(0, {{"bench", kRounds * kEvalsPerRound, 1.0}});
    {
      obs::HeartbeatWriter writer(
          obs::HeartbeatOptions{"bench_out/obs_heartbeat", 0, 50, {},
                                nullptr});
      heartbeat_s.push_back(f.time_round(true));
    }

    obs::reset();
    trace_s.push_back(f.time_round(false));

    obs::reset();
    {
      obs::JobScope scope(attrib_job, 0);
      attrib_s.push_back(f_attrib->time_round(false));
    }
    obs::set_enabled(false);
    obs::reset();
  }

  const double off = median(off_s);
  const double flight = median(flight_s);
  const double heartbeat = median(heartbeat_s);
  const double trace = median(trace_s);
  const double attrib = median(attrib_s);
  const double flight_overhead = flight / off - 1.0;
  const double heartbeat_overhead = heartbeat / off - 1.0;
  const double trace_overhead = trace / off - 1.0;
  const double attrib_overhead = attrib / off - 1.0;
  const double attrib_vs_trace = attrib / trace - 1.0;

  const double gate_ns = measure_gate_ns();
  const double gate_bound_sink_ns = measure_gate_ns(/*bound_sink=*/true);
  const auto events = measure_events_per_eval(f);
  // The daemon gate: even with an attribution sink bound to every thread, a
  // disabled run must stay under budget. Taking the worse of the two gate
  // measurements makes the bound cover both the CLI and the daemon path.
  const double worst_gate_ns = std::max(gate_ns, gate_bound_sink_ns);
  const double disabled_bound = worst_gate_ns * static_cast<double>(events) *
                                kGateSafetyFactor / (off * 1e9);
  const double attribution_event_ns = measure_attribution_event_ns();

  const double flight_gate_ns = measure_flight_ns(false);
  const double flight_record_ns = measure_flight_ns(true);
  const auto flight_events = measure_flight_events_per_eval(f);
  const double flight_bound = flight_record_ns *
                              static_cast<double>(flight_events) *
                              kGateSafetyFactor / (off * 1e9);
  const double dump_ms = measure_dump_ms();

  // Comm-plane gate: bound each transport with its own gate count over its
  // own round trip (min of 3 — the shortest trip is the stablest sample and
  // inflates the bound, i.e. stays conservative), then gate on the worse.
  mpi::CommOptions comm_chan;
  mpi::CommOptions comm_shm;
  comm_shm.transport = mpi::Transport::kShm;
  double chan_rt_ns = 1e18, shm_rt_ns = 1e18;
  for (int r = 0; r < 3; ++r) {
    chan_rt_ns = std::min(chan_rt_ns, measure_comm_rt_ns(comm_chan));
    shm_rt_ns = std::min(shm_rt_ns, measure_comm_rt_ns(comm_shm));
  }
  const double comm_bound_chan = kCommGatesChannel * worst_gate_ns *
                                 kCommGateSafetyFactor / chan_rt_ns;
  const double comm_bound_shm =
      kCommGatesShm * worst_gate_ns * kCommGateSafetyFactor / shm_rt_ns;
  const double comm_bound = std::max(comm_bound_chan, comm_bound_shm);

  std::printf("\nkernel throughput (median of %d interleaved rounds, "
              "%d evals/round, 512 patterns, 2 threads):\n",
              kRounds, kEvalsPerRound);
  std::printf("  %-22s %8.1f us/eval\n", "all off", off * 1e6);
  std::printf("  %-22s %8.1f us/eval  (%+.1f%%)\n", "flight recorder",
              flight * 1e6, flight_overhead * 100.0);
  std::printf("  %-22s %8.1f us/eval  (%+.1f%%)\n", "obs on + heartbeats",
              heartbeat * 1e6, heartbeat_overhead * 100.0);
  std::printf("  %-22s %8.1f us/eval  (%+.1f%%)\n", "obs on (trace)",
              trace * 1e6, trace_overhead * 100.0);
  std::printf("  %-22s %8.1f us/eval  (%+.1f%%, %+.1f%% vs trace)\n",
              "obs on + attribution", attrib * 1e6, attrib_overhead * 100.0,
              attrib_vs_trace * 100.0);
  std::printf("\ndaemon attribution (per-job mirroring, not always-on):\n");
  std::printf("  mirror cost          %10.2f ns/event "
              "(one extra relaxed fetch_add)\n",
              attribution_event_ns);
  std::printf("\ndisabled-cost bound (deterministic):\n");
  std::printf("  gate cost            %10.2f ns/site "
              "(with bound sink %.2f ns)\n",
              gate_ns, gate_bound_sink_ns);
  std::printf("  events per eval      %10llu  (x%.0f safety factor)\n",
              static_cast<unsigned long long>(events), kGateSafetyFactor);
  std::printf("  bound                %10.4f%%  (budget %.0f%%)\n",
              disabled_bound * 100.0, kDisabledBudget * 100.0);
  std::printf("\nflight-recorder cost bound (deterministic):\n");
  std::printf("  record cost          %10.2f ns/event  (gate alone %.2f ns)\n",
              flight_record_ns, flight_gate_ns);
  std::printf("  events per eval      %10llu  (x%.0f safety factor)\n",
              static_cast<unsigned long long>(flight_events),
              kGateSafetyFactor);
  std::printf("  bound                %10.4f%%  (budget %.0f%%)\n",
              flight_bound * 100.0, kDisabledBudget * 100.0);
  std::printf("  full-ring dump       %10.2f ms (crash path, paid once)\n",
              dump_ms);
  std::printf("\ncomm-plane cost bound (deterministic, 4 KiB ping-pong):\n");
  std::printf("  round trip (channel) %10.2f us  (%.0f gate sites)\n",
              chan_rt_ns / 1e3, kCommGatesChannel);
  std::printf("  round trip (shm)     %10.2f us  (%.0f gate sites)\n",
              shm_rt_ns / 1e3, kCommGatesShm);
  std::printf("  bound                %10.4f%%  (x%.0f safety, budget "
              "%.0f%%)\n",
              comm_bound * 100.0, kCommGateSafetyFactor,
              kDisabledBudget * 100.0);

  char extra[1536];
  std::snprintf(
      extra, sizeof(extra),
      "\"budget\":%.2f,\"eval_us_off\":%.1f,\"eval_us_flight\":%.1f,"
      "\"eval_us_heartbeat\":%.1f,"
      "\"eval_us_trace\":%.1f,\"eval_us_attrib\":%.1f,"
      "\"flight_overhead\":%.4f,"
      "\"heartbeat_overhead\":%.4f,"
      "\"trace_overhead\":%.4f,\"attrib_overhead\":%.4f,"
      "\"attrib_vs_trace\":%.4f,\"gate_ns\":%.2f,"
      "\"gate_bound_sink_ns\":%.2f,\"attribution_event_ns\":%.2f,"
      "\"instrumented_events_per_eval\":%llu,\"safety_factor\":%.0f,"
      "\"flight_record_ns\":%.2f,\"flight_gate_ns\":%.2f,"
      "\"flight_events_per_eval\":%llu,\"flight_cost_bound\":%.6f,"
      "\"blackbox_dump_ms\":%.2f,"
      "\"comm_pingpong_chan_us\":%.2f,\"comm_pingpong_shm_us\":%.2f,"
      "\"comm_cost_bound\":%.6f",
      kDisabledBudget, off * 1e6, flight * 1e6, heartbeat * 1e6, trace * 1e6,
      attrib * 1e6, flight_overhead, heartbeat_overhead, trace_overhead,
      attrib_overhead, attrib_vs_trace, gate_ns, gate_bound_sink_ns,
      attribution_event_ns, static_cast<unsigned long long>(events),
      kGateSafetyFactor, flight_record_ns, flight_gate_ns,
      static_cast<unsigned long long>(flight_events), flight_bound, dump_ms,
      chan_rt_ns / 1e3, shm_rt_ns / 1e3, comm_bound);
  bench::write_summary("obs_overhead", "disabled_cost_bound", disabled_bound,
                       "fraction", extra);

  if (disabled_bound >= kDisabledBudget) {
    std::printf("\nFAILED: disabled-mode instrumentation cost exceeds the "
                "%.0f%% budget\n",
                kDisabledBudget * 100.0);
    return EXIT_FAILURE;
  }
  if (flight_bound >= kDisabledBudget) {
    std::printf("\nFAILED: always-on flight-recorder cost exceeds the "
                "%.0f%% budget\n",
                kDisabledBudget * 100.0);
    return EXIT_FAILURE;
  }
  if (comm_bound >= kDisabledBudget) {
    std::printf("\nFAILED: disabled comm-plane cost exceeds the "
                "%.0f%% budget\n",
                kDisabledBudget * 100.0);
    return EXIT_FAILURE;
  }
  std::printf(
      "\ndisabled-mode, flight-recorder, and comm-plane costs within "
      "budget\n");
  return EXIT_SUCCESS;
}
