// ABLATION of the paper's §2.1 design decision: every rank runs its own
// thorough search (paper) vs. only the globally best rank does (the
// serial-equivalent policy, which needs an extra synchronization). REAL runs
// of the full stack on a synthetic stand-in.
//
// Expected shape: the all-ranks policy returns an equal-or-better final lnL
// (more independent thorough searches), at essentially no wall-clock cost on
// a cluster because the searches run concurrently — while the best-rank-only
// policy leaves p-1 ranks idle through stage 4.
#include <cstdio>
#include <mutex>
#include <sstream>

#include "bench_util.h"
#include "bio/datasets.h"
#include "bio/patterns.h"
#include "core/comprehensive.h"
#include "minimpi/comm.h"
#include "tree/tree.h"

namespace {

using namespace raxh;

struct Outcome {
  double best_lnl = 0.0;
  double thorough_cpu = 0.0;  // summed stage-4 time over ranks (cluster cost)
  int thorough_searches = 0;
};

Outcome run_policy(const PatternAlignment& patterns, int ranks,
                   bool thorough_everywhere, std::uint64_t bootstraps) {
  ComprehensiveOptions options;
  options.specified_bootstraps = static_cast<int>(bootstraps);
  options.fast.max_rounds = 1;
  options.slow.max_rounds = 2;
  options.thorough.max_rounds = 3;

  Outcome outcome;
  std::mutex mu;
  mpi::run_thread_ranks(ranks, [&](mpi::Comm& comm) {
    std::function<bool(double)> selector;
    if (!thorough_everywhere) {
      selector = [&comm](double my_slow_lnl) {
        // Only the rank with the globally best slow tree searches.
        const auto best = comm.allreduce_maxloc(my_slow_lnl);
        return best.rank == comm.rank();
      };
    }
    const auto report = run_comprehensive_rank(
        patterns, options, comm.rank(), comm.size(), nullptr,
        [&comm] { comm.barrier(); }, selector);
    const auto winner = comm.allreduce_maxloc(report.best_lnl);
    const double thorough_sum = comm.allreduce_sum(report.times.thorough);
    std::lock_guard<std::mutex> lock(mu);
    outcome.best_lnl = winner.value;
    outcome.thorough_cpu = thorough_sum;
  });
  outcome.thorough_searches = thorough_everywhere ? ranks : 1;
  return outcome;
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION - p thorough searches (paper) vs best-rank-only (REAL runs)",
      "design decision of paper 2.1; quality effect behind Table 6");

  std::printf("%-12s %5s | %14s %8s | %14s %8s | %s\n", "data set", "ranks",
              "lnL all-ranks", "stage4-n", "lnL best-only", "stage4-n",
              "winner");
  std::ostringstream csv;
  csv << "name,ranks,lnl_all_ranks,lnl_best_only,delta\n";

  int all_ranks_wins = 0, ties = 0, total = 0;
  for (const auto& spec : paper_datasets()) {
    const Alignment a = generate_dataset(spec, 0.05, 13);
    const auto patterns = PatternAlignment::compress(a);
    for (int ranks : {2, 4}) {
      const Outcome everywhere = run_policy(patterns, ranks, true, 8);
      const Outcome best_only = run_policy(patterns, ranks, false, 8);
      const double delta = everywhere.best_lnl - best_only.best_lnl;
      ++total;
      if (delta > 0.01) {
        ++all_ranks_wins;
      } else if (delta > -0.01) {
        ++ties;
      }
      std::printf("%-12s %5d | %14.4f %8d | %14.4f %8d | %s\n",
                  spec.name.c_str(), ranks, everywhere.best_lnl,
                  everywhere.thorough_searches, best_only.best_lnl,
                  best_only.thorough_searches,
                  delta > 0.01   ? "all-ranks"
                  : delta > -0.01 ? "tie"
                                  : "best-only");
      csv << spec.name << ',' << ranks << ',' << everywhere.best_lnl << ','
          << best_only.best_lnl << ',' << delta << '\n';
    }
  }
  bench::write_output("ablation_thorough.csv", csv.str());
  bench::write_summary(
      "ablation_thorough", "all_ranks_policy_wins_or_ties",
      static_cast<double>(all_ranks_wins + ties), "configurations",
      "\"configurations_total\":" + std::to_string(total));
  std::printf("\nall-ranks policy better or tied in %d/%d configurations "
              "(paper: 'often returns a better solution')\n",
              all_ranks_wins + ties, total);
  std::printf("note: on a cluster the extra searches are free wall-clock "
              "(they run concurrently); best-only leaves p-1 ranks idle.\n");
  return 0;
}
