// Regenerates Table 2 of the paper ("Numbers of bootstraps and searches
// versus number of processes") from the schedule law and verifies every cell
// against the published values. This table is exact — it is pure algorithm,
// no hardware involved.
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "bench_util.h"
#include "core/schedule.h"

namespace {

struct PaperRow {
  int processes, specified;
  int bootstraps, fast, slow, thorough;
  int bs_pp, fast_pp, slow_pp, thorough_pp;
};

constexpr PaperRow kPaperTable2[] = {
    {1, 100, 100, 20, 10, 1, 100, 20, 10, 1},
    {2, 100, 100, 20, 10, 2, 50, 10, 5, 1},
    {4, 100, 100, 20, 12, 4, 25, 5, 3, 1},
    {5, 100, 100, 20, 10, 5, 20, 4, 2, 1},
    {8, 100, 104, 24, 16, 8, 13, 3, 2, 1},
    {10, 100, 100, 20, 10, 10, 10, 2, 1, 1},
    {16, 100, 112, 32, 16, 16, 7, 2, 1, 1},
    {20, 100, 100, 20, 20, 20, 5, 1, 1, 1},
    {10, 500, 500, 100, 10, 10, 50, 10, 1, 1},
    {20, 500, 500, 100, 20, 20, 25, 5, 1, 1},
};

}  // namespace

int main() {
  using raxh::make_schedule;
  raxh::bench::print_header(
      "TABLE 2 - bootstraps and searches versus number of processes",
      "Pfeiffer & Stamatakis 2010, Table 2 (exact reproduction)");

  std::printf("%5s %5s | %5s %5s %5s %5s | %6s %7s %7s %7s | %s\n", "procs",
              "N", "BS", "fast", "slow", "thor", "BS/p", "fast/p", "slow/p",
              "thor/p", "check");
  std::ostringstream csv;
  csv << "processes,specified,bootstraps,fast,slow,thorough,bs_per_proc,"
         "fast_per_proc,slow_per_proc,thorough_per_proc\n";

  int mismatches = 0;
  for (const auto& row : kPaperTable2) {
    const auto s = make_schedule(row.specified, row.processes);
    const auto totals = s.totals();
    const bool ok = totals.bootstraps == row.bootstraps &&
                    totals.fast_searches == row.fast &&
                    totals.slow_searches == row.slow &&
                    totals.thorough_searches == row.thorough &&
                    s.per_rank.bootstraps == row.bs_pp &&
                    s.per_rank.fast_searches == row.fast_pp &&
                    s.per_rank.slow_searches == row.slow_pp &&
                    s.per_rank.thorough_searches == row.thorough_pp;
    if (!ok) ++mismatches;
    std::printf("%5d %5d | %5d %5d %5d %5d | %6d %7d %7d %7d | %s\n",
                row.processes, row.specified, totals.bootstraps,
                totals.fast_searches, totals.slow_searches,
                totals.thorough_searches, s.per_rank.bootstraps,
                s.per_rank.fast_searches, s.per_rank.slow_searches,
                s.per_rank.thorough_searches, ok ? "ok" : "MISMATCH");
    csv << row.processes << ',' << row.specified << ',' << totals.bootstraps
        << ',' << totals.fast_searches << ',' << totals.slow_searches << ','
        << totals.thorough_searches << ',' << s.per_rank.bootstraps << ','
        << s.per_rank.fast_searches << ',' << s.per_rank.slow_searches << ','
        << s.per_rank.thorough_searches << '\n';
  }

  raxh::bench::write_output("table2_schedule.csv", csv.str());
  raxh::bench::write_summary(
      "table2_schedule", "rows_matching_paper",
      static_cast<double>(std::size(kPaperTable2) -
                          static_cast<std::size_t>(mismatches)),
      "rows",
      "\"rows_total\":" + std::to_string(std::size(kPaperTable2)));
  if (mismatches != 0) {
    std::printf("FAILED: %d rows diverge from the paper\n", mismatches);
    return EXIT_FAILURE;
  }
  std::printf("all %zu rows match the paper exactly\n",
              std::size(kPaperTable2));
  return EXIT_SUCCESS;
}
