// Regenerates Figs. 3-4: run-time components (bootstrap / fast / slow /
// thorough stage times) versus core count for the 1,846-pattern set on Dash
// at 4 and at 8 threads per process. The paper's key shape: the first three
// stages shrink with MPI processes while the thorough stage stays flat, and
// the thorough stage at 4 threads takes ~2x its 8-thread time.
//
// The tables are rendered through the obs phase-timer API
// (obs::PhaseAccumulator + obs::format_component_table) — the same renderer
// `raxh --report-components` uses for measured runs, so modeled and measured
// breakdowns are directly comparable.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/phase.h"
#include "simsched/sweeps.h"

int main() {
  using namespace raxh::sim;
  raxh::bench::print_header(
      "FIGS 3-4 - run-time components, 1,846 patterns on Dash",
      "Pfeiffer & Stamatakis 2010, Figs. 3 (4 threads) and 4 (8 threads)");

  const PerfModel model(machine_by_name("Dash"), paper_shape(1846));
  std::ostringstream csv;
  csv << "threads,cores,processes,bootstrap,fast,slow,thorough,total\n";

  StageBreakdown thorough_probe[2];
  for (int figure = 0; figure < 2; ++figure) {
    const int threads = figure == 0 ? 4 : 8;
    std::printf("\n--- Fig. %d: stage times at %d threads/process ---\n",
                figure + 3, threads);
    std::vector<std::vector<std::pair<std::string, double>>> rows;
    std::vector<std::string> labels;
    for (int processes : {1, 2, 4, 5, 8, 10, 16, 20}) {
      const int cores = processes * threads;
      if (cores > 80) continue;
      RunConfig config{processes, threads, 100, processes > 1};
      const auto b = model.run_breakdown(config);
      raxh::obs::PhaseAccumulator stages;
      stages.add("bootstrap", b.bootstrap);
      stages.add("fast", b.fast);
      stages.add("slow", b.slow);
      stages.add("thorough", b.thorough);
      rows.push_back(stages.phases());
      labels.push_back(std::to_string(cores) + "c/" +
                       std::to_string(processes) + "p");
      csv << threads << ',' << cores << ',' << processes << ',' << b.bootstrap
          << ',' << b.fast << ',' << b.slow << ',' << b.thorough << ','
          << b.total() << '\n';
      if (processes == 10) thorough_probe[figure] = b;
    }
    std::printf("%s", raxh::obs::format_component_table(rows, labels,
                                                        "cores/procs")
                          .c_str());
  }
  raxh::bench::write_output("fig3_4_components.csv", csv.str());

  std::printf("\nshape checks:\n");
  std::printf("  thorough stage flat across process counts: yes (by stage "
              "structure — 1 search per rank)\n");
  std::printf("  thorough time at 4 threads vs 8 threads: %.2fx  (paper: "
              "almost 2x)\n",
              thorough_probe[0].thorough / thorough_probe[1].thorough);
  raxh::bench::write_summary(
      "fig3_4_components", "thorough_time_4t_over_8t",
      thorough_probe[0].thorough / thorough_probe[1].thorough, "x",
      "\"paper_value\":2");
  std::printf("  bootstrap+fast+slow at 4 threads slightly faster than at 8 "
              "for equal processes: %s\n",
              (thorough_probe[0].bootstrap + thorough_probe[0].fast +
               thorough_probe[0].slow) /
                          (thorough_probe[1].bootstrap +
                           thorough_probe[1].fast + thorough_probe[1].slow) <
                      2.0
                  ? "yes (per-core basis)"
                  : "no");
  return 0;
}
