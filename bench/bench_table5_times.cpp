// Regenerates Table 5 ("fastest times for each data set"): for every
// (data set, machine, core count) cell the model sweeps all whole-node
// (processes x threads) splits, reports the fastest time and its thread
// count, and prints the paper's measured value next to it. Absolute seconds
// come from the paper's own serial anchors; everything else — who wins,
// optimal threads, speedups — is model output.
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "simsched/sweeps.h"

namespace {

using raxh::sim::BestRun;
using raxh::sim::PerfModel;

struct PaperCell {
  double seconds;
  int threads;
  double speedup;
};

struct PaperRow {
  std::size_t patterns;
  const char* machine;
  int bootstraps;
  double serial;
  PaperCell cells[4];  // 8c, 16c, 40c, 80c (Triton: 8, 16, 32, 64)
};

// Table 5 as published (upper: 100 bootstraps; lower: recommended counts).
const std::vector<PaperRow>& paper_rows() {
  static const std::vector<PaperRow> rows = {
      {348, "Dash", 100, 1980,
       {{432, 2, 4.58}, {307, 2, 6.45}, {168, 4, 11.79}, {130, 4, 15.23}}},
      {1130, "Dash", 100, 2325,
       {{456, 4, 5.10}, {283, 4, 8.22}, {139, 4, 16.73}, {95, 8, 24.47}}},
      {1846, "Dash", 100, 9630,
       {{1370, 4, 7.03}, {846, 4, 11.38}, {430, 8, 22.40}, {271, 8, 35.54}}},
      {7429, "Dash", 100, 72866,
       {{9494, 4, 7.67}, {5497, 8, 13.26}, {2830, 8, 25.75}, {1828, 8, 39.86}}},
      {19436, "Dash", 100, 22970,
       {{3018, 8, 7.61}, {2006, 8, 11.45}, {1314, 8, 17.48}, {1092, 8, 21.03}}},
      {19436, "Triton PDAF", 100, 32627,
       {{3844, 8, 8.49}, {2179, 16, 14.97}, {1351, 32, 24.15}, {847, 32, 38.52}}},
      // Lower part: recommended bootstrap counts (WC test, Table 3).
      {348, "Dash", 1200, 15703,
       {{2286, 1, 6.87}, {1287, 1, 12.20}, {702, 2, 22.37}, {443, 2, 35.45}}},
      {1130, "Dash", 650, 10566,
       {{1714, 2, 6.16}, {980, 2, 10.78}, {473, 2, 22.34}, {290, 4, 36.43}}},
      {1846, "Dash", 550, 33738,
       {{5184, 2, 6.51}, {2778, 2, 12.14}, {1290, 4, 26.15}, {845, 4, 39.93}}},
      {7429, "Dash", 700, 355724,
       {{45851, 4, 7.76}, {25454, 4, 13.98}, {11229, 4, 31.68},
        {6270, 8, 56.73}}},
  };
  return rows;
}

}  // namespace

int main() {
  using namespace raxh::sim;
  raxh::bench::print_header(
      "TABLE 5 - fastest times for each data set (model vs paper)",
      "Pfeiffer & Stamatakis 2010, Table 5 (upper: N=100; lower: recommended N)");

  std::ostringstream csv;
  csv << "patterns,machine,bootstraps,cores,model_seconds,model_threads,"
         "model_speedup,paper_seconds,paper_threads,paper_speedup\n";

  int section = 0;
  double deviation_sum = 0.0;
  int cells = 0;
  for (const auto& row : paper_rows()) {
    if (section == 0 && row.bootstraps == 100) {
      std::printf("\n--- results for 100 bootstraps specified ---\n");
      section = 1;
    } else if (section == 1 && row.bootstraps != 100) {
      std::printf("\n--- results for recommended (>100) bootstraps ---\n");
      section = 2;
    }
    const auto& machine = machine_by_name(row.machine);
    PerfModel model(machine, paper_shape(row.patterns));

    const bool triton = std::string(row.machine) == "Triton PDAF";
    const int cores_list[4] = {8, 16, triton ? 32 : 40, triton ? 64 : 80};

    std::printf("\n%zu patterns on %s, N=%d (serial: model %.0fs, paper %.0fs)\n",
                row.patterns, row.machine, row.bootstraps,
                model.serial_time(row.bootstraps), row.serial);
    std::printf("  %5s | %18s | %18s\n", "cores", "model  time/thr  S",
                "paper  time/thr  S");
    for (int i = 0; i < 4; ++i) {
      const int cores = cores_list[i];
      const BestRun best = best_run(model, cores, row.bootstraps);
      const PaperCell& paper = row.cells[i];
      deviation_sum += std::fabs(best.seconds - paper.seconds) / paper.seconds;
      ++cells;
      std::printf("  %5d | %8.0fs /%2d %6.2f | %8.0fs /%2d %6.2f\n", cores,
                  best.seconds, best.config.threads, best.speedup,
                  paper.seconds, paper.threads, paper.speedup);
      csv << row.patterns << ',' << row.machine << ',' << row.bootstraps << ','
          << cores << ',' << best.seconds << ',' << best.config.threads << ','
          << best.speedup << ',' << paper.seconds << ',' << paper.threads
          << ',' << paper.speedup << '\n';
    }
  }

  raxh::bench::write_output("table5_times.csv", csv.str());
  raxh::bench::write_summary("table5_times", "mean_abs_time_deviation_vs_paper",
                             deviation_sum / cells, "fraction",
                             "\"cells\":" + std::to_string(cells));
  std::printf(
      "\nshape checks: optimal threads grow with patterns; 8 threads never\n"
      "optimal for 348 patterns; Triton's 64-core run uses 32 threads and\n"
      "beats Dash's 80-core run for the 19,436-pattern set; recommended-N\n"
      "runs scale better with fewer threads. See EXPERIMENTS.md for the\n"
      "cell-by-cell deviation table.\n");
  return 0;
}
