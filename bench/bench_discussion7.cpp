// Regenerates the worked example of the paper's Discussion (§7): for the
// 348-pattern set with 100 bootstraps on 40 Dash cores, the parallel
// efficiency is poor against a single-core reference but acceptable against
// a single-NODE reference — and since users are charged whole nodes, the
// run is still cost effective. Prints the paper's two numbers (0.29 / 0.51)
// next to the model's, plus the full per-data-set verdict table.
#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "simsched/sweeps.h"

int main() {
  using namespace raxh::sim;
  raxh::bench::print_header(
      "DISCUSSION 7 - cost effectiveness vs core and node references",
      "Pfeiffer & Stamatakis 2010, 7 (rule of thumb: efficiency >= 1/2)");

  const auto& dash = machine_by_name("Dash");

  // The worked example: 348 patterns, N=100, 40 cores of Dash.
  {
    const PerfModel model(dash, paper_shape(348));
    const auto best40 = best_run(model, 40, 100);
    const auto best8 = best_run(model, 8, 100);  // one node
    const double eff_core = best40.efficiency;
    const double eff_node = best8.seconds / best40.seconds / (40.0 / 8.0);
    std::printf("348 patterns, N=100, 40 Dash cores:\n");
    std::printf("  efficiency vs 1 core:  model %.2f   paper 0.29\n",
                eff_core);
    std::printf("  efficiency vs 1 node:  model %.2f   paper 0.51\n",
                eff_node);
    std::printf("  verdict: %s (paper: 'using 40 cores for this case seems "
                "justified')\n\n",
                eff_node >= 0.5 ? "cost effective per node" : "NOT justified");
  }

  // The general claim: "using 80 cores seems justified for most of the
  // other cases."
  std::printf("%8s | %10s %10s | %s\n", "patterns", "eff/core", "eff/node",
              "80-core verdict (node-charged)");
  std::ostringstream csv;
  csv << "patterns,eff_core_80,eff_node_80,justified\n";
  int justified = 0, total = 0;
  for (std::size_t patterns : {348u, 1130u, 1846u, 7429u, 19436u}) {
    const PerfModel model(dash, paper_shape(patterns));
    const auto best80 = best_run(model, 80, 100);
    const auto best8 = best_run(model, 8, 100);
    const double eff_core = best80.efficiency;
    const double eff_node = best8.seconds / best80.seconds / 10.0;
    const bool ok = eff_node >= 0.5;
    ++total;
    justified += ok ? 1 : 0;
    std::printf("%8zu | %10.2f %10.2f | %s\n", patterns, eff_core, eff_node,
                ok ? "justified" : "not justified");
    csv << patterns << ',' << eff_core << ',' << eff_node << ',' << ok << '\n';
  }
  // The paper's remedy for the 19,436-pattern set is Triton's 32-core nodes.
  {
    const auto& triton = machine_by_name("Triton PDAF");
    const PerfModel model(triton, paper_shape(19436));
    const auto best64 = best_run(model, 64, 100);
    const auto node = best_run(model, 32, 100);
    const double eff_node = node.seconds / best64.seconds / 2.0;
    std::printf("%8s | %10.2f %10.2f | %s   <- 19,436 on Triton (2 nodes)\n",
                "19436*", best64.efficiency, eff_node,
                eff_node >= 0.5 ? "justified" : "not justified");
    csv << "19436-triton," << best64.efficiency << ',' << eff_node << ','
        << (eff_node >= 0.5) << '\n';
  }
  raxh::bench::write_output("discussion7_cost.csv", csv.str());
  raxh::bench::write_summary("discussion7", "cases_justified_at_scale",
                             static_cast<double>(justified), "cases",
                             "\"cases_total\":" + std::to_string(total));
  std::printf("\n%d/%d Dash cases justified at 80 cores under node charging;"
              " the pattern-rich\nsets pass, the smallest does not, and the "
              "19,436-pattern set passes on the\nmachine the paper routes it"
              " to (Triton).\n",
              justified, total);
  return 0;
}
