// Microbenchmarks of the two parallel substrates (google-benchmark):
// thread-crew dispatch overhead (the fine-grained sync cost the performance
// model parameterizes) and minimpi collective latency (the paper's point
// that its MPI pattern needs no fast interconnect).
//
// Before the gbench suites, main() runs a CI-gated dispatch section
// (`--dispatch-only` runs just that): the lock-free crew barrier is raced
// against the retired mutex/CV handshake on the empty-job round-trip, and
// the cost-aware weighted partition against uniform striping on a skewed
// per-pattern cost profile. Results land in BENCH_dispatch.json; the gate
// fails the run if the lock-free barrier does not beat the CV baseline at
// 4 threads.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#define RAXH_BENCH_WITH_GBENCH
#include "bench_util.h"
#include "minimpi/comm.h"
#include "obs/obs.h"
#include "parallel/workforce.h"

namespace {

using namespace raxh;

// ---------------------------------------------------------------------------
// Dispatch-latency gate (BENCH_dispatch.json)
// ---------------------------------------------------------------------------

// The retired Workforce handshake, preserved as the before/after baseline:
// a mutex + generation broadcast on one condition variable to issue, a
// counted drain on a second to join. Kept minimal (no obs hooks) so the
// comparison flatters the baseline, not the new barrier.
class CvCrew {
 public:
  explicit CvCrew(int num_threads) : num_threads_(num_threads) {
    for (int tid = 1; tid < num_threads; ++tid)
      workers_.emplace_back([this, tid] { worker_loop(tid); });
  }

  ~CvCrew() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void run(const std::function<void(int, int)>& job) {
    if (num_threads_ == 1) {
      job(0, 1);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      running_ = num_threads_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    job(0, num_threads_);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_loop(int tid) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int, int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock,
                       [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        job = job_;
      }
      (*job)(tid, num_threads_);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--running_ == 0) done_cv_.notify_one();
      }
    }
  }

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool shutdown_ = false;
};

// ns per empty-job round-trip (dispatch + barrier): the pure per-job
// synchronization cost a ~5us likelihood job pays on top of its kernel work.
template <typename Crew>
double empty_job_ns(Crew& crew, int jobs) {
  std::atomic<long> sink{0};
  const auto job = [&](int, int) {
    sink.fetch_add(1, std::memory_order_relaxed);
  };
  for (int i = 0; i < jobs / 10; ++i) crew.run(job);  // warm-up
  const std::uint64_t start = obs::now_ns();
  for (int i = 0; i < jobs; ++i) crew.run(job);
  const std::uint64_t elapsed = obs::now_ns() - start;
  if (sink.load() == 0) std::abort();  // defeat dead-code elimination
  return static_cast<double>(elapsed) / jobs;
}

// Makespan (ns/job) of a skewed per-pattern workload under a given
// partition: the first eighth of the patterns cost 16x the rest (the shape
// a few high-rate GAMMA-ish columns give). Each "pattern" spins ~cost
// dependent multiplies, so imbalance shows up as master wait.
double skewed_makespan_ns(Workforce& crew,
                          const std::vector<std::size_t>& bounds,
                          const std::vector<std::uint64_t>& costs, int jobs) {
  std::atomic<long> guard{0};
  const auto job = [&](int tid, int) {
    double x = 1.0000001;
    for (std::size_t p = bounds[static_cast<std::size_t>(tid)];
         p < bounds[static_cast<std::size_t>(tid) + 1]; ++p)
      for (std::uint64_t it = 0; it < costs[p]; ++it) x *= 1.0000001;
    guard.fetch_add(x > 1.0 ? 1 : 0, std::memory_order_relaxed);
  };
  for (int i = 0; i < jobs / 10; ++i) crew.run(job);  // warm-up
  const std::uint64_t start = obs::now_ns();
  for (int i = 0; i < jobs; ++i) crew.run(job);
  return static_cast<double>(obs::now_ns() - start) / jobs;
}

// Runs the gated dispatch comparison; returns EXIT_FAILURE if the lock-free
// barrier loses to the CV baseline on the 4-thread empty-job case.
int run_dispatch_gate() {
  bench::print_header(
      "CREW DISPATCH - lock-free barrier vs. the retired mutex/CV handshake",
      "the per-job overhead behind the paper's Figs. 5-6 thread efficiency");

  constexpr int kJobs = 20000;
  const std::vector<int> thread_counts{1, 2, 4, 8};
  std::vector<double> lockfree_ns, cv_ns;
  std::printf("\nempty-job round-trip (%d jobs, median-free single run):\n",
              kJobs);
  std::printf("  %8s %14s %14s %9s\n", "threads", "lock-free ns", "mutex/CV ns",
              "speedup");
  for (int nt : thread_counts) {
    Workforce crew(nt);
    CvCrew baseline(nt);
    const double lf = empty_job_ns(crew, kJobs);
    const double cv = empty_job_ns(baseline, kJobs);
    lockfree_ns.push_back(lf);
    cv_ns.push_back(cv);
    std::printf("  %8d %14.0f %14.0f %8.1fx\n", nt, lf, cv, cv / lf);
  }

  // Imbalance: uniform stripe vs. cost-aware partition on the skewed
  // profile, 4 threads.
  constexpr std::size_t kPatterns = 1 << 12;
  constexpr int kImbalanceJobs = 300;
  std::vector<std::uint64_t> costs(kPatterns, 1);
  for (std::size_t p = 0; p < kPatterns / 8; ++p) costs[p] = 16;
  Workforce crew4(4);
  std::vector<std::size_t> striped(5);
  for (int t = 0; t < 4; ++t)
    striped[static_cast<std::size_t>(t)] = stripe(kPatterns, t, 4).begin;
  striped[4] = kPatterns;
  const auto weighted = weighted_partition(costs, 4);
  const double striped_ns =
      skewed_makespan_ns(crew4, striped, costs, kImbalanceJobs);
  const double weighted_ns =
      skewed_makespan_ns(crew4, weighted, costs, kImbalanceJobs);
  std::printf("\nskewed-cost makespan, 4 threads (first 1/8 of %zu patterns "
              "cost 16x):\n",
              kPatterns);
  std::printf("  %-18s %12.0f ns/job\n", "uniform stripe", striped_ns);
  std::printf("  %-18s %12.0f ns/job  (%.2fx faster)\n", "weighted partition",
              weighted_ns, striped_ns / weighted_ns);

  const double lf4 = lockfree_ns[2], cv4 = cv_ns[2];
  char extra[512];
  std::snprintf(
      extra, sizeof(extra),
      "\"dispatch_ns_cv_t4\":%.0f,\"dispatch_speedup_t4\":%.2f,"
      "\"dispatch_ns_t1\":%.0f,\"dispatch_ns_t2\":%.0f,"
      "\"dispatch_ns_t8\":%.0f,\"dispatch_ns_cv_t8\":%.0f,"
      "\"imbalance_striped_ns\":%.0f,\"imbalance_weighted_ns\":%.0f,"
      "\"imbalance_speedup\":%.2f",
      cv4, cv4 / lf4, lockfree_ns[0], lockfree_ns[1], lockfree_ns[3],
      cv_ns[3], striped_ns, weighted_ns, striped_ns / weighted_ns);
  bench::write_summary("dispatch", "dispatch_ns_lockfree_t4", lf4, "ns",
                       extra);

  if (lf4 >= cv4) {
    std::printf("\nFAILED: lock-free dispatch (%.0f ns) does not beat the "
                "mutex/CV baseline (%.0f ns) at 4 threads\n",
                lf4, cv4);
    return EXIT_FAILURE;
  }
  std::printf("\ndispatch gate OK: %.1fx vs. the CV baseline at 4 threads\n",
              cv4 / lf4);
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// Collective-latency gate (folded into BENCH_parallel.json)
// ---------------------------------------------------------------------------

// Amortized per-op latency of `body` inside ONE standing mesh of `ranks`
// thread ranks: the old BM_ThreadRanksBarrier numbers (42us -> 304us for
// 2 -> 8 ranks) were dominated by spawning N threads per measurement, which
// is linear in ranks no matter how the collective routes. The driver holds
// one mesh for a whole analysis, so per-op cost inside a mesh is the number
// that matters — and the one the tree-vs-star gate compares.
double amortized_op_ns(int ranks, const mpi::CommOptions& opts, int iters,
                       const std::function<void(mpi::Comm&)>& body) {
  double ns = 0.0;
  mpi::run_thread_ranks(
      ranks,
      [&](mpi::Comm& comm) {
        for (int i = 0; i < iters / 10 + 1; ++i) body(comm);  // warm-up
        comm.barrier();
        const std::uint64_t start = obs::now_ns();
        for (int i = 0; i < iters; ++i) body(comm);
        if (comm.rank() == 0)
          ns = static_cast<double>(obs::now_ns() - start) / iters;
      },
      opts);
  return ns;
}

double barrier_ns(int ranks, mpi::CollectiveAlgo algo, int iters) {
  mpi::CommOptions o;
  o.collectives = algo;
  return amortized_op_ns(ranks, o, iters,
                         [](mpi::Comm& comm) { comm.barrier(); });
}

double allreduce_ns(int ranks, mpi::CollectiveAlgo algo, int iters) {
  mpi::CommOptions o;
  o.collectives = algo;
  return amortized_op_ns(ranks, o, iters, [](mpi::Comm& comm) {
    const double s = comm.allreduce_sum(static_cast<double>(comm.rank()));
    if (s < 0.0) std::abort();  // defeat dead-code elimination
  });
}

// Spin for ~`ns` of CPU work (the stand-in for a thorough-search slice).
void spin_for_ns(std::uint64_t ns) {
  const std::uint64_t end = obs::now_ns() + ns;
  double x = 1.0000001;
  while (obs::now_ns() < end) {
    for (int i = 0; i < 64; ++i) x *= 1.0000001;
  }
  if (x < 1.0) std::abort();
}

// Report-collection makespan at rank 0, blocking vs. overlapped: workers
// compute then send a report; rank 0 has its own larger slice of work. The
// overlapped variant (core/hybrid.cpp's pattern) posts irecvs up front and
// test()-drains between chunks of its own work.
double report_collection_ns(int ranks, bool overlap, int iters) {
  mpi::CommOptions o;
  constexpr std::uint64_t kWorkerNs = 100 * 1000;
  constexpr std::uint64_t kRootSliceNs = 50 * 1000;
  constexpr int kRootSlices = 8;  // rank 0 owns ~4x one worker's slice
  return amortized_op_ns(ranks, o, iters, [=](mpi::Comm& comm) {
    const int n = comm.size();
    if (comm.rank() != 0) {
      spin_for_ns(kWorkerNs);
      mpi::Packer p;
      p.put<double>(static_cast<double>(comm.rank()));
      comm.isend(0, 7, p.bytes());
      comm.barrier();
      return;
    }
    double sum = 0.0;
    if (overlap) {
      std::vector<mpi::Comm::Request> reqs;
      for (int w = 1; w < n; ++w) reqs.push_back(comm.irecv(w, 7));
      std::size_t done = 0;
      for (int s = 0; s < kRootSlices; ++s) {
        spin_for_ns(kRootSliceNs);
        for (auto& r : reqs)
          if (!r.done() && comm.test(r)) ++done;
      }
      for (auto& r : reqs) {
        const mpi::Bytes b = comm.wait(r);
        mpi::Unpacker u(b);
        sum += u.get<double>();
      }
    } else {
      for (int s = 0; s < kRootSlices; ++s) spin_for_ns(kRootSliceNs);
      for (int w = 1; w < n; ++w) {
        const mpi::Bytes b = comm.recv(w, 7);
        mpi::Unpacker u(b);
        sum += u.get<double>();
      }
    }
    if (sum != static_cast<double>(n) * (n - 1) / 2) std::abort();
    comm.barrier();
  });
}

// Runs the collective sections; returns {exit code, JSON members} so the
// metrics land inside BENCH_parallel.json next to the gbench rows.
std::pair<int, std::string> run_collectives_gate() {
  bench::print_header(
      "MINIMPI COLLECTIVES - binomial tree vs. star, inside a standing mesh",
      "ROADMAP item 3: collective latency flat-to-log as ranks grow");

  constexpr int kIters = 2000;
  constexpr double kGateRatio = 2.5;

  std::printf("\namortized barrier latency (%d iterations, thread backend):\n",
              kIters);
  std::printf("  %8s %12s %12s\n", "ranks", "tree ns", "star ns");
  std::vector<double> tree_barrier, star_barrier;
  for (const int ranks : {2, 4, 8}) {
    tree_barrier.push_back(barrier_ns(ranks, mpi::CollectiveAlgo::kTree,
                                      kIters));
    star_barrier.push_back(barrier_ns(ranks, mpi::CollectiveAlgo::kStar,
                                      kIters));
    std::printf("  %8d %12.0f %12.0f\n", ranks, tree_barrier.back(),
                star_barrier.back());
  }
  const double tree_ratio = tree_barrier[2] / tree_barrier[0];
  const double star_ratio = star_barrier[2] / star_barrier[0];
  std::printf("  8-rank / 2-rank growth: tree %.2fx, star %.2fx\n", tree_ratio,
              star_ratio);

  constexpr int kAllreduceIters = 1000;
  const double tree_ar8 =
      allreduce_ns(8, mpi::CollectiveAlgo::kTree, kAllreduceIters);
  const double star_ar8 =
      allreduce_ns(8, mpi::CollectiveAlgo::kStar, kAllreduceIters);
  std::printf("\nallreduce_sum at 8 ranks: tree %.0f ns, star %.0f ns\n",
              tree_ar8, star_ar8);

  constexpr int kOverlapIters = 30;
  const double blocking_ns = report_collection_ns(4, false, kOverlapIters);
  const double overlap_ns = report_collection_ns(4, true, kOverlapIters);
  std::printf("\nreport collection at 4 ranks (rank 0 owns 4x a worker's "
              "work):\n  blocking recv %.0f ns, irecv/test overlap %.0f ns "
              "(%.2fx)\n",
              blocking_ns, overlap_ns, blocking_ns / overlap_ns);

  // The 2.5x bound is a statement about routing depth: 8 ranks cost
  // ceil(log2 8) = 3 rounds against 1, and with per-barrier fixed overhead
  // the wall-clock ratio lands under 2.5 — but only when rounds actually run
  // concurrently. With fewer cores than ranks every message is a scheduler
  // hop, so the measurement ranks topologies by total message count (tree 24
  // vs. star 14 at 8 ranks) — the opposite regime of the one the gate
  // guards. Enforce only where the measurement means what the gate says.
  const unsigned cores = std::thread::hardware_concurrency();
  const bool enforce = cores >= 8;

  char extra[768];
  std::snprintf(
      extra, sizeof(extra),
      "\"tree_barrier_ns_r2\":%.0f,\"tree_barrier_ns_r4\":%.0f,"
      "\"tree_barrier_ns_r8\":%.0f,\"star_barrier_ns_r2\":%.0f,"
      "\"star_barrier_ns_r4\":%.0f,\"star_barrier_ns_r8\":%.0f,"
      "\"tree_barrier_ratio_8v2\":%.2f,\"star_barrier_ratio_8v2\":%.2f,"
      "\"tree_allreduce_ns_r8\":%.0f,\"star_allreduce_ns_r8\":%.0f,"
      "\"overlap_blocking_ns\":%.0f,\"overlap_nonblocking_ns\":%.0f,"
      "\"collectives_gate_cores\":%u,\"collectives_gate\":\"%s\"",
      tree_barrier[0], tree_barrier[1], tree_barrier[2], star_barrier[0],
      star_barrier[1], star_barrier[2], tree_ratio, star_ratio, tree_ar8,
      star_ar8, blocking_ns, overlap_ns, cores,
      enforce ? "enforced" : "skipped_insufficient_cores");

  if (!enforce) {
    std::printf("\ncollectives gate SKIPPED: %u core(s) < 8 ranks — "
                "serialized rounds measure the scheduler, not the routing "
                "depth (metrics still recorded)\n",
                cores);
    return {EXIT_SUCCESS, extra};
  }
  if (tree_ratio > kGateRatio) {
    std::printf("\nFAILED: tree barrier at 8 ranks is %.2fx its 2-rank "
                "latency (gate: <= %.1fx)\n",
                tree_ratio, kGateRatio);
    return {EXIT_FAILURE, extra};
  }
  std::printf("\ncollectives gate OK: tree barrier 8v2 growth %.2fx <= %.1fx\n",
              tree_ratio, kGateRatio);
  return {EXIT_SUCCESS, extra};
}

void BM_CrewDispatch(benchmark::State& state) {
  Workforce crew(static_cast<int>(state.range(0)));
  std::atomic<long> sink{0};
  for (auto _ : state) {
    crew.run([&](int, int) { sink.fetch_add(1, std::memory_order_relaxed); });
  }
  benchmark::DoNotOptimize(sink.load());
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CrewDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

void BM_CrewStripedSum(benchmark::State& state) {
  Workforce crew(static_cast<int>(state.range(0)));
  const std::size_t n = 1 << 16;
  std::vector<double> data(n, 1.5);
  for (auto _ : state) {
    crew.run([&](int tid, int nthreads) {
      const auto [b, e] = stripe(n, tid, nthreads);
      double sum = 0.0;
      for (std::size_t i = b; i < e; ++i) sum += data[i];
      crew.reduction(tid) = sum;
    });
    benchmark::DoNotOptimize(crew.sum_reduction());
  }
}
BENCHMARK(BM_CrewStripedSum)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_ThreadRanksBarrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::run_thread_ranks(ranks, [](mpi::Comm& comm) {
      for (int i = 0; i < 8; ++i) comm.barrier();
    });
  }
  state.counters["ranks"] = static_cast<double>(ranks);
}
BENCHMARK(BM_ThreadRanksBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_ThreadRanksBcast(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mpi::run_thread_ranks(4, [payload_size](mpi::Comm& comm) {
      std::string payload;
      if (comm.rank() == 0) payload.assign(payload_size, 'x');
      comm.bcast_string(payload, 0);
      benchmark::DoNotOptimize(payload.size());
    });
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(payload_size) * 3);
}
BENCHMARK(BM_ThreadRanksBcast)->Arg(1024)->Arg(1 << 20)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool dispatch_only = false;
  bool collectives_only = false;
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--dispatch-only") == 0) {
      dispatch_only = true;
    } else if (std::strcmp(argv[i], "--collectives-only") == 0) {
      collectives_only = true;
    } else {
      ++i;
      continue;
    }
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
  }
  if (dispatch_only) return run_dispatch_gate();
  const auto [collectives_gate, collectives_extra] = run_collectives_gate();
  if (collectives_only) {
    // Standalone gate run (CI): emit the collective metrics as the whole
    // parallel summary, without waiting on the gbench suites.
    raxh::bench::write_json(
        "parallel",
        "{\"bench\":\"parallel\",\"metric\":\"collective_latency\","
        "\"units\":\"ns\"," +
            collectives_extra + "}");
    return collectives_gate;
  }
  const int gate = run_dispatch_gate();
  const int gbench = raxh::bench::gbench_main_with_summary(
      "parallel", argc, argv, collectives_extra);
  if (gate != EXIT_SUCCESS) return gate;
  if (collectives_gate != EXIT_SUCCESS) return collectives_gate;
  return gbench;
}
