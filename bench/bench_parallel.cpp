// Microbenchmarks of the two parallel substrates (google-benchmark):
// thread-crew dispatch overhead (the fine-grained sync cost the performance
// model parameterizes) and minimpi collective latency (the paper's point
// that its MPI pattern needs no fast interconnect).
#include <benchmark/benchmark.h>

#include <atomic>

#define RAXH_BENCH_WITH_GBENCH
#include "bench_util.h"
#include "minimpi/comm.h"
#include "parallel/workforce.h"

namespace {

using namespace raxh;

void BM_CrewDispatch(benchmark::State& state) {
  Workforce crew(static_cast<int>(state.range(0)));
  std::atomic<long> sink{0};
  for (auto _ : state) {
    crew.run([&](int, int) { sink.fetch_add(1, std::memory_order_relaxed); });
  }
  benchmark::DoNotOptimize(sink.load());
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CrewDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

void BM_CrewStripedSum(benchmark::State& state) {
  Workforce crew(static_cast<int>(state.range(0)));
  const std::size_t n = 1 << 16;
  std::vector<double> data(n, 1.5);
  for (auto _ : state) {
    crew.run([&](int tid, int nthreads) {
      const auto [b, e] = stripe(n, tid, nthreads);
      double sum = 0.0;
      for (std::size_t i = b; i < e; ++i) sum += data[i];
      crew.reduction(tid) = sum;
    });
    benchmark::DoNotOptimize(crew.sum_reduction());
  }
}
BENCHMARK(BM_CrewStripedSum)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_ThreadRanksBarrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::run_thread_ranks(ranks, [](mpi::Comm& comm) {
      for (int i = 0; i < 8; ++i) comm.barrier();
    });
  }
  state.counters["ranks"] = static_cast<double>(ranks);
}
BENCHMARK(BM_ThreadRanksBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_ThreadRanksBcast(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mpi::run_thread_ranks(4, [payload_size](mpi::Comm& comm) {
      std::string payload;
      if (comm.rank() == 0) payload.assign(payload_size, 'x');
      comm.bcast_string(payload, 0);
      benchmark::DoNotOptimize(payload.size());
    });
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(payload_size) * 3);
}
BENCHMARK(BM_ThreadRanksBcast)->Arg(1024)->Arg(1 << 20)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return raxh::bench::gbench_main_with_summary("parallel", argc, argv);
}
