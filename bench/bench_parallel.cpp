// Microbenchmarks of the two parallel substrates (google-benchmark):
// thread-crew dispatch overhead (the fine-grained sync cost the performance
// model parameterizes) and minimpi collective latency (the paper's point
// that its MPI pattern needs no fast interconnect).
//
// Before the gbench suites, main() runs a CI-gated dispatch section
// (`--dispatch-only` runs just that): the lock-free crew barrier is raced
// against the retired mutex/CV handshake on the empty-job round-trip, and
// the cost-aware weighted partition against uniform striping on a skewed
// per-pattern cost profile. Results land in BENCH_dispatch.json; the gate
// fails the run if the lock-free barrier does not beat the CV baseline at
// 4 threads.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#define RAXH_BENCH_WITH_GBENCH
#include "bench_util.h"
#include "minimpi/comm.h"
#include "obs/obs.h"
#include "parallel/workforce.h"

namespace {

using namespace raxh;

// ---------------------------------------------------------------------------
// Dispatch-latency gate (BENCH_dispatch.json)
// ---------------------------------------------------------------------------

// The retired Workforce handshake, preserved as the before/after baseline:
// a mutex + generation broadcast on one condition variable to issue, a
// counted drain on a second to join. Kept minimal (no obs hooks) so the
// comparison flatters the baseline, not the new barrier.
class CvCrew {
 public:
  explicit CvCrew(int num_threads) : num_threads_(num_threads) {
    for (int tid = 1; tid < num_threads; ++tid)
      workers_.emplace_back([this, tid] { worker_loop(tid); });
  }

  ~CvCrew() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void run(const std::function<void(int, int)>& job) {
    if (num_threads_ == 1) {
      job(0, 1);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      running_ = num_threads_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    job(0, num_threads_);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_loop(int tid) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int, int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock,
                       [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        job = job_;
      }
      (*job)(tid, num_threads_);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--running_ == 0) done_cv_.notify_one();
      }
    }
  }

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool shutdown_ = false;
};

// ns per empty-job round-trip (dispatch + barrier): the pure per-job
// synchronization cost a ~5us likelihood job pays on top of its kernel work.
template <typename Crew>
double empty_job_ns(Crew& crew, int jobs) {
  std::atomic<long> sink{0};
  const auto job = [&](int, int) {
    sink.fetch_add(1, std::memory_order_relaxed);
  };
  for (int i = 0; i < jobs / 10; ++i) crew.run(job);  // warm-up
  const std::uint64_t start = obs::now_ns();
  for (int i = 0; i < jobs; ++i) crew.run(job);
  const std::uint64_t elapsed = obs::now_ns() - start;
  if (sink.load() == 0) std::abort();  // defeat dead-code elimination
  return static_cast<double>(elapsed) / jobs;
}

// Makespan (ns/job) of a skewed per-pattern workload under a given
// partition: the first eighth of the patterns cost 16x the rest (the shape
// a few high-rate GAMMA-ish columns give). Each "pattern" spins ~cost
// dependent multiplies, so imbalance shows up as master wait.
double skewed_makespan_ns(Workforce& crew,
                          const std::vector<std::size_t>& bounds,
                          const std::vector<std::uint64_t>& costs, int jobs) {
  std::atomic<long> guard{0};
  const auto job = [&](int tid, int) {
    double x = 1.0000001;
    for (std::size_t p = bounds[static_cast<std::size_t>(tid)];
         p < bounds[static_cast<std::size_t>(tid) + 1]; ++p)
      for (std::uint64_t it = 0; it < costs[p]; ++it) x *= 1.0000001;
    guard.fetch_add(x > 1.0 ? 1 : 0, std::memory_order_relaxed);
  };
  for (int i = 0; i < jobs / 10; ++i) crew.run(job);  // warm-up
  const std::uint64_t start = obs::now_ns();
  for (int i = 0; i < jobs; ++i) crew.run(job);
  return static_cast<double>(obs::now_ns() - start) / jobs;
}

// Runs the gated dispatch comparison; returns EXIT_FAILURE if the lock-free
// barrier loses to the CV baseline on the 4-thread empty-job case.
int run_dispatch_gate() {
  bench::print_header(
      "CREW DISPATCH - lock-free barrier vs. the retired mutex/CV handshake",
      "the per-job overhead behind the paper's Figs. 5-6 thread efficiency");

  constexpr int kJobs = 20000;
  const std::vector<int> thread_counts{1, 2, 4, 8};
  std::vector<double> lockfree_ns, cv_ns;
  std::printf("\nempty-job round-trip (%d jobs, median-free single run):\n",
              kJobs);
  std::printf("  %8s %14s %14s %9s\n", "threads", "lock-free ns", "mutex/CV ns",
              "speedup");
  for (int nt : thread_counts) {
    Workforce crew(nt);
    CvCrew baseline(nt);
    const double lf = empty_job_ns(crew, kJobs);
    const double cv = empty_job_ns(baseline, kJobs);
    lockfree_ns.push_back(lf);
    cv_ns.push_back(cv);
    std::printf("  %8d %14.0f %14.0f %8.1fx\n", nt, lf, cv, cv / lf);
  }

  // Imbalance: uniform stripe vs. cost-aware partition on the skewed
  // profile, 4 threads.
  constexpr std::size_t kPatterns = 1 << 12;
  constexpr int kImbalanceJobs = 300;
  std::vector<std::uint64_t> costs(kPatterns, 1);
  for (std::size_t p = 0; p < kPatterns / 8; ++p) costs[p] = 16;
  Workforce crew4(4);
  std::vector<std::size_t> striped(5);
  for (int t = 0; t < 4; ++t)
    striped[static_cast<std::size_t>(t)] = stripe(kPatterns, t, 4).begin;
  striped[4] = kPatterns;
  const auto weighted = weighted_partition(costs, 4);
  const double striped_ns =
      skewed_makespan_ns(crew4, striped, costs, kImbalanceJobs);
  const double weighted_ns =
      skewed_makespan_ns(crew4, weighted, costs, kImbalanceJobs);
  std::printf("\nskewed-cost makespan, 4 threads (first 1/8 of %zu patterns "
              "cost 16x):\n",
              kPatterns);
  std::printf("  %-18s %12.0f ns/job\n", "uniform stripe", striped_ns);
  std::printf("  %-18s %12.0f ns/job  (%.2fx faster)\n", "weighted partition",
              weighted_ns, striped_ns / weighted_ns);

  const double lf4 = lockfree_ns[2], cv4 = cv_ns[2];
  char extra[512];
  std::snprintf(
      extra, sizeof(extra),
      "\"dispatch_ns_cv_t4\":%.0f,\"dispatch_speedup_t4\":%.2f,"
      "\"dispatch_ns_t1\":%.0f,\"dispatch_ns_t2\":%.0f,"
      "\"dispatch_ns_t8\":%.0f,\"dispatch_ns_cv_t8\":%.0f,"
      "\"imbalance_striped_ns\":%.0f,\"imbalance_weighted_ns\":%.0f,"
      "\"imbalance_speedup\":%.2f",
      cv4, cv4 / lf4, lockfree_ns[0], lockfree_ns[1], lockfree_ns[3],
      cv_ns[3], striped_ns, weighted_ns, striped_ns / weighted_ns);
  bench::write_summary("dispatch", "dispatch_ns_lockfree_t4", lf4, "ns",
                       extra);

  if (lf4 >= cv4) {
    std::printf("\nFAILED: lock-free dispatch (%.0f ns) does not beat the "
                "mutex/CV baseline (%.0f ns) at 4 threads\n",
                lf4, cv4);
    return EXIT_FAILURE;
  }
  std::printf("\ndispatch gate OK: %.1fx vs. the CV baseline at 4 threads\n",
              cv4 / lf4);
  return EXIT_SUCCESS;
}

void BM_CrewDispatch(benchmark::State& state) {
  Workforce crew(static_cast<int>(state.range(0)));
  std::atomic<long> sink{0};
  for (auto _ : state) {
    crew.run([&](int, int) { sink.fetch_add(1, std::memory_order_relaxed); });
  }
  benchmark::DoNotOptimize(sink.load());
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CrewDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

void BM_CrewStripedSum(benchmark::State& state) {
  Workforce crew(static_cast<int>(state.range(0)));
  const std::size_t n = 1 << 16;
  std::vector<double> data(n, 1.5);
  for (auto _ : state) {
    crew.run([&](int tid, int nthreads) {
      const auto [b, e] = stripe(n, tid, nthreads);
      double sum = 0.0;
      for (std::size_t i = b; i < e; ++i) sum += data[i];
      crew.reduction(tid) = sum;
    });
    benchmark::DoNotOptimize(crew.sum_reduction());
  }
}
BENCHMARK(BM_CrewStripedSum)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_ThreadRanksBarrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::run_thread_ranks(ranks, [](mpi::Comm& comm) {
      for (int i = 0; i < 8; ++i) comm.barrier();
    });
  }
  state.counters["ranks"] = static_cast<double>(ranks);
}
BENCHMARK(BM_ThreadRanksBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_ThreadRanksBcast(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mpi::run_thread_ranks(4, [payload_size](mpi::Comm& comm) {
      std::string payload;
      if (comm.rank() == 0) payload.assign(payload_size, 'x');
      comm.bcast_string(payload, 0);
      benchmark::DoNotOptimize(payload.size());
    });
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(payload_size) * 3);
}
BENCHMARK(BM_ThreadRanksBcast)->Arg(1024)->Arg(1 << 20)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool dispatch_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dispatch-only") == 0) {
      dispatch_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  const int gate = run_dispatch_gate();
  if (dispatch_only) return gate;
  const int gbench = raxh::bench::gbench_main_with_summary("parallel", argc,
                                                           argv);
  return gate != EXIT_SUCCESS ? gate : gbench;
}
