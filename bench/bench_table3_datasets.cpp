// Regenerates Table 3 ("benchmark data sets") and validates the synthetic
// stand-ins: for each paper data set, generate a scaled replica and report
// the taxa/characters/patterns achieved by the simulator + compressor.
#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "bio/datasets.h"
#include "bio/patterns.h"

int main() {
  using namespace raxh;
  bench::print_header("TABLE 3 - benchmark data sets",
                      "Pfeiffer & Stamatakis 2010, Table 3 + synthetic "
                      "stand-ins (DESIGN.md substitution)");

  std::printf("paper data set                         | generated stand-in (scale 0.15)\n");
  std::printf("%6s %10s %8s %9s | %5s %10s %8s %10s\n", "taxa", "characters",
              "patterns", "rec.boots", "taxa", "characters", "patterns",
              "pat/target");
  std::ostringstream csv;
  csv << "name,taxa,characters,patterns,recommended_bootstraps,"
         "gen_taxa,gen_characters,gen_patterns\n";

  const double scale = 0.15;
  double ratio_sum = 0.0;
  int nsets = 0;
  for (const auto& spec : paper_datasets()) {
    const Alignment a = generate_dataset(spec, scale, /*seed=*/2026);
    const auto pat = PatternAlignment::compress(a);
    const double target = scale * static_cast<double>(spec.patterns);
    std::printf("%6zu %10zu %8zu %9d | %5zu %10zu %8zu %9.2f\n", spec.taxa,
                spec.characters, spec.patterns, spec.recommended_bootstraps,
                a.num_taxa(), a.num_sites(), pat.num_patterns(),
                static_cast<double>(pat.num_patterns()) / target);
    csv << spec.name << ',' << spec.taxa << ',' << spec.characters << ','
        << spec.patterns << ',' << spec.recommended_bootstraps << ','
        << a.num_taxa() << ',' << a.num_sites() << ',' << pat.num_patterns()
        << '\n';
    ratio_sum += static_cast<double>(pat.num_patterns()) / target;
    ++nsets;
  }
  bench::write_output("table3_datasets.csv", csv.str());
  bench::write_summary("table3_datasets", "mean_pattern_to_target_ratio",
                       ratio_sum / nsets, "ratio",
                       "\"datasets\":" + std::to_string(nsets));
  std::printf("pattern counts track scaled targets (collisions at very small taxon counts cap the smallest stand-ins); identical "
              "likelihood-kernel work per pattern either way\n");
  return 0;
}
