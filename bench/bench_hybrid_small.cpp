// End-to-end REAL hybrid runs at laptop scale: the full comprehensive
// analysis over a (processes x threads) grid on a synthetic stand-in,
// reporting wall time per stage and the final likelihood for each shape.
// On a single-core host the wall times show no parallel speedup (ranks are
// time-shared); what this bench demonstrates is the real code running the
// paper's exact stage structure and communication pattern at every grid
// point, with identical-or-better final lnL at p > 1.
#include <cstdio>
#include <mutex>
#include <sstream>

#include "bench_util.h"
#include "bio/datasets.h"
#include "bio/patterns.h"
#include "core/hybrid.h"
#include "minimpi/comm.h"
#include "util/timer.h"

int main() {
  using namespace raxh;
  bench::print_header(
      "HYBRID (real runs) - comprehensive analysis over a p x T grid",
      "end-to-end check of the stage structure behind Figs. 1-4");

  const auto& spec = paper_dataset_by_patterns(1130);
  const Alignment alignment = generate_dataset(spec, 0.06, 11);
  const auto patterns = PatternAlignment::compress(alignment);
  std::printf("stand-in for the %zu-pattern set at scale 0.06: %zu taxa, %zu "
              "patterns\n\n",
              spec.patterns, patterns.num_taxa(), patterns.num_patterns());

  std::printf("%3s %3s | %9s %9s %9s %9s | %9s | %12s\n", "p", "T",
              "bootstrap", "fast", "slow", "thorough", "wall(s)", "final lnL");
  std::ostringstream csv;
  csv << "processes,threads,bootstrap_s,fast_s,slow_s,thorough_s,wall_s,"
         "final_lnl\n";

  double serial_wall_s = 0.0;
  for (const auto& [p, t] :
       std::initializer_list<std::pair<int, int>>{
           {1, 1}, {1, 2}, {2, 1}, {2, 2}, {4, 1}}) {
    HybridOptions options;
    options.analysis.specified_bootstraps = 10;
    options.analysis.num_threads = t;
    options.analysis.fast.max_rounds = 1;
    options.analysis.slow.max_rounds = 1;
    options.analysis.thorough.max_rounds = 2;
    options.compute_support = false;

    WallTimer wall;
    std::mutex mu;
    StageTimes stage_times;
    double lnl = 0.0;
    mpi::run_thread_ranks(p, [&](mpi::Comm& comm) {
      const auto result = run_hybrid_comprehensive(comm, patterns, options);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        lnl = result.best_lnl;
        // Slowest rank per stage, as the paper reports.
        for (const auto& rt : result.rank_times) {
          stage_times.bootstrap = std::max(stage_times.bootstrap, rt.bootstrap);
          stage_times.fast = std::max(stage_times.fast, rt.fast);
          stage_times.slow = std::max(stage_times.slow, rt.slow);
          stage_times.thorough = std::max(stage_times.thorough, rt.thorough);
        }
      }
    });
    const double seconds = wall.seconds();
    if (p == 1 && t == 1) serial_wall_s = seconds;
    std::printf("%3d %3d | %9.2f %9.2f %9.2f %9.2f | %9.2f | %12.4f\n", p, t,
                stage_times.bootstrap, stage_times.fast, stage_times.slow,
                stage_times.thorough, seconds, lnl);
    csv << p << ',' << t << ',' << stage_times.bootstrap << ','
        << stage_times.fast << ',' << stage_times.slow << ','
        << stage_times.thorough << ',' << seconds << ',' << lnl << '\n';
  }
  bench::write_output("hybrid_small.csv", csv.str());
  bench::write_summary("hybrid_small", "serial_1p1t_wall_time", serial_wall_s,
                       "seconds");
  std::printf("\n(one-core host: ranks/threads are time-shared, so wall times"
              " grow with p*T;\n on a real cluster each rank binds its own "
              "cores — the simsched benches model that.)\n");
  return 0;
}
